//! Condition variables under ResPCT (paper §3.3.3, Fig. 7): a two-stage
//! producer/consumer pipeline over a bounded buffer, with checkpoints
//! running while threads are blocked in `cond_wait`.
//!
//! The consumer maintains a persistent running sum (InCLL); both sides use
//! [`RCondvar`], which wraps waits in `checkpoint_allow` /
//! `checkpoint_prevent(mutex)` so a blocked thread never deadlocks a
//! checkpoint, and resumes only after any in-flight checkpoint finishes.
//!
//! Run with: `cargo run --release --example pipeline`

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use respct_repro::pmem::{Region, RegionConfig};
use respct_repro::respct::{Pool, PoolConfig, RCondvar};

const ITEMS: u64 = 50_000;
const CAPACITY: usize = 32;

fn main() {
    let region = Region::new(RegionConfig::optane(16 << 20));
    let pool = Pool::create(region, PoolConfig::default()).expect("pool");
    let _ckpt = pool.start_checkpointer(Duration::from_millis(4));

    let buffer: Arc<Mutex<VecDeque<u64>>> = Arc::new(Mutex::new(VecDeque::new()));
    let not_empty = Arc::new(RCondvar::new());
    let not_full = Arc::new(RCondvar::new());

    let consumer = {
        let (pool, buffer) = (Arc::clone(&pool), Arc::clone(&buffer));
        let (not_empty, not_full) = (Arc::clone(&not_empty), Arc::clone(&not_full));
        std::thread::spawn(move || {
            let h = pool.register();
            let sum = h.alloc_cell(0u64);
            let mut received = 0u64;
            while received < ITEMS {
                // §3.3.3: RP immediately before the critical section, no
                // stores between lock acquisition and the wait.
                h.rp(10);
                let mut guard = buffer.lock();
                while guard.is_empty() {
                    guard = not_empty.wait(&h, &buffer, guard);
                }
                let v = guard.pop_front().expect("non-empty");
                drop(guard);
                not_full.notify_one();
                h.update(sum, h.get(sum) + v);
                received += 1;
            }
            let total = h.get(sum);
            h.checkpoint_here();
            total
        })
    };

    {
        let h = pool.register();
        for v in 1..=ITEMS {
            h.rp(20);
            let mut guard = buffer.lock();
            while guard.len() >= CAPACITY {
                guard = not_full.wait(&h, &buffer, guard);
            }
            guard.push_back(v);
            drop(guard);
            not_empty.notify_one();
        }
    }

    let total = consumer.join().expect("consumer");
    println!("pipeline moved {ITEMS} items; persistent sum = {total}");
    assert_eq!(total, ITEMS * (ITEMS + 1) / 2);
    let ckpts = pool.ckpt_stats().snapshot().count;
    println!("{ckpts} checkpoints completed while the pipeline ran ✓");
    assert!(
        ckpts > 0,
        "checkpoints must complete despite blocked waiters"
    );
}
