//! Durability across *real* process restarts on the mmap backend.
//!
//! Each invocation of this example is one process lifetime against the same
//! pool file. The first run creates the pool, fills an ordered map, and
//! checkpoints; every later run reopens the file with [`Pool::open`],
//! recovers (rolling back the deliberately-dirty open epoch), verifies the
//! checkpointed state, adds one more key, and checkpoints again. State
//! accumulates across runs — the property an NVMM heap is for.
//!
//! Run with: `cargo run --release --example durable_restart` (twice or more).
//! Set `RESPCT_POOL` to choose the pool file, `RESPCT_RESET=1` to start over.

use respct_repro::ds::POrderedMap;
use respct_repro::respct::{Pool, PoolConfig};

fn main() {
    let path = std::env::var_os("RESPCT_POOL").map_or_else(
        || std::env::temp_dir().join("respct_durable_restart.pool"),
        std::path::PathBuf::from,
    );
    if std::env::var_os("RESPCT_RESET").is_some() {
        let _ = std::fs::remove_file(&path);
    }

    let cfg = PoolConfig::builder()
        .size(16 << 20)
        .recovery_threads(2)
        .build()
        .expect("config");
    let (pool, recovered) = Pool::open(&path, cfg).expect("open pool");

    match recovered {
        None => {
            // Fresh pool file: seed the durable state.
            let h = pool.register();
            let map = POrderedMap::create(&h);
            for k in [30u64, 10, 20, 50, 40] {
                map.insert(&h, k, k * 100);
            }
            h.set_root(map.desc());
            h.checkpoint_here(); // consistent cut
                                 // Mutations after the checkpoint are *not* durable:
                                 // the next run must roll this key back.
            map.insert(&h, 9_999, 1);
            println!(
                "run 1: created {} ({} entries live, 5 checkpointed)",
                path.display(),
                map.len()
            );
        }
        Some(report) => {
            println!(
                "restart: recovered epoch {} ({} cells rolled back, {} threads)",
                report.failed_epoch, report.cells_rolled_back, report.threads
            );
            assert!(pool.verify().is_clean(), "pool integrity after restart");

            let map = POrderedMap::open(&pool, pool.root());
            let entries = map.collect_sorted();
            assert!(
                entries.iter().all(|&(k, _)| k < 9_999),
                "post-checkpoint insert must have been rolled back: {entries:?}"
            );
            let base: Vec<(u64, u64)> =
                vec![(10, 1000), (20, 2000), (30, 3000), (40, 4000), (50, 5000)];
            assert!(
                entries.starts_with(&base),
                "the five seeded keys survive every restart: {entries:?}"
            );
            // One extra key per completed restart, all present in order.
            let run = entries.len() as u64 - 3; // seed run was #1, 5 entries
            println!(
                "restart: run #{run}, {} checkpointed entries = {entries:?}",
                entries.len()
            );

            let key = 60 + (entries.len() as u64 - 5) * 10;
            let h = pool.register();
            map.insert(&h, key, key * 100);
            h.checkpoint_here();
            map.insert(&h, 9_999, 1); // dirty the next epoch, again
            println!("restart: added key {key} and checkpointed");
        }
    }

    // On a page-cache (non-DAX) mapping, msync makes the checkpoint durable
    // against machine crashes too; process crashes don't need it.
    pool.sync_data().expect("msync pool file");
}
