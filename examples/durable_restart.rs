//! Durability across *process* restarts: save the emulated NVMM region to
//! a file (the moral equivalent of a DAX-mapped pool file), start a new
//! "process" (here: a fresh `Region`), recover, and continue — the full
//! lifecycle a downstream user of an NVMM library goes through.
//!
//! Run with: `cargo run --release --example durable_restart`

use std::sync::Arc;

use respct_repro::ds::POrderedMap;
use respct_repro::pmem::{latency::LatencyModel, Region, RegionConfig, RegionMode};
use respct_repro::respct::{Pool, PoolConfig};

fn main() {
    let path = std::env::temp_dir().join("respct_durable_restart.pool");

    // ---- Process 1: create a pool, fill an ordered map, checkpoint, save.
    {
        let region = Region::new(RegionConfig::optane(16 << 20));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).expect("pool");
        let h = pool.register();
        let map = POrderedMap::create(&h);
        for k in [30u64, 10, 20, 50, 40] {
            map.insert(&h, k, k * 100);
        }
        h.set_root(map.desc());
        h.checkpoint_here(); // consistent cut
                             // Mutations after the checkpoint are *not* durable yet…
        map.insert(&h, 99, 1);
        region.save_file(&path).expect("save pool image");
        println!(
            "process 1: saved pool ({} entries live, 5 checkpointed)",
            map.len()
        );
    }

    // ---- Process 2: load the image, recover, verify, continue.
    {
        let region = Region::load_file(&path, RegionMode::Fast(LatencyModel::optane()))
            .expect("load pool image");
        // save_file captured the volatile image, which includes the open
        // epoch's writes; recovery rolls that epoch back to the checkpoint
        // (identical to rebooting after a crash at save time).
        let (pool, report) =
            Pool::recover(Arc::clone(&region), PoolConfig::default()).expect("recover");
        println!(
            "process 2: recovered epoch {} ({} cells rolled back)",
            report.failed_epoch, report.cells_rolled_back
        );
        assert!(pool.verify().is_clean(), "pool integrity after restart");

        let map = POrderedMap::open(&pool, pool.root());
        let entries = map.collect_sorted();
        println!("process 2: recovered entries = {entries:?}");
        assert_eq!(
            entries,
            vec![(10, 1000), (20, 2000), (30, 3000), (40, 4000), (50, 5000)],
            "exactly the checkpointed five keys, in order"
        );

        // Keep working and persist again.
        let h = pool.register();
        map.insert(&h, 60, 6000);
        h.checkpoint_here();
        region.save_file(&path).expect("re-save");
        println!("process 2: added key 60 and re-saved");
    }

    // ---- Process 3: the update from process 2 is durable.
    {
        let region = Region::load_file(&path, RegionMode::Fast(LatencyModel::optane()))
            .expect("load pool image");
        let (pool, _) = Pool::recover(Arc::clone(&region), PoolConfig::default()).expect("recover");
        let map = POrderedMap::open(&pool, pool.root());
        assert_eq!(map.collect_sorted().len(), 6);
        println!("process 3: sees all 6 keys ✓");
    }

    let _ = std::fs::remove_file(&path);
}
