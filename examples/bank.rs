//! A multi-threaded "bank": concurrent transfers between persistent
//! accounts under ResPCT, with an invariant check across a simulated crash.
//!
//! Each account balance is an InCLL cell; transfers lock two accounts
//! (ordered to avoid deadlock), move money, and declare a restart point.
//! Because a checkpoint can only run when *all* threads are at RPs — never
//! inside a critical section — every checkpoint (and therefore every
//! recovered state) sees a consistent total balance.
//!
//! Run with: `cargo run --release --example bank`

use std::sync::Arc;

use parking_lot::Mutex;
use respct_repro::pmem::{sim::CrashMode, Region, RegionConfig, SimConfig};
use respct_repro::respct::{ICell, Pool, PoolConfig};

const ACCOUNTS: usize = 64;
const INITIAL: u64 = 1_000;
const THREADS: usize = 4;
const TRANSFERS: usize = 3_000;

fn main() {
    let region = Region::new(RegionConfig::sim(32 << 20, SimConfig::with_eviction(4, 7)));
    let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).expect("pool");

    // Create the accounts and persist their descriptor table at the root.
    let cells: Vec<ICell<u64>> = {
        let h = pool.register();
        let table = h.alloc((ACCOUNTS * 8) as u64, 64);
        let cells: Vec<ICell<u64>> = (0..ACCOUNTS)
            .map(|i| {
                let c = h.alloc_cell(INITIAL);
                h.store_tracked(table.offset(i as u64 * 8), c.addr().0);
                c
            })
            .collect();
        h.set_root(table);
        h.checkpoint_here();
        cells
    };
    let locks: Arc<Vec<Mutex<()>>> = Arc::new((0..ACCOUNTS).map(|_| Mutex::new(())).collect());
    let cells = Arc::new(cells);

    // Run concurrent transfers with periodic checkpoints.
    let _ckpt = pool.start_checkpointer(std::time::Duration::from_millis(5));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (pool, cells, locks) = (Arc::clone(&pool), Arc::clone(&cells), Arc::clone(&locks));
            s.spawn(move || {
                let h = pool.register();
                let mut rng = 0x1234_5678_9abc_def0u64 ^ (t as u64) << 32;
                for _ in 0..TRANSFERS {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let a = (rng % ACCOUNTS as u64) as usize;
                    let b = ((rng >> 16) % ACCOUNTS as u64) as usize;
                    if a == b {
                        continue;
                    }
                    let amount = rng % 50;
                    // Lock ordering prevents deadlock; no RP inside the CS.
                    let (lo, hi) = (a.min(b), a.max(b));
                    {
                        let _g1 = locks[lo].lock();
                        let _g2 = locks[hi].lock();
                        let from = h.get(cells[a]);
                        if from >= amount {
                            h.update(cells[a], from - amount);
                            h.update(cells[b], h.get(cells[b]) + amount);
                        }
                    }
                    h.rp(1); // a checkpoint may run between transfers
                }
            });
        }
    });

    let live_total: u64 = cells.iter().map(|&c| pool.cell_get(c)).sum();
    println!(
        "after {} transfers: live total = {live_total}",
        THREADS * TRANSFERS
    );
    assert_eq!(live_total, (ACCOUNTS as u64) * INITIAL);

    // Crash mid-flight (whatever epoch is open is lost), then recover.
    drop(pool);
    let image = region.crash(CrashMode::PowerFailure);
    region.restore(&image);
    let (pool, report) =
        Pool::recover(Arc::clone(&region), PoolConfig::default()).expect("recover");
    println!(
        "recovered from crash in epoch {} ({} cells rolled back)",
        report.failed_epoch, report.cells_rolled_back
    );

    // Re-materialize the accounts from the persistent root table.
    let table = pool.root();
    let recovered_total: u64 = (0..ACCOUNTS)
        .map(|i| {
            let cell_addr: u64 = pool.region().load(table.offset(i as u64 * 8));
            pool.cell_get(ICell::<u64>::from_addr(respct_repro::pmem::PAddr(
                cell_addr,
            )))
        })
        .sum();
    println!("recovered total = {recovered_total}");
    assert_eq!(
        recovered_total,
        (ACCOUNTS as u64) * INITIAL,
        "money must be conserved across crash + recovery"
    );
    println!("invariant holds: no money created or destroyed ✓");
}
