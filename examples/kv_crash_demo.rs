//! Crash-consistency demo: a persistent hash map survives a simulated
//! power failure and recovers exactly the last checkpointed state.
//!
//! Uses the sim-mode region, where every store updates a cache-line-level
//! PCSO model: unflushed lines are lost on "power failure", lines written
//! back by the (random) eviction policy survive partially — exactly the
//! adversarial conditions In-Cache-Line Logging is designed for.
//!
//! Run with: `cargo run --release --example kv_crash_demo`

use std::sync::Arc;

use respct_repro::ds::PHashMap;
use respct_repro::pmem::{sim::CrashMode, Region, RegionConfig, SimConfig};
use respct_repro::respct::{Pool, PoolConfig};

fn main() {
    // Aggressive random eviction: roughly one line in eight writes back at
    // an arbitrary moment, so the crashed epoch is *partially* persistent.
    let region = Region::new(RegionConfig::sim(
        64 << 20,
        SimConfig::with_eviction(3, 2024),
    ));
    let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).expect("pool");

    let h = pool.register();
    let map = PHashMap::create(&h, 1024);
    h.set_root(map.desc());

    // Epoch 1: insert 100 keys and checkpoint — this state is durable.
    for k in 0..100 {
        map.insert(&h, k, k + 1_000);
    }
    let report = h.checkpoint_here();
    println!(
        "checkpointed {} lines; epoch {} closed",
        report.lines, report.closed_epoch
    );

    // Epoch 2: mutate heavily... and crash before the next checkpoint.
    for k in 0..100 {
        map.insert(&h, k, 9_999_999); // overwrite everything
    }
    for k in 100..150 {
        map.insert(&h, k, k); // insert new keys
    }
    for k in 0..20 {
        map.remove(&h, k); // delete some
    }
    println!("epoch 2 mutated the map; simulating power failure NOW");
    drop(h);
    drop(map);
    drop(pool);

    // Power failure: only what reached "NVMM" survives.
    let image = region.crash(CrashMode::PowerFailure);
    region.restore(&image);

    // Reboot + recovery (paper Fig. 5): roll back every InCLL variable
    // stamped with the failed epoch.
    let (pool, report) =
        Pool::recover(Arc::clone(&region), PoolConfig::default()).expect("recover");
    println!(
        "recovery: failed epoch {}, scanned {} cells, rolled back {} in {:?}",
        report.failed_epoch, report.cells_scanned, report.cells_rolled_back, report.duration
    );

    let map = PHashMap::open(&pool, pool.root());
    let mut entries = map.collect();
    entries.sort_unstable();

    // Verify: exactly the epoch-1 state.
    assert_eq!(entries.len(), 100, "expected the 100 checkpointed keys");
    for (i, &(k, v)) in entries.iter().enumerate() {
        assert_eq!((k, v), (i as u64, i as u64 + 1_000));
    }
    println!("recovered state == last checkpoint: 100 keys, values intact ✓");

    // The pool is fully usable after recovery.
    let h = pool.register();
    map.insert(&h, 7, 42);
    h.checkpoint_here();
    println!(
        "post-recovery update checkpointed; map[7] = {:?}",
        map.get(&h, 7)
    );
}
