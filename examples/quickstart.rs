//! Quickstart: the ResPCT API in ~60 lines.
//!
//! Demonstrates the full Table-1 API surface of the paper — pool creation,
//! InCLL variables (`alloc_cell`/`update`), plain tracked data
//! (`add_modified`), restart points, periodic checkpoints — and the
//! RAW-vs-WAR idempotence rule of §3.3.2 (paper Table 2) that decides which
//! variables need logging.
//!
//! Run with: `cargo run --release --example quickstart`

use std::time::Duration;

use respct_repro::pmem::{PAddr, Region, RegionConfig};
use respct_repro::respct::{Pool, PoolConfig};

fn main() {
    // 1. An emulated-NVMM region and a formatted ResPCT pool.
    let region = Region::new(RegionConfig::optane(16 << 20));
    let pool = Pool::create(region, PoolConfig::default()).expect("pool");

    // 2. Checkpoint every 64 ms, as in the paper's evaluation.
    let _ckpt = pool.start_checkpointer(Duration::from_millis(64));

    // 3. Register the thread and build the paper's Fig. 6 example: compute
    //    x^p with restart points between the phases.
    let h = pool.register();
    h.rp(1); // RP(id1)

    // `x` is read *and* written between RPs (WAR) → it needs InCLL.
    let x = h.alloc_cell(2u64);

    // `p` is written once and only read afterwards (RAW) → no log needed,
    // just `add_modified` so the checkpoint flushes it.
    let p_addr: PAddr = h.alloc(8, 8);
    h.store_tracked(p_addr, 10u64);

    h.rp(2); // RP(id2)
    let p: u64 = pool.region().load(p_addr);
    for _ in 0..p {
        // update_InCLL: logs x's old value in its own cache line on the
        // first update of each epoch — no flush, no fence.
        h.update(x, h.get(x).wrapping_mul(h.get(x)));
    }
    h.rp(3); // RP(id3)

    println!("x^p computed under ResPCT: {} (mod 2^64)", h.get(x));

    // 4. Make everything durable right now instead of waiting for the timer.
    let report = h.checkpoint_here();
    println!(
        "checkpoint closed epoch {} and flushed {} cache lines",
        report.closed_epoch, report.lines
    );
    println!(
        "pool epoch is now {}, heap used: {} bytes",
        pool.epoch(),
        pool.heap_used()
    );
}
