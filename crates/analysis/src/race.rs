//! Happens-before persistency race detection over the trace.
//!
//! The [`RaceDetector`] is the second analysis sink next to the
//! [`Checker`](crate::Checker): where the checker replays a cache-line
//! *durability* state machine, this module replays a *synchronization*
//! state machine — per-thread vector clocks driven by the
//! [`TraceEvent::SyncRel`]/[`TraceEvent::SyncAcq`] edges the runtime emits
//! at every protocol synchronization point (quiescence flags, the
//! checkpoint timer, the checkpoint-serialization lock, [`TracedMutex`]
//! locks, flusher acknowledgements, and the asynchronous-drain handshake).
//!
//! The vector-clock discipline is FastTrack-style, applied to the trace:
//!
//! * `SyncRel { t, token }` — the token's clock joins `t`'s clock, then
//!   `t`'s own component increments. Emitted *before* the releasing store.
//! * `SyncAcq { t, token }` — `t`'s clock joins the token's clock. Emitted
//!   *after* the acquiring observation.
//!
//! Because each release precedes its store and each acquire follows its
//! observation, any serialization of the event stream a sink can observe
//! orders a release before every acquire that reads from it — so clock
//! propagation over the stream is sound.
//!
//! Three rules are checked, all surfaced as
//! [`DiagnosticKind::PersistRace`] / [`DiagnosticKind::UnorderedCommit`]:
//!
//! * **(a) Persist race** — two threads store to the same cache line within
//!   one epoch with no happens-before edge between the stores, and the
//!   stores either overlap or hit the same InCLL cell's span. An InCLL
//!   cell's record, backup slot, and epoch tag share the line: an unordered
//!   concurrent update can tear the backup, so rollback of a crashed epoch
//!   may restore a mixed value. Unordered *disjoint* stores to different
//!   cells on one line are allowed — each cell's backup is self-contained
//!   (that is the InCLL design), and data-parallel apps legitimately share
//!   boundary lines.
//! * **(b) Un-ordered protocol point** — the epoch-counter commit
//!   (`EpochAdvance`) and the drain commit (`DrainCommit`) must be
//!   happens-before-after the fence that covered every line the closing
//!   checkpoint charges; likewise a thread that pushed out a draining line
//!   ([`TraceMarker::DrainPushOut`]) must acquire the drain's commit
//!   release before its next store to that line.
//! * **(c) Racy recovery read** — a recovery-time load (the region traces
//!   loads only inside the recovery window) of a line on which another
//!   thread has an in-flight (unfenced) write-back.
//!
//! Per-line write histories reset at every epoch boundary
//! (`EpochAdvance`, `DrainBegin`, crash/restore, `RecoveryEnd`): ResPCT's
//! epoch rollback makes cross-epoch write pairs harmless by construction.
//!
//! [`TracedMutex`]: https://docs.rs/respct

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use respct_pmem::{Region, SyncToken, TraceEvent, TraceMarker, TraceSink};

use crate::report::{Diagnostic, DiagnosticKind, Report};

/// Per-kind cap on recorded diagnostics (same rationale as the checker's).
const MAX_PER_KIND: usize = 64;

/// Per-line cap on retained write records; a pathological single-epoch
/// write storm drops oldest-first rather than growing without bound
/// (same-thread covered rewrites are compacted first, so the cap is only
/// reachable with hundreds of distinct unordered writers on one line).
const MAX_LINE_WRITES: usize = 256;

/// A vector clock: thread id → latest known component. Sparse — only
/// threads that synchronized are present; absent means 0.
#[derive(Debug, Default, Clone)]
struct Vc(HashMap<u64, u64>);

impl Vc {
    fn join(&mut self, other: &Vc) {
        for (&t, &c) in &other.0 {
            let e = self.0.entry(t).or_insert(0);
            if *e < c {
                *e = c;
            }
        }
    }

    fn get(&self, t: u64) -> u64 {
        self.0.get(&t).copied().unwrap_or(0)
    }

    fn bump(&mut self, t: u64) {
        *self.0.entry(t).or_insert(0) += 1;
    }
}

/// One store retained for rule (a): who wrote, at which clock component,
/// over which bytes.
#[derive(Debug, Clone, Copy)]
struct WriteRec {
    tid: u64,
    /// The writer's own clock component at the store (its "write epoch" in
    /// FastTrack terms): the store happens-before an event of thread `u`
    /// iff `u`'s clock component for `tid` has reached `clock`.
    clock: u64,
    addr: u64,
    len: u64,
}

#[derive(Default)]
struct RaceState {
    /// Per-thread vector clocks. A thread's own component starts at 1 so a
    /// fresh thread's writes are never mistaken for already-synchronized.
    clocks: HashMap<u64, Vc>,
    /// Per-token published clocks (the release side of each edge).
    tokens: HashMap<SyncToken, Vc>,
    /// Per-line writes of the current epoch.
    line_writes: HashMap<u64, Vec<WriteRec>>,
    /// Live InCLL cell spans: record address → span end (record + backup +
    /// epoch tag). Rule (a)'s "same cell" test.
    cells: BTreeMap<u64, u64>,
    /// Fences covering each line: per fencing thread, the `(gen, clock)` of
    /// its latest `Psync` that retired a write-back of the line. A commit
    /// point must be happens-before-after *some* current-generation fence
    /// of each charged line — not every fence: an application thread's
    /// voluntary push-out flush is a fence the drain committer legitimately
    /// never synchronizes with.
    line_fence: HashMap<u64, HashMap<u64, (u64, u64)>>,
    /// Checkpoint-cycle generation (bumped at `CheckpointBegin`): commits
    /// only accept fences issued during their own cycle, so a fence from an
    /// earlier checkpoint cannot vouch for a line that was re-dirtied and
    /// re-flushed since.
    gen: u64,
    /// Unfenced write-backs per thread.
    pending_pwbs: HashMap<u64, Vec<u64>>,
    /// Lines the current epoch's tracking lists charge to the next commit.
    tracked: HashSet<u64>,
    /// Snapshot of `tracked` taken at `DrainBegin` — the lines the drain
    /// commit is charged with.
    draining: HashSet<u64>,
    /// Push-out obligations: `(tid, line)` → the drain commit the thread's
    /// next store to `line` must be ordered after (`None` until the commit
    /// appears in the stream).
    pushouts: HashMap<(u64, u64), Option<(u64, u64)>>,
    /// True between `DrainBegin` and `DrainCommit`. A push-out marker that
    /// arrives *outside* this window raced with the commit in the trace
    /// stream (the worker sampled `drain_active` just before the committer
    /// cleared it); its obligation binds to the last commit directly.
    drain_inflight: bool,
    /// `(committer, clock)` of the most recent drain commit.
    last_drain_commit: Option<(u64, u64)>,
    in_checkpoint: bool,
    ckpt_full: bool,
    in_recovery: bool,
    epoch: Option<u64>,
    events: u64,
    diagnostics: Vec<Diagnostic>,
    per_kind: HashMap<&'static str, usize>,
    suppressed: u64,
}

impl RaceState {
    fn diag(&mut self, kind: DiagnosticKind, line: Option<u64>, addr: Option<u64>, detail: String) {
        let key = match kind {
            DiagnosticKind::PersistRace => "race",
            DiagnosticKind::UnorderedCommit => "unordered",
            _ => "other",
        };
        let n = self.per_kind.entry(key).or_insert(0);
        if *n >= MAX_PER_KIND {
            self.suppressed += 1;
            return;
        }
        *n += 1;
        self.diagnostics.push(Diagnostic {
            kind,
            line,
            addr,
            epoch: self.epoch,
            detail,
        });
    }

    fn clock(&mut self, tid: u64) -> &mut Vc {
        self.clocks.entry(tid).or_insert_with(|| {
            let mut vc = Vc::default();
            vc.0.insert(tid, 1);
            vc
        })
    }

    /// Forgets the per-line write history — called at every epoch
    /// boundary, where ResPCT's rollback semantics make earlier write
    /// pairs unobservable.
    fn reset_epoch_writes(&mut self) {
        self.line_writes.clear();
    }

    fn apply(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match *ev {
            TraceEvent::SyncRel { tid, token } => {
                let vc = self.clock(tid).clone();
                self.tokens.entry(token).or_default().join(&vc);
                self.clock(tid).bump(tid);
            }
            TraceEvent::SyncAcq { tid, token } => {
                if let Some(tok) = self.tokens.get(&token) {
                    let tok = tok.clone();
                    self.clock(tid).join(&tok);
                }
            }
            TraceEvent::Store { tid, addr, len, .. } => self.on_store(tid, addr, len),
            TraceEvent::Load { tid, line } => self.on_load(tid, line),
            TraceEvent::Pwb { tid, line } => {
                self.pending_pwbs.entry(tid).or_default().push(line);
            }
            TraceEvent::Psync { tid } => self.on_psync(tid),
            TraceEvent::Eviction { .. } => {}
            TraceEvent::PersistAll => {
                // Test-setup persist: treat as a fence on every thread's
                // in-flight write-backs.
                let tids: Vec<u64> = self.pending_pwbs.keys().copied().collect();
                for tid in tids {
                    self.on_psync(tid);
                }
            }
            TraceEvent::Crash { .. } | TraceEvent::Restore => {
                self.reset_epoch_writes();
                self.pending_pwbs.clear();
                self.line_fence.clear();
                self.tracked.clear();
                self.draining.clear();
                self.pushouts.clear();
                self.drain_inflight = false;
                self.last_drain_commit = None;
                self.in_checkpoint = false;
                self.in_recovery = false;
            }
            TraceEvent::Marker { tid, marker } => self.on_marker(tid, marker),
        }
    }

    fn on_psync(&mut self, tid: u64) {
        let fenced = self.pending_pwbs.remove(&tid).unwrap_or_default();
        if fenced.is_empty() {
            return;
        }
        let c = self.clock(tid).get(tid);
        let gen = self.gen;
        for line in fenced {
            self.line_fence
                .entry(line)
                .or_default()
                .insert(tid, (gen, c));
        }
    }

    /// Does any live cell's span intersect both byte ranges? The InCLL
    /// layout bounds a span well under a line, so only cells starting
    /// shortly before the ranges can qualify.
    fn same_cell(&self, a1: u64, e1: u64, a2: u64, e2: u64) -> bool {
        let lo = a1.min(a2).saturating_sub(63);
        let hi = e1.max(e2);
        self.cells
            .range(lo..hi)
            .any(|(&ca, &ce)| ca < e1 && a1 < ce && ca < e2 && a2 < ce)
    }

    fn on_store(&mut self, tid: u64, addr: u64, len: u64) {
        let len = len.max(1);
        let first = addr / 64;
        let last = (addr + len - 1) / 64;
        let clock = self.clock(tid).clone();
        let my_component = clock.get(tid);
        let mut hits: Vec<(u64, WriteRec)> = Vec::new();
        for line in first..=last {
            // Push-out obligation: the first store to a pushed-out line
            // must be ordered after the drain's commit release.
            if let Some(commit) = self.pushouts.remove(&(tid, line)) {
                match commit {
                    Some((d, c)) if clock.get(d) >= c => {}
                    Some((d, c)) => self.diag(
                        DiagnosticKind::UnorderedCommit,
                        Some(line),
                        Some(addr),
                        format!(
                            "thread {tid} overwrote pushed-out line {line} without \
                             acquiring the drain commit of thread {d} (needs clock {c}, \
                             has {})",
                            clock.get(d)
                        ),
                    ),
                    None => self.diag(
                        DiagnosticKind::UnorderedCommit,
                        Some(line),
                        Some(addr),
                        format!(
                            "thread {tid} overwrote pushed-out line {line} before the \
                             drain committed"
                        ),
                    ),
                }
            }
            let recs = self.line_writes.entry(line).or_default();
            for rec in recs.iter() {
                if rec.tid == tid || clock.get(rec.tid) >= rec.clock {
                    continue; // same thread, or ordered by happens-before
                }
                hits.push((line, *rec));
            }
            // Compact: earlier writes of this thread fully covered by the
            // new range are HB-dominated for every future reader.
            recs.retain(|r| !(r.tid == tid && addr <= r.addr && r.addr + r.len <= addr + len));
            if recs.len() >= MAX_LINE_WRITES {
                recs.remove(0);
            }
            recs.push(WriteRec {
                tid,
                clock: my_component,
                addr,
                len,
            });
        }
        for (line, rec) in hits {
            let overlap = rec.addr < addr + len && addr < rec.addr + rec.len;
            if !overlap && !self.same_cell(addr, addr + len, rec.addr, rec.addr + rec.len) {
                // Unordered but disjoint and cell-disjoint: per-cell
                // backups keep rollback sound, so this is allowed.
                continue;
            }
            self.diag(
                DiagnosticKind::PersistRace,
                Some(line),
                Some(addr),
                format!(
                    "unordered same-epoch stores to line {line}: thread {} wrote \
                     [{:#x}, {:#x}) and thread {tid} wrote [{addr:#x}, {:#x}) with no \
                     happens-before edge{}",
                    rec.tid,
                    rec.addr,
                    rec.addr + rec.len,
                    addr + len,
                    if overlap {
                        " (overlapping)"
                    } else {
                        " (same cell)"
                    },
                ),
            );
        }
    }

    fn on_load(&mut self, tid: u64, line: u64) {
        // Rule (c): loads are only traced inside the recovery window; a
        // load of a line another thread is still writing back reads bytes
        // whose durability is undecided.
        let racer = self
            .pending_pwbs
            .iter()
            .find(|(&u, pends)| u != tid && pends.contains(&line))
            .map(|(&u, _)| u);
        if let Some(u) = racer {
            self.diag(
                DiagnosticKind::PersistRace,
                Some(line),
                None,
                format!(
                    "recovery-time load of line {line} by thread {tid} races thread \
                     {u}'s in-flight write-back"
                ),
            );
        }
    }

    /// Rule (b) at a commit point: every charged line must have *some*
    /// current-cycle fence the committing thread is happens-before-after
    /// (its own, or one whose `Psync` it acquired — e.g. a flusher ack).
    /// Lines with no current-cycle fence at all are skipped: that is the
    /// checker's missed-flush/ordering domain, not an HB question.
    fn check_commit(&mut self, what: &str, committer: u64, lines: &[u64]) {
        let clock = self.clock(committer).clone();
        let mut bad: Vec<(u64, u64, u64, u64)> = Vec::new();
        for &line in lines {
            let Some(fences) = self.line_fence.get(&line) else {
                continue;
            };
            let mut nearest: Option<(u64, u64, u64)> = None;
            let mut covered = false;
            for (&u, &(g, c)) in fences {
                if g != self.gen {
                    continue;
                }
                if u == committer || clock.get(u) >= c {
                    covered = true;
                    break;
                }
                let miss = c - clock.get(u);
                if nearest.is_none_or(|(_, pc, pk)| miss < pc - pk) {
                    nearest = Some((u, c, clock.get(u)));
                }
            }
            if !covered {
                if let Some((u, c, have)) = nearest {
                    bad.push((line, u, c, have));
                }
            }
        }
        bad.sort_unstable();
        for (line, u, c, have) in bad {
            self.diag(
                DiagnosticKind::UnorderedCommit,
                Some(line),
                None,
                format!(
                    "{what} by thread {committer} is not ordered after any fence of \
                     line {line} this cycle (thread {u} fenced at clock {c}, committer \
                     knows {have})"
                ),
            );
        }
    }

    fn on_marker(&mut self, tid: u64, marker: TraceMarker) {
        match marker {
            TraceMarker::CellDeclare {
                addr,
                vsize,
                backup_off,
                epoch_off,
            } => {
                let end = addr
                    + u64::from(vsize)
                        .max(u64::from(backup_off) + u64::from(vsize))
                        .max(u64::from(epoch_off) + 8);
                self.cells.insert(addr, end);
            }
            TraceMarker::CellLogged { addr, .. } => {
                // Cells declared before the sink attached are adopted with
                // the default u64 layout.
                self.cells.entry(addr).or_insert(addr + 24);
            }
            TraceMarker::CellRetire { addr, len } => {
                let doomed: Vec<u64> = self
                    .cells
                    .range(addr..addr + len)
                    .map(|(&a, _)| a)
                    .collect();
                for a in doomed {
                    self.cells.remove(&a);
                }
            }
            TraceMarker::TrackLine { line } => {
                self.tracked.insert(line);
            }
            TraceMarker::CheckpointBegin { epoch, full } => {
                self.in_checkpoint = true;
                self.ckpt_full = full;
                self.gen += 1;
                if self.epoch.is_none() {
                    self.epoch = Some(epoch);
                }
            }
            TraceMarker::EpochAdvance { epoch } => {
                if self.in_checkpoint && self.ckpt_full {
                    let lines: Vec<u64> = self.tracked.iter().copied().collect();
                    self.check_commit("epoch commit", tid, &lines);
                }
                self.tracked.clear();
                self.reset_epoch_writes();
                self.epoch = Some(epoch);
            }
            TraceMarker::DrainBegin { epoch } => {
                self.draining = std::mem::take(&mut self.tracked);
                self.reset_epoch_writes();
                self.epoch = Some(epoch + 1);
                self.drain_inflight = true;
            }
            TraceMarker::DrainCommit { .. } => {
                if self.ckpt_full {
                    let lines: Vec<u64> = self.draining.iter().copied().collect();
                    self.check_commit("drain commit", tid, &lines);
                }
                self.draining.clear();
                // Resolve outstanding push-out obligations against this
                // commit: the committer's clock component *before* the
                // release it is about to emit.
                let c = self.clock(tid).get(tid);
                for v in self.pushouts.values_mut() {
                    if v.is_none() {
                        *v = Some((tid, c));
                    }
                }
                self.drain_inflight = false;
                self.last_drain_commit = Some((tid, c));
            }
            TraceMarker::DrainPushOut { addr } => {
                // A push-out marker outside the drain window lost a benign
                // trace-order race: the worker sampled `drain_active` an
                // instant before the committer cleared it, and the commit
                // marker reached the sink first. Its obligation is against
                // that commit, which has already been recorded.
                let commit = if self.drain_inflight {
                    None
                } else {
                    self.last_drain_commit
                };
                self.pushouts.insert((tid, addr / 64), commit);
            }
            TraceMarker::CheckpointEnd { .. } => {
                self.in_checkpoint = false;
            }
            TraceMarker::RecoveryBegin { failed_epoch } => {
                self.in_recovery = true;
                self.epoch = Some(failed_epoch);
                self.reset_epoch_writes();
            }
            TraceMarker::RecoveryEnd { .. } => {
                self.in_recovery = false;
                self.reset_epoch_writes();
            }
            TraceMarker::PipelineBegin { epoch } => {
                // Pipelined ring commits publish through `drain_oldest`
                // atomics the token-based detector cannot see, so pipelined
                // traces run with race detection off. Keep the epoch
                // bookkeeping coherent anyway so rule (a) stays sane if a
                // mixed trace slips through.
                self.tracked.clear();
                self.reset_epoch_writes();
                self.epoch = Some(epoch + 1);
            }
            TraceMarker::OrderBarrier
            | TraceMarker::ShardFlushBegin { .. }
            | TraceMarker::ShardFlushEnd { .. }
            | TraceMarker::RecoveryApply { .. }
            | TraceMarker::RingCommit { .. }
            | TraceMarker::RestartPoint { .. } => {}
        }
    }

    fn report(&self) -> Report {
        Report {
            diagnostics: self.diagnostics.clone(),
            events: self.events,
            suppressed: self.suppressed,
        }
    }
}

/// The online happens-before race detector. Attach to a region (alone or
/// in a [`TeeSink`](respct_pmem::TeeSink) next to the checker) before
/// running a workload; ask for a [`Report`] afterwards.
#[derive(Default)]
pub struct RaceDetector {
    state: Mutex<RaceState>,
}

impl RaceDetector {
    /// A detached detector (feed it events manually, or via
    /// [`Region::set_trace_sink`]).
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    /// Creates a detector and attaches it to `region` as its trace sink.
    ///
    /// # Panics
    ///
    /// Panics if the region already has a sink.
    pub fn attach(region: &Region) -> Arc<RaceDetector> {
        let detector = Arc::new(RaceDetector::new());
        region.set_trace_sink(Arc::<RaceDetector>::clone(&detector));
        detector
    }

    /// Snapshot of everything found so far.
    pub fn report(&self) -> Report {
        self.state.lock().report()
    }

    /// Panics with the full report if any race diagnostic was recorded.
    ///
    /// # Panics
    ///
    /// See above — that is the point.
    pub fn assert_clean(&self) {
        let report = self.report();
        assert!(
            report.is_clean(),
            "race detector found violations:\n{report}"
        );
    }
}

impl TraceSink for RaceDetector {
    fn event(&self, ev: &TraceEvent) {
        self.state.lock().apply(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker(tid: u64, m: TraceMarker) -> TraceEvent {
        TraceEvent::Marker { tid, marker: m }
    }

    fn rel(tid: u64, token: SyncToken) -> TraceEvent {
        TraceEvent::SyncRel { tid, token }
    }

    fn acq(tid: u64, token: SyncToken) -> TraceEvent {
        TraceEvent::SyncAcq { tid, token }
    }

    fn replay(events: &[TraceEvent]) -> Report {
        let d = RaceDetector::new();
        for ev in events {
            d.event(ev);
        }
        d.report()
    }

    const LOCK: SyncToken = SyncToken::Lock { id: 0x1000 };

    fn cell_at(addr: u64) -> TraceEvent {
        marker(
            1,
            TraceMarker::CellDeclare {
                addr,
                vsize: 8,
                backup_off: 8,
                epoch_off: 16,
            },
        )
    }

    #[test]
    fn ordered_same_cell_stores_are_clean() {
        let cell = 1024u64;
        let r = replay(&[
            cell_at(cell),
            TraceEvent::store_meta(1, cell, 8),
            rel(1, LOCK),
            acq(2, LOCK),
            TraceEvent::store_meta(2, cell, 8),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unordered_same_cell_stores_race() {
        let cell = 1024u64;
        let r = replay(&[
            cell_at(cell),
            TraceEvent::store_meta(1, cell, 8),
            TraceEvent::store_meta(2, cell, 8),
        ]);
        let v = r.of_kind(DiagnosticKind::PersistRace);
        assert_eq!(v.len(), 1, "{r}");
        assert_eq!(v[0].line, Some(16));
    }

    #[test]
    fn unordered_overlap_races_even_without_a_cell() {
        let r = replay(&[
            TraceEvent::store_meta(1, 2048, 8),
            TraceEvent::store_meta(2, 2052, 8),
        ]);
        assert_eq!(r.of_kind(DiagnosticKind::PersistRace).len(), 1, "{r}");
    }

    #[test]
    fn unordered_disjoint_cells_on_one_line_are_allowed() {
        // Two self-contained InCLL cells share line 16; per-cell backups
        // make unordered disjoint updates safe.
        let r = replay(&[
            cell_at(1024),
            cell_at(1056),
            TraceEvent::store_meta(1, 1024, 8),
            TraceEvent::store_meta(2, 1056, 8),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn release_without_acquire_still_races() {
        let cell = 1024u64;
        let r = replay(&[
            cell_at(cell),
            TraceEvent::store_meta(1, cell, 8),
            rel(1, LOCK),
            // No acquire on thread 2 — the LockRelease fault shape.
            TraceEvent::store_meta(2, cell, 8),
        ]);
        assert_eq!(r.of_kind(DiagnosticKind::PersistRace).len(), 1, "{r}");
    }

    #[test]
    fn transitive_edges_compose() {
        let cell = 1024u64;
        let hop = SyncToken::Chan { id: 0x2000 };
        let r = replay(&[
            cell_at(cell),
            TraceEvent::store_meta(1, cell, 8),
            rel(1, LOCK),
            acq(2, LOCK),
            rel(2, hop),
            acq(3, hop),
            TraceEvent::store_meta(3, cell, 8),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn epoch_boundary_forgets_writes() {
        let cell = 1024u64;
        let r = replay(&[
            cell_at(cell),
            TraceEvent::store_meta(1, cell, 8),
            marker(9, TraceMarker::EpochAdvance { epoch: 2 }),
            // Same cell, other thread, next epoch: rollback discipline
            // makes the pair harmless.
            TraceEvent::store_meta(2, cell, 8),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn commit_unordered_after_foreign_fence_flagged() {
        // Thread 2 fences line 10, but the committer (thread 9) never
        // acquires thread 2's release — the FlusherAck fault shape.
        let r = replay(&[
            TraceEvent::store_meta(2, 640, 8),
            marker(2, TraceMarker::TrackLine { line: 10 }),
            marker(
                9,
                TraceMarker::CheckpointBegin {
                    epoch: 1,
                    full: true,
                },
            ),
            TraceEvent::Pwb { tid: 2, line: 10 },
            TraceEvent::Psync { tid: 2 },
            marker(9, TraceMarker::EpochAdvance { epoch: 2 }),
        ]);
        let v = r.of_kind(DiagnosticKind::UnorderedCommit);
        assert_eq!(v.len(), 1, "{r}");
        assert_eq!(v[0].line, Some(10));
    }

    #[test]
    fn commit_ordered_after_acked_fence_is_clean() {
        let ack = SyncToken::Chan { id: 0x3000 };
        let r = replay(&[
            TraceEvent::store_meta(2, 640, 8),
            marker(2, TraceMarker::TrackLine { line: 10 }),
            marker(
                9,
                TraceMarker::CheckpointBegin {
                    epoch: 1,
                    full: true,
                },
            ),
            TraceEvent::Pwb { tid: 2, line: 10 },
            TraceEvent::Psync { tid: 2 },
            rel(2, ack),
            acq(9, ack),
            marker(9, TraceMarker::EpochAdvance { epoch: 2 }),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unacquired_pushout_fence_tolerated_when_committer_fenced() {
        // An app thread's voluntary push-out flush fences line 10 without
        // the committer ever synchronizing with it; the committer's own
        // fence of the line still satisfies the commit rule.
        let r = replay(&[
            TraceEvent::store_meta(9, 640, 8),
            marker(9, TraceMarker::TrackLine { line: 10 }),
            marker(
                9,
                TraceMarker::CheckpointBegin {
                    epoch: 1,
                    full: true,
                },
            ),
            TraceEvent::Pwb { tid: 5, line: 10 }, // push-out by app thread 5
            TraceEvent::Psync { tid: 5 },
            TraceEvent::Pwb { tid: 9, line: 10 }, // committer's own flush
            TraceEvent::Psync { tid: 9 },
            marker(9, TraceMarker::EpochAdvance { epoch: 2 }),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn stale_previous_cycle_fence_is_ignored() {
        // Line 10 was fenced (and acked) in checkpoint 1; in checkpoint 2
        // it is re-tracked but never fenced. No current-cycle fence exists,
        // so the HB rule stays silent (missed flushes are the checker's
        // job) — the stale fence neither vouches for nor indicts cycle 2.
        let ack = SyncToken::Chan { id: 0x4000 };
        let r = replay(&[
            marker(2, TraceMarker::TrackLine { line: 10 }),
            marker(
                9,
                TraceMarker::CheckpointBegin {
                    epoch: 1,
                    full: true,
                },
            ),
            TraceEvent::Pwb { tid: 2, line: 10 },
            TraceEvent::Psync { tid: 2 },
            rel(2, ack),
            acq(9, ack),
            marker(9, TraceMarker::EpochAdvance { epoch: 2 }),
            marker(2, TraceMarker::TrackLine { line: 10 }),
            marker(
                9,
                TraceMarker::CheckpointBegin {
                    epoch: 2,
                    full: true,
                },
            ),
            marker(9, TraceMarker::EpochAdvance { epoch: 3 }),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn drain_commit_checks_snapshot_lines() {
        let r = replay(&[
            TraceEvent::store_meta(2, 640, 8),
            marker(2, TraceMarker::TrackLine { line: 10 }),
            marker(
                9,
                TraceMarker::CheckpointBegin {
                    epoch: 1,
                    full: true,
                },
            ),
            marker(9, TraceMarker::DrainBegin { epoch: 1 }),
            TraceEvent::Pwb { tid: 3, line: 10 },
            TraceEvent::Psync { tid: 3 },
            // Committer 9 never acquires flusher 3's release.
            marker(9, TraceMarker::DrainCommit { epoch: 1 }),
        ]);
        assert_eq!(r.of_kind(DiagnosticKind::UnorderedCommit).len(), 1, "{r}");
    }

    #[test]
    fn pushout_store_needs_the_drain_commit_edge() {
        let drain = SyncToken::Drain;
        let clean = replay(&[
            marker(2, TraceMarker::DrainPushOut { addr: 640 }),
            marker(9, TraceMarker::DrainCommit { epoch: 1 }),
            rel(9, drain),
            acq(2, drain),
            TraceEvent::store_meta(2, 640, 8),
        ]);
        assert!(clean.is_clean(), "{clean}");
        let dirty = replay(&[
            marker(2, TraceMarker::DrainPushOut { addr: 640 }),
            marker(9, TraceMarker::DrainCommit { epoch: 1 }),
            rel(9, drain),
            // Missing acquire — the DrainHandshake fault shape.
            TraceEvent::store_meta(2, 640, 8),
        ]);
        assert_eq!(
            dirty.of_kind(DiagnosticKind::UnorderedCommit).len(),
            1,
            "{dirty}"
        );
    }

    #[test]
    fn pushout_store_before_commit_flagged() {
        let r = replay(&[
            marker(2, TraceMarker::DrainPushOut { addr: 640 }),
            TraceEvent::store_meta(2, 640, 8),
        ]);
        let v = r.of_kind(DiagnosticKind::UnorderedCommit);
        assert_eq!(v.len(), 1, "{r}");
        assert!(v[0].detail.contains("before the drain committed"), "{r}");
    }

    /// A push-out marker that loses the trace-order race with its own
    /// drain commit (the worker sampled `drain_active` just before the
    /// committer cleared it) binds to that commit instead of waiting for
    /// one that will never come — provided the worker still has the edge.
    #[test]
    fn pushout_marker_after_commit_binds_to_that_commit() {
        let drain = SyncToken::Drain;
        let clean = replay(&[
            marker(9, TraceMarker::DrainBegin { epoch: 1 }),
            marker(9, TraceMarker::DrainCommit { epoch: 1 }),
            rel(9, drain),
            marker(2, TraceMarker::DrainPushOut { addr: 640 }),
            acq(2, drain),
            TraceEvent::store_meta(2, 640, 8),
        ]);
        assert!(clean.is_clean(), "{clean}");
        // Without the acquire the late-bound obligation still fires.
        let dirty = replay(&[
            marker(9, TraceMarker::DrainBegin { epoch: 1 }),
            marker(9, TraceMarker::DrainCommit { epoch: 1 }),
            rel(9, drain),
            marker(2, TraceMarker::DrainPushOut { addr: 640 }),
            TraceEvent::store_meta(2, 640, 8),
        ]);
        assert_eq!(
            dirty.of_kind(DiagnosticKind::UnorderedCommit).len(),
            1,
            "{dirty}"
        );
    }

    #[test]
    fn recovery_load_races_inflight_writeback() {
        let r = replay(&[
            marker(9, TraceMarker::RecoveryBegin { failed_epoch: 2 }),
            TraceEvent::Pwb { tid: 1, line: 10 },
            TraceEvent::Load { tid: 2, line: 10 },
            TraceEvent::Psync { tid: 1 },
            TraceEvent::Load { tid: 2, line: 10 }, // fenced now: clean
            marker(9, TraceMarker::RecoveryEnd { epoch: 2 }),
        ]);
        let v = r.of_kind(DiagnosticKind::PersistRace);
        assert_eq!(v.len(), 1, "{r}");
        assert!(v[0].detail.contains("in-flight write-back"), "{r}");
    }

    #[test]
    fn own_pending_writeback_does_not_race_own_load() {
        let r = replay(&[
            marker(9, TraceMarker::RecoveryBegin { failed_epoch: 2 }),
            TraceEvent::Pwb { tid: 1, line: 10 },
            TraceEvent::Load { tid: 1, line: 10 },
            marker(9, TraceMarker::RecoveryEnd { epoch: 2 }),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn retired_cell_no_longer_binds_disjoint_stores() {
        let cell = 1024u64;
        let r = replay(&[
            cell_at(cell),
            marker(
                1,
                TraceMarker::CellRetire {
                    addr: cell,
                    len: 32,
                },
            ),
            TraceEvent::store_meta(1, cell, 8),
            TraceEvent::store_meta(2, cell + 16, 8),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn diagnostics_are_capped() {
        let d = RaceDetector::new();
        for i in 0..(MAX_PER_KIND as u64 + 20) {
            d.event(&TraceEvent::store_meta(1, i * 64, 8));
            d.event(&TraceEvent::store_meta(2, i * 64 + 4, 8));
            d.event(&marker(9, TraceMarker::EpochAdvance { epoch: i + 2 }));
        }
        let r = d.report();
        assert_eq!(r.of_kind(DiagnosticKind::PersistRace).len(), MAX_PER_KIND);
        assert!(r.suppressed > 0);
    }
}
