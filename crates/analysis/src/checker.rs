//! The trace checker: a cache-line state machine replaying the persistency
//! event stream.
//!
//! The checker implements the [`TraceSink`] trait and consumes events
//! *online* as the traced run emits them (same spirit as pmemcheck's
//! store-tracking and PMTest's ordering rules, but specialized to ResPCT's
//! epoch discipline). Per cache line it keeps two counters:
//!
//! * `gen` — bumped on every store to the line (volatile content version);
//! * `persisted_gen` — the newest version known durable, advanced by
//!   `pwb`+`psync` pairs, simulator evictions, and crash/persist events.
//!
//! On top of that it tracks the runtime's own claims, delivered as
//! [`TraceMarker`]s: which byte spans are InCLL cells (and for which epoch
//! each was last logged), which lines the epoch's tracking lists promise to
//! flush, and where the checkpoint/recovery phase boundaries lie. The rules:
//!
//! 1. **Missed flush** — at `EpochAdvance` closing a *full* checkpoint,
//!    every tracked line must satisfy `persisted_gen == gen`.
//! 2. **Logging rule** — a store overlapping a live cell's record span is
//!    only legal when the cell has been logged (`CellLogged`) for the
//!    current epoch, except while recovery rewrites records wholesale.
//! 3. **Cross-line ordering** — at `OrderBarrier` (just before the
//!    epoch-counter store) no thread may hold an unfenced `pwb` of a
//!    tracked line: the commit's durability must not race its data.
//! 4. **Redundant flush** — a `pwb` of a line that is already durable (and
//!    not merely because the simulator happened to evict it) wastes
//!    write-back bandwidth. Perf severity.
//! 5. **Epoch discipline** — epochs advance by exactly 1; checkpoint, log,
//!    and recovery markers must carry the epoch the checker believes is
//!    current.
//! 6. **Shard fence protocol** — the sharded flush pipeline brackets each
//!    shard's write-backs with `ShardFlushBegin`/`ShardFlushEnd`, and `End`
//!    asserts the shard's pwbs are covered by a fence. Every opened shard
//!    must be closed before the `OrderBarrier`; double-opens and closes
//!    without a begin are protocol violations too.
//! 7. **Drain commit order** — an asynchronous checkpoint releases threads
//!    at `DrainBegin` (snapshotting the tracked lines and their content
//!    generations) and commits at `DrainCommit` (the drain-state word goes
//!    durable-zero). At commit, every snapshotted line must be durable *at
//!    least at its snapshot generation*; later epoch-N+1 stores to the same
//!    line are fine — they belong to the next checkpoint.
//! 8. **Ring commit order** — a pipelined checkpoint (`epoch_pipeline(K)`)
//!    opens each epoch's drain at `PipelineBegin` (snapshotting tracked
//!    lines under that epoch's generation; unlike rule 7, *several* drains
//!    may legally be open at once) and commits at `RingCommit`. Commits
//!    must appear in strict epoch order — `RingCommit { e }` while an
//!    epoch older than `e` is still open is a violation, because zeroing
//!    slot `e` durably claims every predecessor committed (and releases
//!    epoch-`e` frees for reclamation). At each commit, the epoch's own
//!    snapshot must be durable at its snapshot generations, as in rule 7.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use respct_pmem::{Region, TraceEvent, TraceMarker, TraceSink};

use crate::report::{Diagnostic, DiagnosticKind, Report};

/// Per-kind cap on recorded diagnostics; a systematically broken run would
/// otherwise allocate one diagnostic per store.
const MAX_PER_KIND: usize = 64;

#[derive(Default, Clone, Copy)]
struct LineState {
    /// Volatile content version (bumped per store).
    gen: u64,
    /// Newest version known durable.
    persisted_gen: u64,
    /// The last durability transition was simulator-initiated (eviction /
    /// `persist_all`), which the runtime cannot observe — suppresses the
    /// redundant-flush advisory for the next `pwb`.
    evicted: bool,
}

#[derive(Clone, Copy)]
struct CellState {
    vsize: u32,
    /// Plain (unmixed) epoch this cell was last logged for, if known.
    logged_epoch: Option<u64>,
}

#[derive(Default)]
struct CheckerState {
    lines: HashMap<u64, LineState>,
    /// Unfenced write-backs per thread: `(line, gen snapshot at pwb)`.
    pending: HashMap<u64, Vec<(u64, u64)>>,
    /// Live InCLL cells by record address (BTreeMap for overlap queries).
    cells: BTreeMap<u64, CellState>,
    /// Lines the current epoch's tracking lists promise to flush.
    tracked: HashSet<u64>,
    /// Snapshot taken at `DrainBegin`: line -> content generation the
    /// asynchronous drain promised to persist before `DrainCommit`.
    draining_tracked: HashMap<u64, u64>,
    /// Per-epoch snapshots taken at `PipelineBegin` (pipelined mode): each
    /// open epoch's line -> generation debt, keyed by epoch so rule 8 can
    /// both check commits in order and settle each epoch's own debt.
    ring_open: BTreeMap<u64, HashMap<u64, u64>>,
    /// Flush shards opened (`ShardFlushBegin`) but not yet fenced-and-closed
    /// (`ShardFlushEnd`) in the current checkpoint.
    open_shards: HashSet<u64>,
    /// Current plain epoch, adopted from the first marker that names one
    /// (the checker may attach to an already-running pool).
    epoch: Option<u64>,
    /// The in-progress checkpoint flushes its tracked lines (`Full` mode).
    ckpt_full: bool,
    in_checkpoint: bool,
    in_recovery: bool,
    events: u64,
    diagnostics: Vec<Diagnostic>,
    per_kind: HashMap<&'static str, usize>,
    suppressed: u64,
}

impl CheckerState {
    fn diag(&mut self, kind: DiagnosticKind, line: Option<u64>, addr: Option<u64>, detail: String) {
        let key = match kind {
            DiagnosticKind::MissedFlush => "missed",
            DiagnosticKind::LoggingViolation => "logging",
            DiagnosticKind::CrossLineOrdering => "ordering",
            DiagnosticKind::RedundantFlush => "redundant",
            DiagnosticKind::EpochDiscipline => "epoch",
            DiagnosticKind::ShardFence => "shard",
            DiagnosticKind::DrainCommitOrder => "drain",
            DiagnosticKind::RingCommitOrder => "ring",
            DiagnosticKind::RecoveryDivergence => "divergence",
            DiagnosticKind::PersistRace => "race",
            DiagnosticKind::UnorderedCommit => "unordered",
        };
        let n = self.per_kind.entry(key).or_insert(0);
        if *n >= MAX_PER_KIND {
            self.suppressed += 1;
            return;
        }
        *n += 1;
        self.diagnostics.push(Diagnostic {
            kind,
            line,
            addr,
            epoch: self.epoch,
            detail,
        });
    }

    fn line_mut(&mut self, line: u64) -> &mut LineState {
        self.lines.entry(line).or_default()
    }

    fn apply(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match *ev {
            TraceEvent::Store { addr, len, .. } => self.on_store(addr, len),
            TraceEvent::Pwb { tid, line } => self.on_pwb(tid, line),
            TraceEvent::Psync { tid } => {
                for (line, g) in self.pending.remove(&tid).unwrap_or_default() {
                    let l = self.line_mut(line);
                    l.persisted_gen = l.persisted_gen.max(g);
                    l.evicted = false;
                }
            }
            TraceEvent::Eviction { line } => {
                let l = self.line_mut(line);
                l.persisted_gen = l.gen;
                l.evicted = true;
            }
            TraceEvent::PersistAll => {
                for l in self.lines.values_mut() {
                    l.persisted_gen = l.gen;
                    l.evicted = true;
                }
                self.pending.clear();
            }
            TraceEvent::Crash { all_persisted } => {
                // PowerFailure: in-flight write-backs are lost with the
                // volatile domain (the conservative PCSO reading). EvictAll:
                // every dirty line reached NVMM on the way down.
                self.pending.clear();
                if all_persisted {
                    for l in self.lines.values_mut() {
                        l.persisted_gen = l.gen;
                    }
                }
            }
            TraceEvent::Restore => {
                // Volatile image := persisted image; all volatile context
                // (tracking lists, logging knowledge) is gone.
                for l in self.lines.values_mut() {
                    l.gen = l.persisted_gen;
                    l.evicted = false;
                }
                self.pending.clear();
                self.tracked.clear();
                self.draining_tracked.clear();
                self.ring_open.clear();
                self.open_shards.clear();
                for c in self.cells.values_mut() {
                    c.logged_epoch = None;
                }
                self.in_checkpoint = false;
                self.in_recovery = false;
            }
            TraceEvent::Marker { tid: _, marker } => self.on_marker(marker),
            // Happens-before bookkeeping belongs to the race detector; the
            // cache-line state machine ignores it.
            TraceEvent::SyncRel { .. } | TraceEvent::SyncAcq { .. } | TraceEvent::Load { .. } => {}
        }
    }

    fn on_store(&mut self, addr: u64, len: u64) {
        let first = addr / 64;
        let last = (addr + len.max(1) - 1) / 64;
        for line in first..=last {
            self.line_mut(line).gen += 1;
        }
        if self.in_recovery {
            return; // recovery rewrites records from their backups wholesale
        }
        // Logging rule: does this store overlap a live cell's record span
        // that has not been logged for the current epoch? Record spans are
        // at most 24 bytes, so only cells starting shortly before `addr`
        // can overlap.
        let epoch = self.epoch;
        let mut hits: Vec<(u64, String)> = Vec::new();
        for (&cell_addr, cell) in self.cells.range(addr.saturating_sub(63)..addr + len) {
            let record_end = cell_addr + cell.vsize as u64;
            let overlaps = cell_addr < addr + len && addr < record_end;
            if !overlaps {
                continue;
            }
            match (cell.logged_epoch, epoch) {
                (Some(le), Some(e)) if le == e => {}
                _ => hits.push((
                    cell_addr,
                    format!(
                        "store [{addr:#x}, {:#x}) hits record of cell {cell_addr:#x} logged \
                         for epoch {:?}, current {epoch:?}",
                        addr + len,
                        cell.logged_epoch,
                    ),
                )),
            }
        }
        for (cell_addr, detail) in hits {
            self.diag(
                DiagnosticKind::LoggingViolation,
                None,
                Some(cell_addr),
                detail,
            );
        }
    }

    fn on_pwb(&mut self, tid: u64, line: u64) {
        let (gen, durable, evicted) = {
            let l = self.line_mut(line);
            (l.gen, l.persisted_gen >= l.gen, l.evicted)
        };
        let dup_pending = self
            .pending
            .get(&tid)
            .is_some_and(|v| v.iter().any(|&(pl, pg)| pl == line && pg == gen));
        if (durable && !evicted) || dup_pending {
            self.diag(
                DiagnosticKind::RedundantFlush,
                Some(line),
                None,
                format!("pwb of line {line} whose content is already durable"),
            );
        }
        self.pending.entry(tid).or_default().push((line, gen));
    }

    fn on_marker(&mut self, marker: TraceMarker) {
        match marker {
            TraceMarker::CellDeclare { addr, vsize, .. } => {
                self.cells.insert(
                    addr,
                    CellState {
                        vsize,
                        logged_epoch: self.epoch,
                    },
                );
            }
            TraceMarker::CellLogged { addr, epoch } => {
                if self.epoch.is_none() {
                    self.epoch = Some(epoch);
                } else if self.epoch != Some(epoch) {
                    self.diag(
                        DiagnosticKind::EpochDiscipline,
                        None,
                        Some(addr),
                        format!(
                            "cell {addr:#x} logged for epoch {epoch}, current {:?}",
                            self.epoch
                        ),
                    );
                }
                if let Some(cell) = self.cells.get_mut(&addr) {
                    cell.logged_epoch = Some(epoch);
                } else {
                    // Cells declared before the sink attached are adopted on
                    // their first log record.
                    self.cells.insert(
                        addr,
                        CellState {
                            vsize: 8,
                            logged_epoch: Some(epoch),
                        },
                    );
                }
            }
            TraceMarker::CellRetire { addr, len } => {
                let doomed: Vec<u64> = self
                    .cells
                    .range(addr..addr + len)
                    .map(|(&a, _)| a)
                    .collect();
                for a in doomed {
                    self.cells.remove(&a);
                }
            }
            TraceMarker::TrackLine { line } => {
                self.tracked.insert(line);
            }
            TraceMarker::CheckpointBegin { epoch, full } => {
                match self.epoch {
                    None => self.epoch = Some(epoch),
                    Some(e) if e != epoch => self.diag(
                        DiagnosticKind::EpochDiscipline,
                        None,
                        None,
                        format!("checkpoint begins for epoch {epoch}, current {e}"),
                    ),
                    _ => {}
                }
                self.ckpt_full = full;
                self.in_checkpoint = true;
                self.open_shards.clear();
            }
            TraceMarker::ShardFlushBegin { shard, lines: _ } => {
                if !self.open_shards.insert(shard) {
                    self.diag(
                        DiagnosticKind::ShardFence,
                        None,
                        None,
                        format!("flush shard {shard} opened twice without an intervening end"),
                    );
                }
            }
            TraceMarker::ShardFlushEnd { shard } => {
                if !self.open_shards.remove(&shard) {
                    self.diag(
                        DiagnosticKind::ShardFence,
                        None,
                        None,
                        format!("flush shard {shard} closed without a begin"),
                    );
                }
            }
            TraceMarker::OrderBarrier => {
                // Rule 6: every shard the flush pipeline opened must have
                // been fenced and closed before the commit barrier; an open
                // shard means its write-backs may still be in flight when
                // the epoch counter becomes durable.
                let mut open: Vec<u64> = self.open_shards.drain().collect();
                open.sort_unstable();
                for shard in open {
                    self.diag(
                        DiagnosticKind::ShardFence,
                        None,
                        None,
                        format!(
                            "flush shard {shard} still open at the epoch commit barrier \
                             (missing shard fence)"
                        ),
                    );
                }
                // Rule 3: the epoch-counter store that follows assumes every
                // data write-back is durable. An unfenced pwb of a tracked
                // line at this point can reach NVMM *after* the commit.
                let mut unfenced: Vec<u64> = Vec::new();
                for pends in self.pending.values() {
                    for &(line, _) in pends {
                        if self.tracked.contains(&line) || self.draining_tracked.contains_key(&line)
                        {
                            unfenced.push(line);
                        }
                    }
                }
                unfenced.sort_unstable();
                unfenced.dedup();
                for line in unfenced {
                    self.diag(
                        DiagnosticKind::CrossLineOrdering,
                        Some(line),
                        None,
                        format!(
                            "tracked line {line} has an unfenced pwb at the epoch commit \
                             barrier (missing psync)"
                        ),
                    );
                }
            }
            TraceMarker::EpochAdvance { epoch } => {
                // Rule 1: the epoch counter is durable; everything the closed
                // epoch tracked must have been durable first.
                if self.in_checkpoint && self.ckpt_full {
                    let mut missed: Vec<u64> = self
                        .tracked
                        .iter()
                        .copied()
                        .filter(|l| self.lines.get(l).is_some_and(|s| s.persisted_gen < s.gen))
                        .collect();
                    missed.sort_unstable();
                    for line in missed {
                        self.diag(
                            DiagnosticKind::MissedFlush,
                            Some(line),
                            None,
                            format!(
                                "line {line} was tracked for the closed epoch but not durable \
                                 when the epoch counter committed"
                            ),
                        );
                    }
                }
                self.tracked.clear();
                match self.epoch {
                    Some(e) if epoch != e + 1 => self.diag(
                        DiagnosticKind::EpochDiscipline,
                        None,
                        None,
                        format!("epoch advanced {e} -> {epoch} (must be +1)"),
                    ),
                    _ => {}
                }
                self.epoch = Some(epoch);
            }
            TraceMarker::CheckpointEnd { epoch } => {
                if let Some(e) = self.epoch {
                    if epoch + 1 != e {
                        self.diag(
                            DiagnosticKind::EpochDiscipline,
                            None,
                            None,
                            format!("checkpoint end for epoch {epoch}, current {e}"),
                        );
                    }
                }
                self.in_checkpoint = false;
                self.open_shards.clear();
            }
            TraceMarker::RecoveryBegin { failed_epoch } => {
                self.epoch = Some(failed_epoch);
                self.in_recovery = true;
            }
            TraceMarker::RecoveryApply { addr } => {
                // The rolled-back cell keeps its failed-epoch tag: the
                // runtime will (correctly) skip re-logging it when the
                // resumed epoch re-executes.
                let epoch = self.epoch;
                if let Some(cell) = self.cells.get_mut(&addr) {
                    cell.logged_epoch = epoch;
                } else {
                    self.cells.insert(
                        addr,
                        CellState {
                            vsize: 8,
                            logged_epoch: epoch,
                        },
                    );
                }
            }
            TraceMarker::RecoveryEnd { epoch } => {
                if self.epoch != Some(epoch) {
                    self.diag(
                        DiagnosticKind::EpochDiscipline,
                        None,
                        None,
                        format!("recovery ends in epoch {epoch}, began in {:?}", self.epoch),
                    );
                }
                self.in_recovery = false;
            }
            TraceMarker::DrainBegin { epoch } => {
                // The async epoch swap: threads are released here, so this
                // marker doubles as the (volatile) epoch advance. Snapshot
                // what the drain owes — the tracked lines at their current
                // content generation. Later stores to the same lines belong
                // to epoch `epoch + 1` and are NOT the drain's problem.
                if !self.in_checkpoint {
                    self.diag(
                        DiagnosticKind::EpochDiscipline,
                        None,
                        None,
                        format!("drain begins for epoch {epoch} outside a checkpoint"),
                    );
                }
                match self.epoch {
                    None => self.epoch = Some(epoch),
                    Some(e) if e != epoch => self.diag(
                        DiagnosticKind::EpochDiscipline,
                        None,
                        None,
                        format!("drain begins for epoch {epoch}, current {e}"),
                    ),
                    _ => {}
                }
                if !self.draining_tracked.is_empty() {
                    self.diag(
                        DiagnosticKind::DrainCommitOrder,
                        None,
                        None,
                        format!(
                            "drain for epoch {epoch} begins while {} line(s) of the \
                             previous drain are still uncommitted",
                            self.draining_tracked.len()
                        ),
                    );
                }
                self.draining_tracked = self
                    .tracked
                    .drain()
                    .map(|line| {
                        let gen = self.lines.get(&line).map_or(0, |s| s.gen);
                        (line, gen)
                    })
                    .collect();
                self.epoch = Some(epoch + 1);
            }
            TraceMarker::DrainCommit { epoch } => {
                // Rule 7: the drain-state word is durably zero — the
                // checkpoint of `epoch` is committed. Every line the drain
                // snapshotted must be durable at (or past) its snapshot
                // generation, or a crash right now recovers to epoch+1 with
                // epoch data missing.
                if self.ckpt_full {
                    let mut missed: Vec<(u64, u64, u64)> = self
                        .draining_tracked
                        .iter()
                        .filter_map(|(&line, &snap_gen)| {
                            let durable = self.lines.get(&line).map_or(0, |s| s.persisted_gen);
                            (durable < snap_gen).then_some((line, snap_gen, durable))
                        })
                        .collect();
                    missed.sort_unstable();
                    for (line, snap_gen, durable) in missed {
                        self.diag(
                            DiagnosticKind::DrainCommitOrder,
                            Some(line),
                            None,
                            format!(
                                "drain for epoch {epoch} committed but line {line} is durable \
                                 only at gen {durable} < snapshot gen {snap_gen}"
                            ),
                        );
                    }
                }
                if let Some(e) = self.epoch {
                    if epoch + 1 != e {
                        self.diag(
                            DiagnosticKind::EpochDiscipline,
                            None,
                            None,
                            format!("drain commit for epoch {epoch}, current {e}"),
                        );
                    }
                }
                self.draining_tracked.clear();
            }
            TraceMarker::PipelineBegin { epoch } => {
                // The pipelined ring-slot claim: like `DrainBegin` this is
                // the volatile epoch advance and snapshots what the drain
                // owes, but unlike rule 7 several drains may legally be open
                // at once — overlap is the whole point, so no diagnostic for
                // an earlier uncommitted epoch here. Ordering is enforced at
                // `RingCommit` instead.
                if !self.in_checkpoint {
                    self.diag(
                        DiagnosticKind::EpochDiscipline,
                        None,
                        None,
                        format!("pipelined drain begins for epoch {epoch} outside a checkpoint"),
                    );
                }
                match self.epoch {
                    None => self.epoch = Some(epoch),
                    Some(e) if e != epoch => self.diag(
                        DiagnosticKind::EpochDiscipline,
                        None,
                        None,
                        format!("pipelined drain begins for epoch {epoch}, current {e}"),
                    ),
                    _ => {}
                }
                let snapshot: HashMap<u64, u64> = self
                    .tracked
                    .drain()
                    .map(|line| {
                        let gen = self.lines.get(&line).map_or(0, |s| s.gen);
                        (line, gen)
                    })
                    .collect();
                self.ring_open.insert(epoch, snapshot);
                self.epoch = Some(epoch + 1);
            }
            TraceMarker::RingCommit { epoch } => {
                // Rule 8: ring slot `epoch % K` is durably zero. Commits
                // must retire oldest-first — zeroing this slot claims every
                // predecessor already committed, so an older epoch still
                // open here means a crash now would leave a ring hole.
                let stale: Vec<u64> = self
                    .ring_open
                    .keys()
                    .copied()
                    .filter(|&open| open < epoch)
                    .collect();
                if !stale.is_empty() {
                    self.diag(
                        DiagnosticKind::RingCommitOrder,
                        None,
                        None,
                        format!(
                            "ring commit for epoch {epoch} while older epoch(s) {stale:?} \
                             are still draining"
                        ),
                    );
                }
                match self.ring_open.remove(&epoch) {
                    None => self.diag(
                        DiagnosticKind::RingCommitOrder,
                        None,
                        None,
                        format!("ring commit for epoch {epoch} without a matching PipelineBegin"),
                    ),
                    Some(snapshot) if self.ckpt_full => {
                        let mut missed: Vec<(u64, u64, u64)> = snapshot
                            .iter()
                            .filter_map(|(&line, &snap_gen)| {
                                let durable = self.lines.get(&line).map_or(0, |s| s.persisted_gen);
                                (durable < snap_gen).then_some((line, snap_gen, durable))
                            })
                            .collect();
                        missed.sort_unstable();
                        for (line, snap_gen, durable) in missed {
                            self.diag(
                                DiagnosticKind::RingCommitOrder,
                                Some(line),
                                None,
                                format!(
                                    "ring commit for epoch {epoch} but line {line} is durable \
                                     only at gen {durable} < snapshot gen {snap_gen}"
                                ),
                            );
                        }
                    }
                    Some(_) => {}
                }
            }
            TraceMarker::RestartPoint { .. } => {}
            // Push-out ordering is a happens-before rule (race detector).
            TraceMarker::DrainPushOut { .. } => {}
        }
    }

    fn report(&self) -> Report {
        Report {
            diagnostics: self.diagnostics.clone(),
            events: self.events,
            suppressed: self.suppressed,
        }
    }
}

/// The online persistency checker. Attach to a region before running a
/// workload; ask for a [`Report`] afterwards.
#[derive(Default)]
pub struct Checker {
    state: Mutex<CheckerState>,
}

impl Checker {
    /// A detached checker (feed it events manually, or via
    /// [`Region::set_trace_sink`]).
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Creates a checker and attaches it to `region` as its trace sink.
    ///
    /// # Panics
    ///
    /// Panics if the region already has a sink.
    pub fn attach(region: &Region) -> Arc<Checker> {
        let checker = Arc::new(Checker::new());
        region.set_trace_sink(Arc::<Checker>::clone(&checker));
        checker
    }

    /// Snapshot of everything found so far.
    pub fn report(&self) -> Report {
        self.state.lock().report()
    }

    /// Panics with the full report if any error-severity diagnostic was
    /// recorded. Perf advisories do not fail the assertion.
    ///
    /// # Panics
    ///
    /// See above — that is the point.
    pub fn assert_clean(&self) {
        let report = self.report();
        assert!(
            report.is_clean(),
            "trace checker found violations:\n{report}"
        );
    }
}

impl TraceSink for Checker {
    fn event(&self, ev: &TraceEvent) {
        self.state.lock().apply(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::DiagnosticKind;

    fn marker(m: TraceMarker) -> TraceEvent {
        TraceEvent::Marker { tid: 1, marker: m }
    }

    /// Feeds a synthetic event stream and returns the report.
    fn replay(events: &[TraceEvent]) -> Report {
        let c = Checker::new();
        for ev in events {
            c.event(ev);
        }
        c.report()
    }

    #[test]
    fn clean_epoch_cycle() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            TraceEvent::Pwb { tid: 1, line: 10 },
            TraceEvent::Psync { tid: 1 },
            marker(TraceMarker::OrderBarrier),
            marker(TraceMarker::EpochAdvance { epoch: 2 }),
            marker(TraceMarker::CheckpointEnd { epoch: 1 }),
        ]);
        assert!(r.is_clean(), "{r}");
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn missed_flush_detected() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            // no pwb/psync of line 10
            marker(TraceMarker::OrderBarrier),
            marker(TraceMarker::EpochAdvance { epoch: 2 }),
        ]);
        assert_eq!(r.of_kind(DiagnosticKind::MissedFlush).len(), 1, "{r}");
    }

    #[test]
    fn noflush_checkpoint_suspends_missed_flush() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: false,
            }),
            marker(TraceMarker::OrderBarrier),
            marker(TraceMarker::EpochAdvance { epoch: 2 }),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn eviction_satisfies_flush_promise() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            TraceEvent::Eviction { line: 10 },
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            marker(TraceMarker::OrderBarrier),
            marker(TraceMarker::EpochAdvance { epoch: 2 }),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unfenced_pwb_at_barrier_is_ordering_violation() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            TraceEvent::Pwb { tid: 1, line: 10 },
            // missing Psync
            marker(TraceMarker::OrderBarrier),
        ]);
        assert_eq!(r.of_kind(DiagnosticKind::CrossLineOrdering).len(), 1, "{r}");
    }

    #[test]
    fn logging_rule_enforced() {
        let cell = 1024u64;
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            marker(TraceMarker::CellDeclare {
                addr: cell,
                vsize: 8,
                backup_off: 8,
                epoch_off: 16,
            }),
            marker(TraceMarker::CellLogged {
                addr: cell,
                epoch: 1,
            }),
            TraceEvent::store_meta(1, cell, 8), // logged: fine
            marker(TraceMarker::EpochAdvance { epoch: 2 }),
            TraceEvent::store_meta(1, cell, 8), // new epoch, no log
        ]);
        let v = r.of_kind(DiagnosticKind::LoggingViolation);
        assert_eq!(v.len(), 1, "{r}");
        assert_eq!(v[0].addr, Some(cell));
    }

    #[test]
    fn retired_cell_may_be_overwritten() {
        let cell = 1024u64;
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            marker(TraceMarker::CellDeclare {
                addr: cell,
                vsize: 8,
                backup_off: 8,
                epoch_off: 16,
            }),
            marker(TraceMarker::CellLogged {
                addr: cell,
                epoch: 1,
            }),
            marker(TraceMarker::EpochAdvance { epoch: 2 }),
            marker(TraceMarker::CellRetire {
                addr: cell,
                len: 32,
            }),
            TraceEvent::store_meta(1, cell, 8), // free-list link
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn recovery_stores_are_exempt_and_reapply_marks_logged() {
        let cell = 1024u64;
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            marker(TraceMarker::CellDeclare {
                addr: cell,
                vsize: 8,
                backup_off: 8,
                epoch_off: 16,
            }),
            marker(TraceMarker::CellLogged {
                addr: cell,
                epoch: 1,
            }),
            TraceEvent::Crash {
                all_persisted: false,
            },
            TraceEvent::Restore,
            marker(TraceMarker::RecoveryBegin { failed_epoch: 1 }),
            marker(TraceMarker::RecoveryApply { addr: cell }),
            TraceEvent::store_meta(1, cell, 8), // rollback write
            marker(TraceMarker::RecoveryEnd { epoch: 1 }),
            // Resumed epoch re-executes; tag == failed epoch, no re-log.
            TraceEvent::store_meta(1, cell, 8),
        ]);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn redundant_flush_is_perf_advisory() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            TraceEvent::Pwb { tid: 1, line: 10 },
            TraceEvent::Psync { tid: 1 },
            TraceEvent::Pwb { tid: 1, line: 10 }, // already durable
        ]);
        assert_eq!(r.of_kind(DiagnosticKind::RedundantFlush).len(), 1, "{r}");
        assert!(r.is_clean(), "perf advisories don't dirty the run: {r}");
    }

    #[test]
    fn skipping_epoch_advance_flagged() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            marker(TraceMarker::EpochAdvance { epoch: 3 }),
        ]);
        assert_eq!(r.of_kind(DiagnosticKind::EpochDiscipline).len(), 1, "{r}");
    }

    #[test]
    fn sharded_flush_cycle_is_clean() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            marker(TraceMarker::ShardFlushBegin { shard: 3, lines: 1 }),
            TraceEvent::Pwb { tid: 1, line: 10 },
            TraceEvent::Psync { tid: 1 },
            marker(TraceMarker::ShardFlushEnd { shard: 3 }),
            marker(TraceMarker::OrderBarrier),
            marker(TraceMarker::EpochAdvance { epoch: 2 }),
            marker(TraceMarker::CheckpointEnd { epoch: 1 }),
        ]);
        assert!(r.is_clean(), "{r}");
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn open_shard_at_barrier_flagged() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            marker(TraceMarker::ShardFlushBegin { shard: 3, lines: 1 }),
            TraceEvent::Pwb { tid: 1, line: 10 },
            // no psync, no ShardFlushEnd: the shard's fence was skipped
            marker(TraceMarker::OrderBarrier),
        ]);
        let v = r.of_kind(DiagnosticKind::ShardFence);
        assert_eq!(v.len(), 1, "{r}");
        assert!(v[0].detail.contains("still open"), "{r}");
        // The unfenced pwb is also an ordering violation in its own right.
        assert_eq!(r.of_kind(DiagnosticKind::CrossLineOrdering).len(), 1, "{r}");
    }

    #[test]
    fn unbalanced_shard_markers_flagged() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            marker(TraceMarker::ShardFlushBegin { shard: 1, lines: 2 }),
            marker(TraceMarker::ShardFlushBegin { shard: 1, lines: 2 }), // double open
            marker(TraceMarker::ShardFlushEnd { shard: 1 }),
            marker(TraceMarker::ShardFlushEnd { shard: 2 }), // end without begin
            marker(TraceMarker::OrderBarrier),
            marker(TraceMarker::EpochAdvance { epoch: 2 }),
            marker(TraceMarker::CheckpointEnd { epoch: 1 }),
        ]);
        assert_eq!(r.of_kind(DiagnosticKind::ShardFence).len(), 2, "{r}");
    }

    #[test]
    fn async_drain_cycle_is_clean() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            // Threads released before the flush; line 10 still dirty here.
            marker(TraceMarker::DrainBegin { epoch: 1 }),
            TraceEvent::Pwb { tid: 1, line: 10 },
            TraceEvent::Psync { tid: 1 },
            marker(TraceMarker::OrderBarrier),
            marker(TraceMarker::DrainCommit { epoch: 1 }),
            marker(TraceMarker::CheckpointEnd { epoch: 1 }),
        ]);
        assert!(r.is_clean(), "{r}");
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn drain_commit_before_durable_flagged() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            marker(TraceMarker::DrainBegin { epoch: 1 }),
            // no pwb/psync of line 10: the drain skipped its write-backs
            marker(TraceMarker::OrderBarrier),
            marker(TraceMarker::DrainCommit { epoch: 1 }),
            marker(TraceMarker::CheckpointEnd { epoch: 1 }),
        ]);
        let v = r.of_kind(DiagnosticKind::DrainCommitOrder);
        assert_eq!(v.len(), 1, "{r}");
        assert_eq!(v[0].line, Some(10));
        assert!(!r.is_clean(), "{r}");
    }

    #[test]
    fn post_release_stores_do_not_charge_the_drain() {
        // A thread re-dirties line 10 after DrainBegin (epoch 2 work). The
        // drain only owes the snapshot generation, which the pwb+psync
        // below covers — the newer store is the *next* checkpoint's debt.
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            marker(TraceMarker::DrainBegin { epoch: 1 }),
            TraceEvent::Pwb { tid: 1, line: 10 },
            TraceEvent::Psync { tid: 1 },
            // Released thread writes the same line for epoch 2.
            TraceEvent::store_meta(2, 648, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::OrderBarrier),
            marker(TraceMarker::DrainCommit { epoch: 1 }),
            marker(TraceMarker::CheckpointEnd { epoch: 1 }),
        ]);
        assert!(r.is_clean(), "{r}");
        assert!(
            r.of_kind(DiagnosticKind::DrainCommitOrder).is_empty(),
            "{r}"
        );
    }

    #[test]
    fn drain_epoch_mismatch_flagged() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            marker(TraceMarker::DrainBegin { epoch: 2 }), // current is 1
        ]);
        assert_eq!(r.of_kind(DiagnosticKind::EpochDiscipline).len(), 1, "{r}");
    }

    #[test]
    fn pipelined_ring_cycle_is_clean() {
        // Two epochs overlap: epoch 2 opens while epoch 1's drain is still
        // flushing (legal under rule 8), and the commits retire in order.
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            marker(TraceMarker::PipelineBegin { epoch: 1 }),
            marker(TraceMarker::CheckpointEnd { epoch: 1 }),
            // Released threads run epoch 2 while epoch 1 still drains.
            TraceEvent::store_meta(2, 704, 8),
            marker(TraceMarker::TrackLine { line: 11 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 2,
                full: true,
            }),
            marker(TraceMarker::PipelineBegin { epoch: 2 }),
            marker(TraceMarker::CheckpointEnd { epoch: 2 }),
            // Drain worker settles both epochs oldest-first.
            TraceEvent::Pwb { tid: 3, line: 10 },
            TraceEvent::Psync { tid: 3 },
            marker(TraceMarker::RingCommit { epoch: 1 }),
            TraceEvent::Pwb { tid: 3, line: 11 },
            TraceEvent::Psync { tid: 3 },
            marker(TraceMarker::RingCommit { epoch: 2 }),
        ]);
        assert!(r.is_clean(), "{r}");
        assert!(r.diagnostics.is_empty(), "{r}");
    }

    #[test]
    fn ring_commit_out_of_order_flagged() {
        // Epoch 2's slot is zeroed while epoch 1 is still draining — a
        // crash here leaves a ring hole recovery rejects.
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            marker(TraceMarker::PipelineBegin { epoch: 1 }),
            marker(TraceMarker::CheckpointEnd { epoch: 1 }),
            TraceEvent::store_meta(2, 704, 8),
            marker(TraceMarker::TrackLine { line: 11 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 2,
                full: true,
            }),
            marker(TraceMarker::PipelineBegin { epoch: 2 }),
            marker(TraceMarker::CheckpointEnd { epoch: 2 }),
            TraceEvent::Pwb { tid: 3, line: 10 },
            TraceEvent::Pwb { tid: 3, line: 11 },
            TraceEvent::Psync { tid: 3 },
            marker(TraceMarker::RingCommit { epoch: 2 }), // epoch 1 still open
            marker(TraceMarker::RingCommit { epoch: 1 }),
        ]);
        let v = r.of_kind(DiagnosticKind::RingCommitOrder);
        assert_eq!(v.len(), 1, "{r}");
        assert!(v[0].detail.contains("still draining"), "{r}");
        assert!(!r.is_clean(), "{r}");
    }

    #[test]
    fn ring_commit_before_durable_flagged() {
        let r = replay(&[
            marker(TraceMarker::EpochAdvance { epoch: 1 }),
            TraceEvent::store_meta(1, 640, 8),
            marker(TraceMarker::TrackLine { line: 10 }),
            marker(TraceMarker::CheckpointBegin {
                epoch: 1,
                full: true,
            }),
            marker(TraceMarker::PipelineBegin { epoch: 1 }),
            // no pwb/psync of line 10: the worker skipped its write-backs
            marker(TraceMarker::RingCommit { epoch: 1 }),
            marker(TraceMarker::CheckpointEnd { epoch: 1 }),
        ]);
        let v = r.of_kind(DiagnosticKind::RingCommitOrder);
        assert_eq!(v.len(), 1, "{r}");
        assert_eq!(v[0].line, Some(10));
        assert!(!r.is_clean(), "{r}");
    }

    #[test]
    fn diagnostics_are_capped_per_kind() {
        let c = Checker::new();
        c.event(&marker(TraceMarker::EpochAdvance { epoch: 1 }));
        for i in 0..(MAX_PER_KIND as u64 + 40) {
            c.event(&marker(TraceMarker::CellDeclare {
                addr: i * 64,
                vsize: 8,
                backup_off: 8,
                epoch_off: 16,
            }));
            c.event(&marker(TraceMarker::EpochAdvance { epoch: 2 + i }));
            c.event(&TraceEvent::store_meta(1, i * 64, 8));
        }
        let r = c.report();
        assert_eq!(
            r.of_kind(DiagnosticKind::LoggingViolation).len(),
            MAX_PER_KIND
        );
        assert!(r.suppressed > 0);
    }
}
