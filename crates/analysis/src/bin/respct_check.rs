//! `respct-check` — run the standard ResPCT workloads under the trace
//! checker and report persistency-discipline findings.
//!
//! ```text
//! respct-check [hashmap|queue|kvstore|recovery|all] [--async] [--races]
//!              [--pipeline K] [--format text|json]
//! respct-check --sweep [hashmap|queue|both] [--ops N] [--seed S]
//!              [--budget B] [--stride K] [--trace-out PATH] [--async]
//!              [--pipeline K]
//! ```
//!
//! In the default (checker) mode each workload runs on a sim-mode region
//! (PCSO simulator with random evictions) with the
//! [`respct_analysis::Checker`] attached as the trace sink, concurrent
//! worker threads, and a timer-driven checkpointer. `--races`
//! additionally tees the trace into the
//! [`respct_analysis::RaceDetector`] — the vector-clock happens-before
//! engine — and reports persist races and un-ordered commit points next
//! to the checker's durability findings.
//!
//! Exit codes are per-severity so CI can distinguish outcomes:
//!
//! * `0` — every selected workload came back clean;
//! * `1` — usage error (unknown workload or flag);
//! * `2` — at least one error-severity diagnostic (discipline violation,
//!   persist race, recovery divergence);
//! * `3` — perf-severity advisories only (e.g. redundant flushes).
//!
//! `--format json` prints one machine-readable JSON document on stdout
//! (shape: `{"mode","races","exit","workloads":[{"name","checker",`
//! `"races"}]}` with each report in [`Report::to_json`] form) instead of
//! the human text; the exit-code contract is identical.
//!
//! `--sweep` switches to the crash-point sweep (`respct-crashsim`): a
//! deterministic single-threaded run of the workload is recorded, then
//! every persistency-relevant instant of the trace is crashed — with the
//! reachable eviction/write-back subsets enumerated up to `--budget`
//! images per instant — recovered via [`Pool::recover_from_image`], and
//! compared against the model snapshot of the last committed checkpoint.
//! Any divergence fails the run; with `--trace-out PATH` the offending
//! trace (one event per line) is written there for offline replay.
//!
//! `--async` runs the selected workloads (or sweeps) with
//! [`PoolConfig::async_checkpoint`] enabled, exercising the two-phase
//! drain commit under the checker's drain-ordering rule. Asynchronous
//! runs tolerate redundant-flush advisories (on-demand push-outs can
//! legitimately double-flush a line) but still fail on any
//! error-severity diagnostic.
//!
//! `--pipeline K` (K > 1; implies async) runs with
//! [`PoolConfig::epoch_pipeline`] set to `K`, exercising the epoch-ring
//! pipelined drain under the checker's ring-commit-order rule. Do not
//! combine with `--races`: the pipelined commit handshake is published
//! through `drain_oldest` atomics the token-based happens-before engine
//! cannot observe, so race findings on a pipelined trace are noise.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use respct::{PAddr, Pool, PoolConfig};
use respct_analysis::sweep::workloads;
use respct_analysis::{Checker, RaceDetector, Report, SweepConfig};
use respct_ds::{rp_ids, PHashMap, PQueue};
use respct_pmem::sim::CrashMode;
use respct_pmem::{Region, RegionConfig, SimConfig, TeeSink, TraceSink};

const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 3_000;
const CKPT_PERIOD: Duration = Duration::from_millis(5);

/// How a workload should run: async drain on/off, race detection on/off,
/// epoch-pipeline depth (1 = single in-flight drain, today's default).
#[derive(Clone, Copy)]
struct RunOpts {
    async_on: bool,
    races: bool,
    pipeline: usize,
}

/// The sinks attached to a run's region.
struct Sinks {
    checker: Arc<Checker>,
    races: Option<Arc<RaceDetector>>,
}

/// What a workload produced: one report per attached sink.
struct RunOut {
    checker: Report,
    races: Option<Report>,
}

impl Sinks {
    /// Attaches the checker (always) and, with `races`, the happens-before
    /// detector behind a tee, so both replay the same event stream.
    fn attach(region: &Region, races: bool) -> Sinks {
        let checker = Arc::new(Checker::new());
        if races {
            let detector = Arc::new(RaceDetector::new());
            let tee: Vec<Arc<dyn TraceSink>> = vec![
                Arc::clone(&checker) as Arc<dyn TraceSink>,
                Arc::clone(&detector) as Arc<dyn TraceSink>,
            ];
            region.set_trace_sink(Arc::new(TeeSink::new(tee)));
            Sinks {
                checker,
                races: Some(detector),
            }
        } else {
            region.set_trace_sink(Arc::<Checker>::clone(&checker));
            Sinks {
                checker,
                races: None,
            }
        }
    }

    fn reports(&self) -> RunOut {
        RunOut {
            checker: self.checker.report(),
            races: self.races.as_ref().map(|d| d.report()),
        }
    }
}

impl RunOut {
    fn each(&self) -> impl Iterator<Item = &Report> {
        std::iter::once(&self.checker).chain(self.races.as_ref())
    }
}

/// A sim region with the selected sinks attached, and a pool formatted on
/// it.
fn checked_pool(bytes: usize, seed: u64, flushers: usize, opts: RunOpts) -> (Sinks, Arc<Pool>) {
    // Eviction rate 4: roughly one line evicted per 2^4 stores — enough to
    // exercise the eviction paths without swamping the trace.
    let region = Region::new(RegionConfig::sim(bytes, SimConfig::with_eviction(4, seed)));
    let sinks = Sinks::attach(&region, opts.races);
    let cfg = PoolConfig::builder()
        .flusher_threads(flushers)
        .async_checkpoint(opts.async_on)
        .epoch_pipeline(opts.pipeline)
        .build()
        .expect("config");
    let pool = Pool::create(region, cfg).expect("pool");
    (sinks, pool)
}

fn run_hashmap(opts: RunOpts) -> RunOut {
    // Two dedicated flushers: the hashmap workload exercises the sharded
    // parallel flush path (shard claiming + per-worker fences) under the
    // checker's shard-fence rule, not just the inline fallback.
    let (sinks, pool) = checked_pool(64 << 20, 11, 2, opts);
    let map = {
        let h = pool.register();
        let map = PHashMap::create(&h, 512);
        h.set_root(map.desc());
        map
    };
    let _ckpt = pool.start_checkpointer(CKPT_PERIOD);
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let (pool, map) = (&pool, &map);
            s.spawn(move || {
                let h = pool.register();
                for i in 0..OPS_PER_THREAD {
                    let k = t * OPS_PER_THREAD + i;
                    map.insert(&h, k, k * 3);
                    h.rp(rp_ids::MAP_INSERT);
                    if i % 3 == 0 {
                        map.get(&h, k);
                        h.rp(rp_ids::MAP_GET);
                    }
                    if i % 5 == 0 {
                        map.remove(&h, k);
                        h.rp(rp_ids::MAP_REMOVE);
                    }
                }
            });
        }
    });
    pool.register().checkpoint_here();
    sinks.reports()
}

fn run_queue(opts: RunOpts) -> RunOut {
    let (sinks, pool) = checked_pool(64 << 20, 22, 0, opts);
    let queue = {
        let h = pool.register();
        let q = PQueue::create(&h);
        h.set_root(q.desc());
        q
    };
    let _ckpt = pool.start_checkpointer(CKPT_PERIOD);
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let (pool, queue) = (&pool, &queue);
            s.spawn(move || {
                let h = pool.register();
                for i in 0..OPS_PER_THREAD {
                    queue.enqueue(&h, t * OPS_PER_THREAD + i);
                    h.rp(rp_ids::QUEUE_ENQ);
                    if i % 2 == 0 {
                        queue.dequeue(&h);
                        h.rp(rp_ids::QUEUE_DEQ);
                    }
                }
            });
        }
    });
    pool.register().checkpoint_here();
    sinks.reports()
}

/// A memcached-style workload: persistent map from key to copy-on-write
/// value blob (the shape of `respct_apps::kvstore`'s ResPCT store).
fn run_kvstore(opts: RunOpts) -> RunOut {
    const VALUE: u64 = 128;
    let (sinks, pool) = checked_pool(128 << 20, 33, 0, opts);
    let map = {
        let h = pool.register();
        let map = PHashMap::create(&h, 512);
        h.set_root(map.desc());
        map
    };
    let _ckpt = pool.start_checkpointer(CKPT_PERIOD);
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let (pool, map) = (&pool, &map);
            s.spawn(move || {
                let h = pool.register();
                let mut buf = vec![0u8; VALUE as usize];
                for i in 0..OPS_PER_THREAD {
                    // Keys are partitioned per thread (as in the kvstore
                    // app): the get-old/insert-new/free-old sequence is not
                    // atomic, so racing puts on one key would double-free
                    // the old blob.
                    let k = t * 1_000 + (i % 500);
                    if i % 4 == 0 {
                        // Get: read the blob through the map.
                        if let Some(blob) = map.get(&h, k) {
                            pool.region().load_bytes(PAddr(blob), &mut buf);
                        }
                        h.rp(601);
                    } else {
                        // Put: CoW blob, written + tracked while
                        // unreachable, then the value cell swings to it.
                        buf.fill((i % 251) as u8);
                        let blob = h.alloc(VALUE, 64);
                        pool.region().store_bytes(blob, &buf);
                        h.add_modified(blob, VALUE as usize);
                        let old = map.get(&h, k);
                        map.insert(&h, k, blob.0);
                        if let Some(old) = old {
                            h.free(PAddr(old), VALUE);
                        }
                        h.rp(600);
                    }
                }
            });
        }
    });
    pool.register().checkpoint_here();
    sinks.reports()
}

/// Crash in a dirty epoch, recover, re-execute, checkpoint, repeat.
fn run_recovery(opts: RunOpts) -> RunOut {
    let cfg = PoolConfig::builder()
        .async_checkpoint(opts.async_on)
        .epoch_pipeline(opts.pipeline)
        .build()
        .expect("config");
    let region = Region::new(RegionConfig::sim(32 << 20, SimConfig::with_eviction(4, 44)));
    let sinks = Sinks::attach(&region, opts.races);
    let mut cells = Vec::new();
    {
        let pool = Pool::create(Arc::clone(&region), cfg.clone()).expect("pool");
        let h = pool.register();
        for i in 0..200u64 {
            cells.push(h.alloc_cell(i));
        }
        h.checkpoint_here();
        for (i, c) in cells.iter().enumerate() {
            h.update(*c, 1_000 + i as u64); // crashed-epoch updates
        }
    }
    for round in 0..3u64 {
        let img = region.crash(CrashMode::PowerFailure);
        region.restore(&img);
        let (pool, _report) = Pool::recover(Arc::clone(&region), cfg.clone()).expect("recover");
        let h = pool.register();
        for (i, c) in cells.iter().enumerate() {
            h.update(*c, (round + 2) * 1_000 + i as u64); // re-execution
        }
        h.checkpoint_here();
        for c in &cells {
            h.update(*c, 7); // dirty the next epoch, then crash again
        }
    }
    sinks.reports()
}

fn sweep_main(args: &[String]) -> ExitCode {
    let mut workloads: Vec<&str> = vec!["hashmap", "queue"];
    let mut ops = 48u64;
    let mut seed = 7u64;
    let mut cfg = SweepConfig::new(workloads::SWEEP_REGION);
    cfg.eviction_budget = 3;
    cfg.stride = 4;
    let mut trace_out: Option<String> = None;
    let mut async_on = false;
    let mut pipeline = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
                .clone()
        };
        match a.as_str() {
            "hashmap" => workloads = vec!["hashmap"],
            "queue" => workloads = vec!["queue"],
            "both" => workloads = vec!["hashmap", "queue"],
            "--ops" => ops = value("--ops").parse().expect("--ops"),
            "--seed" => seed = value("--seed").parse().expect("--seed"),
            "--budget" => cfg.eviction_budget = value("--budget").parse().expect("--budget"),
            "--stride" => cfg.stride = value("--stride").parse().expect("--stride"),
            "--trace-out" => trace_out = Some(value("--trace-out")),
            "--async" => async_on = true,
            "--pipeline" => pipeline = value("--pipeline").parse().expect("--pipeline"),
            other => {
                eprintln!("unknown sweep argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    cfg.pool = PoolConfig::builder()
        .async_checkpoint(async_on || pipeline > 1)
        .epoch_pipeline(pipeline)
        .build()
        .expect("config");
    cfg.seed = seed;
    let mut failed = false;
    for w in workloads {
        println!("== sweep:{w} ==");
        let (sweep_report, events) = match w {
            "hashmap" => workloads::sweep_hashmap(ops, seed, &cfg),
            _ => workloads::sweep_queue(ops, seed, &cfg),
        };
        println!(
            "{} events, {} crash points ({} pre-format skipped), {} images recovered",
            sweep_report.events,
            sweep_report.points,
            sweep_report.unformatted_points,
            sweep_report.images
        );
        if !sweep_report.is_clean() {
            failed = true;
            print!("{}", sweep_report.report);
            if let Some(dir) = &trace_out {
                let path = std::path::Path::new(dir).join(format!("sweep-{w}-seed{seed}.trace"));
                let mut dump = String::new();
                for (i, ev) in events.iter().enumerate() {
                    dump.push_str(&format!("{i:08} {ev:?}\n"));
                }
                dump.push_str(&format!("{}", sweep_report.report));
                match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, dump)) {
                    Ok(()) => eprintln!("offending trace written to {}", path.display()),
                    Err(e) => eprintln!("failed to write trace artifact: {e}"),
                }
            }
        }
    }
    if failed {
        eprintln!("recovery divergence found");
        ExitCode::from(EXIT_ERROR)
    } else {
        ExitCode::SUCCESS
    }
}

/// Exit code for usage errors (bad workload, bad flag).
const EXIT_USAGE: u8 = 1;
/// Exit code when any error-severity diagnostic was produced.
const EXIT_ERROR: u8 = 2;
/// Exit code when only perf-severity advisories were produced.
const EXIT_PERF: u8 = 3;

/// Maps a batch of workload outputs to the exit-code contract.
fn exit_for(outs: &[(&str, RunOut)]) -> u8 {
    let mut any_error = false;
    let mut any_perf = false;
    for (_, out) in outs {
        for r in out.each() {
            any_error |= !r.errors().is_empty();
            any_perf |= !r.perf().is_empty();
        }
    }
    if any_error {
        EXIT_ERROR
    } else if any_perf {
        EXIT_PERF
    } else {
        0
    }
}

fn json_doc(outs: &[(&str, RunOut)], async_on: bool, races: bool, exit: u8) -> String {
    let mut s = String::with_capacity(1024);
    s.push_str("{\"mode\":\"");
    s.push_str(if async_on { "async" } else { "sync" });
    s.push_str("\",\"races\":");
    s.push_str(if races { "true" } else { "false" });
    s.push_str(&format!(",\"exit\":{exit},\"workloads\":["));
    for (i, (name, out)) in outs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("{{\"name\":\"{name}\",\"checker\":"));
        s.push_str(&out.checker.to_json());
        s.push_str(",\"races\":");
        match &out.races {
            Some(r) => s.push_str(&r.to_json()),
            None => s.push_str("null"),
        }
        s.push('}');
    }
    s.push_str("]}");
    s
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("--sweep") {
        return sweep_main(&argv[1..]);
    }
    let mut pipeline = 1usize;
    if let Some(pos) = argv.iter().position(|a| a == "--pipeline") {
        let parsed = argv.get(pos + 1).and_then(|k| k.parse().ok());
        let Some(k) = parsed.filter(|&k: &usize| k >= 1) else {
            eprintln!("--pipeline requires a positive integer depth");
            return ExitCode::from(EXIT_USAGE);
        };
        pipeline = k;
        argv.drain(pos..=pos + 1);
    }
    let opts = RunOpts {
        // A pipeline depth implies the asynchronous drain machinery.
        async_on: argv.iter().any(|a| a == "--async") || pipeline > 1,
        races: argv.iter().any(|a| a == "--races"),
        pipeline,
    };
    argv.retain(|a| a != "--async" && a != "--races");
    let mut json = false;
    if let Some(pos) = argv.iter().position(|a| a == "--format") {
        let Some(fmt) = argv.get(pos + 1) else {
            eprintln!("--format requires a value (text|json)");
            return ExitCode::from(EXIT_USAGE);
        };
        match fmt.as_str() {
            "json" => json = true,
            "text" => {}
            other => {
                eprintln!("unknown format {other:?}; expected text|json");
                return ExitCode::from(EXIT_USAGE);
            }
        }
        argv.drain(pos..=pos + 1);
    }
    if let Some(flag) = argv.iter().find(|a| a.starts_with("--")) {
        eprintln!("unknown flag {flag:?}");
        return ExitCode::from(EXIT_USAGE);
    }
    let arg = argv.first().cloned().unwrap_or_else(|| "all".into());
    type Workload = (&'static str, fn(RunOpts) -> RunOut);
    let all: [Workload; 4] = [
        ("hashmap", run_hashmap),
        ("queue", run_queue),
        ("kvstore", run_kvstore),
        ("recovery", run_recovery),
    ];
    let selected: Vec<_> = match arg.as_str() {
        "all" => all.to_vec(),
        name => {
            let Some(w) = all.iter().find(|(n, _)| *n == name) else {
                eprintln!("unknown workload {name:?}; expected hashmap|queue|kvstore|recovery|all");
                return ExitCode::from(EXIT_USAGE);
            };
            vec![*w]
        }
    };
    let mut outs: Vec<(&str, RunOut)> = Vec::new();
    for (name, run) in selected {
        if !json {
            let mode = if opts.async_on { " (async drain)" } else { "" };
            println!("== {name}{mode} ==");
        }
        let out = run(opts);
        if !json {
            print!("{}", out.checker);
            if let Some(races) = &out.races {
                println!("-- races --");
                print!("{races}");
            }
        }
        outs.push((name, out));
    }
    let exit = exit_for(&outs);
    if json {
        println!("{}", json_doc(&outs, opts.async_on, opts.races, exit));
    } else if exit == EXIT_ERROR {
        eprintln!("persistency violations found");
    } else if exit == EXIT_PERF {
        eprintln!("perf advisories only");
    }
    ExitCode::from(exit)
}
