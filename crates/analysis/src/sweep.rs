//! Crash-point sweep (`respct-crashsim`): exhaustive crash/recover checking
//! over a recorded trace.
//!
//! The sweep replays a [`TraceEvent`] stream through a
//! [`Replayer`](respct_pmem::Replayer) and, at every persistency-relevant
//! instant (each store, write-back, fence, eviction — and *always* at
//! checkpoint-protocol boundaries like shard fences and the epoch commit),
//! materializes the crash images reachable under PCSO at that instant. Each
//! image is handed to [`Pool::recover_from_image`] on a synthetic region,
//! and the recovered pool is checked against a caller-supplied oracle —
//! typically "the recovered structures equal the model snapshot of the last
//! checkpoint that committed before this instant".
//!
//! Any mismatch becomes a [`DiagnosticKind::RecoveryDivergence`] in the
//! returned [`Report`], carrying enough context (event index, image index,
//! failed epoch, oracle detail) to re-materialize the offending image from
//! the same trace.
//!
//! Points where the base image does not yet hold the pool magic are counted
//! as skipped, not failed: until `Pool::create`'s header flush commits,
//! there is no pool to recover (the paper's durability guarantee starts at
//! the first completed checkpoint).

use std::sync::Arc;

use respct::layout::{MAGIC, OFF_MAGIC};
use respct::{Pool, PoolConfig, RecoveryReport};
use respct_pmem::{is_crash_point, is_protocol_point, Replayer, TraceEvent};

use crate::report::{Diagnostic, DiagnosticKind, Report};

/// Cap on recorded divergence diagnostics; a broken run would otherwise
/// produce one per crash image.
const MAX_DIVERGENCES: usize = 32;

/// Parameters of a crash-point sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Size in bytes of the region the trace was recorded from.
    pub region_size: usize,
    /// Visit every `stride`-th eligible crash point (1 = all of them).
    /// Checkpoint-protocol boundaries are visited regardless.
    pub stride: usize,
    /// Maximum crash images materialized per visited point (the
    /// eviction-subset budget; at least 1, the base image).
    pub eviction_budget: usize,
    /// Seed for the random eviction-subset draws.
    pub seed: u64,
    /// Pool configuration for recovery. Keep flusher-free (the default):
    /// each image spawns a fresh pool, and recovery itself never needs the
    /// flusher pool.
    pub pool: PoolConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            region_size: 0,
            stride: 1,
            eviction_budget: 4,
            seed: 0,
            pool: PoolConfig::default(),
        }
    }
}

impl SweepConfig {
    /// A sweep over every crash point of a trace recorded from a region of
    /// `region_size` bytes, with the default budget.
    pub fn new(region_size: usize) -> SweepConfig {
        SweepConfig {
            region_size,
            ..SweepConfig::default()
        }
    }
}

/// Outcome of a crash-point sweep. `report.is_clean()` is the verdict;
/// the counters prove the sweep was not vacuous.
#[derive(Debug)]
pub struct SweepReport {
    /// Trace events replayed.
    pub events: u64,
    /// Distinct crash points visited (instants at which images were built).
    pub points: u64,
    /// Points skipped because the base image held no pool magic yet.
    pub unformatted_points: u64,
    /// Crash images recovered and checked across all points.
    pub images: u64,
    /// Checker-style report; divergences appear as
    /// [`DiagnosticKind::RecoveryDivergence`] diagnostics.
    pub report: Report,
}

impl SweepReport {
    /// Whether every recovered image matched the oracle.
    pub fn is_clean(&self) -> bool {
        self.report.is_clean()
    }
}

/// Replays `events` and checks recovery at every eligible crash point.
///
/// The oracle receives the recovered pool and its [`RecoveryReport`] (whose
/// `failed_epoch` tells it which model snapshot to compare against) and
/// returns `Err(detail)` on divergence.
///
/// # Panics
///
/// Panics if `cfg.region_size` is not a positive cache-line multiple.
pub fn sweep<F>(events: &[TraceEvent], cfg: &SweepConfig, oracle: F) -> SweepReport
where
    F: Fn(&Arc<Pool>, &RecoveryReport) -> Result<(), String>,
{
    let stride = cfg.stride.max(1);
    let mut replayer = Replayer::new(cfg.region_size);
    let mut points = 0u64;
    let mut unformatted = 0u64;
    let mut images = 0u64;
    let mut eligible = 0u64;
    let mut diagnostics = Vec::new();
    let mut suppressed = 0u64;

    let mut diverge = |epoch: Option<u64>, detail: String| {
        if diagnostics.len() >= MAX_DIVERGENCES {
            suppressed += 1;
            return;
        }
        diagnostics.push(Diagnostic {
            kind: DiagnosticKind::RecoveryDivergence,
            line: None,
            addr: None,
            epoch,
            detail,
        });
    };

    for (idx, ev) in events.iter().enumerate() {
        replayer.apply(ev);
        if replayer.saw_crash() {
            break;
        }
        if !is_crash_point(ev) {
            continue;
        }
        eligible += 1;
        // Stride-sample ordinary points; never skip protocol boundaries.
        if !is_protocol_point(ev) && !(eligible - 1).is_multiple_of(stride as u64) {
            continue;
        }
        if replayer.persisted_u64(OFF_MAGIC.0 as usize) != MAGIC {
            unformatted += 1;
            continue;
        }
        points += 1;
        for (img_idx, image) in replayer
            .crash_images(cfg.eviction_budget, cfg.seed ^ idx as u64)
            .into_iter()
            .enumerate()
        {
            images += 1;
            // Recovery may *panic* on images no correct execution can
            // produce (e.g. an epoch-ring hole left by an out-of-order
            // commit). A sweep must survive that and report it as a
            // divergence, not die: a panicking recovery is exactly the
            // broken-protocol evidence the sweep exists to surface.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                match Pool::recover_from_image(&image, cfg.pool.clone()) {
                    Ok((pool, rec)) => (Some(rec.failed_epoch), oracle(&pool, &rec)),
                    Err(e) => (None, Err(format!("recovery failed: {e:?}"))),
                }
            }));
            match outcome {
                Ok((_, Ok(()))) => {}
                Ok((epoch, Err(detail))) => diverge(
                    epoch,
                    format!("event #{idx} ({ev:?}), image #{img_idx}: {detail}"),
                ),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("non-string panic payload");
                    diverge(
                        None,
                        format!(
                            "event #{idx} ({ev:?}), image #{img_idx}: recovery panicked: {msg}"
                        ),
                    );
                }
            }
        }
    }

    SweepReport {
        events: replayer.events(),
        points,
        unformatted_points: unformatted,
        images,
        report: Report {
            diagnostics,
            events: events.len() as u64,
            suppressed,
        },
    }
}

/// Ready-made recorded workloads for `respct-check --sweep` and the crash
/// sweep test suite: deterministic single-threaded runs of the persistent
/// hash map and queue, with a model snapshot taken at every checkpoint.
pub mod workloads {
    use std::collections::{BTreeMap, VecDeque};
    use std::sync::Arc;

    use respct::{Pool, PoolConfig, ThreadHandle};
    use respct_ds::{PHashMap, PQueue};
    use respct_pmem::{Region, RegionConfig, SimConfig, TraceEvent, VecSink};

    use super::{sweep, SweepConfig, SweepReport};

    /// Region size for sweep recordings: small on purpose — every crash
    /// image is a full copy, and a sweep recovers thousands of them.
    pub const SWEEP_REGION: usize = 1 << 20;

    /// Deterministic op mixer (xorshift64): the whole recording must be a
    /// pure function of the seed, with no external RNG dependency.
    fn next_rand(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// A recorded single-threaded run plus its per-epoch model snapshots:
    /// `snaps[e]` is the model at the instant the epoch counter became `e`
    /// (`None` for epoch 1 — the structure does not exist before the first
    /// checkpoint commits, so there is nothing to compare against).
    pub struct RecordedRun<M> {
        /// The full trace, from region creation to pool drop.
        pub events: Vec<TraceEvent>,
        /// Model snapshots indexed by epoch-counter value.
        pub snaps: Vec<Option<M>>,
    }

    /// Records `ops` steps of `step(handle, model, rand)` on a fresh pool
    /// (inline flushing, default config), checkpointing every 8 ops. The
    /// structure under test must be created inside the first step and
    /// reachable from the pool root thereafter.
    pub fn record_run<M: Clone>(
        seed: u64,
        ops: u64,
        step: impl FnMut(&ThreadHandle, &mut M, u64),
        init_model: M,
    ) -> RecordedRun<M> {
        record_run_with(seed, ops, PoolConfig::default(), step, init_model)
    }

    /// [`record_run`] with an explicit pool configuration — how the sweep
    /// suite records asynchronous-drain traces (crash points inside the
    /// drain window only exist when the recorded pool drained in the
    /// background).
    pub fn record_run_with<M: Clone>(
        seed: u64,
        ops: u64,
        pool_cfg: PoolConfig,
        mut step: impl FnMut(&ThreadHandle, &mut M, u64),
        init_model: M,
    ) -> RecordedRun<M> {
        let region = Region::new(RegionConfig::sim(
            SWEEP_REGION,
            SimConfig::with_eviction(4, seed),
        ));
        let sink = Arc::new(VecSink::new());
        region.set_trace_sink(sink.clone());
        let pool = Pool::create(region, pool_cfg).expect("pool");
        let h = pool.register();
        let mut model = init_model;
        let mut snaps: Vec<Option<M>> = vec![None, None]; // epochs 0 (unused), 1
        let mut rng = seed | 1;
        for i in 0..ops {
            step(&h, &mut model, next_rand(&mut rng));
            // Checkpoint roughly every 8 ops so a sweep crosses many
            // commits (each one changes the expected recovery target).
            if i % 8 == 7 {
                h.checkpoint_here();
                snaps.push(Some(model.clone()));
            }
        }
        h.checkpoint_here();
        snaps.push(Some(model.clone()));
        drop(h);
        drop(pool);
        RecordedRun {
            events: sink.drain(),
            snaps,
        }
    }

    impl<M> RecordedRun<M> {
        /// Sweeps this run's trace: at every crash point, the recovered
        /// pool is compared (via `compare`) against the snapshot selected
        /// by the recovery's failed epoch. Pre-first-checkpoint crashes
        /// only require recovery itself to succeed.
        pub fn sweep_with<C>(&self, cfg: &SweepConfig, compare: C) -> SweepReport
        where
            C: Fn(&Arc<Pool>, &M) -> Result<(), String>,
        {
            sweep(&self.events, cfg, |pool, r| {
                let Some(slot) = self.snaps.get(r.failed_epoch as usize) else {
                    return Err(format!("recovered into unknown epoch {}", r.failed_epoch));
                };
                match slot {
                    None => Ok(()), // pre-first-checkpoint: no structure yet
                    Some(model) => {
                        if pool.root().is_null() {
                            return Err("root pointer lost".into());
                        }
                        compare(pool, model)
                    }
                }
            })
        }
    }

    /// Records a hash-map workload (inserts and removes over a small key
    /// range) and sweeps it, checking the recovered map's full contents.
    pub fn sweep_hashmap(ops: u64, seed: u64, cfg: &SweepConfig) -> (SweepReport, Vec<TraceEvent>) {
        let rec = record_run_with(
            seed,
            ops,
            cfg.pool.clone(),
            |h, model: &mut BTreeMap<u64, u64>, r| {
                let map = if h.pool().root().is_null() {
                    let map = PHashMap::create(h, 32);
                    h.set_root(map.desc());
                    map
                } else {
                    PHashMap::open(h.pool(), h.pool().root())
                };
                let k = r % 24;
                if r % 4 == 3 {
                    map.remove(h, k);
                    model.remove(&k);
                } else {
                    map.insert(h, k, r);
                    model.insert(k, r);
                }
            },
            BTreeMap::new(),
        );
        let report = rec.sweep_with(cfg, |pool, model| {
            let map = PHashMap::open(pool, pool.root());
            let mut got = map.collect();
            got.sort_unstable();
            let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            if got == want {
                Ok(())
            } else {
                Err(format!("hashmap diverged: got {got:?}, want {want:?}"))
            }
        });
        (report, rec.events)
    }

    /// Records a queue workload (enqueues with interleaved dequeues) and
    /// sweeps it, checking the recovered queue's full contents in order.
    pub fn sweep_queue(ops: u64, seed: u64, cfg: &SweepConfig) -> (SweepReport, Vec<TraceEvent>) {
        let rec = record_run_with(
            seed,
            ops,
            cfg.pool.clone(),
            |h, model: &mut VecDeque<u64>, r| {
                let queue = if h.pool().root().is_null() {
                    let q = PQueue::create(h);
                    h.set_root(q.desc());
                    q
                } else {
                    PQueue::open(h.pool(), h.pool().root())
                };
                if r % 3 == 2 {
                    let got = queue.dequeue(h);
                    assert_eq!(got, model.pop_front(), "live run out of sync");
                } else {
                    queue.enqueue(h, r);
                    model.push_back(r);
                }
            },
            VecDeque::new(),
        );
        let report = rec.sweep_with(cfg, |pool, model| {
            let queue = PQueue::open(pool, pool.root());
            let got = queue.collect();
            let want: Vec<u64> = model.iter().copied().collect();
            if got == want {
                Ok(())
            } else {
                Err(format!("queue diverged: got {got:?}, want {want:?}"))
            }
        });
        (report, rec.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct_pmem::{Region, RegionConfig, SimConfig, VecSink};

    const SIZE: usize = 2 << 20;

    fn recorded_run() -> (Vec<TraceEvent>, Vec<(u64, u64)>) {
        let region = Region::new(RegionConfig::sim(SIZE, SimConfig::no_eviction(3)));
        let sink = Arc::new(VecSink::new());
        region.set_trace_sink(sink.clone());
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let a = h.alloc_cell(1u64);
        let b = h.alloc_cell(2u64);
        h.checkpoint_here(); // closes epoch 1: {a:1, b:2} durable
        h.update(a, 10);
        h.checkpoint_here(); // closes epoch 2: {a:10, b:2} durable
        h.update(b, 20); // epoch 3, never checkpointed
        drop(h);
        drop(pool);
        (sink.drain(), vec![(a.addr().0, 1), (b.addr().0, 2)])
    }

    /// Oracle for `recorded_run`: per failed epoch, the expected values of
    /// cells `a` and `b`. `None` before the first checkpoint committed (the
    /// cells do not exist yet — nothing to assert beyond recovery working).
    fn expected(failed_epoch: u64, cell_idx: usize) -> Option<u64> {
        match (failed_epoch, cell_idx) {
            (1, _) => None,
            // Epoch 2 crashed: only the first checkpoint committed.
            (2, 0) => Some(1),
            (2, 1) => Some(2),
            // Epoch 3 crashed: both checkpoints committed.
            (3, 0) => Some(10),
            (3, 1) => Some(2),
            _ => panic!("unexpected failed epoch {failed_epoch}"),
        }
    }

    #[test]
    fn clean_run_sweeps_clean() {
        let (events, cells) = recorded_run();
        let cfg = SweepConfig::new(SIZE);
        let sweep_report = sweep(&events, &cfg, |pool, rec| {
            for (i, &(addr, _)) in cells.iter().enumerate() {
                let Some(want) = expected(rec.failed_epoch, i) else {
                    continue;
                };
                let got = pool.cell_get(respct::ICell::<u64>::from_addr(respct::PAddr(addr)));
                if got != want {
                    return Err(format!("cell {i}: got {got}, want {want}"));
                }
            }
            Ok(())
        });
        assert!(sweep_report.is_clean(), "{:?}", sweep_report.report);
        assert!(
            sweep_report.points > 50,
            "sweep visited only {} points",
            sweep_report.points
        );
        assert!(sweep_report.images >= sweep_report.points);
        assert!(sweep_report.unformatted_points > 0, "creation prefix skips");
    }

    #[test]
    fn stride_reduces_points_but_keeps_protocol_boundaries() {
        let (events, _) = recorded_run();
        let full = sweep(&events, &SweepConfig::new(SIZE), |_, _| Ok(()));
        let mut cfg = SweepConfig::new(SIZE);
        cfg.stride = 16;
        let sampled = sweep(&events, &cfg, |_, _| Ok(()));
        assert!(sampled.points < full.points);
        assert!(sampled.points > 0);
        assert!(sampled.is_clean() && full.is_clean());
    }

    #[test]
    fn divergence_is_reported_with_context() {
        let (events, _) = recorded_run();
        let mut cfg = SweepConfig::new(SIZE);
        cfg.eviction_budget = 1;
        // An always-failing oracle: every image diverges, the cap holds.
        let r = sweep(&events, &cfg, |_, _| Err("forced".into()));
        assert!(!r.is_clean());
        let d = r.report.of_kind(DiagnosticKind::RecoveryDivergence);
        assert!(!d.is_empty());
        assert!(d[0].detail.contains("forced") && d[0].detail.contains("event #"));
        assert!(d.len() as u64 + r.report.suppressed == r.images);
    }
}
