//! Structured diagnostics produced by the trace checker.
//!
//! Mirrors the shape of `respct::verify` (`Violation` / `VerifyReport`):
//! typed kinds, human-readable detail, and a report object tests can assert
//! on. The extra dimension here is [`Severity`]: persistency *bugs* are
//! `Error`s, while redundant flushes are `Perf` advisories — correct code
//! that wastes write-back bandwidth (paper Fig. 10 shows flushing is the
//! dominant checkpoint cost, so spotting double flushes matters even though
//! they can never lose data).

use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A persistency-discipline violation: a crash at the wrong moment can
    /// lose or corrupt committed state.
    Error,
    /// A performance diagnostic: correctness is unaffected.
    Perf,
}

/// Category of a trace-checker diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// A cache line tracked for the closing epoch was not durable when the
    /// epoch counter committed: a crash right after the epoch advance would
    /// recover state missing that line's updates.
    MissedFlush,
    /// An InCLL cell's record was overwritten in an epoch that had not yet
    /// written the in-line backup + epoch tag (paper Fig. 4 lines 24–29):
    /// rollback of a crashed epoch would restore a stale or torn value.
    LoggingViolation,
    /// The epoch-counter store relies on earlier cross-line writes being
    /// durable, but a write-back of a tracked line was still unfenced at the
    /// ordering barrier (missing `psync` between data flush and commit).
    CrossLineOrdering,
    /// A `pwb` of a line whose content was already durable (nothing dirty
    /// to write back). Wasted write-back bandwidth.
    RedundantFlush,
    /// Epoch bookkeeping broke its own rules: a non-monotonic or skipping
    /// epoch advance, a checkpoint or log record stamped with the wrong
    /// epoch, or recovery resuming in the wrong epoch.
    EpochDiscipline,
    /// The sharded flush pipeline broke its fence protocol: a shard was
    /// opened twice, closed without a begin, or was still open (write-backs
    /// issued but not yet covered by a fence) when the epoch commit barrier
    /// ran. A crash between the barrier and the missing fence would commit
    /// an epoch whose shard data may not be durable.
    ShardFence,
    /// The two-phase epoch commit of an asynchronous checkpoint closed
    /// (`DrainCommit`, the drain-state word going durable-zero) while a
    /// line snapshotted at `DrainBegin` was not yet durable at its
    /// snapshot generation: a crash after the commit would recover to
    /// epoch N+1 with epoch-N data missing.
    DrainCommitOrder,
    /// The pipelined epoch-record ring broke its ordered-commit invariant:
    /// a `RingCommit` was published while an *older* epoch's drain was
    /// still uncommitted, or an epoch committed while a line it snapshotted
    /// at `PipelineBegin` was not yet durable at its snapshot generation. A
    /// crash between an out-of-order pair leaves a hole in the ring, which
    /// recovery rejects as corruption — and the frees the early commit
    /// released may already have clobbered rollback state.
    RingCommitOrder,
    /// A crash-point sweep found a reachable crash image whose recovered
    /// state differs from the model snapshot of the last committed
    /// checkpoint: the durability invariant the paper proves (recovery to a
    /// consistent cut) is violated at that instant.
    RecoveryDivergence,
    /// Two threads wrote the same cache line within one epoch with no
    /// happens-before edge between the stores, and the writes either
    /// overlap or hit the same InCLL cell — the cell's in-line backup slot
    /// can tear, so rollback of a crashed epoch may restore a mixed value.
    /// Also raised for a recovery-time load racing another thread's
    /// in-flight write-back.
    PersistRace,
    /// A protocol commit point (the epoch-counter store or the drain-state
    /// commit) is not happens-before-ordered after a fence it charges —
    /// or a pushed-out line was overwritten without acquiring the drain's
    /// commit release. The commit's durability can race the data it
    /// promises is durable.
    UnorderedCommit,
}

impl DiagnosticKind {
    /// The severity class of this kind.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticKind::RedundantFlush => Severity::Perf,
            _ => Severity::Error,
        }
    }

    /// Stable machine-readable name (the JSON `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            DiagnosticKind::MissedFlush => "missed_flush",
            DiagnosticKind::LoggingViolation => "logging_violation",
            DiagnosticKind::CrossLineOrdering => "cross_line_ordering",
            DiagnosticKind::RedundantFlush => "redundant_flush",
            DiagnosticKind::EpochDiscipline => "epoch_discipline",
            DiagnosticKind::ShardFence => "shard_fence",
            DiagnosticKind::DrainCommitOrder => "drain_commit_order",
            DiagnosticKind::RingCommitOrder => "ring_commit_order",
            DiagnosticKind::RecoveryDivergence => "recovery_divergence",
            DiagnosticKind::PersistRace => "persist_race",
            DiagnosticKind::UnorderedCommit => "unordered_commit",
        }
    }
}

/// Appends `s` as a JSON string literal (quotes included).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => out.push_str(&v.to_string()),
        None => out.push_str("null"),
    }
}

/// One finding from a checked run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub kind: DiagnosticKind,
    /// Cache line involved, if the finding is line-granular.
    pub line: Option<u64>,
    /// Region offset involved, if the finding is address-granular.
    pub addr: Option<u64>,
    /// Epoch in effect when the finding was made.
    pub epoch: Option<u64>,
    /// Human-readable details.
    pub detail: String,
}

impl Diagnostic {
    /// The severity class (derived from the kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity() {
            Severity::Error => "error",
            Severity::Perf => "perf",
        };
        write!(f, "[{sev}] {:?}: {}", self.kind, self.detail)?;
        if let Some(line) = self.line {
            write!(f, " (line {line})")?;
        }
        if let Some(addr) = self.addr {
            write!(f, " (addr {addr:#x})")?;
        }
        if let Some(epoch) = self.epoch {
            write!(f, " (epoch {epoch})")?;
        }
        Ok(())
    }
}

/// Everything the checker found over one traced run.
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// All findings, in observation order.
    pub diagnostics: Vec<Diagnostic>,
    /// Total events replayed.
    pub events: u64,
    /// Findings dropped after the per-kind reporting cap was hit (a broken
    /// run can otherwise produce one diagnostic per store).
    pub suppressed: u64,
}

impl Report {
    /// Error-severity findings only.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .collect()
    }

    /// Perf-severity findings only.
    pub fn perf(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Perf)
            .collect()
    }

    /// Findings of one kind.
    pub fn of_kind(&self, kind: DiagnosticKind) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.kind == kind).collect()
    }

    /// True when the run had no error-severity findings (perf advisories
    /// are allowed — they depend on eviction timing, which the runtime
    /// cannot observe).
    pub fn is_clean(&self) -> bool {
        self.errors().is_empty()
    }

    /// The report as a JSON object (hand-rolled — the workspace carries no
    /// serde). Shape:
    ///
    /// ```json
    /// {"events":N,"suppressed":N,"errors":N,"perf":N,"clean":bool,
    ///  "diagnostics":[{"kind":"persist_race","severity":"error",
    ///                  "line":12,"addr":null,"epoch":3,"detail":"..."}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.diagnostics.len() * 96);
        out.push_str(&format!(
            "{{\"events\":{},\"suppressed\":{},\"errors\":{},\"perf\":{},\"clean\":{},\
             \"diagnostics\":[",
            self.events,
            self.suppressed,
            self.errors().len(),
            self.perf().len(),
            self.is_clean(),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"kind\":");
            push_json_str(&mut out, d.kind.name());
            out.push_str(",\"severity\":");
            push_json_str(
                &mut out,
                match d.severity() {
                    Severity::Error => "error",
                    Severity::Perf => "perf",
                },
            );
            out.push_str(",\"line\":");
            push_opt_u64(&mut out, d.line);
            out.push_str(",\"addr\":");
            push_opt_u64(&mut out, d.addr);
            out.push_str(",\"epoch\":");
            push_opt_u64(&mut out, d.epoch);
            out.push_str(",\"detail\":");
            push_json_str(&mut out, &d.detail);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let errors = self.errors().len();
        let perf = self.perf().len();
        writeln!(
            f,
            "trace check: {} events, {errors} error(s), {perf} perf advisor{}{}",
            self.events,
            if perf == 1 { "y" } else { "ies" },
            if self.suppressed > 0 {
                format!(", {} suppressed", self.suppressed)
            } else {
                String::new()
            }
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(kind: DiagnosticKind) -> Diagnostic {
        Diagnostic {
            kind,
            line: Some(3),
            addr: None,
            epoch: Some(2),
            detail: "t".into(),
        }
    }

    #[test]
    fn severity_split() {
        let r = Report {
            diagnostics: vec![
                diag(DiagnosticKind::MissedFlush),
                diag(DiagnosticKind::RedundantFlush),
            ],
            events: 10,
            suppressed: 0,
        };
        assert_eq!(r.errors().len(), 1);
        assert_eq!(r.perf().len(), 1);
        assert!(!r.is_clean());
        let clean = Report {
            diagnostics: vec![diag(DiagnosticKind::RedundantFlush)],
            events: 5,
            suppressed: 0,
        };
        assert!(clean.is_clean(), "perf advisories do not dirty a run");
    }

    #[test]
    fn display_mentions_kind_and_line() {
        let s = diag(DiagnosticKind::MissedFlush).to_string();
        assert!(s.contains("MissedFlush") && s.contains("line 3"), "{s}");
    }

    #[test]
    fn race_kinds_are_errors() {
        assert_eq!(DiagnosticKind::PersistRace.severity(), Severity::Error);
        assert_eq!(DiagnosticKind::UnorderedCommit.severity(), Severity::Error);
    }

    #[test]
    fn json_shape_and_escaping() {
        let mut d = diag(DiagnosticKind::PersistRace);
        d.detail = "a \"quoted\"\nline\t\\".into();
        let r = Report {
            diagnostics: vec![d, diag(DiagnosticKind::RedundantFlush)],
            events: 7,
            suppressed: 1,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(
            j.contains("\"events\":7")
                && j.contains("\"suppressed\":1")
                && j.contains("\"errors\":1")
                && j.contains("\"perf\":1")
                && j.contains("\"clean\":false"),
            "{j}"
        );
        assert!(j.contains("\"kind\":\"persist_race\""), "{j}");
        assert!(j.contains("\"severity\":\"perf\""), "{j}");
        assert!(j.contains("\\\"quoted\\\"\\nline\\t\\\\"), "{j}");
        assert!(
            j.contains("\"line\":3") && j.contains("\"addr\":null"),
            "{j}"
        );
        // Balanced braces/brackets — the cheap well-formedness check.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced: {j}"
        );
    }

    #[test]
    fn clean_empty_report_json() {
        let j = Report::default().to_json();
        assert!(
            j.contains("\"clean\":true") && j.contains("\"diagnostics\":[]"),
            "{j}"
        );
    }
}
