//! # respct-analysis — trace-based persistency checking for ResPCT
//!
//! Dynamic analysis in the pmemcheck/PMTest tradition, specialized to the
//! ResPCT algorithm. The `respct-pmem` region emits a typed event stream
//! (stores, `pwb`/`psync`, simulator evictions, crash/restore) interleaved
//! with semantic markers from the runtime (InCLL cell declarations and log
//! records, tracking-list appends, checkpoint and recovery phases). The
//! [`Checker`] replays that stream online against a cache-line state
//! machine and reports violations of the paper's persistency discipline as
//! structured [`Diagnostic`]s:
//!
//! * **missed flush** — a tracked line not durable when its epoch committed;
//! * **logging violation** — an InCLL record overwritten before its
//!   in-line backup + epoch tag for the running epoch (Fig. 4 lines 24–29);
//! * **cross-line ordering** — the epoch-counter commit racing an unfenced
//!   data write-back (a missing `psync`);
//! * **redundant flush** — a `pwb` of already-durable content (perf
//!   advisory, [`Severity::Perf`]);
//! * **epoch discipline** — non-+1 epoch advances, wrong-epoch checkpoint /
//!   log / recovery markers.
//!
//! ## Usage
//!
//! ```
//! use respct::{Pool, PoolConfig};
//! use respct_analysis::Checker;
//! use respct_pmem::{Region, RegionConfig, SimConfig};
//!
//! let region = Region::new(RegionConfig::sim(8 << 20, SimConfig::no_eviction(1)));
//! let checker = Checker::attach(&region);       // before any pool traffic
//! let pool = Pool::create(region, PoolConfig::default()).expect("pool");
//! let h = pool.register();
//! let c = h.alloc_cell(1u64);
//! h.update(c, 2);
//! h.checkpoint_here();
//! checker.assert_clean();                        // no discipline violations
//! ```
//!
//! The `respct-check` binary runs the standard workloads (hash map, queue,
//! KV store, plus crash/recovery cycles) under the checker and prints each
//! report — a smoke test for the runtime's persistency discipline.
//!
//! The [`sweep`] module goes further than the online rules: it replays a
//! recorded trace, materializes the crash images reachable under PCSO at
//! every persistency-relevant instant, runs real recovery on each, and
//! compares the result against a model oracle (`respct-check --sweep`).

//!
//! The [`race`] module adds a second, orthogonal analysis: a FastTrack-style
//! vector-clock happens-before engine over the runtime's synchronization
//! edges (`SyncRel`/`SyncAcq` events), flagging persist races on InCLL
//! cells, commit points not ordered after their charged fences, and racy
//! recovery reads (`respct-check --races`).

pub mod checker;
pub mod race;
pub mod report;
pub mod sweep;

pub use checker::Checker;
pub use race::RaceDetector;
pub use report::{Diagnostic, DiagnosticKind, Report, Severity};
pub use sweep::{sweep, SweepConfig, SweepReport};
