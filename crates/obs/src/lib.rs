//! # respct-obs — runtime observability for the ResPCT reproduction
//!
//! ResPCT's value proposition is quantitative: near-zero failure-free
//! overhead from in-cache-line logging, and checkpoint cost proportional to
//! the modified line set (paper §3.2, §5). Arguing about those numbers needs
//! more than coarse means — it needs RP-stall tails, per-shard flush skew,
//! and write-amplification ratios. This crate provides the primitives the
//! runtime threads those quantities through:
//!
//! * [`Counter`] — a cache-line-striped, lock-free monotonic counter. Hot
//!   paths pay one relaxed `fetch_add` on a stripe chosen per thread, so
//!   concurrent writers do not bounce a shared line.
//! * [`Histogram`] — a log-bucketed (HDR-style) value recorder: fixed
//!   memory, lock-free `record`, ≤ 1/16 relative error on quantiles, and a
//!   consistent-enough [`HistSnapshot`] readable while writers run.
//! * [`MetricsRegistry`] — a named collection of counters, histograms, and
//!   read-on-demand gauge callbacks, aggregated into two sinks: Prometheus
//!   text exposition ([`MetricsRegistry::to_prometheus`]) and a JSON
//!   snapshot ([`MetricsRegistry::to_json`]).
//! * [`MetricsServer`] — a tiny built-in TCP listener serving the
//!   Prometheus text format (`GET /metrics`) and the JSON snapshot
//!   (`GET /json`).
//! * [`Reporter`] — a periodic snapshot thread with an RAII guard,
//!   mirroring the runtime's `start_checkpointer`.
//!
//! Everything is dependency-free std (plus `crossbeam::CachePadded`); no
//! allocation on any record path.

mod counter;
mod hist;
mod registry;
mod report;
mod server;

pub use counter::Counter;
pub use hist::{HistSnapshot, Histogram};
pub use registry::{MetricsRegistry, Unit};
pub use report::{Reporter, ReporterGuard};
pub use server::{MetricsServer, MetricsServerGuard};
