//! Periodic metrics reporter.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::MetricsRegistry;

/// Runs a callback on a JSON snapshot of the registry at a fixed period,
/// on a background thread, until the returned guard is dropped. Mirrors the
/// runtime's `start_checkpointer` guard idiom.
pub struct Reporter;

impl Reporter {
    /// Starts the reporter. `emit` receives the registry's JSON snapshot
    /// once per `period` (first emission after one full period, and a final
    /// one at shutdown so short runs still produce output).
    pub fn start(
        registry: Arc<MetricsRegistry>,
        period: Duration,
        emit: impl Fn(&str) + Send + 'static,
    ) -> ReporterGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("respct-reporter".into())
            .spawn(move || {
                // Sleep in short slices so drop() never waits a full period.
                let slice = Duration::from_millis(10).min(period);
                let mut elapsed = Duration::ZERO;
                loop {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed >= period {
                        elapsed = Duration::ZERO;
                        emit(&registry.to_json());
                    }
                }
                emit(&registry.to_json());
            })
            .expect("spawn metrics reporter thread");
        ReporterGuard {
            stop,
            handle: Some(handle),
        }
    }
}

/// RAII guard for a running [`Reporter`]; dropping it emits one final
/// snapshot and joins the thread.
pub struct ReporterGuard {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ReporterGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReporterGuard").finish()
    }
}

impl Drop for ReporterGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Unit;
    use std::sync::Mutex;

    #[test]
    fn emits_periodically_and_on_drop() {
        let registry = Arc::new(MetricsRegistry::new());
        let c = registry.counter("rep_total", "reporter test", Unit::None);
        c.add(9);
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let guard = Reporter::start(
            Arc::clone(&registry),
            Duration::from_millis(20),
            move |json| sink.lock().unwrap().push(json.to_string()),
        );
        std::thread::sleep(Duration::from_millis(60));
        drop(guard);
        let seen = seen.lock().unwrap();
        assert!(!seen.is_empty(), "no snapshots emitted");
        assert!(seen.iter().all(|j| j.contains("\"rep_total\":9")));
    }
}
