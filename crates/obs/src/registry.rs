//! Named metric registry with Prometheus and JSON sinks.

use std::sync::Arc;

use parking_lot_shim::Mutex;

use crate::counter::Counter;
use crate::hist::Histogram;

// The workspace vendors parking_lot; obs only needs a plain mutex for the
// (cold) registration path, so std's suffices.
mod parking_lot_shim {
    /// Thin wrapper giving std's mutex parking_lot's panic-free `lock`.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }
}

/// Unit hint attached to a metric (rendered into help text and used by
/// consumers to scale values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless count.
    None,
    /// Nanoseconds.
    Nanos,
    /// Bytes.
    Bytes,
    /// Cache lines.
    Lines,
}

impl Unit {
    fn suffix(self) -> &'static str {
        match self {
            Unit::None => "",
            Unit::Nanos => " (ns)",
            Unit::Bytes => " (bytes)",
            Unit::Lines => " (cache lines)",
        }
    }
}

type GaugeFn = Box<dyn Fn() -> f64 + Send + Sync>;
type GaugeVecFn = Box<dyn Fn() -> Vec<(String, f64)> + Send + Sync>;

enum Kind {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
    /// Read-on-demand scalar (used to surface externally-owned counters,
    /// e.g. the pmem substrate's pwb/psync totals, and derived ratios).
    Gauge(GaugeFn),
    /// Read-on-demand labeled family: the closure returns
    /// `(label_value, value)` pairs for one label key.
    GaugeVec {
        label: &'static str,
        f: GaugeVecFn,
    },
}

struct Metric {
    name: &'static str,
    help: &'static str,
    unit: Unit,
    kind: Kind,
}

/// A named collection of metrics, aggregated on demand.
///
/// Registration is cold-path (startup) and takes a lock; the returned
/// `Arc<Counter>` / `Arc<Histogram>` handles are what hot paths touch, so
/// recording never goes through the registry.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<Vec<Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers and returns a monotonic counter.
    pub fn counter(&self, name: &'static str, help: &'static str, unit: Unit) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.metrics.lock().push(Metric {
            name,
            help,
            unit,
            kind: Kind::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Registers and returns a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str, unit: Unit) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.metrics.lock().push(Metric {
            name,
            help,
            unit,
            kind: Kind::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Registers a read-on-demand scalar gauge.
    pub fn gauge_fn(
        &self,
        name: &'static str,
        help: &'static str,
        unit: Unit,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.metrics.lock().push(Metric {
            name,
            help,
            unit,
            kind: Kind::Gauge(Box::new(f)),
        });
    }

    /// Registers a read-on-demand labeled gauge family (one label key; the
    /// closure yields `(label_value, value)` pairs, e.g. per-thread or
    /// per-shard series).
    pub fn gauge_vec_fn(
        &self,
        name: &'static str,
        help: &'static str,
        unit: Unit,
        label: &'static str,
        f: impl Fn() -> Vec<(String, f64)> + Send + Sync + 'static,
    ) {
        self.metrics.lock().push(Metric {
            name,
            help,
            unit,
            kind: Kind::GaugeVec {
                label,
                f: Box::new(f),
            },
        });
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, cumulative `_bucket`
    /// series with `le` labels for histograms, `_total` suffixes left to
    /// the metric names themselves.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for m in self.metrics.lock().iter() {
            let name = m.name;
            out.push_str(&format!("# HELP {name} {}{}\n", m.help, m.unit.suffix()));
            match &m.kind {
                Kind::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Kind::Gauge(f) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_f64(f())));
                }
                Kind::GaugeVec { label, f } => {
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                    for (lv, v) in f() {
                        out.push_str(&format!("{name}{{{label}=\"{lv}\"}} {}\n", fmt_f64(v)));
                    }
                }
                Kind::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for (bound, c) in &s.buckets {
                        cum += c;
                        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", s.count));
                    out.push_str(&format!("{name}_sum {}\n", s.sum));
                    out.push_str(&format!("{name}_count {}\n", s.count));
                }
            }
        }
        out
    }

    /// Renders every metric as one JSON object: counters and gauges as
    /// numbers, histograms as `{count, sum, min, max, mean, p50, p95, p99}`
    /// objects, gauge families as nested objects keyed by label value.
    pub fn to_json(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for m in self.metrics.lock().iter() {
            let name = m.name;
            match &m.kind {
                Kind::Counter(c) => parts.push(format!("\"{name}\":{}", c.get())),
                Kind::Gauge(f) => parts.push(format!("\"{name}\":{}", fmt_f64(f()))),
                Kind::GaugeVec { f, .. } => {
                    let inner: Vec<String> = f()
                        .into_iter()
                        .map(|(lv, v)| format!("\"{lv}\":{}", fmt_f64(v)))
                        .collect();
                    parts.push(format!("\"{name}\":{{{}}}", inner.join(",")));
                }
                Kind::Histogram(h) => {
                    let s = h.snapshot();
                    parts.push(format!(
                        "\"{name}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        s.count,
                        s.sum,
                        s.min,
                        s.max,
                        fmt_f64(s.mean()),
                        s.p50(),
                        s.p95(),
                        s.p99()
                    ));
                }
            }
        }
        format!("{{{}}}", parts.join(","))
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.metrics.lock().len())
            .finish()
    }
}

/// JSON/Prometheus-safe float rendering: finite values as-is, non-finite as
/// 0 (JSON has no NaN/Inf literal and a scrape must never be malformed).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.0}")
        } else {
            format!("{v}")
        }
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_exposition_shape() {
        let r = MetricsRegistry::new();
        let c = r.counter("test_ops_total", "ops", Unit::None);
        let h = r.histogram("test_latency_ns", "latency", Unit::Nanos);
        r.gauge_fn("test_ratio", "ratio", Unit::None, || 1.5);
        r.gauge_vec_fn("test_per_slot", "per slot", Unit::Nanos, "slot", || {
            vec![("0".into(), 10.0), ("3".into(), 20.0)]
        });
        c.add(7);
        h.record(100);
        h.record(200);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE test_ops_total counter"));
        assert!(text.contains("test_ops_total 7"));
        assert!(text.contains("# TYPE test_latency_ns histogram"));
        assert!(text.contains("test_latency_ns_count 2"));
        assert!(text.contains("test_latency_ns_sum 300"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("test_ratio 1.5"));
        assert!(text.contains("test_per_slot{slot=\"3\"} 20"));
    }

    #[test]
    fn json_snapshot_shape() {
        let r = MetricsRegistry::new();
        let c = r.counter("ops", "ops", Unit::None);
        let h = r.histogram("lat", "lat", Unit::Nanos);
        c.add(3);
        h.record(50);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"ops\":3"));
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\"p99\":"));
    }

    #[test]
    fn fmt_f64_never_emits_nan() {
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        assert_eq!(fmt_f64(2.0), "2");
    }
}
