//! Minimal HTTP listener exposing the registry's sinks.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::MetricsRegistry;

/// A tiny single-threaded HTTP server over [`std::net::TcpListener`]:
///
/// * `GET /metrics` → Prometheus text exposition
/// * `GET /json` (or `/`) → JSON snapshot
///
/// One request per connection, no keep-alive, no TLS — just enough for
/// `curl` and a Prometheus scraper. Bind to port 0 to let the OS pick a
/// free port (tests do this); [`MetricsServerGuard::local_addr`] reports
/// the bound address.
pub struct MetricsServer;

impl MetricsServer {
    /// Binds `addr` and serves the registry on a background thread until
    /// the returned guard is dropped.
    pub fn serve(
        registry: Arc<MetricsRegistry>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<MetricsServerGuard> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("respct-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Best effort: a slow or broken client must not wedge
                    // the listener.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
                    let _ = handle_conn(stream, &registry);
                }
            })
            .expect("spawn metrics server thread");
        Ok(MetricsServerGuard {
            stop,
            local_addr,
            handle: Some(handle),
        })
    }
}

fn handle_conn(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    // Read until end-of-headers (clients may send the request in several
    // segments; answering after the first would reset their next write).
    // Only the request line is interpreted; headers and body are ignored.
    let mut buf = [0u8; 1024];
    let mut n = 0;
    while n < buf.len() {
        let got = stream.read(&mut buf[n..])?;
        n += got;
        if got == 0 || buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let req = String::from_utf8_lossy(&buf[..n]);
    let path = req
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, ctype, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.to_prometheus(),
        ),
        "/" | "/json" => ("200 OK", "application/json", registry.to_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(resp.as_bytes())
}

/// RAII guard for a running [`MetricsServer`]; dropping it stops the
/// listener thread.
pub struct MetricsServerGuard {
    stop: Arc<AtomicBool>,
    local_addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServerGuard {
    /// The address the listener is bound to (resolves port 0 binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl std::fmt::Debug for MetricsServerGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServerGuard")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Drop for MetricsServerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop blocks in `incoming()`; poke it with a throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Unit;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .expect("write request");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    #[test]
    fn serves_prometheus_and_json() {
        let registry = Arc::new(MetricsRegistry::new());
        let c = registry.counter("srv_test_total", "test counter", Unit::None);
        c.add(5);
        let guard = MetricsServer::serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let addr = guard.local_addr();

        let metrics = http_get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("srv_test_total 5"));

        let json = http_get(addr, "/json");
        assert!(json.contains("\"srv_test_total\":5"));

        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        drop(guard); // must not hang
    }
}
