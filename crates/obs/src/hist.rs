//! Log-bucketed (HDR-style) histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile error at
/// `2^-SUB_BITS` (6.25%).
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Buckets: `SUB` exact buckets for values `< SUB`, then `SUB` per octave
/// for octaves `SUB_BITS..=63`.
pub(crate) const NBUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// Bucket index of `v`. Exact below `SUB`; logarithmic with `SUB` linear
/// sub-buckets per octave above.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - u64::leading_zeros(v) as u64; // >= SUB_BITS
    let offset = (v >> (msb - SUB_BITS as u64)) - SUB; // 0..SUB
    (SUB + (msb - SUB_BITS as u64) * SUB + offset) as usize
}

/// Inclusive upper bound of bucket `idx` (the value reported for quantiles
/// that land in the bucket — conservative, never under-reports).
fn bucket_max(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let msb = SUB_BITS as u64 + (idx - SUB) / SUB;
    let offset = (idx - SUB) % SUB;
    // The top octave's last bucket tops out above u64::MAX; widen and clamp.
    let shift = msb - SUB_BITS as u64;
    let bound = ((u128::from(SUB + offset) << shift) + (1u128 << shift)) - 1;
    u64::try_from(bound).unwrap_or(u64::MAX)
}

/// A fixed-memory, lock-free histogram of `u64` values (typically
/// nanoseconds or line counts).
///
/// `record` is two relaxed `fetch_add`s plus two saturating min/max updates;
/// snapshots taken while writers run are *bucket-wise* consistent (each
/// bucket count is a value it held at some instant), which is the right
/// contract for monitoring.
pub struct Histogram {
    buckets: Box<[AtomicU64; NBUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        // `AtomicU64` is not Copy; build the array through a zeroed Vec.
        let v: Vec<AtomicU64> = (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NBUCKETS]> =
            v.into_boxed_slice().try_into().expect("NBUCKETS length");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((bucket_max(i), c));
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        HistSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// A point-in-time copy of a [`Histogram`]: sparse `(bucket_upper_bound,
/// count)` pairs in increasing bound order, plus the scalar aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// The value at quantile `q` in `[0, 1]` (upper bound of the bucket the
    /// quantile lands in, clamped to the observed max). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bound, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_max(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = None;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            100,
            1000,
            65_535,
            65_536,
            1 << 30,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let b = bucket_of(v);
            assert!(b < NBUCKETS, "bucket {b} out of range for {v}");
            assert!(bucket_max(b) >= v, "upper bound below value for {v}");
            if let Some((pv, pb)) = prev {
                let _: u64 = pv;
                assert!(b >= pb, "bucket order violated at {v}");
            }
            prev = Some((v, b));
        }
    }

    #[test]
    fn bucket_bound_relative_error() {
        // The reported bound overshoots by at most 1/SUB of the value.
        for shift in SUB_BITS..60 {
            let v = (1u64 << shift) + (1 << shift.saturating_sub(2));
            let bound = bucket_max(bucket_of(v));
            assert!(bound >= v);
            assert!(
                (bound - v) as f64 <= v as f64 / SUB as f64,
                "error too large at {v}: bound {bound}"
            );
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        let p50 = s.p50();
        assert!((470..=540).contains(&p50), "p50 = {p50}");
        let p99 = s.p99();
        assert!((980..=1000).contains(&p99), "p99 = {p99}");
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn concurrent_records_count_exactly() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..25_000u64 {
                        h.record(t * 1000 + i % 997);
                    }
                });
            }
        });
        assert_eq!(h.count(), 100_000);
        let s = h.snapshot();
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 100_000);
    }
}
