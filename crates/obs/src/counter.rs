//! Cache-line-striped monotonic counters.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam::utils::CachePadded;

/// Number of stripes. Enough that a handful of program threads rarely
/// share one; small enough that a registry full of counters stays compact.
const STRIPES: usize = 16;

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stripe index for this thread: sequentially assigned, so up to
    /// `STRIPES` threads get private stripes before any sharing begins.
    static STRIPE: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// A lock-free monotonic counter striped across cache lines.
///
/// `add` is one relaxed `fetch_add` on the calling thread's stripe;
/// `get` sums the stripes (reads may be torn across stripes, which is fine
/// for monotonic diagnostics — the sum is a value the counter passed
/// through or will pass through).
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [CachePadded<AtomicU64>; STRIPES],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        let s = STRIPE.with(|s| *s);
        self.stripes[s].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all stripes.
    pub fn get(&self) -> u64 {
        self.stripes.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
