//! Typed errors for region construction and the file-backed paths.
//!
//! The substrate used to leak raw [`std::io::Error`]s from the save/load
//! helpers; every fallible region operation now reports a [`RegionError`]
//! carrying the path and operation that failed, so callers (and the
//! `PoolError::Backend` wrapper upstairs) can print something actionable.

use std::io;
use std::path::PathBuf;

/// Error from region construction or a backend I/O operation.
///
/// Clonable and comparable (unlike `std::io::Error`) so pool errors that
/// wrap it stay `Clone + PartialEq`; the original error is captured as its
/// [`io::ErrorKind`] plus rendered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// A configuration value failed validation (the message says which).
    InvalidConfig(&'static str),
    /// An I/O operation on a backing file failed.
    Io {
        /// File the operation targeted.
        path: PathBuf,
        /// What we were doing: `"open"`, `"create"`, `"set_len"`, `"mmap"`,
        /// `"msync"`, `"read"`, `"write"`, `"rename"`, `"metadata"`.
        op: &'static str,
        /// Kind of the underlying `std::io::Error`.
        kind: io::ErrorKind,
        /// Rendered message of the underlying error.
        message: String,
    },
    /// A backing file exists but does not look like a region image
    /// (zero length or not a whole number of cache lines).
    BadImage { path: PathBuf, len: u64 },
    /// The requested backend is not available on this platform.
    Unsupported(&'static str),
}

impl RegionError {
    /// Wraps an `io::Error` with the path and operation that produced it.
    pub fn io(path: impl Into<PathBuf>, op: &'static str, err: &io::Error) -> RegionError {
        RegionError::Io {
            path: path.into(),
            op,
            kind: err.kind(),
            message: err.to_string(),
        }
    }
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::InvalidConfig(msg) => write!(f, "invalid region config: {msg}"),
            RegionError::Io {
                path, op, message, ..
            } => write!(f, "{op} failed on {}: {message}", path.display()),
            RegionError::BadImage { path, len } => write!(
                f,
                "{} is not a region image: length {len} is not a positive cache-line multiple",
                path.display()
            ),
            RegionError::Unsupported(msg) => write!(f, "unsupported backend: {msg}"),
        }
    }
}

impl std::error::Error for RegionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_wrap_keeps_context() {
        let e = io::Error::new(io::ErrorKind::NotFound, "no such file");
        let r = RegionError::io("/tmp/pool.img", "open", &e);
        let s = r.to_string();
        assert!(s.contains("open"), "{s}");
        assert!(s.contains("/tmp/pool.img"), "{s}");
        assert!(s.contains("no such file"), "{s}");
        assert_eq!(r.clone(), r);
    }

    #[test]
    fn display_variants() {
        assert!(RegionError::InvalidConfig("size must be positive")
            .to_string()
            .contains("size"));
        let bad = RegionError::BadImage {
            path: PathBuf::from("x.img"),
            len: 100,
        };
        assert!(bad.to_string().contains("100"));
        assert!(RegionError::Unsupported("mmap requires unix")
            .to_string()
            .contains("mmap"));
    }
}
