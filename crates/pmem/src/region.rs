//! The NVMM arena.
//!
//! A [`Region`] is a cache-line-aligned memory arena standing in for an
//! App-Direct NVMM mapping. Persistent data structures address it with
//! [`PAddr`] offsets (stable across crash + recovery), and every access goes
//! through its typed accessors so the persistence substrate can interpose.
//!
//! The bytes themselves are owned by a pluggable [`PmemBackend`]
//! (see [`crate::backend`]): a heap arena with modeled latency
//! ([`FastBackend`]), the same arena under the PCSO simulator
//! ([`SimBackend`]), or a file mapping that outlives the process
//! ([`MmapBackend`](crate::mmap::MmapBackend)). The region caches the
//! backend's base pointer, latency model, and simulator handle, so the
//! store/load hot paths are identical for every backend; only `pwb`,
//! `psync`, and `sync_data` dispatch dynamically.
//!
//! All accesses are implemented as **relaxed atomic operations** of the
//! access width. On x86-64 these compile to plain `mov`s, so fast mode pays
//! nothing, while the API stays sound even if an application violates the
//! paper's race-freedom assumption (a race then yields an unexpected value,
//! not undefined behavior — mirroring what the hardware would do).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU16, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use crate::backend::{BackendKind, FastBackend, PmemBackend, SimBackend};
use crate::error::RegionError;
use crate::latency::{charge_ns, LatencyModel};
use crate::mmap::MmapBackend;
use crate::sim::{CacheSim, CrashImage, CrashMode, SimConfig};
use crate::stats::PmemStats;
use crate::trace::{trace_tid, SyncToken, TraceEvent, TraceMarker, TraceSink};
use crate::{PAddr, Pod, CACHE_LINE};

/// Operating mode of a [`Region`] — which [`PmemBackend`] it runs on.
#[derive(Debug, Clone)]
pub enum RegionMode {
    /// Benchmark mode: direct accesses, accounting-only write-backs,
    /// modeled latency. No crash injection available.
    Fast(LatencyModel),
    /// Test mode: every access updates the PCSO simulator; crash injection
    /// and recovery are available.
    Sim(SimConfig),
    /// File-backed mode: a `MAP_SHARED` mapping of the given pool file;
    /// `pwb` issues the real `clwb` and the pool survives the process.
    Mmap(PathBuf),
}

/// Construction parameters for a [`Region`].
///
/// Build one with the named constructors ([`fast`](RegionConfig::fast),
/// [`optane`](RegionConfig::optane), [`sim`](RegionConfig::sim),
/// [`mmap`](RegionConfig::mmap)) or the validated
/// [`builder`](RegionConfig::builder).
#[derive(Debug, Clone)]
pub struct RegionConfig {
    /// Arena size in bytes (rounded up to a whole number of cache lines).
    /// For an mmap region this is the size of a *newly created* pool file;
    /// an existing file is mapped at its own length.
    pub(crate) size: usize,
    pub(crate) mode: RegionMode,
}

impl RegionConfig {
    /// A fast-mode region with no modeled latency (DRAM-like).
    pub fn fast(size: usize) -> Self {
        RegionConfig {
            size,
            mode: RegionMode::Fast(LatencyModel::dram()),
        }
    }

    /// A fast-mode region charging Optane-like latency.
    pub fn optane(size: usize) -> Self {
        RegionConfig {
            size,
            mode: RegionMode::Fast(LatencyModel::optane()),
        }
    }

    /// A sim-mode region with the given simulator configuration.
    pub fn sim(size: usize, cfg: SimConfig) -> Self {
        RegionConfig {
            size,
            mode: RegionMode::Sim(cfg),
        }
    }

    /// A file-backed region at `path` (create-or-recover; `size` applies
    /// only when the file does not exist yet).
    pub fn mmap(size: usize, path: impl Into<PathBuf>) -> Self {
        RegionConfig {
            size,
            mode: RegionMode::Mmap(path.into()),
        }
    }

    /// Starts a validated builder.
    pub fn builder() -> RegionConfigBuilder {
        RegionConfigBuilder {
            size: None,
            mode: RegionMode::Fast(LatencyModel::dram()),
        }
    }

    /// Configured arena size in bytes (before line rounding).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Configured operating mode.
    pub fn mode(&self) -> &RegionMode {
        &self.mode
    }
}

/// Validated builder for [`RegionConfig`], mirroring `PoolConfig::builder`.
#[derive(Debug, Clone)]
pub struct RegionConfigBuilder {
    size: Option<usize>,
    mode: RegionMode,
}

impl RegionConfigBuilder {
    /// Arena size in bytes. Required for heap-backed modes; optional for
    /// [`RegionMode::Mmap`] when the pool file already exists.
    pub fn size(mut self, size: usize) -> Self {
        self.size = Some(size);
        self
    }

    /// Operating mode (default: [`RegionMode::Fast`] with DRAM latency).
    pub fn mode(mut self, mode: RegionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Validates and produces the config.
    ///
    /// # Errors
    ///
    /// [`RegionError::InvalidConfig`] when the size is missing or zero for
    /// a heap-backed mode, or when an mmap path is empty.
    pub fn build(self) -> Result<RegionConfig, RegionError> {
        let size = self.size.unwrap_or(0);
        match &self.mode {
            RegionMode::Fast(_) | RegionMode::Sim(_) => {
                if size == 0 {
                    return Err(RegionError::InvalidConfig("region size must be positive"));
                }
            }
            RegionMode::Mmap(path) => {
                // Size 0 is allowed: it means "the pool file must already
                // exist"; MmapBackend rejects creating an empty pool.
                if path.as_os_str().is_empty() {
                    return Err(RegionError::InvalidConfig(
                        "mmap backend needs a non-empty pool path",
                    ));
                }
            }
        }
        Ok(RegionConfig {
            size,
            mode: self.mode,
        })
    }
}

/// An NVMM arena over a pluggable backend. See the module docs.
pub struct Region {
    /// The persistence substrate owning the bytes. Held for `pwb`/`psync`/
    /// `sync_data` dispatch and to keep the arena alive; everything on the
    /// store/load hot paths is cached in the fields below.
    backend: Arc<dyn PmemBackend>,
    buf: *mut u8,
    size: usize,
    latency: LatencyModel,
    latency_free: bool,
    sim: Option<Arc<CacheSim>>,
    stats: Arc<PmemStats>,
    /// Optional persistency-event observer (set once, read on every access;
    /// a single relaxed-ish atomic load when unset).
    trace: std::sync::OnceLock<Arc<dyn TraceSink>>,
    /// When set (and a sink is attached), loads are reported as
    /// [`TraceEvent::Load`] events. Recovery enables this so the race
    /// detector can see recovery-time reads; normal execution leaves it off
    /// (one predictable relaxed load per `load` call).
    trace_loads: std::sync::atomic::AtomicBool,
}

// SAFETY: the raw buffer is only accessed through atomic operations (or
// under the simulator's shard locks), and the backing allocation is owned
// by the backend, which the `Region` keeps alive for its whole lifetime.
unsafe impl Send for Region {}
// SAFETY: as above.
unsafe impl Sync for Region {}

impl Region {
    /// Opens a region on the configured backend.
    ///
    /// Heap-backed modes allocate a zeroed arena. [`RegionMode::Mmap`]
    /// resolves to create-or-recover: a missing or empty pool file is
    /// created at the configured size; an existing file is mapped as-is
    /// (check [`Region::was_created`] to know which happened).
    ///
    /// # Errors
    ///
    /// [`RegionError::InvalidConfig`] for a zero-sized heap region, plus
    /// the I/O and image errors of the mmap backend.
    pub fn try_new(cfg: RegionConfig) -> Result<Arc<Region>, RegionError> {
        let backend: Arc<dyn PmemBackend> = match cfg.mode {
            RegionMode::Fast(lat) => {
                if cfg.size == 0 {
                    return Err(RegionError::InvalidConfig("region size must be positive"));
                }
                Arc::new(FastBackend::new(cfg.size, lat))
            }
            RegionMode::Sim(sim_cfg) => {
                if cfg.size == 0 {
                    return Err(RegionError::InvalidConfig("region size must be positive"));
                }
                Arc::new(SimBackend::new(cfg.size, sim_cfg))
            }
            RegionMode::Mmap(ref path) => Arc::new(MmapBackend::open(path, cfg.size)?),
        };
        Ok(Region::from_backend(backend))
    }

    /// Opens a region, panicking on failure.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the backend fails to open
    /// (allocation failure, pool-file I/O error). Use [`Region::try_new`]
    /// to handle these as errors.
    pub fn new(cfg: RegionConfig) -> Arc<Region> {
        Region::try_new(cfg).expect("region open failed")
    }

    /// Wraps an already-open backend in a region. This is how external
    /// backend implementations (outside this crate's three) plug in.
    pub fn from_backend(backend: Arc<dyn PmemBackend>) -> Arc<Region> {
        let latency = backend.latency();
        Arc::new(Region {
            buf: backend.base(),
            size: backend.size(),
            latency,
            latency_free: latency.is_free(),
            sim: backend.sim().cloned(),
            stats: Arc::clone(backend.stats()),
            backend,
            trace: std::sync::OnceLock::new(),
            trace_loads: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Region size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Which backend this region runs on.
    #[inline]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Path of the backing pool file, if the backend has one.
    pub fn path(&self) -> Option<&Path> {
        self.backend.path()
    }

    /// Whether the backend created its arena from scratch (`true`) or
    /// mapped existing content that may need recovery (`false`). Heap
    /// backends always report `true`.
    pub fn was_created(&self) -> bool {
        self.backend.was_created()
    }

    /// Flushes the arena to its backing store (`msync` for an mmap region;
    /// no-op for heap regions). This is the machine-crash durability point
    /// for pool files on non-DAX filesystems — `pwb`/`psync` alone only
    /// reach the kernel's copy of the pages there.
    pub fn sync_data(&self) -> Result<(), RegionError> {
        self.backend.sync_data()
    }

    /// Whether the persistence simulator is active.
    #[inline]
    pub fn is_sim(&self) -> bool {
        self.sim.is_some()
    }

    /// Instruction/event counters.
    pub fn stats(&self) -> &Arc<PmemStats> {
        &self.stats
    }

    /// Attaches a persistency-event observer. Every subsequent store, `pwb`,
    /// `psync`, eviction, crash/restore, and runtime marker is reported to
    /// `sink` (from the emitting thread). Works in both fast and sim mode.
    ///
    /// # Panics
    ///
    /// Panics if a sink is already attached (a region carries at most one
    /// observer for its lifetime; create a fresh region per checked run).
    pub fn set_trace_sink(&self, sink: Arc<dyn TraceSink>) {
        assert!(self.trace.set(sink).is_ok(), "trace sink already attached");
    }

    /// Whether a trace sink is attached.
    #[inline]
    pub fn is_traced(&self) -> bool {
        self.trace.get().is_some()
    }

    /// Reports a semantic runtime marker to the attached sink, if any.
    /// Called by the ResPCT runtime at epoch/checkpoint/recovery boundaries.
    #[inline]
    pub fn trace_marker(&self, marker: TraceMarker) {
        if let Some(sink) = self.trace.get() {
            sink.event(&TraceEvent::Marker {
                tid: trace_tid(),
                marker,
            });
        }
    }

    /// Reports a happens-before release edge on `token` to the attached
    /// sink, if any. Call *before* performing the releasing store so a
    /// matching acquire can never be observed first in the trace.
    #[inline]
    pub fn sync_release(&self, token: SyncToken) {
        self.emit(|| TraceEvent::SyncRel {
            tid: trace_tid(),
            token,
        });
    }

    /// Reports a happens-before acquire edge on `token` to the attached
    /// sink, if any. Call *after* observing the released value.
    #[inline]
    pub fn sync_acquire(&self, token: SyncToken) {
        self.emit(|| TraceEvent::SyncAcq {
            tid: trace_tid(),
            token,
        });
    }

    /// Enables or disables load tracing ([`TraceEvent::Load`] events).
    /// Recovery turns this on around its read phase; it is off otherwise.
    pub fn set_trace_loads(&self, on: bool) {
        self.trace_loads
            .store(on, std::sync::atomic::Ordering::SeqCst);
    }

    /// Emits one [`TraceEvent::Load`] per cache line covered by
    /// `[addr, addr + len)` when load tracing is enabled.
    #[inline]
    fn emit_load(&self, addr: PAddr, len: usize) {
        if len == 0 || !self.trace_loads.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        if self.trace.get().is_some() {
            let tid = trace_tid();
            let last = PAddr(addr.0 + len as u64 - 1).line();
            for line in addr.line()..=last {
                self.emit(|| TraceEvent::Load { tid, line });
            }
        }
    }

    #[inline]
    fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.trace.get() {
            sink.event(&f());
        }
    }

    /// Reports an eviction the simulator performed while absorbing a store.
    #[inline]
    fn emit_eviction(&self, victim: Option<u64>) {
        if let Some(line) = victim {
            self.emit(|| TraceEvent::Eviction { line });
        }
    }

    #[inline]
    fn check(&self, addr: PAddr, size: usize, align: usize) {
        let off = addr.0 as usize;
        assert!(
            off.checked_add(size).is_some_and(|end| end <= self.size),
            "pmem access out of bounds: {addr:?} + {size} > {}",
            self.size
        );
        assert!(
            off.is_multiple_of(align),
            "misaligned pmem access: {addr:?} align {align}"
        );
    }

    #[inline]
    fn ptr(&self, addr: PAddr) -> *mut u8 {
        // Bounds were validated by `check` on every public path.
        self.buf.wrapping_add(addr.0 as usize)
    }

    /// Stores `val` at `addr`.
    ///
    /// `addr` must be aligned for `T` and in bounds (checked). Values of up
    /// to 8 bytes are written with a single atomic store; larger `Pod`s are
    /// written as multiple word stores (callers that need the InCLL
    /// same-line guarantee keep such values within one cache line).
    #[inline]
    pub fn store<T: Pod>(&self, addr: PAddr, val: T) {
        let size = std::mem::size_of::<T>();
        self.check(addr, size, std::mem::align_of::<T>());
        // Fast path: word-sized stores compile to a single relaxed mov
        // (plus the amortized latency charge in NVMM-latency mode).
        if size == 8 && self.sim.is_none() {
            let mut w = 0u64;
            // SAFETY: `T` is Pod with size 8; copying its representation.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    &val as *const T as *const u8,
                    &mut w as *mut u64 as *mut u8,
                    8,
                );
            };
            self.emit(|| TraceEvent::store(trace_tid(), addr.0, &w.to_ne_bytes()));
            // SAFETY: in-bounds, 8-aligned (checked above).
            unsafe { (*(self.ptr(addr) as *const AtomicU64)).store(w, Ordering::Relaxed) };
            if !self.latency_free {
                charge_ns(self.latency.store_ns);
            }
            return;
        }
        let mut bytes = [0u8; 16];
        assert!(size <= 16, "Pod types are at most 16 bytes");
        // SAFETY: `T: Pod` is plain data of `size <= 16` bytes; copying its
        // object representation into a byte buffer is valid.
        unsafe {
            std::ptr::copy_nonoverlapping(&val as *const T as *const u8, bytes.as_mut_ptr(), size);
        };
        self.emit(|| TraceEvent::store(trace_tid(), addr.0, &bytes[..size]));
        if let Some(sim) = &self.sim {
            self.store_bytes_sim(sim, addr, &bytes[..size]);
        } else {
            // SAFETY: in-bounds, aligned (checked above).
            unsafe { atomic_store_raw(self.ptr(addr), &bytes[..size]) };
            if !self.latency_free {
                charge_ns(self.latency.store_ns);
            }
        }
    }

    /// Loads a `T` from `addr` (aligned, in bounds — checked).
    #[inline]
    pub fn load<T: Pod>(&self, addr: PAddr) -> T {
        let size = std::mem::size_of::<T>();
        self.check(addr, size, std::mem::align_of::<T>());
        self.emit_load(addr, size);
        // Fast path: word-sized loads compile to a single relaxed mov
        // (plus the amortized latency charge in NVMM-latency mode).
        if size == 8 {
            // SAFETY: in-bounds, 8-aligned (checked above).
            let w = unsafe { (*(self.ptr(addr) as *const AtomicU64)).load(Ordering::Relaxed) };
            if !self.latency_free {
                charge_ns(self.latency.load_ns);
            }
            // SAFETY: `T` is Pod with size 8, valid for any bit pattern.
            return unsafe { std::ptr::read_unaligned(&w as *const u64 as *const T) };
        }
        let mut bytes = [0u8; 16];
        assert!(size <= 16, "Pod types are at most 16 bytes");
        // SAFETY: in-bounds, aligned (checked above).
        unsafe { atomic_load_raw(self.ptr(addr), &mut bytes[..size]) };
        if !self.latency_free {
            charge_ns(self.latency.load_ns);
        }
        // SAFETY: `T: Pod` is valid for any bit pattern of its size.

        unsafe { std::ptr::read_unaligned(bytes.as_ptr() as *const T) }
    }

    /// Bulk store (used for payload blocks, registry entries, app data).
    /// Traced as one event per [`MAX_STORE_DATA`]-byte chunk, in program
    /// order, so the payload fits the events' inline buffers.
    ///
    /// [`MAX_STORE_DATA`]: crate::trace::MAX_STORE_DATA
    pub fn store_bytes(&self, addr: PAddr, data: &[u8]) {
        self.check(addr, data.len(), 1);
        if self.trace.get().is_some() {
            let tid = trace_tid();
            for (i, chunk) in data.chunks(crate::trace::MAX_STORE_DATA).enumerate() {
                let off = (i * crate::trace::MAX_STORE_DATA) as u64;
                self.emit(|| TraceEvent::store(tid, addr.0 + off, chunk));
            }
        }
        if let Some(sim) = &self.sim {
            self.store_bytes_sim(sim, addr, data);
        } else {
            // SAFETY: in-bounds (checked above).
            unsafe { atomic_store_raw(self.ptr(addr), data) };
            if !self.latency_free {
                charge_ns(self.latency.store_ns);
            }
        }
    }

    /// Bulk load.
    pub fn load_bytes(&self, addr: PAddr, out: &mut [u8]) {
        self.check(addr, out.len(), 1);
        self.emit_load(addr, out.len());
        // SAFETY: in-bounds (checked above).
        unsafe { atomic_load_raw(self.ptr(addr), out) };
        if !self.latency_free {
            charge_ns(self.latency.load_ns);
        }
    }

    /// Sim-mode store: per touched cache line, take the shard lock, write,
    /// mark dirty (which may trigger a random eviction).
    fn store_bytes_sim(&self, sim: &CacheSim, addr: PAddr, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let cur = addr.0 as usize + off;
            let line = (cur / CACHE_LINE) as u64;
            let line_end = (line as usize + 1) * CACHE_LINE;
            let chunk = (line_end - cur).min(data.len() - off);
            let guard = sim.lock_line(line);
            // SAFETY: in-bounds (checked by caller); the shard lock
            // serializes against simulator line snapshots.
            unsafe { atomic_store_raw(self.buf.wrapping_add(cur), &data[off..off + chunk]) };
            self.emit_eviction(sim.note_store(guard, line));
            off += chunk;
        }
    }

    /// Initiates a write-back of the cache line containing `addr` (paper's
    /// `pwb`, i.e. `clwb`). Asynchronous: complete only after [`psync`].
    ///
    /// [`psync`]: Region::psync
    #[inline]
    pub fn pwb(&self, addr: PAddr) {
        self.check(addr, 1, 1);
        self.emit(|| TraceEvent::Pwb {
            tid: trace_tid(),
            line: addr.line(),
        });
        if let Some(sim) = &self.sim {
            sim.pwb(addr.line());
        } else {
            // What a write-back *is* depends on the backend: the fast
            // backend only accounts for it (flushing emulated-NVMM DRAM
            // buys nothing and costs ~150 ns/line of host overhead), the
            // mmap backend issues the real `clwb` on the mapped line.
            self.backend.pwb(addr.line());
        }
    }

    /// Write-back by cache-line index (used by the flusher pool, whose
    /// tracking lists store line numbers).
    #[inline]
    pub fn pwb_line(&self, line: u64) {
        self.pwb(PAddr(line * CACHE_LINE as u64));
    }

    /// Drains this thread's outstanding write-backs (paper's `psync`,
    /// i.e. `sfence`).
    #[inline]
    pub fn psync(&self) {
        self.emit(|| TraceEvent::Psync { tid: trace_tid() });
        if let Some(sim) = &self.sim {
            sim.psync();
        } else {
            self.backend.psync();
        }
    }

    /// Flushes `len` bytes starting at `addr`: one `pwb` per covered line,
    /// then `psync`.
    pub fn flush_range(&self, addr: PAddr, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr.line();
        let last = PAddr(addr.0 + len as u64 - 1).line();
        for line in first..=last {
            self.pwb_line(line);
        }
        self.psync();
    }

    /// Atomic compare-and-swap of a u64 (for lock-free persistent
    /// structures: MS-queue links, SOFT buckets). Returns `Ok(current)` on
    /// success, `Err(actual)` on mismatch. AcqRel/Acquire ordering.
    pub fn cas_u64(&self, addr: PAddr, current: u64, new: u64) -> Result<u64, u64> {
        self.check(addr, 8, 8);
        let ptr = self.ptr(addr) as *const AtomicU64;
        if let Some(sim) = &self.sim {
            let line = addr.line();
            let guard = sim.lock_line(line);
            // SAFETY: in-bounds, 8-aligned (checked); atomics alias plain
            // memory we own; the shard lock serializes with simulator
            // snapshots.
            let res = unsafe { &*ptr }.compare_exchange(
                current,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            match res {
                Ok(v) => {
                    self.sync_acquire(SyncToken::Atomic { addr: addr.0 });
                    self.emit(|| TraceEvent::store(trace_tid(), addr.0, &new.to_ne_bytes()));
                    self.sync_release(SyncToken::Atomic { addr: addr.0 });
                    self.emit_eviction(sim.note_store(guard, line));
                    Ok(v)
                }
                Err(v) => {
                    self.sync_acquire(SyncToken::Atomic { addr: addr.0 });
                    Err(v)
                }
            }
        } else {
            // SAFETY: as above.
            let res = unsafe { &*ptr }.compare_exchange(
                current,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            self.sync_acquire(SyncToken::Atomic { addr: addr.0 });
            if res.is_ok() {
                self.emit(|| TraceEvent::store(trace_tid(), addr.0, &new.to_ne_bytes()));
                self.sync_release(SyncToken::Atomic { addr: addr.0 });
            }
            res
        }
    }

    /// Acquire-ordered u64 load (pairs with [`Region::store_release_u64`] /
    /// [`Region::cas_u64`] for lock-free readers).
    #[inline]
    pub fn load_acquire_u64(&self, addr: PAddr) -> u64 {
        self.check(addr, 8, 8);
        // SAFETY: in-bounds, 8-aligned (checked).
        let v = unsafe { &*(self.ptr(addr) as *const AtomicU64) }.load(Ordering::Acquire);
        self.sync_acquire(SyncToken::Atomic { addr: addr.0 });
        v
    }

    /// Release-ordered u64 store.
    #[inline]
    pub fn store_release_u64(&self, addr: PAddr, val: u64) {
        self.check(addr, 8, 8);
        self.sync_release(SyncToken::Atomic { addr: addr.0 });
        self.emit(|| TraceEvent::store(trace_tid(), addr.0, &val.to_ne_bytes()));
        if let Some(sim) = &self.sim {
            let line = addr.line();
            let guard = sim.lock_line(line);
            // SAFETY: in-bounds, 8-aligned (checked); serialized with the
            // simulator by the shard lock.
            unsafe { &*(self.ptr(addr) as *const AtomicU64) }.store(val, Ordering::Release);
            self.emit_eviction(sim.note_store(guard, line));
        } else {
            // SAFETY: as above.
            unsafe { &*(self.ptr(addr) as *const AtomicU64) }.store(val, Ordering::Release);
        }
    }

    /// Simulates a crash, returning the persisted image.
    ///
    /// # Panics
    ///
    /// Panics in fast mode (no simulator).
    pub fn crash(&self, mode: CrashMode) -> CrashImage {
        let sim = self
            .sim
            .as_ref()
            .expect("crash() requires a sim-mode region");
        self.emit(|| TraceEvent::Crash {
            all_persisted: mode == CrashMode::EvictAll,
        });
        sim.crash(mode)
    }

    /// Restores the volatile image from a crash image (simulated reboot of
    /// the same region) and resets the simulator so persisted == volatile.
    pub fn restore(&self, image: &CrashImage) {
        assert_eq!(image.bytes.len(), self.size, "crash image size mismatch");
        let sim = self
            .sim
            .as_ref()
            .expect("restore() requires a sim-mode region");
        // SAFETY: copying the full image into the owned buffer; callers only
        // restore while no application threads are running (reboot).
        unsafe { atomic_store_raw(self.buf, &image.bytes) };
        sim.reset_to(image);
        self.emit(|| TraceEvent::Restore);
    }

    /// Forces every dirty line to the persisted image (clean shutdown /
    /// test setup). No-op in fast mode.
    pub fn persist_all(&self) {
        if let Some(sim) = &self.sim {
            sim.persist_all();
            self.emit(|| TraceEvent::PersistAll);
        }
    }

    /// Writes the region's current content to `path` (atomic via a
    /// temporary file + rename). Pair with [`Region::load_file`] to carry
    /// an emulated pool across process runs by copy — an [`RegionMode::Mmap`]
    /// region makes the pool file the arena itself and needs neither.
    /// Callers should checkpoint first so the saved image is a consistent
    /// cut.
    pub fn save_file(&self, path: &std::path::Path) -> Result<(), RegionError> {
        let bytes = self.dump_volatile();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| RegionError::io(&tmp, "write", &e))?;
        std::fs::rename(&tmp, path).map_err(|e| RegionError::io(path, "rename", &e))
    }

    /// Creates a region initialized from a file previously written by
    /// [`Region::save_file`].
    ///
    /// # Errors
    ///
    /// [`RegionError::Io`] for read failures; [`RegionError::BadImage`] if
    /// the file length is not a positive whole number of cache lines (it
    /// always is for saved regions).
    pub fn load_file(path: &std::path::Path, mode: RegionMode) -> Result<Arc<Region>, RegionError> {
        let bytes = std::fs::read(path).map_err(|e| RegionError::io(path, "read", &e))?;
        if bytes.is_empty() || bytes.len() % CACHE_LINE != 0 {
            return Err(RegionError::BadImage {
                path: path.to_path_buf(),
                len: bytes.len() as u64,
            });
        }
        let region = Region::try_new(RegionConfig {
            size: bytes.len(),
            mode,
        })?;
        // SAFETY: writing the full owned buffer before any other handle to
        // the region exists.
        unsafe { atomic_store_raw(region.buf, &bytes) };
        if let Some(sim) = &region.sim {
            // The loaded content is the persisted baseline.
            sim.reset_to(&CrashImage { bytes });
        }
        Ok(region)
    }

    /// Reads the whole region into a plain byte vector (diagnostics).
    pub fn dump_volatile(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.size];
        // SAFETY: reading the full owned buffer.
        unsafe { atomic_load_raw(self.buf, &mut out) };
        out
    }
}

/// Relaxed atomic store of `data` at `ptr`, using the widest aligned lanes.
///
/// # Safety
///
/// `ptr .. ptr + data.len()` must be inside a live allocation.
unsafe fn atomic_store_raw(ptr: *mut u8, data: &[u8]) {
    let mut i = 0usize;
    let len = data.len();
    while i < len {
        let p = ptr.wrapping_add(i);
        let rem = len - i;
        let align = (p as usize).trailing_zeros();
        if rem >= 8 && align >= 3 {
            let v = u64::from_ne_bytes(data[i..i + 8].try_into().unwrap());
            // SAFETY: `p` is valid (caller contract), 8-aligned, and atomics
            // may alias plain memory we own.
            unsafe { (*(p as *const AtomicU64)).store(v, Ordering::Relaxed) };
            i += 8;
        } else if rem >= 4 && align >= 2 {
            let v = u32::from_ne_bytes(data[i..i + 4].try_into().unwrap());
            // SAFETY: as above, 4-aligned.
            unsafe { (*(p as *const AtomicU32)).store(v, Ordering::Relaxed) };
            i += 4;
        } else if rem >= 2 && align >= 1 {
            let v = u16::from_ne_bytes(data[i..i + 2].try_into().unwrap());
            // SAFETY: as above, 2-aligned.
            unsafe { (*(p as *const AtomicU16)).store(v, Ordering::Relaxed) };
            i += 2;
        } else {
            // SAFETY: as above, byte access.
            unsafe { (*(p as *const AtomicU8)).store(data[i], Ordering::Relaxed) };
            i += 1;
        }
    }
}

/// Relaxed atomic load into `out`. See [`atomic_store_raw`].
///
/// # Safety
///
/// `ptr .. ptr + out.len()` must be inside a live allocation.
unsafe fn atomic_load_raw(ptr: *const u8, out: &mut [u8]) {
    let mut i = 0usize;
    let len = out.len();
    while i < len {
        let p = ptr.wrapping_add(i);
        let rem = len - i;
        let align = (p as usize).trailing_zeros();
        if rem >= 8 && align >= 3 {
            // SAFETY: caller contract; 8-aligned.
            let v = unsafe { (*(p as *const AtomicU64)).load(Ordering::Relaxed) };
            out[i..i + 8].copy_from_slice(&v.to_ne_bytes());
            i += 8;
        } else if rem >= 4 && align >= 2 {
            // SAFETY: caller contract; 4-aligned.
            let v = unsafe { (*(p as *const AtomicU32)).load(Ordering::Relaxed) };
            out[i..i + 4].copy_from_slice(&v.to_ne_bytes());
            i += 4;
        } else if rem >= 2 && align >= 1 {
            // SAFETY: caller contract; 2-aligned.
            let v = unsafe { (*(p as *const AtomicU16)).load(Ordering::Relaxed) };
            out[i..i + 2].copy_from_slice(&v.to_ne_bytes());
            i += 2;
        } else {
            // SAFETY: caller contract; byte access.
            out[i] = unsafe { (*(p as *const AtomicU8)).load(Ordering::Relaxed) };
            i += 1;
        }
    }
}

pub use crate::sim::CrashMode as RegionCrashMode;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_roundtrip() {
        let r = Region::new(RegionConfig::fast(4096));
        r.store(PAddr(64), 0xdead_beef_u64);
        assert_eq!(r.load::<u64>(PAddr(64)), 0xdead_beef);
        r.store(PAddr(72), 7u32);
        assert_eq!(r.load::<u32>(PAddr(72)), 7);
        r.store(PAddr(80), -5i64);
        assert_eq!(r.load::<i64>(PAddr(80)), -5);
        r.store(PAddr(96), 1.5f64);
        assert_eq!(r.load::<f64>(PAddr(96)), 1.5);
    }

    #[test]
    fn bytes_roundtrip() {
        let r = Region::new(RegionConfig::fast(4096));
        let data: Vec<u8> = (0..200).collect();
        r.store_bytes(PAddr(100), &data); // unaligned, crosses lines
        let mut out = vec![0u8; 200];
        r.load_bytes(PAddr(100), &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn sixteen_byte_pod() {
        let r = Region::new(RegionConfig::fast(4096));
        r.store(PAddr(128), (1u64, 2u64));
        assert_eq!(r.load::<(u64, u64)>(PAddr(128)), (1, 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_store_panics() {
        let r = Region::new(RegionConfig::fast(128));
        r.store(PAddr(128), 1u64);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_store_panics() {
        let r = Region::new(RegionConfig::fast(128));
        r.store(PAddr(4), 1u64);
    }

    #[test]
    fn sim_crash_loses_unflushed() {
        let r = Region::new(RegionConfig::sim(4096, SimConfig::no_eviction(42)));
        r.store(PAddr(64), 11u64);
        r.store(PAddr(1024), 22u64);
        r.flush_range(PAddr(64), 8);
        let img = r.crash(CrashMode::PowerFailure);
        let flushed = u64::from_ne_bytes(img.bytes()[64..72].try_into().unwrap());
        let lost = u64::from_ne_bytes(img.bytes()[1024..1032].try_into().unwrap());
        assert_eq!(flushed, 11);
        assert_eq!(lost, 0);
    }

    #[test]
    fn sim_restore_resumes() {
        let r = Region::new(RegionConfig::sim(4096, SimConfig::no_eviction(42)));
        r.store(PAddr(64), 11u64);
        r.flush_range(PAddr(64), 8);
        let img = r.crash(CrashMode::PowerFailure);
        r.restore(&img);
        assert_eq!(r.load::<u64>(PAddr(64)), 11);
        // Continue working after "reboot".
        r.store(PAddr(64), 12u64);
        assert_eq!(r.load::<u64>(PAddr(64)), 12);
        let img2 = r.crash(CrashMode::PowerFailure);
        // 12 was never flushed after the reboot: image still holds 11.
        let v = u64::from_ne_bytes(img2.bytes()[64..72].try_into().unwrap());
        assert_eq!(v, 11);
    }

    #[test]
    fn size_rounds_to_lines() {
        let r = Region::new(RegionConfig::fast(100));
        assert_eq!(r.size(), 128);
    }

    #[test]
    fn concurrent_distinct_words() {
        let r = Region::new(RegionConfig::fast(4096));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = &r;
                s.spawn(move || {
                    let addr = PAddr(512 + t * 8);
                    for i in 0..1000u64 {
                        r.store(addr, t * 1_000_000 + i);
                    }
                });
            }
        });
        for t in 0..4u64 {
            assert_eq!(r.load::<u64>(PAddr(512 + t * 8)), t * 1_000_000 + 999);
        }
    }
}

#[cfg(test)]
mod cas_tests {
    use super::*;

    #[test]
    fn cas_success_and_failure() {
        let r = Region::new(RegionConfig::fast(4096));
        r.store(PAddr(64), 5u64);
        assert_eq!(r.cas_u64(PAddr(64), 5, 6), Ok(5));
        assert_eq!(r.cas_u64(PAddr(64), 5, 7), Err(6));
        assert_eq!(r.load::<u64>(PAddr(64)), 6);
    }

    #[test]
    fn acquire_release_roundtrip() {
        let r = Region::new(RegionConfig::fast(4096));
        r.store_release_u64(PAddr(128), 42);
        assert_eq!(r.load_acquire_u64(PAddr(128)), 42);
    }

    #[test]
    fn sim_cas_marks_line_dirty() {
        let r = Region::new(RegionConfig::sim(4096, SimConfig::no_eviction(3)));
        r.store(PAddr(64), 1u64);
        r.cas_u64(PAddr(64), 1, 2).unwrap();
        r.flush_range(PAddr(64), 8);
        let img = r.crash(crate::sim::CrashMode::PowerFailure);
        let v = u64::from_ne_bytes(img.bytes()[64..72].try_into().unwrap());
        assert_eq!(v, 2);
    }

    #[test]
    fn concurrent_cas_counter() {
        let r = Region::new(RegionConfig::fast(4096));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for _ in 0..1000 {
                        loop {
                            let cur = r.load_acquire_u64(PAddr(256));
                            if r.cas_u64(PAddr(256), cur, cur + 1).is_ok() {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(r.load::<u64>(PAddr(256)), 4000);
    }
}

#[cfg(test)]
mod file_tests {
    use super::*;

    #[test]
    fn save_and_load_roundtrip() {
        let dir = std::env::temp_dir().join("respct_region_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.img");
        let r = Region::new(RegionConfig::fast(8192));
        r.store(PAddr(128), 0xfeed_u64);
        r.save_file(&path).unwrap();
        let r2 = Region::load_file(
            &path,
            RegionMode::Fast(crate::latency::LatencyModel::dram()),
        )
        .unwrap();
        assert_eq!(r2.size(), 8192);
        assert_eq!(r2.load::<u64>(PAddr(128)), 0xfeed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_into_sim_mode_sets_baseline() {
        let dir = std::env::temp_dir().join("respct_region_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool_sim.img");
        let r = Region::new(RegionConfig::fast(4096));
        r.store(PAddr(64), 7u64);
        r.save_file(&path).unwrap();
        let r2 = Region::load_file(&path, RegionMode::Sim(SimConfig::no_eviction(1))).unwrap();
        // The loaded content counts as already persistent.
        let img = r2.crash(crate::sim::CrashMode::PowerFailure);
        let v = u64::from_ne_bytes(img.bytes()[64..72].try_into().unwrap());
        assert_eq!(v, 7);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_bad_length() {
        let dir = std::env::temp_dir().join("respct_region_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.img");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(
            Region::load_file(&path, RegionMode::Fast(Default::default())),
            Err(RegionError::BadImage { len: 100, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let cfg = RegionConfig::builder()
            .size(4096)
            .mode(RegionMode::Sim(SimConfig::no_eviction(9)))
            .build()
            .unwrap();
        assert_eq!(cfg.size(), 4096);
        assert!(matches!(cfg.mode(), RegionMode::Sim(_)));
        let r = Region::new(cfg);
        assert!(r.is_sim());
        assert_eq!(r.backend_kind(), BackendKind::Sim);
    }

    #[test]
    fn builder_defaults_to_fast() {
        let cfg = RegionConfig::builder().size(128).build().unwrap();
        let r = Region::new(cfg);
        assert!(!r.is_sim());
        assert_eq!(r.backend_kind(), BackendKind::Fast);
        assert!(r.was_created());
        assert!(r.path().is_none());
        r.sync_data().unwrap();
    }

    #[test]
    fn builder_rejects_missing_size() {
        assert!(matches!(
            RegionConfig::builder().build(),
            Err(RegionError::InvalidConfig(_))
        ));
        assert!(matches!(
            RegionConfig::builder().size(0).build(),
            Err(RegionError::InvalidConfig(_))
        ));
    }

    #[test]
    fn builder_rejects_empty_mmap_path() {
        assert!(matches!(
            RegionConfig::builder()
                .size(4096)
                .mode(RegionMode::Mmap(PathBuf::new()))
                .build(),
            Err(RegionError::InvalidConfig(_))
        ));
    }

    #[test]
    fn try_new_rejects_zero_size() {
        assert!(Region::try_new(RegionConfig::fast(0)).is_err());
    }
}

#[cfg(all(test, unix, not(miri)))]
mod mmap_tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("respct_region_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn mmap_region_survives_reopen() {
        let path = tmp("reopen.pool");
        {
            let r = Region::new(RegionConfig::mmap(8192, &path));
            assert_eq!(r.backend_kind(), BackendKind::Mmap);
            assert!(r.was_created());
            assert_eq!(r.path().unwrap(), path.as_path());
            r.store(PAddr(256), 0xcafe_f00d_u64);
            r.flush_range(PAddr(256), 8);
            r.sync_data().unwrap();
        }
        let r = Region::new(RegionConfig::mmap(0, &path));
        assert!(!r.was_created());
        assert_eq!(r.size(), 8192);
        assert_eq!(r.load::<u64>(PAddr(256)), 0xcafe_f00d);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mmap_open_missing_without_size_fails() {
        let path = tmp("missing.pool");
        assert!(Region::try_new(RegionConfig::mmap(0, &path)).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "requires a sim-mode region")]
    fn mmap_region_has_no_crash_injection() {
        let path = tmp("nocrash.pool");
        let r = Region::new(RegionConfig::mmap(4096, &path));
        r.crash(CrashMode::PowerFailure);
    }
}
