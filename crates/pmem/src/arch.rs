//! `pwb` / `psync` primitives of the paper's system model (§2.1).
//!
//! The paper abstracts persistence control behind two instructions:
//!
//! * `pwb` — initiate an asynchronous cache-line write-back. On modern x86
//!   this is `clwb` (or `clflushopt` when `clwb` is absent).
//! * `psync` — wait until every preceding `pwb` issued by the current thread
//!   has completed. On x86 this is `sfence`.
//!
//! Fast-mode [`Region`](crate::Region)s issue the real instructions so that
//! benchmark code pays a realistic per-line cost; sim-mode regions instead
//! route through [`CacheSim`](crate::sim::CacheSim) bookkeeping.

#[cfg(target_arch = "x86_64")]
mod imp {
    use std::sync::atomic::{AtomicU8, Ordering};

    const UNKNOWN: u8 = 0;
    const CLWB: u8 = 1;
    const CLFLUSHOPT: u8 = 2;
    const FALLBACK: u8 = 3;

    static FLUSH_KIND: AtomicU8 = AtomicU8::new(UNKNOWN);

    fn flush_kind() -> u8 {
        let k = FLUSH_KIND.load(Ordering::Relaxed);
        if k != UNKNOWN {
            return k;
        }
        // `std::is_x86_feature_detected!` does not know these flush
        // features; query CPUID leaf 7 directly (EBX bit 24 = CLWB,
        // bit 23 = CLFLUSHOPT).
        let leaf7 = core::arch::x86_64::__cpuid_count(7, 0);
        let detected = if leaf7.ebx & (1 << 24) != 0 {
            CLWB
        } else if leaf7.ebx & (1 << 23) != 0 {
            CLFLUSHOPT
        } else {
            FALLBACK
        };
        FLUSH_KIND.store(detected, Ordering::Relaxed);
        detected
    }

    /// Issues a cache-line write-back for the line containing `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must point into a live allocation; the flush instruction
    /// requires a mapped address.
    #[inline]
    pub unsafe fn pwb(ptr: *const u8) {
        match flush_kind() {
            CLWB => {
                // SAFETY: caller guarantees `ptr` is mapped; feature presence
                // was verified by `flush_kind`.
                unsafe { clwb(ptr) }
            }
            CLFLUSHOPT => {
                // SAFETY: as above for `clflushopt`.
                unsafe { clflushopt(ptr) }
            }
            _ => {
                // No usable flush instruction: fall back to a full fence so
                // at least the ordering side effects are preserved.
                std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
            }
        }
    }

    /// # Safety
    ///
    /// `ptr` must be mapped and `clwb` support verified (see `flush_kind`).
    unsafe fn clwb(ptr: *const u8) {
        // SAFETY: caller guarantees `ptr` is mapped; `clwb` support was
        // verified at runtime by `flush_kind`.
        unsafe {
            std::arch::asm!(
                "clwb [{0}]",
                in(reg) ptr,
                options(nostack, preserves_flags)
            );
        }
    }

    /// # Safety
    ///
    /// `ptr` must be mapped and `clflushopt` support verified (see
    /// `flush_kind`).
    unsafe fn clflushopt(ptr: *const u8) {
        // SAFETY: caller guarantees `ptr` is mapped; `clflushopt` support
        // was verified at runtime by `flush_kind`.
        unsafe {
            std::arch::asm!(
                "clflushopt [{0}]",
                in(reg) ptr,
                options(nostack, preserves_flags)
            );
        }
    }

    /// Drains all preceding `pwb`s issued by this thread (`sfence`).
    #[inline]
    pub fn psync() {
        // SAFETY: `sfence` has no operands and is always available on x86-64.
        unsafe { core::arch::x86_64::_mm_sfence() }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    /// Portable fallback: ordering fence only (no real write-back control).
    ///
    /// # Safety
    ///
    /// `_ptr` must point into a live allocation (kept for parity with the
    /// x86-64 signature).
    #[inline]
    pub unsafe fn pwb(_ptr: *const u8) {
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
    }

    /// Portable fallback fence.
    #[inline]
    pub fn psync() {
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
    }
}

pub use imp::psync;

/// Issues a cache-line write-back for the line containing `ptr`.
///
/// # Safety
///
/// `ptr` must point into a live, mapped allocation.
#[inline]
pub unsafe fn pwb(ptr: *const u8) {
    // SAFETY: forwarded contract.
    unsafe { imp::pwb(ptr) }
}

/// CPU time consumed by the calling thread, in nanoseconds.
///
/// Used by the parallel recovery scan to report its critical path (the
/// longest per-worker busy time): on a core-limited machine the workers
/// timeshare and wall-clock collapses to the sum, but the span still
/// reflects what an unconstrained machine would observe.
#[cfg(unix)]
pub fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    // POSIX; value of CLOCK_THREAD_CPUTIME_ID on Linux and the BSDs' clock
    // id differs, so resolve it per-OS.
    #[cfg(target_os = "linux")]
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    #[cfg(not(target_os = "linux"))]
    const CLOCK_THREAD_CPUTIME_ID: i32 = 16; // macOS
    extern "C" {
        fn clock_gettime(clock_id: i32, tp: *mut Timespec) -> i32;
    }
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid, writable timespec; the clock id is constant.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc != 0 {
        return 0;
    }
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// Fallback for platforms without thread CPU clocks: no measurement.
#[cfg(not(unix))]
pub fn thread_cpu_ns() -> u64 {
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn pwb_psync_do_not_fault() {
        let data = vec![0u8; 256];
        // SAFETY: `data` is a live allocation.
        unsafe { super::pwb(data.as_ptr()) };
        super::psync();
        // SAFETY: flushing an interior line of a live allocation.
        unsafe { super::pwb(data.as_ptr().wrapping_add(128)) };
        super::psync();
    }
}
