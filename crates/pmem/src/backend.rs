//! Pluggable persistence backends behind [`Region`](crate::Region).
//!
//! A [`PmemBackend`] owns the bytes a region addresses and decides what
//! `pwb`/`psync` mean for them. Three implementations ship with the crate:
//!
//! * [`FastBackend`] — a zeroed heap arena; `pwb` only *accounts* for the
//!   write-back (issue cost now, bandwidth-bound drain at `psync`) because
//!   flushing emulated-NVMM DRAM buys no durability and the real `clwb`
//!   costs ~150 ns of host overhead per line. The calibrated
//!   [`LatencyModel`] charges NVMM costs instead.
//! * [`SimBackend`] — the same heap arena plus the PCSO [`CacheSim`]:
//!   every store is interposed, crash injection and recovery are available.
//! * [`MmapBackend`](crate::mmap::MmapBackend) — a file-backed mapping;
//!   `pwb` issues the real `clwb` on the mapped line and the pool survives
//!   the process (see the `mmap` module docs for exactly what is and is not
//!   guaranteed).
//!
//! [`Region`](crate::Region) caches the backend's base pointer, latency
//! model, and simulator handle at construction, so the store/load hot paths
//! cost exactly what they did before this trait existed; dynamic dispatch
//! happens only on `pwb`, `psync`, and `sync_data`.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::path::Path;
use std::sync::Arc;

use crate::error::RegionError;
use crate::latency::{drain_psync, note_pwb, LatencyModel};
use crate::sim::{CacheSim, SimConfig};
use crate::stats::PmemStats;
use crate::{arch, CACHE_LINE};

/// Which backend a region runs on (for reporting and test gating).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Heap arena, accounting-only write-backs ([`FastBackend`]).
    Fast,
    /// Heap arena with the PCSO simulator ([`SimBackend`]).
    Sim,
    /// File-backed mapping with real flushes
    /// ([`MmapBackend`](crate::mmap::MmapBackend)).
    Mmap,
}

/// The persistence substrate a [`Region`](crate::Region) runs on.
///
/// # Safety contract (for implementors)
///
/// `base()` must return a pointer to at least `size()` bytes, valid and
/// writable for the whole lifetime of the backend, aligned to 4096 bytes,
/// with `size()` a whole number of cache lines. The region performs relaxed
/// atomic accesses through this pointer from many threads concurrently.
pub trait PmemBackend: Send + Sync {
    /// Which kind of backend this is.
    fn kind(&self) -> BackendKind;

    /// Base pointer of the arena (see the trait-level safety contract).
    fn base(&self) -> *mut u8;

    /// Arena size in bytes (whole number of cache lines).
    fn size(&self) -> usize;

    /// The latency model charged on loads/stores/write-backs.
    fn latency(&self) -> LatencyModel {
        LatencyModel::dram()
    }

    /// The PCSO simulator, if this backend interposes stores.
    fn sim(&self) -> Option<&Arc<CacheSim>> {
        None
    }

    /// Instruction/event counters shared with the region.
    fn stats(&self) -> &Arc<PmemStats>;

    /// Initiates a write-back of cache line `line` (paper's `pwb`).
    /// Only called on backends without a simulator; sim-mode write-backs
    /// route through [`CacheSim::pwb`] directly.
    fn pwb(&self, line: u64);

    /// Drains this thread's outstanding write-backs (paper's `psync`).
    /// Only called on backends without a simulator.
    fn psync(&self);

    /// Flushes the arena to its backing store, if it has one (`msync` for
    /// file mappings). No-op for volatile arenas.
    fn sync_data(&self) -> Result<(), RegionError> {
        Ok(())
    }

    /// Path of the backing file, if any.
    fn path(&self) -> Option<&Path> {
        None
    }

    /// Whether this backend created its arena from scratch (`true`) or
    /// mapped existing content that may need recovery (`false`).
    fn was_created(&self) -> bool {
        true
    }
}

/// A zeroed, page-aligned heap allocation sized in whole cache lines.
struct OwnedArena {
    ptr: *mut u8,
    layout: Layout,
}

// SAFETY: the allocation is owned for the arena's whole lifetime and only
// accessed through atomic operations by the region.
unsafe impl Send for OwnedArena {}
// SAFETY: as above.
unsafe impl Sync for OwnedArena {}

impl OwnedArena {
    /// Allocates `size` zeroed bytes (already line-rounded by the caller).
    ///
    /// # Panics
    ///
    /// Panics if the allocation fails (consistent with `Region::new`'s
    /// historical contract; allocation failure is not a recoverable
    /// configuration error).
    fn new(size: usize) -> OwnedArena {
        debug_assert!(size > 0 && size.is_multiple_of(CACHE_LINE));
        let layout = Layout::from_size_align(size, 4096).expect("valid region layout");
        // SAFETY: `layout` has non-zero size.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "region allocation of {size} bytes failed");
        OwnedArena { ptr, layout }
    }
}

impl Drop for OwnedArena {
    fn drop(&mut self) {
        // SAFETY: `ptr` was allocated with exactly `layout` in `new`.
        unsafe { dealloc(self.ptr, self.layout) };
    }
}

/// Benchmark backend: heap arena, modeled NVMM latency, accounting-only
/// write-backs. See the module docs for why `pwb` does not issue `clwb`.
pub struct FastBackend {
    arena: OwnedArena,
    size: usize,
    latency: LatencyModel,
    latency_free: bool,
    stats: Arc<PmemStats>,
}

impl FastBackend {
    /// Allocates a zeroed fast-mode arena of `size` bytes (line-rounded).
    pub fn new(size: usize, latency: LatencyModel) -> FastBackend {
        let size = crate::align_up(size as u64, CACHE_LINE as u64) as usize;
        FastBackend {
            arena: OwnedArena::new(size),
            size,
            latency,
            latency_free: latency.is_free(),
            stats: Arc::new(PmemStats::default()),
        }
    }
}

impl PmemBackend for FastBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Fast
    }

    fn base(&self) -> *mut u8 {
        self.arena.ptr
    }

    fn size(&self) -> usize {
        self.size
    }

    fn latency(&self) -> LatencyModel {
        self.latency
    }

    fn stats(&self) -> &Arc<PmemStats> {
        &self.stats
    }

    fn pwb(&self, _line: u64) {
        self.stats.count_pwb();
        if !self.latency_free {
            note_pwb(&self.latency);
        }
    }

    fn psync(&self) {
        self.stats.count_psync();
        // An `sfence` still orders our (relaxed atomic) stores cheaply and
        // mirrors the paper's instruction sequence.
        arch::psync();
        if !self.latency_free {
            drain_psync(&self.latency);
        }
    }
}

/// Test backend: heap arena + the PCSO persistence simulator.
pub struct SimBackend {
    arena: OwnedArena,
    size: usize,
    sim: Arc<CacheSim>,
    stats: Arc<PmemStats>,
}

impl SimBackend {
    /// Allocates a zeroed sim-mode arena of `size` bytes (line-rounded).
    pub fn new(size: usize, cfg: SimConfig) -> SimBackend {
        let size = crate::align_up(size as u64, CACHE_LINE as u64) as usize;
        let arena = OwnedArena::new(size);
        let stats = Arc::new(PmemStats::default());
        let sim = Arc::new(CacheSim::new(cfg, size, Arc::clone(&stats)));
        sim.attach(arena.ptr);
        SimBackend {
            arena,
            size,
            sim,
            stats,
        }
    }
}

impl PmemBackend for SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn base(&self) -> *mut u8 {
        self.arena.ptr
    }

    fn size(&self) -> usize {
        self.size
    }

    fn sim(&self) -> Option<&Arc<CacheSim>> {
        Some(&self.sim)
    }

    fn stats(&self) -> &Arc<PmemStats> {
        &self.stats
    }

    fn pwb(&self, line: u64) {
        self.sim.pwb(line);
    }

    fn psync(&self) {
        self.sim.psync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_backend_rounds_and_zeroes() {
        let b = FastBackend::new(100, LatencyModel::dram());
        assert_eq!(b.size(), 128);
        assert_eq!(b.kind(), BackendKind::Fast);
        assert!(b.sim().is_none());
        assert!(b.was_created());
        assert!(b.path().is_none());
        // SAFETY: reading the zeroed arena we just allocated.
        let first = unsafe { *b.base() };
        assert_eq!(first, 0);
        b.sync_data().unwrap();
    }

    #[test]
    fn fast_backend_counts_flushes() {
        let b = FastBackend::new(4096, LatencyModel::dram());
        b.pwb(0);
        b.pwb(1);
        b.psync();
        let snap = b.stats().snapshot();
        assert_eq!(snap.pwb, 2);
        assert_eq!(snap.psync, 1);
    }

    #[test]
    fn sim_backend_exposes_sim() {
        let b = SimBackend::new(4096, SimConfig::no_eviction(7));
        assert_eq!(b.kind(), BackendKind::Sim);
        assert!(b.sim().is_some());
        b.pwb(0);
        b.psync();
        assert_eq!(b.stats().snapshot().pwb, 1);
    }
}
