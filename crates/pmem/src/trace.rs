//! Typed persistency-event tracing.
//!
//! A [`TraceSink`] attached to a [`Region`](crate::Region) observes every
//! persistence-relevant action as a typed [`TraceEvent`]: raw stores, write
//! backs (`pwb`), fences (`psync`), simulator evictions, crash/restore
//! lifecycle, and semantic [`TraceMarker`]s emitted by the ResPCT runtime
//! (epoch advances, checkpoint phases, InCLL logging, recovery). The event
//! stream is what the `respct-analysis` crate replays against a cache-line
//! state machine to check the algorithm's persistency discipline — the same
//! division of labor as pmemcheck/PMTest, but with ResPCT-specific rules.
//!
//! Emission is zero-cost when no sink is attached (a single atomic load per
//! operation) and the sink is deliberately `&self`-only so it can be shared
//! across all application, checkpointer, and flusher threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically assigned per-thread token. Stable for the thread's
/// lifetime; used instead of `std::thread::ThreadId` so events carry a small
/// integer that is meaningful in diagnostics.
pub fn trace_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Semantic markers emitted by the ResPCT runtime (not by the region
/// itself). They give the trace checker the algorithm-level context that raw
/// stores cannot convey: which bytes form an InCLL cell, when an epoch
/// closes, what recovery rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMarker {
    /// An InCLL cell now lives at `addr`: `vsize` record bytes at offset 0,
    /// a backup at `backup_off`, an 8-byte epoch tag at `epoch_off`.
    CellDeclare {
        addr: u64,
        vsize: u32,
        backup_off: u32,
        epoch_off: u32,
    },
    /// The runtime wrote the in-line backup + epoch tag of the cell at
    /// `addr` for `epoch`. Must precede the first record overwrite of that
    /// epoch (the logging rule of paper Fig. 4, lines 24–29).
    CellLogged { addr: u64, epoch: u64 },
    /// `[addr, addr + len)` was freed: any cells inside are retired and the
    /// memory may be rewritten as raw bytes (free-list links, new payload).
    CellRetire { addr: u64, len: u64 },
    /// `line` joined an epoch's tracking list (`add_modified` / cell
    /// tracking): the next full checkpoint promises to flush it.
    TrackLine { line: u64 },
    /// Checkpoint started for the current `epoch` after quiescence. `full`
    /// is false in `NoFlush` mode (tracked lines intentionally not written
    /// back, so the missed-flush rule is suspended).
    CheckpointBegin { epoch: u64, full: bool },
    /// All checkpoint data flushes are claimed complete; the epoch-counter
    /// store that commits the checkpoint follows. At this point no thread
    /// may have an unfenced `pwb` of a tracked line in flight (the
    /// cross-line ordering rule).
    OrderBarrier,
    /// The durable epoch counter advanced to `epoch` (must be the previous
    /// epoch + 1).
    EpochAdvance { epoch: u64 },
    /// A flusher (or the checkpointer, inline) started writing back flush
    /// shard `shard` of the current checkpoint: `lines` unique cache lines,
    /// already sorted + deduplicated. Hash partitioning guarantees a line
    /// belongs to exactly one shard, so shards never overlap.
    ShardFlushBegin { shard: u64, lines: u64 },
    /// Every write-back of flush shard `shard` is covered by a fence. All
    /// shards opened since `CheckpointBegin` must be closed before the
    /// `OrderBarrier` that precedes the epoch commit.
    ShardFlushEnd { shard: u64 },
    /// Asynchronous checkpoint released the quiesced threads: the draining
    /// record (`state = epoch`, `epoch = epoch + 1`) is durable, the old
    /// flush-shard lists are snapshotted, and the background drain of
    /// epoch `epoch` begins while application threads run in `epoch + 1`.
    DrainBegin { epoch: u64 },
    /// Every snapshotted shard of the background drain of epoch `epoch` is
    /// written back and fenced, and the drain-state word is committed back
    /// to zero — the two-phase commit of `epoch` is complete.
    DrainCommit { epoch: u64 },
    /// A pipelined checkpoint claimed ring slot `epoch % K` for `epoch` and
    /// released the quiesced threads: the claim (`ring[slot] = epoch`,
    /// `epoch = epoch + 1`) is durable, the epoch's tracking lists are
    /// snapshotted under the epoch's generation, and the drain of `epoch`
    /// proceeds in the background while up to `K - 1` older drains may
    /// still be committing. Unlike [`TraceMarker::DrainBegin`], an earlier
    /// uncommitted drain is legal here.
    PipelineBegin { epoch: u64 },
    /// The pipelined drain of `epoch` is complete: every snapshotted line
    /// is written back and fenced, and ring slot `epoch % K` is committed
    /// back to zero. Commits must appear in epoch order — a `RingCommit`
    /// for `epoch` while an older claimed epoch is still uncommitted is a
    /// discipline violation (checker rule 8).
    RingCommit { epoch: u64 },
    /// Checkpoint finished; `epoch` is the epoch it closed.
    CheckpointEnd { epoch: u64 },
    /// Recovery started; `failed_epoch` is the epoch being rolled back and
    /// then re-executed.
    RecoveryBegin { failed_epoch: u64 },
    /// Recovery restored the cell at `addr` from its in-line backup.
    RecoveryApply { addr: u64 },
    /// Recovery finished; execution resumes in `epoch` (== the failed
    /// epoch: ResPCT re-executes, it does not skip).
    RecoveryEnd { epoch: u64 },
    /// A thread passed the restart point `id` (diagnostic context only).
    RestartPoint { slot: u64, id: u64 },
    /// A thread hit the on-demand push-out guard: the cell at `addr` still
    /// carries the draining epoch's tag, so the thread must flush the line
    /// and wait for the drain commit before overwriting the backup slot.
    /// The race detector requires the thread's next store to that line to
    /// be HB-after the drain's commit release.
    DrainPushOut { addr: u64 },
}

/// Identity of a synchronization object for happens-before edges. A
/// [`TraceEvent::SyncRel`] on a token publishes the releasing thread's
/// vector clock into the token; a [`TraceEvent::SyncAcq`] joins the token's
/// clock into the acquiring thread — the standard release/acquire
/// vector-clock discipline (FastTrack-style, over the trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncToken {
    /// A region-level atomic word (`cas_u64` / `load_acquire_u64` /
    /// `store_release_u64`), identified by its region offset.
    Atomic { addr: u64 },
    /// A per-thread quiescence flag (`flags[slot]`): released when the
    /// owner parks or deregisters, acquired by the checkpointer when it
    /// observes the flag raised.
    Flag { slot: u64 },
    /// The global checkpoint timer: released by the checkpointer when it
    /// un-quiesces the threads, acquired by each thread that observes the
    /// timer cleared and resumes.
    Timer,
    /// The asynchronous-drain handshake word (`drain_active`): released by
    /// the drain commit, acquired by a thread leaving the push-out wait.
    Drain,
    /// A mutex guarding pool stores (checkpoint serialization lock, data
    /// structure bucket locks), identified by the lock's address.
    Lock { id: u64 },
    /// A channel hand-off (flusher job acknowledgements), identified by the
    /// shared job's address: released by the sender after its fences,
    /// acquired by the receiver.
    Chan { id: u64 },
}

/// Maximum payload bytes carried inline by one [`TraceEvent::Store`].
/// Larger stores are emitted as a sequence of chunk events (program order is
/// preserved, so a replayer reassembles them byte-exactly).
pub const MAX_STORE_DATA: usize = 16;

/// The payload of a store event: up to [`MAX_STORE_DATA`] bytes, inline so
/// `TraceEvent` stays `Copy`. Carrying the data (not just `addr`/`len`)
/// is what lets `replay::Replayer` reconstruct the volatile and persisted
/// images of a region from the trace alone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct StoreData {
    len: u8,
    bytes: [u8; MAX_STORE_DATA],
}

impl StoreData {
    /// A store event with no recorded payload (synthetic traces; the
    /// checker's rules only use `addr`/`len`, so hand-built test events
    /// don't need data). A replayer treats it as storing zeroes.
    pub const EMPTY: StoreData = StoreData {
        len: 0,
        bytes: [0u8; MAX_STORE_DATA],
    };

    /// Wraps up to [`MAX_STORE_DATA`] payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if `src` is longer than [`MAX_STORE_DATA`].
    pub fn new(src: &[u8]) -> StoreData {
        assert!(src.len() <= MAX_STORE_DATA, "store payload too large");
        let mut bytes = [0u8; MAX_STORE_DATA];
        bytes[..src.len()].copy_from_slice(src);
        StoreData {
            len: src.len() as u8,
            bytes,
        }
    }

    /// The recorded payload (empty for synthetic events).
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Whether any payload was recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::fmt::Debug for StoreData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        for b in self.as_slice() {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// One persistence-relevant event, in global observation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `len` bytes were stored at region offset `addr` by thread `tid`;
    /// `data` carries the stored bytes (empty in synthetic traces). Stores
    /// wider than [`MAX_STORE_DATA`] appear as multiple chunk events in
    /// program order.
    Store {
        tid: u64,
        addr: u64,
        len: u64,
        data: StoreData,
    },
    /// Thread `tid` initiated a write-back of cache line `line`
    /// (asynchronous: durable only after that thread's next `Psync`).
    Pwb { tid: u64, line: u64 },
    /// Thread `tid` drained its outstanding write-backs.
    Psync { tid: u64 },
    /// The simulator evicted `line`: its current content became durable at
    /// an arbitrary moment, as PCSO allows.
    Eviction { line: u64 },
    /// A simulated crash. `all_persisted` is true for `EvictAll` (clean
    /// shutdown: every dirty line and pending write-back reached NVMM).
    Crash { all_persisted: bool },
    /// The region's volatile image was restored from a crash image; the
    /// persisted and volatile images are identical again.
    Restore,
    /// Every dirty line was forced to the persisted image (test setup).
    PersistAll,
    /// A semantic runtime marker. See [`TraceMarker`].
    Marker { tid: u64, marker: TraceMarker },
    /// Thread `tid` released `token`: everything `tid` did before this
    /// event happens-before whatever follows a later `SyncAcq` of the same
    /// token. Emitted *before* the releasing store, so observation order
    /// can never show the matching acquire first.
    SyncRel { tid: u64, token: SyncToken },
    /// Thread `tid` acquired `token` (observed a released value). Emitted
    /// *after* the acquiring observation.
    SyncAcq { tid: u64, token: SyncToken },
    /// Thread `tid` loaded from cache line `line`. Only emitted while the
    /// region's load tracing is enabled (recovery turns it on) — loads are
    /// otherwise not persistence-relevant and stay untraced.
    Load { tid: u64, line: u64 },
}

impl TraceEvent {
    /// A store event carrying its payload (what the region emits).
    pub fn store(tid: u64, addr: u64, data: &[u8]) -> TraceEvent {
        TraceEvent::Store {
            tid,
            addr,
            len: data.len() as u64,
            data: StoreData::new(data),
        }
    }

    /// A store event with metadata only (synthetic traces in tests).
    pub fn store_meta(tid: u64, addr: u64, len: u64) -> TraceEvent {
        TraceEvent::Store {
            tid,
            addr,
            len,
            data: StoreData::EMPTY,
        }
    }
}

/// Observer of a region's event stream.
///
/// Implementations must be cheap and re-entrant-safe: events arrive from
/// every thread that touches the region, including the checkpointer and
/// flusher pool, and may be emitted while region-internal locks are *not*
/// held (event order across threads is observation order, which matches
/// program order wherever the ResPCT quiescence protocol serializes the
/// threads — exactly the windows the checker's rules care about).
pub trait TraceSink: Send + Sync {
    /// Called once per event.
    fn event(&self, ev: &TraceEvent);
}

/// A sink that appends every event to a vector (tests, trace dumps).
#[derive(Default)]
pub struct VecSink {
    events: parking_lot::Mutex<Vec<TraceEvent>>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the events recorded so far.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock())
    }
}

impl TraceSink for VecSink {
    fn event(&self, ev: &TraceEvent) {
        self.events.lock().push(*ev);
    }
}

/// Fans one region's event stream out to several sinks, in order. A region
/// accepts exactly one sink for its lifetime; `TeeSink` is how a run attaches
/// both the online checker and a recording sink (e.g. for a crash sweep).
pub struct TeeSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl TeeSink {
    /// Builds a tee over `sinks`; each event is delivered to every sink in
    /// the given order, from the emitting thread.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn event(&self, ev: &TraceEvent) {
        for sink in &self.sinks {
            sink.event(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_stable_and_distinct() {
        let a = trace_tid();
        let b = trace_tid();
        assert_eq!(a, b);
        let other = std::thread::spawn(trace_tid).join().unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn vec_sink_records() {
        let sink = VecSink::new();
        sink.event(&TraceEvent::Psync { tid: 1 });
        sink.event(&TraceEvent::Marker {
            tid: 1,
            marker: TraceMarker::OrderBarrier,
        });
        let evs = sink.drain();
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[0], TraceEvent::Psync { tid: 1 }));
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn store_data_roundtrip() {
        let d = StoreData::new(&[1, 2, 3]);
        assert_eq!(d.as_slice(), &[1, 2, 3]);
        assert!(!d.is_empty());
        assert!(StoreData::EMPTY.is_empty());
        let ev = TraceEvent::store(1, 100, &[9, 8]);
        match ev {
            TraceEvent::Store {
                addr, len, data, ..
            } => {
                assert_eq!((addr, len), (100, 2));
                assert_eq!(data.as_slice(), &[9, 8]);
            }
            _ => panic!("not a store"),
        }
        assert!(
            matches!(TraceEvent::store_meta(1, 0, 8), TraceEvent::Store { data, .. } if data.is_empty())
        );
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn store_data_rejects_oversize() {
        let _ = StoreData::new(&[0u8; MAX_STORE_DATA + 1]);
    }

    #[test]
    fn tee_delivers_to_all_sinks_in_order() {
        let a = Arc::new(VecSink::new());
        let b = Arc::new(VecSink::new());
        let tee = TeeSink::new(vec![a.clone(), b.clone()]);
        tee.event(&TraceEvent::Psync { tid: 7 });
        tee.event(&TraceEvent::Eviction { line: 3 });
        for sink in [a, b] {
            let evs = sink.drain();
            assert_eq!(evs.len(), 2);
            assert!(matches!(evs[0], TraceEvent::Psync { tid: 7 }));
            assert!(matches!(evs[1], TraceEvent::Eviction { line: 3 }));
        }
    }
}
