//! Typed persistency-event tracing.
//!
//! A [`TraceSink`] attached to a [`Region`](crate::Region) observes every
//! persistence-relevant action as a typed [`TraceEvent`]: raw stores, write
//! backs (`pwb`), fences (`psync`), simulator evictions, crash/restore
//! lifecycle, and semantic [`TraceMarker`]s emitted by the ResPCT runtime
//! (epoch advances, checkpoint phases, InCLL logging, recovery). The event
//! stream is what the `respct-analysis` crate replays against a cache-line
//! state machine to check the algorithm's persistency discipline — the same
//! division of labor as pmemcheck/PMTest, but with ResPCT-specific rules.
//!
//! Emission is zero-cost when no sink is attached (a single atomic load per
//! operation) and the sink is deliberately `&self`-only so it can be shared
//! across all application, checkpointer, and flusher threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically assigned per-thread token. Stable for the thread's
/// lifetime; used instead of `std::thread::ThreadId` so events carry a small
/// integer that is meaningful in diagnostics.
pub fn trace_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Semantic markers emitted by the ResPCT runtime (not by the region
/// itself). They give the trace checker the algorithm-level context that raw
/// stores cannot convey: which bytes form an InCLL cell, when an epoch
/// closes, what recovery rolled back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMarker {
    /// An InCLL cell now lives at `addr`: `vsize` record bytes at offset 0,
    /// a backup at `backup_off`, an 8-byte epoch tag at `epoch_off`.
    CellDeclare {
        addr: u64,
        vsize: u32,
        backup_off: u32,
        epoch_off: u32,
    },
    /// The runtime wrote the in-line backup + epoch tag of the cell at
    /// `addr` for `epoch`. Must precede the first record overwrite of that
    /// epoch (the logging rule of paper Fig. 4, lines 24–29).
    CellLogged { addr: u64, epoch: u64 },
    /// `[addr, addr + len)` was freed: any cells inside are retired and the
    /// memory may be rewritten as raw bytes (free-list links, new payload).
    CellRetire { addr: u64, len: u64 },
    /// `line` joined an epoch's tracking list (`add_modified` / cell
    /// tracking): the next full checkpoint promises to flush it.
    TrackLine { line: u64 },
    /// Checkpoint started for the current `epoch` after quiescence. `full`
    /// is false in `NoFlush` mode (tracked lines intentionally not written
    /// back, so the missed-flush rule is suspended).
    CheckpointBegin { epoch: u64, full: bool },
    /// All checkpoint data flushes are claimed complete; the epoch-counter
    /// store that commits the checkpoint follows. At this point no thread
    /// may have an unfenced `pwb` of a tracked line in flight (the
    /// cross-line ordering rule).
    OrderBarrier,
    /// The durable epoch counter advanced to `epoch` (must be the previous
    /// epoch + 1).
    EpochAdvance { epoch: u64 },
    /// A flusher (or the checkpointer, inline) started writing back flush
    /// shard `shard` of the current checkpoint: `lines` unique cache lines,
    /// already sorted + deduplicated. Hash partitioning guarantees a line
    /// belongs to exactly one shard, so shards never overlap.
    ShardFlushBegin { shard: u64, lines: u64 },
    /// Every write-back of flush shard `shard` is covered by a fence. All
    /// shards opened since `CheckpointBegin` must be closed before the
    /// `OrderBarrier` that precedes the epoch commit.
    ShardFlushEnd { shard: u64 },
    /// Checkpoint finished; `epoch` is the epoch it closed.
    CheckpointEnd { epoch: u64 },
    /// Recovery started; `failed_epoch` is the epoch being rolled back and
    /// then re-executed.
    RecoveryBegin { failed_epoch: u64 },
    /// Recovery restored the cell at `addr` from its in-line backup.
    RecoveryApply { addr: u64 },
    /// Recovery finished; execution resumes in `epoch` (== the failed
    /// epoch: ResPCT re-executes, it does not skip).
    RecoveryEnd { epoch: u64 },
    /// A thread passed the restart point `id` (diagnostic context only).
    RestartPoint { slot: u64, id: u64 },
}

/// One persistence-relevant event, in global observation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `len` bytes were stored at region offset `addr` by thread `tid`.
    Store { tid: u64, addr: u64, len: u64 },
    /// Thread `tid` initiated a write-back of cache line `line`
    /// (asynchronous: durable only after that thread's next `Psync`).
    Pwb { tid: u64, line: u64 },
    /// Thread `tid` drained its outstanding write-backs.
    Psync { tid: u64 },
    /// The simulator evicted `line`: its current content became durable at
    /// an arbitrary moment, as PCSO allows.
    Eviction { line: u64 },
    /// A simulated crash. `all_persisted` is true for `EvictAll` (clean
    /// shutdown: every dirty line and pending write-back reached NVMM).
    Crash { all_persisted: bool },
    /// The region's volatile image was restored from a crash image; the
    /// persisted and volatile images are identical again.
    Restore,
    /// Every dirty line was forced to the persisted image (test setup).
    PersistAll,
    /// A semantic runtime marker. See [`TraceMarker`].
    Marker { tid: u64, marker: TraceMarker },
}

/// Observer of a region's event stream.
///
/// Implementations must be cheap and re-entrant-safe: events arrive from
/// every thread that touches the region, including the checkpointer and
/// flusher pool, and may be emitted while region-internal locks are *not*
/// held (event order across threads is observation order, which matches
/// program order wherever the ResPCT quiescence protocol serializes the
/// threads — exactly the windows the checker's rules care about).
pub trait TraceSink: Send + Sync {
    /// Called once per event.
    fn event(&self, ev: &TraceEvent);
}

/// A sink that appends every event to a vector (tests, trace dumps).
#[derive(Default)]
pub struct VecSink {
    events: parking_lot::Mutex<Vec<TraceEvent>>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the events recorded so far.
    pub fn drain(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock())
    }
}

impl TraceSink for VecSink {
    fn event(&self, ev: &TraceEvent) {
        self.events.lock().push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tids_are_stable_and_distinct() {
        let a = trace_tid();
        let b = trace_tid();
        assert_eq!(a, b);
        let other = std::thread::spawn(trace_tid).join().unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn vec_sink_records() {
        let sink = VecSink::new();
        sink.event(&TraceEvent::Psync { tid: 1 });
        sink.event(&TraceEvent::Marker {
            tid: 1,
            marker: TraceMarker::OrderBarrier,
        });
        let evs = sink.drain();
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[0], TraceEvent::Psync { tid: 1 }));
        assert!(sink.drain().is_empty());
    }
}
