//! Instruction and event counters for overhead analysis (paper Fig. 10).

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated by a [`Region`](crate::Region) and its simulator.
///
/// All counters use relaxed atomics: they are diagnostics, not
/// synchronization. `pwb`/`psync` are always counted (they are rare and are
/// the quantities the paper's overhead analysis reasons about); store/load
/// counting is only exact in sim mode where every access is interposed.
#[derive(Debug, Default)]
pub struct PmemStats {
    /// Cache-line write-backs issued (`clwb`).
    pub pwb: AtomicU64,
    /// Persist fences issued (`sfence`).
    pub psync: AtomicU64,
    /// Persistent stores observed (sim mode).
    pub stores: AtomicU64,
    /// Random evictions performed by the simulator.
    pub evictions: AtomicU64,
}

impl PmemStats {
    /// Snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            pwb: self.pwb.load(Ordering::Relaxed),
            psync: self.psync.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.pwb.store(0, Ordering::Relaxed);
        self.psync.store(0, Ordering::Relaxed);
        self.stores.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_pwb(&self) {
        self.pwb.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_psync(&self) {
        self.psync.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_store(&self) {
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn count_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`PmemStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub pwb: u64,
    pub psync: u64,
    pub stores: u64,
    pub evictions: u64,
}

impl StatsSnapshot {
    /// Component-wise difference (`self - earlier`), saturating at zero.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            pwb: self.pwb.saturating_sub(earlier.pwb),
            psync: self.psync.saturating_sub(earlier.psync),
            stores: self.stores.saturating_sub(earlier.stores),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let s = PmemStats::default();
        s.count_pwb();
        s.count_pwb();
        s.count_psync();
        s.count_store();
        s.count_eviction();
        let snap = s.snapshot();
        assert_eq!(snap.pwb, 2);
        assert_eq!(snap.psync, 1);
        assert_eq!(snap.stores, 1);
        assert_eq!(snap.evictions, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn since_saturates() {
        let a = StatsSnapshot {
            pwb: 5,
            psync: 1,
            stores: 0,
            evictions: 0,
        };
        let b = StatsSnapshot {
            pwb: 2,
            psync: 3,
            stores: 0,
            evictions: 0,
        };
        let d = a.since(&b);
        assert_eq!(d.pwb, 3);
        assert_eq!(d.psync, 0);
    }
}
