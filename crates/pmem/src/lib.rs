//! Emulated persistent main memory (NVMM) for the ResPCT reproduction.
//!
//! The paper runs on real Intel Optane DC Persistent Memory in *App Direct*
//! mode: NVMM DIMMs on the memory bus, volatile caches in between, and the
//! *Persistent Cache Store Order* (PCSO) model governing when stores become
//! persistent. This crate reproduces that substrate in software:
//!
//! * [`Region`] — a cache-line-aligned arena of emulated NVMM, addressed by
//!   [`PAddr`] offsets. All persistent loads and stores go through it.
//! * [`arch`] — the `pwb` (cache-line write-back, `clwb`/`clflushopt`) and
//!   `psync` (`sfence`) primitives of the paper's system model (§2.1).
//! * [`sim`] — a cache-line-granularity persistence simulator implementing
//!   PCSO: stores land in a volatile image, lines are written back to a
//!   persisted image on `pwb`+`psync` or at arbitrary moments (random
//!   eviction), and a *crash* discards everything volatile. Writes to the
//!   same cache line reach the persisted image in program order because a
//!   write-back snapshots the whole line.
//! * [`replay`] — deterministic reconstruction of the persistence state at
//!   every instant of a recorded trace, and enumeration of the crash images
//!   reachable under PCSO at each one (the `respct-crashsim` sweep engine).
//! * [`latency`] — a calibrated spin-wait latency model so that fast-mode
//!   benchmarks can charge NVMM's extra write-back/read cost without a real
//!   Optane DIMM.
//!
//! A [`Region`] runs on one of three pluggable [`backend`]s:
//!
//! * **Fast** ([`FastBackend`]) — stores compile to plain volatile writes;
//!   write-backs are accounted against the modeled latency. Used by the
//!   benchmark harness.
//! * **Sim** ([`SimBackend`]) — every store additionally updates the
//!   [`sim::CacheSim`] bookkeeping so tests can crash the "machine" at any
//!   instant and recover from exactly the state a real PCSO machine would
//!   have persisted.
//! * **Mmap** ([`MmapBackend`]) — a `MAP_SHARED` pool-file mapping: `pwb`
//!   issues the real `clwb` on the mapped line and the pool survives the
//!   process, so a fresh process can reopen and recover it.

pub mod arch;
pub mod backend;
pub mod error;
pub mod latency;
pub mod mmap;
pub mod region;
pub mod replay;
pub mod sim;
pub mod stats;
pub mod trace;

pub use backend::{BackendKind, FastBackend, PmemBackend, SimBackend};
pub use error::RegionError;
pub use mmap::MmapBackend;
pub use region::{Region, RegionConfig, RegionConfigBuilder, RegionMode};
pub use replay::{is_crash_point, is_protocol_point, Replayer};
pub use sim::{CacheSim, CrashImage, SimConfig};
pub use stats::PmemStats;
pub use trace::{
    StoreData, SyncToken, TeeSink, TraceEvent, TraceMarker, TraceSink, VecSink, MAX_STORE_DATA,
};

/// Size of a cache line in bytes on every platform we model (x86-64).
pub const CACHE_LINE: usize = 64;

/// An offset into a persistent [`Region`].
///
/// `PAddr` is the reproduction's equivalent of a pointer into an NVMM
/// mapping: stable across "reboots" (crash + recovery of the same region),
/// which is why persistent data structures link to each other with `PAddr`s
/// rather than raw pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PAddr(pub u64);

impl PAddr {
    /// The null address. Offset 0 is occupied by the region header magic, so
    /// no valid allocation ever starts there.
    pub const NULL: PAddr = PAddr(0);

    /// Returns `true` for the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the address advanced by `delta` bytes.
    #[inline]
    pub fn offset(self, delta: u64) -> PAddr {
        PAddr(self.0 + delta)
    }

    /// Index of the cache line containing this address.
    #[inline]
    pub fn line(self) -> u64 {
        self.0 / CACHE_LINE as u64
    }
}

/// Marker for plain-old-data types that may live in emulated NVMM.
///
/// # Safety
///
/// Implementors must be `Copy` types with no padding requirements beyond
/// their alignment, valid for any bit pattern they are stored back with
/// (recovery re-reads raw bytes), and free of pointers/references into
/// volatile memory.
pub unsafe trait Pod: Copy + 'static {}

// SAFETY: primitive integers are valid for all bit patterns and contain no
// volatile pointers.
unsafe impl Pod for u8 {}
// SAFETY: as above.
unsafe impl Pod for u16 {}
// SAFETY: as above.
unsafe impl Pod for u32 {}
// SAFETY: as above.
unsafe impl Pod for u64 {}
// SAFETY: as above.
unsafe impl Pod for i8 {}
// SAFETY: as above.
unsafe impl Pod for i16 {}
// SAFETY: as above.
unsafe impl Pod for i32 {}
// SAFETY: as above.
unsafe impl Pod for i64 {}
// SAFETY: as above.
unsafe impl Pod for usize {}
// SAFETY: f64 is valid for all bit patterns (NaNs included).
unsafe impl Pod for f64 {}
// SAFETY: f32 is valid for all bit patterns.
unsafe impl Pod for f32 {}
// SAFETY: [u8; 16] is plain bytes.
unsafe impl Pod for [u8; 16] {}
// SAFETY: a pair of u64 is plain data (used for 16-byte InCLL payloads).
unsafe impl Pod for (u64, u64) {}

/// Rounds `v` up to the next multiple of `align` (a power of two).
#[inline]
pub const fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paddr_line_arithmetic() {
        assert_eq!(PAddr(0).line(), 0);
        assert_eq!(PAddr(63).line(), 0);
        assert_eq!(PAddr(64).line(), 1);
        assert_eq!(PAddr(130).line(), 2);
        assert_eq!(PAddr(64).offset(64).line(), 2);
    }

    #[test]
    fn null_is_null() {
        assert!(PAddr::NULL.is_null());
        assert!(!PAddr(8).is_null());
    }

    #[test]
    fn align_up_powers() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 8), 16);
        assert_eq!(align_up(65, 64), 128);
    }
}
