//! Calibrated latency model for emulating NVMM on DRAM.
//!
//! Real Optane DCPMM is slower than DRAM: read latency is 2–3× higher and
//! write-back of a dirty line costs on the order of 100 ns extra
//! (Yang et al., FAST '20 — reference \[49\] of the paper). The container we
//! run in has only DRAM, so the benchmark harness charges these costs with a
//! calibrated busy-wait. The spin is calibrated once against the monotonic
//! clock so that `spin_ns(n)` burns approximately `n` nanoseconds without
//! any syscalls on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Iterations of [`std::hint::spin_loop`] per microsecond, measured once.
static SPINS_PER_US: AtomicU64 = AtomicU64::new(0);

fn calibrate() -> u64 {
    // Run a fixed number of spin iterations and time them. Repeat and take
    // the maximum rate (minimum duration) to reduce scheduler noise.
    const PROBE: u64 = 200_000;
    let mut best_rate = 1;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..PROBE {
            std::hint::spin_loop();
        }
        let nanos = start.elapsed().as_nanos().max(1) as u64;
        let rate = PROBE * 1_000 / nanos; // spins per microsecond
        best_rate = best_rate.max(rate.max(1));
    }
    best_rate
}

thread_local! {
    /// Accumulated latency debt (ns) not yet paid by a spin.
    static DEBT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Granularity at which accumulated latency debt is paid off.
const DEBT_QUANTUM_NS: u64 = 4_000;

/// Charges `ns` nanoseconds of modeled latency, amortized: the cost is
/// accumulated per thread and paid off in multi-microsecond spins, so the
/// hot path is a thread-local add + compare (~1 ns) instead of a ~20 ns
/// spin-call per access. Throughput over any interval ≫ 4 µs is identical
/// to charging each access synchronously.
#[inline]
pub fn charge_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    DEBT.with(|d| {
        let v = d.get() + ns;
        if v >= DEBT_QUANTUM_NS {
            d.set(0);
            spin_ns(v);
        } else {
            d.set(v);
        }
    });
}

thread_local! {
    /// Write-backs issued by this thread and not yet drained by a `psync`.
    static OUTSTANDING_PWB: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Records an issued (asynchronous) write-back and charges its issue cost.
#[inline]
pub fn note_pwb(model: &LatencyModel) {
    OUTSTANDING_PWB.with(|c| c.set(c.get() + 1));
    charge_ns(model.pwb_ns);
}

/// Charges a `psync`: the fence base cost plus the bandwidth-bound drain of
/// every write-back this thread issued since its previous fence.
#[inline]
pub fn drain_psync(model: &LatencyModel) {
    let outstanding = OUTSTANDING_PWB.with(|c| c.replace(0));
    let total = model.psync_ns + outstanding * model.pwb_drain_ns;
    if total >= DEBT_QUANTUM_NS {
        spin_ns(total);
    } else {
        charge_ns(total);
    }
}

/// Busy-waits for approximately `ns` nanoseconds.
///
/// Zero is free: the function returns immediately without calibrating.
#[inline]
pub fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let mut rate = SPINS_PER_US.load(Ordering::Relaxed);
    if rate == 0 {
        rate = calibrate();
        SPINS_PER_US.store(rate, Ordering::Relaxed);
    }
    let iters = (ns * rate) / 1_000;
    for _ in 0..iters.max(1) {
        std::hint::spin_loop();
    }
}

/// Latency parameters charged by a fast-mode [`Region`](crate::Region).
///
/// Defaults model DRAM (all zero). [`LatencyModel::optane`] models the extra
/// cost of Optane relative to DRAM as reported by the FAST '20 study the
/// paper cites: the point is not absolute fidelity but preserving *who pays
/// more*, i.e. flush-heavy systems pay per line, NVMM-resident transient
/// programs pay a per-access tax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Nanoseconds to *issue* a `pwb` (`clwb` is asynchronous: issuing it
    /// is cheap; completion happens in the background).
    pub pwb_ns: u64,
    /// Nanoseconds per outstanding written-back line charged at `psync` —
    /// the write-bandwidth term (64 B over Optane's multi-GB/s write path).
    pub pwb_drain_ns: u64,
    /// Base nanoseconds charged per `psync` (the fence itself).
    pub psync_ns: u64,
    /// Extra nanoseconds charged per persistent store (media write path).
    pub store_ns: u64,
    /// Extra nanoseconds charged per persistent load (media read latency,
    /// amortized: caches hide most loads, so this should stay small).
    pub load_ns: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::dram()
    }
}

impl LatencyModel {
    /// DRAM: no extra cost.
    pub const fn dram() -> Self {
        LatencyModel {
            pwb_ns: 0,
            pwb_drain_ns: 0,
            psync_ns: 0,
            store_ns: 0,
            load_ns: 0,
        }
    }

    /// Optane-like: ~90 ns extra per flushed line, ~50 ns drain, a small
    /// per-access tax for running the working set out of NVMM instead of
    /// DRAM. Stores are mostly absorbed by the cache/store buffer and loads
    /// mostly hit cache, so the per-access charges are small averages of
    /// occasional media events (§5.2 of the paper observes ~18 % slowdown
    /// for the transient queue on NVMM; these constants land the
    /// mini-benchmarks in the same band on this container).
    pub const fn optane() -> Self {
        LatencyModel {
            pwb_ns: 2,
            pwb_drain_ns: 8,
            psync_ns: 50,
            store_ns: 1,
            load_ns: 1,
        }
    }

    /// True when every component is zero (lets the hot path skip the spin).
    #[inline]
    pub const fn is_free(&self) -> bool {
        self.pwb_ns == 0
            && self.pwb_drain_ns == 0
            && self.psync_ns == 0
            && self.store_ns == 0
            && self.load_ns == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_zero_is_free() {
        let start = Instant::now();
        for _ in 0..1_000_000 {
            spin_ns(0);
        }
        // A million no-ops should take well under 50 ms.
        assert!(start.elapsed().as_millis() < 50);
    }

    #[test]
    fn spin_burns_roughly_requested_time() {
        spin_ns(1); // force calibration
        let start = Instant::now();
        for _ in 0..1_000 {
            spin_ns(1_000); // 1 µs each
        }
        let elapsed = start.elapsed().as_micros();
        // 1000 µs requested; accept a generous band (scheduler noise, coarse
        // calibration): between 0.2 ms and 100 ms.
        assert!(elapsed >= 200, "spun only {elapsed} µs");
        assert!(elapsed < 100_000, "spun {elapsed} µs");
    }

    #[test]
    fn models() {
        assert!(LatencyModel::dram().is_free());
        assert!(!LatencyModel::optane().is_free());
        assert_eq!(LatencyModel::default(), LatencyModel::dram());
    }
}
