//! Trace replay and PCSO crash-image reconstruction (`respct-crashsim`).
//!
//! A recorded [`TraceEvent`] stream (a [`VecSink`](crate::trace::VecSink)
//! attached to a sim-mode region) carries everything needed to rebuild the
//! machine's persistence state at *every* instant of the run: stores carry
//! their payload bytes, `pwb` events mark line snapshots entering a thread's
//! write-back queue, `psync` commits them, and eviction events record the
//! moments the simulated replacement policy persisted a line spontaneously.
//!
//! The [`Replayer`] consumes that stream and maintains, deterministically:
//!
//! * the **volatile image** — what loads would observe (all stores applied);
//! * the **persisted image** — what NVMM is *known* to hold (committed
//!   write-backs and observed evictions applied);
//! * the **pending set** — per-thread `pwb` snapshots not yet fenced;
//! * the **dirty set** — lines whose volatile content is newer than the
//!   persisted image.
//!
//! At any instant, the NVMM states reachable under PCSO if power failed
//! *right now* are: the persisted image, plus any subset of the pending
//! snapshots (each in-flight write-back independently completed or not),
//! plus any subset of the dirty lines evicted at the last moment (PCSO lets
//! the cache write a line back at any time). [`Replayer::crash_images`]
//! materializes the base image and a bounded selection of those subsets —
//! the "eviction-subset budget" — always including the none/all corners and
//! the singletons. Intermediate same-line prefixes need no extra choices: a
//! sweep that stops at *every* event already sees each line's intermediate
//! content as the evicted-now choice of some earlier instant.
//!
//! The replayer treats the trace's observation order as the ground truth
//! inter-thread order. For byte-disjoint racing stores (the only races the
//! runtime's data-race-freedom assumption permits, e.g. false sharing of a
//! line) any observation order yields a PCSO-reachable image, so the sweep
//! never fabricates an unreachable state.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::trace::{TraceEvent, TraceMarker};
use crate::CACHE_LINE;

/// Whether a crash is worth materializing right after `ev`: every instant at
/// which the reachable-image set (or the recovery obligation) can change.
pub fn is_crash_point(ev: &TraceEvent) -> bool {
    match ev {
        TraceEvent::Store { .. }
        | TraceEvent::Pwb { .. }
        | TraceEvent::Psync { .. }
        | TraceEvent::Eviction { .. }
        | TraceEvent::PersistAll => true,
        TraceEvent::Crash { .. } | TraceEvent::Restore => false,
        TraceEvent::Marker { .. } => is_protocol_point(ev),
        // Sync edges and loads never change the reachable-image set.
        TraceEvent::SyncRel { .. } | TraceEvent::SyncAcq { .. } | TraceEvent::Load { .. } => false,
    }
}

/// Whether `ev` is a checkpoint-protocol boundary (shard fences, the order
/// barrier, the epoch commit). Sweeps visit these regardless of any stride
/// sampling — commit-ordering bugs are only observable here.
pub fn is_protocol_point(ev: &TraceEvent) -> bool {
    matches!(
        ev,
        TraceEvent::Marker {
            marker: TraceMarker::CheckpointBegin { .. }
                | TraceMarker::ShardFlushBegin { .. }
                | TraceMarker::ShardFlushEnd { .. }
                | TraceMarker::OrderBarrier
                | TraceMarker::EpochAdvance { .. }
                | TraceMarker::DrainBegin { .. }
                | TraceMarker::DrainCommit { .. }
                | TraceMarker::CheckpointEnd { .. },
            ..
        }
    )
}

/// Deterministic reconstruction of a region's persistence state from a
/// recorded trace. See the module docs.
pub struct Replayer {
    size: usize,
    volatile: Vec<u8>,
    persisted: Vec<u8>,
    /// Lines whose volatile content may be newer than the persisted image.
    dirty: BTreeSet<u64>,
    /// Unfenced `pwb` snapshots per trace tid, in program order.
    pending: BTreeMap<u64, Vec<(u64, [u8; CACHE_LINE])>>,
    events: u64,
    saw_crash: bool,
}

impl Replayer {
    /// A replayer for a region of `size` bytes whose trace was recorded from
    /// creation (both images start all-zero, like a fresh region).
    ///
    /// # Panics
    ///
    /// Panics unless `size` is a positive line multiple (region sizes are).
    pub fn new(size: usize) -> Replayer {
        assert!(
            size > 0 && size.is_multiple_of(CACHE_LINE),
            "replayer size must be a positive line multiple"
        );
        Replayer {
            size,
            volatile: vec![0u8; size],
            persisted: vec![0u8; size],
            dirty: BTreeSet::new(),
            pending: BTreeMap::new(),
            events: 0,
            saw_crash: false,
        }
    }

    /// A replayer for a trace recorded *mid-run*: `image` is the region's
    /// content at attach time, which must have been fully persisted (e.g.
    /// via [`Region::persist_all`](crate::Region::persist_all) with no
    /// unfenced write-backs in flight).
    pub fn with_baseline(image: &[u8]) -> Replayer {
        let mut r = Replayer::new(image.len());
        r.volatile.copy_from_slice(image);
        r.persisted.copy_from_slice(image);
        r
    }

    /// Region size being replayed.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Events applied so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Whether a [`TraceEvent::Crash`] was encountered. Replay fidelity ends
    /// there (the original run's post-crash coin flips are not in the
    /// trace); all later events are ignored.
    pub fn saw_crash(&self) -> bool {
        self.saw_crash
    }

    /// Unfenced `pwb` snapshots currently in flight.
    pub fn pending_len(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// Lines currently dirty (volatile newer than persisted).
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    fn line_slice(buf: &[u8], line: u64) -> &[u8] {
        let off = line as usize * CACHE_LINE;
        &buf[off..off + CACHE_LINE]
    }

    fn copy_line(dst: &mut [u8], src: &[u8], line: u64) {
        let off = line as usize * CACHE_LINE;
        dst[off..off + CACHE_LINE].copy_from_slice(&src[off..off + CACHE_LINE]);
    }

    fn line_clean(&self, line: u64) -> bool {
        Self::line_slice(&self.volatile, line) == Self::line_slice(&self.persisted, line)
    }

    /// Advances the replayed state by one event.
    pub fn apply(&mut self, ev: &TraceEvent) {
        if self.saw_crash {
            return;
        }
        self.events += 1;
        match *ev {
            TraceEvent::Store {
                addr, len, data, ..
            } => {
                let bytes = data.as_slice();
                let end = (addr as usize + bytes.len()).min(self.size);
                if !bytes.is_empty() {
                    let n = end.saturating_sub(addr as usize);
                    self.volatile[addr as usize..end].copy_from_slice(&bytes[..n]);
                }
                let first = addr / CACHE_LINE as u64;
                let last = (addr + len.max(1) - 1) / CACHE_LINE as u64;
                for line in first..=last {
                    self.dirty.insert(line);
                }
            }
            TraceEvent::Pwb { tid, line } => {
                let mut snap = [0u8; CACHE_LINE];
                snap.copy_from_slice(Self::line_slice(&self.volatile, line));
                self.pending.entry(tid).or_default().push((line, snap));
            }
            TraceEvent::Psync { tid } => {
                for (line, snap) in self.pending.remove(&tid).unwrap_or_default() {
                    let off = line as usize * CACHE_LINE;
                    self.persisted[off..off + CACHE_LINE].copy_from_slice(&snap);
                    if self.line_clean(line) {
                        self.dirty.remove(&line);
                    }
                }
            }
            TraceEvent::Eviction { line } => {
                Self::copy_line(&mut self.persisted, &self.volatile, line);
                self.dirty.remove(&line);
            }
            TraceEvent::PersistAll => {
                for line in std::mem::take(&mut self.dirty) {
                    Self::copy_line(&mut self.persisted, &self.volatile, line);
                }
            }
            TraceEvent::Crash { .. } => {
                self.saw_crash = true;
            }
            TraceEvent::Restore => {
                // Only reachable in traces that restore without a recorded
                // crash (tests); volatile := persisted, caches drained.
                self.volatile.copy_from_slice(&self.persisted);
                self.dirty.clear();
                self.pending.clear();
            }
            TraceEvent::Marker { .. } => {}
            // Happens-before edges and traced loads carry no bytes: the
            // replayed images are unaffected.
            TraceEvent::SyncRel { .. } | TraceEvent::SyncAcq { .. } | TraceEvent::Load { .. } => {}
        }
    }

    /// The bytes loads would currently observe.
    pub fn volatile_image(&self) -> &[u8] {
        &self.volatile
    }

    /// The image NVMM is known to hold right now — what a crash yields if no
    /// in-flight write-back completes and nothing more is evicted.
    pub fn persisted_image(&self) -> Vec<u8> {
        self.persisted.clone()
    }

    /// A u64 from the known-persisted image (header probes, e.g. the magic
    /// and epoch fields, without materializing a full image).
    pub fn persisted_u64(&self, offset: usize) -> u64 {
        u64::from_ne_bytes(self.persisted[offset..offset + 8].try_into().unwrap())
    }

    /// Materializes the crash images reachable under PCSO at this instant,
    /// at most `max_images` of them (≥ 1; the budget of the sweep).
    ///
    /// The first image is always the base (no optional persist happened).
    /// With optional persists available (unfenced `pwb` snapshots that may
    /// have completed, dirty lines that may have been evicted) and budget to
    /// spare, the all-persists corner, each singleton, and then seeded
    /// random subsets follow. Images are not guaranteed pairwise distinct.
    pub fn crash_images(&self, max_images: usize, seed: u64) -> Vec<Vec<u8>> {
        let max_images = max_images.max(1);
        let mut images = vec![self.persisted.clone()];
        // Optional persists, no-ops filtered out. Pwb snapshots first (in
        // tid then program order — the order the simulator commits them),
        // then last-moment evictions, which carry the newest content.
        let pwbs: Vec<(u64, [u8; CACHE_LINE])> = self
            .pending
            .values()
            .flatten()
            .filter(|(line, snap)| Self::line_slice(&self.persisted, *line) != snap)
            .copied()
            .collect();
        let evicts: Vec<u64> = self
            .dirty
            .iter()
            .copied()
            .filter(|&line| !self.line_clean(line))
            .collect();
        let n = pwbs.len() + evicts.len();
        if n == 0 {
            return images;
        }
        let materialize = |mask: &dyn Fn(usize) -> bool| -> Vec<u8> {
            let mut img = self.persisted.clone();
            for (i, (line, snap)) in pwbs.iter().enumerate() {
                if mask(i) {
                    let off = *line as usize * CACHE_LINE;
                    img[off..off + CACHE_LINE].copy_from_slice(snap);
                }
            }
            for (j, &line) in evicts.iter().enumerate() {
                if mask(pwbs.len() + j) {
                    Self::copy_line(&mut img, &self.volatile, line);
                }
            }
            img
        };
        if n < usize::BITS as usize && (1usize << n) <= max_images {
            // Small choice set: enumerate every subset (distinct, complete).
            for bits in 1..(1u64 << n) {
                images.push(materialize(&|i| (bits >> i) & 1 == 1));
            }
            return images;
        }
        if images.len() < max_images {
            images.push(materialize(&|_| true));
        }
        for k in 0..n {
            if images.len() >= max_images {
                break;
            }
            images.push(materialize(&|i| i == k));
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        while images.len() < max_images {
            let subset: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
            if subset.iter().all(|&b| !b) || subset.iter().all(|&b| b) {
                continue; // corners already covered
            }
            images.push(materialize(&|i| subset[i]));
        }
        images
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::CrashMode;
    use crate::trace::VecSink;
    use crate::{PAddr, Region, RegionConfig, SimConfig};
    use std::sync::Arc;

    fn recorded_region(size: usize, cfg: SimConfig) -> (Arc<Region>, Arc<VecSink>) {
        let region = Region::new(RegionConfig::sim(size, cfg));
        let sink = Arc::new(VecSink::new());
        region.set_trace_sink(sink.clone());
        (region, sink)
    }

    fn replay_all(size: usize, events: &[TraceEvent]) -> Replayer {
        let mut r = Replayer::new(size);
        for ev in events {
            r.apply(ev);
        }
        r
    }

    #[test]
    fn replay_matches_simulator_when_quiescent() {
        // Stores + full flush: no pending pwbs, no dirty lines left behind,
        // so the replayed persisted image must equal the real crash image.
        let (region, sink) = recorded_region(4096, SimConfig::no_eviction(7));
        region.store(PAddr(64), 0xabcd_ef01_u64);
        region.store(PAddr(200), 0x55u8);
        region.store_bytes(PAddr(300), &[9u8; 100]);
        region.flush_range(PAddr(64), 8);
        region.flush_range(PAddr(200), 1);
        region.flush_range(PAddr(300), 100);
        let r = replay_all(4096, &sink.drain());
        assert_eq!(r.dirty_len(), 0);
        assert_eq!(r.pending_len(), 0);
        let img = region.crash(CrashMode::PowerFailure);
        assert_eq!(r.persisted_image(), img.bytes());
        assert_eq!(r.volatile_image(), img.bytes());
    }

    #[test]
    fn unfenced_pwb_is_an_optional_persist() {
        let (region, sink) = recorded_region(4096, SimConfig::no_eviction(7));
        region.store(PAddr(128), 7u64);
        region.pwb(PAddr(128));
        // No psync: the write-back is in flight.
        let r = replay_all(4096, &sink.drain());
        assert_eq!(r.pending_len(), 1);
        // Two optional persists: the in-flight pwb snapshot, and the (still
        // dirty) line being evicted at the last moment — same content here.
        let images = r.crash_images(8, 1);
        assert_eq!(images.len(), 4, "base, all, two singletons");
        let word = |img: &Vec<u8>| u64::from_ne_bytes(img[128..136].try_into().unwrap());
        assert_eq!(word(&images[0]), 0, "base: pwb did not complete");
        for img in &images[1..] {
            assert_eq!(word(img), 7, "pwb completed and/or line evicted");
        }
    }

    #[test]
    fn dirty_line_offers_evicted_now_choice() {
        let (region, sink) = recorded_region(4096, SimConfig::no_eviction(7));
        region.store(PAddr(256), 11u64);
        let r = replay_all(4096, &sink.drain());
        assert_eq!(r.dirty_len(), 1);
        let images = r.crash_images(8, 2);
        assert_eq!(images.len(), 2);
        let word = |img: &Vec<u8>| u64::from_ne_bytes(img[256..264].try_into().unwrap());
        assert_eq!(word(&images[0]), 0);
        assert_eq!(word(&images[1]), 11);
    }

    #[test]
    fn budget_bounds_image_count() {
        let (region, sink) = recorded_region(8192, SimConfig::no_eviction(7));
        for i in 0..20u64 {
            region.store(PAddr(i * 64), i + 1);
        }
        let r = replay_all(8192, &sink.drain());
        assert_eq!(r.dirty_len(), 20);
        assert_eq!(r.crash_images(6, 3).len(), 6);
        assert_eq!(r.crash_images(1, 3).len(), 1);
        // Enumerating more than the corners + singletons draws random
        // subsets and still terminates at the budget.
        assert_eq!(r.crash_images(40, 3).len(), 40);
    }

    #[test]
    fn psync_commits_snapshot_not_later_stores() {
        let (region, sink) = recorded_region(4096, SimConfig::no_eviction(7));
        region.store(PAddr(512), 1u64);
        region.pwb(PAddr(512));
        region.store(PAddr(512), 2u64); // after the snapshot
        region.psync();
        let r = replay_all(4096, &sink.drain());
        let word = |img: &Vec<u8>| u64::from_ne_bytes(img[512..520].try_into().unwrap());
        assert_eq!(word(&r.persisted_image()), 1, "snapshot semantics");
        assert_eq!(r.dirty_len(), 1, "newer volatile content keeps line dirty");
        // And the real simulator agrees.
        let img = region.crash(CrashMode::PowerFailure);
        assert_eq!(img.bytes()[512], 1);
    }

    #[test]
    fn evictions_replay_to_the_same_image() {
        // With random eviction on, the trace records each eviction; the
        // replayed persisted image must match the simulator's crash image
        // exactly once pending write-backs are fenced.
        for seed in 0..10u64 {
            let (region, sink) = recorded_region(16384, SimConfig::with_eviction(1, seed));
            for i in 0..100u64 {
                region.store(PAddr((i % 40) * 64), i);
            }
            region.flush_range(PAddr(0), 40 * 64);
            let r = replay_all(16384, &sink.drain());
            let img = region.crash(CrashMode::PowerFailure);
            assert_eq!(r.persisted_image(), img.bytes(), "seed {seed}");
        }
    }

    #[test]
    fn replay_stops_at_crash() {
        let (region, sink) = recorded_region(4096, SimConfig::no_eviction(7));
        region.store(PAddr(64), 1u64);
        let _ = region.crash(CrashMode::PowerFailure);
        region.store(PAddr(64), 2u64); // after the crash: not replayed
        let mut r = Replayer::new(4096);
        for ev in sink.drain() {
            r.apply(&ev);
        }
        assert!(r.saw_crash());
        let word = u64::from_ne_bytes(r.volatile_image()[64..72].try_into().unwrap());
        assert_eq!(word, 1);
    }

    #[test]
    fn with_baseline_starts_clean() {
        let mut base = vec![0u8; 4096];
        base[100] = 42;
        let r = Replayer::with_baseline(&base);
        assert_eq!(r.dirty_len(), 0);
        assert_eq!(r.persisted_image(), base);
        assert_eq!(r.volatile_image(), &base[..]);
    }

    #[test]
    fn crash_point_classification() {
        assert!(is_crash_point(&TraceEvent::store_meta(1, 0, 8)));
        assert!(is_crash_point(&TraceEvent::Psync { tid: 1 }));
        assert!(!is_crash_point(&TraceEvent::Restore));
        let commit = TraceEvent::Marker {
            tid: 1,
            marker: TraceMarker::EpochAdvance { epoch: 3 },
        };
        assert!(is_crash_point(&commit) && is_protocol_point(&commit));
        let rp = TraceEvent::Marker {
            tid: 1,
            marker: TraceMarker::RestartPoint { slot: 1, id: 2 },
        };
        assert!(!is_crash_point(&rp) && !is_protocol_point(&rp));
    }
}
