//! File-backed persistence: the mmap backend.
//!
//! [`MmapBackend`] maps a pool file `MAP_SHARED` into the address space, so
//! the region's bytes *are* the file's pages and a pool reopened by a fresh
//! process recovers from whatever the OS persisted. This is the deployment
//! shape of real App-Direct NVMM (a DAX-mapped file on a pmem-aware
//! filesystem); on a regular filesystem it still gives the property the
//! crash-recovery protocol needs for process-level fault tolerance:
//!
//! * `pwb` issues the real `clwb` on the mapped line (on DAX that is the
//!   durability instruction; on a page-cache mapping it writes the line back
//!   to the kernel's copy of the page).
//! * Dirty `MAP_SHARED` pages survive the death of the process — including
//!   `SIGKILL` mid-epoch — because the kernel owns them. Recovery in a new
//!   process therefore sees a state at least as fresh as every completed
//!   checkpoint, and rolls the open epoch back.
//! * Surviving a *machine* crash on a non-DAX filesystem additionally
//!   requires [`sync_data`](crate::backend::PmemBackend::sync_data)
//!   (`msync`), which callers invoke at durability points they care about.
//!
//! Open semantics are create-or-recover: a missing or empty file is created
//! at the configured size ([`was_created`] returns `true`, the pool layer
//! formats it); an existing file is mapped as-is at its own size
//! ([`was_created`] returns `false`, the pool layer runs recovery).
//!
//! [`was_created`]: crate::backend::PmemBackend::was_created

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::backend::{BackendKind, PmemBackend};
use crate::error::RegionError;
use crate::stats::PmemStats;
use crate::CACHE_LINE;

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const PROT_WRITE: c_int = 0x2;
    pub const MAP_SHARED: c_int = 0x01;
    #[cfg(target_os = "linux")]
    pub const MS_SYNC: c_int = 4;
    #[cfg(not(target_os = "linux"))]
    pub const MS_SYNC: c_int = 0x0010;

    // Raw libc bindings: std already links libc, and the container has no
    // `libc`/`memmap2` crate to lean on.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn msync(addr: *mut c_void, len: usize, flags: c_int) -> c_int;
    }
}

/// A `MAP_SHARED` file mapping serving as a region's arena. See the module
/// docs for the durability contract.
pub struct MmapBackend {
    map: *mut u8,
    size: usize,
    /// Keeps the backing fd open for the mapping's lifetime (not strictly
    /// required by POSIX, but it keeps the pool file pinned and debuggable).
    _file: std::fs::File,
    path: PathBuf,
    created: bool,
    stats: Arc<PmemStats>,
}

// SAFETY: the mapping is owned by the backend for its whole lifetime and
// only accessed through atomic operations by the region.
unsafe impl Send for MmapBackend {}
// SAFETY: as above.
unsafe impl Sync for MmapBackend {}

impl MmapBackend {
    /// Opens (create-or-recover) a pool file at `path`.
    ///
    /// A missing or empty file is created and sized to `default_size`
    /// (rounded up to a whole number of cache lines); an existing file is
    /// mapped at its own length, which must be a positive cache-line
    /// multiple.
    #[cfg(unix)]
    pub fn open(path: &Path, default_size: usize) -> Result<MmapBackend, RegionError> {
        use std::os::fd::AsRawFd;

        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| RegionError::io(path, "open", &e))?;
        let len = file
            .metadata()
            .map_err(|e| RegionError::io(path, "metadata", &e))?
            .len();
        let (size, created) = if len == 0 {
            if default_size == 0 {
                return Err(RegionError::InvalidConfig(
                    "mmap backend needs a positive size to create a new pool file",
                ));
            }
            let size = crate::align_up(default_size as u64, CACHE_LINE as u64) as usize;
            file.set_len(size as u64)
                .map_err(|e| RegionError::io(path, "set_len", &e))?;
            (size, true)
        } else {
            if !len.is_multiple_of(CACHE_LINE as u64) || usize::try_from(len).is_err() {
                return Err(RegionError::BadImage {
                    path: path.to_path_buf(),
                    len,
                });
            }
            (len as usize, false)
        };
        // SAFETY: mapping `size` bytes of the file we just opened and sized;
        // a null hint lets the kernel pick the address. The fd stays open
        // (held in `_file`) for the mapping's lifetime.
        let map = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                size,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if map as isize == -1 {
            return Err(RegionError::io(
                path,
                "mmap",
                &std::io::Error::last_os_error(),
            ));
        }
        Ok(MmapBackend {
            map: map as *mut u8,
            size,
            _file: file,
            path: path.to_path_buf(),
            created,
            stats: Arc::new(PmemStats::default()),
        })
    }

    /// Stub for non-unix platforms: the mmap backend needs `mmap(2)`.
    #[cfg(not(unix))]
    pub fn open(_path: &Path, _default_size: usize) -> Result<MmapBackend, RegionError> {
        Err(RegionError::Unsupported(
            "the mmap backend requires a unix platform",
        ))
    }
}

impl Drop for MmapBackend {
    fn drop(&mut self) {
        #[cfg(unix)]
        {
            // Best-effort flush on clean shutdown, then unmap. Errors are
            // unreportable from Drop; recovery handles a torn image anyway.
            // SAFETY: `map` is the live mapping of exactly `size` bytes
            // created in `open`; nothing accesses it after this.
            unsafe {
                let _ = sys::msync(self.map as *mut _, self.size, sys::MS_SYNC);
                let _ = sys::munmap(self.map as *mut _, self.size);
            }
        }
    }
}

impl PmemBackend for MmapBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mmap
    }

    fn base(&self) -> *mut u8 {
        self.map
    }

    fn size(&self) -> usize {
        self.size
    }

    fn stats(&self) -> &Arc<PmemStats> {
        &self.stats
    }

    fn pwb(&self, line: u64) {
        self.stats.count_pwb();
        let off = line as usize * CACHE_LINE;
        debug_assert!(off < self.size);
        // SAFETY: `line` is in bounds (the region checked the address), so
        // the flushed address lies inside the live mapping.
        unsafe { crate::arch::pwb(self.map.add(off)) };
    }

    fn psync(&self) {
        self.stats.count_psync();
        crate::arch::psync();
    }

    fn sync_data(&self) -> Result<(), RegionError> {
        #[cfg(unix)]
        {
            // SAFETY: `map` is the live mapping of exactly `size` bytes.
            let rc = unsafe { sys::msync(self.map as *mut _, self.size, sys::MS_SYNC) };
            if rc != 0 {
                return Err(RegionError::io(
                    &self.path,
                    "msync",
                    &std::io::Error::last_os_error(),
                ));
            }
        }
        Ok(())
    }

    fn path(&self) -> Option<&Path> {
        Some(&self.path)
    }

    fn was_created(&self) -> bool {
        self.created
    }
}

#[cfg(all(test, unix, not(miri)))]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("respct_mmap_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn create_then_reopen_sees_bytes() {
        let path = tmp("roundtrip.pool");
        {
            let b = MmapBackend::open(&path, 8192).unwrap();
            assert!(b.was_created());
            assert_eq!(b.size(), 8192);
            // SAFETY: in-bounds write to the fresh mapping.
            unsafe { b.base().add(100).write(0xab) };
            b.pwb(1);
            b.psync();
            b.sync_data().unwrap();
        }
        let b = MmapBackend::open(&path, 0).unwrap();
        assert!(!b.was_created());
        assert_eq!(b.size(), 8192);
        // SAFETY: in-bounds read of the mapped file.
        let v = unsafe { b.base().add(100).read() };
        assert_eq!(v, 0xab);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn existing_size_wins_over_config() {
        let path = tmp("sized.pool");
        drop(MmapBackend::open(&path, 4096).unwrap());
        let b = MmapBackend::open(&path, 1 << 20).unwrap();
        assert_eq!(b.size(), 4096, "existing pool keeps its own size");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_unaligned_file() {
        let path = tmp("ragged.pool");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        match MmapBackend::open(&path, 0) {
            Err(RegionError::BadImage { len, .. }) => assert_eq!(len, 100),
            Err(other) => panic!("expected BadImage, got {other:?}"),
            Ok(_) => panic!("expected BadImage, got Ok"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_size_create_is_config_error() {
        let path = tmp("zero.pool");
        match MmapBackend::open(&path, 0) {
            Err(RegionError::InvalidConfig(_)) => {}
            Err(other) => panic!("expected InvalidConfig, got {other:?}"),
            Ok(_) => panic!("expected InvalidConfig, got Ok"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn size_is_line_rounded_on_create() {
        let path = tmp("round.pool");
        let b = MmapBackend::open(&path, 100).unwrap();
        assert_eq!(b.size(), 128);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 128);
        drop(b);
        std::fs::remove_file(&path).unwrap();
    }
}
