//! Cache-line persistence simulator implementing the PCSO model (paper §2.1).
//!
//! The simulator models the split between the volatile cache hierarchy and
//! persistent NVMM on a real machine:
//!
//! * The *volatile image* is the region's actual memory — it always holds the
//!   latest stored values (what loads observe).
//! * The *persisted image* (kept here) holds what NVMM would contain after a
//!   power failure.
//! * A line moves volatile → persisted when it is explicitly written back
//!   (`pwb` followed by `psync`) or when the simulated replacement policy
//!   evicts it at an arbitrary moment (a seeded coin flip on every store).
//!
//! Because a write-back copies the *entire current line*, two writes to the
//! same cache line can never reach the persisted image out of program order
//! — exactly the PCSO guarantee In-Cache-Line Logging relies on. `pwb` is
//! modeled as asynchronous: it snapshots the line into a per-thread pending
//! set, and only `psync` commits the snapshots, so a crash between `pwb` and
//! `psync` may or may not persist the line (decided by a seeded coin flip),
//! as on real hardware.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

use parking_lot::{Mutex, MutexGuard};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::stats::PmemStats;
use crate::CACHE_LINE;

const NSHARDS: usize = 64;

/// Configuration of the persistence simulator.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// On every store, evict one random dirty line of the same shard with
    /// probability `1 / 2^evict_one_in_log2`. `u32::MAX` disables random
    /// eviction (only explicit `pwb`/`psync` persists data).
    pub evict_one_in_log2: u32,
    /// Seed for all randomness (eviction choice, unfenced-`pwb` coin flips),
    /// so property tests are reproducible.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        // Evict roughly one line per 32 stores: aggressive enough that
        // crash tests exercise partially-persisted epochs.
        SimConfig {
            evict_one_in_log2: 5,
            seed: 0x5e5_0c75,
        }
    }
}

impl SimConfig {
    /// No random eviction: persistence only via `pwb`+`psync`.
    pub fn no_eviction(seed: u64) -> Self {
        SimConfig {
            evict_one_in_log2: u32::MAX,
            seed,
        }
    }

    /// Evict one line in `2^log2` stores.
    pub fn with_eviction(log2: u32, seed: u64) -> Self {
        SimConfig {
            evict_one_in_log2: log2,
            seed,
        }
    }
}

/// How a simulated crash treats lines that were written back in-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Power-failure semantics: dirty lines are lost; `pwb`-but-unfenced
    /// snapshots persist or not per coin flip.
    PowerFailure,
    /// Clean shutdown: every dirty line is written back first. Useful to
    /// test that recovery still rolls the crashed epoch back even when all
    /// of it persisted.
    EvictAll,
}

pub(crate) struct Shard {
    /// Lines of this shard that have volatile content newer than the
    /// persisted image (eviction candidates).
    dirty: Vec<u64>,
    /// Persisted snapshots, overriding `baseline`.
    persisted: HashMap<u64, [u8; CACHE_LINE]>,
    rng: SmallRng,
}

/// Per-thread `pwb` snapshots awaiting a fence: (line index, line image).
type PendingWrites = HashMap<ThreadId, Vec<(u64, [u8; CACHE_LINE])>>;

/// The persistence simulator. One per sim-mode [`Region`](crate::Region).
pub struct CacheSim {
    cfg: SimConfig,
    /// Base pointer of the attached region's buffer (as usize so the type
    /// stays `Send + Sync`; only read under shard locks).
    base: AtomicUsize,
    size: usize,
    shards: Box<[Mutex<Shard>]>,
    /// Snapshots taken by `pwb` but not yet committed by `psync`, per thread.
    pending: Mutex<PendingWrites>,
    /// Content of lines with no entry in any shard's `persisted` map.
    baseline: Mutex<Vec<u8>>,
    stats: Arc<PmemStats>,
}

/// What survives a simulated crash: the persisted image of the region.
#[derive(Clone)]
pub struct CrashImage {
    pub(crate) bytes: Vec<u8>,
}

impl CrashImage {
    /// The persisted bytes (entire region).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wraps raw bytes as a synthetic crash image — the entry point for
    /// trace-replay tools that reconstruct PCSO-reachable NVMM states and
    /// hand them to recovery via [`Region::restore`](crate::Region::restore).
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is a positive whole number of cache lines
    /// (every region's size is).
    pub fn from_bytes(bytes: Vec<u8>) -> CrashImage {
        assert!(
            !bytes.is_empty() && bytes.len().is_multiple_of(CACHE_LINE),
            "crash image must be a positive line multiple, got {} bytes",
            bytes.len()
        );
        CrashImage { bytes }
    }
}

impl CacheSim {
    pub(crate) fn new(cfg: SimConfig, size: usize, stats: Arc<PmemStats>) -> Self {
        let shards = (0..NSHARDS)
            .map(|i| {
                Mutex::new(Shard {
                    dirty: Vec::new(),
                    persisted: HashMap::new(),
                    rng: SmallRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9)),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        CacheSim {
            cfg,
            base: AtomicUsize::new(0),
            size,
            shards,
            pending: Mutex::new(HashMap::new()),
            baseline: Mutex::new(vec![0u8; size]),
            stats,
        }
    }

    pub(crate) fn attach(&self, base: *const u8) {
        self.base.store(base as usize, Ordering::Release);
    }

    #[inline]
    fn shard_of(&self, line: u64) -> &Mutex<Shard> {
        &self.shards[(line as usize) % NSHARDS]
    }

    /// Locks the shard guarding `line`. The region performs the volatile
    /// write while holding this guard so that eviction snapshots never race
    /// with stores to the same shard.
    #[inline]
    pub(crate) fn lock_line(&self, line: u64) -> MutexGuard<'_, Shard> {
        self.shard_of(line).lock()
    }

    /// Reads the current volatile content of `line` from the attached region.
    ///
    /// Must be called with the shard lock of `line` held (enforced by taking
    /// the guard); lines in other shards may be written concurrently, but we
    /// only read `line` itself.
    fn read_line(&self, line: u64) -> [u8; CACHE_LINE] {
        let base = self.base.load(Ordering::Acquire);
        assert!(base != 0, "CacheSim not attached to a region");
        let off = line as usize * CACHE_LINE;
        debug_assert!(off + CACHE_LINE <= self.size);
        let mut out = [0u8; CACHE_LINE];
        // SAFETY: `base + off .. base + off + 64` lies inside the attached
        // region's live buffer (checked by the debug assert against the
        // region size recorded at construction). The shard lock serializes
        // this read against all sim-mode stores to the same line.
        unsafe {
            std::ptr::copy_nonoverlapping((base + off) as *const u8, out.as_mut_ptr(), CACHE_LINE);
        }
        out
    }

    /// Marks `line` dirty after a store and rolls the eviction dice.
    /// Returns the evicted line, if the dice chose a victim (reported to the
    /// region's trace sink by the caller).
    ///
    /// Consumes the shard guard that was held across the volatile write.
    pub(crate) fn note_store(&self, mut guard: MutexGuard<'_, Shard>, line: u64) -> Option<u64> {
        self.stats.count_store();
        if !guard.dirty.contains(&line) {
            guard.dirty.push(line);
        }
        let log2 = self.cfg.evict_one_in_log2;
        if log2 != u32::MAX {
            let roll: u64 = guard.rng.gen();
            let ndirty = guard.dirty.len();
            if roll & ((1u64 << log2) - 1) == 0 && ndirty > 0 {
                let idx = guard.rng.gen_range(0..ndirty);
                let victim = guard.dirty.swap_remove(idx);
                let bytes = self.read_line(victim);
                guard.persisted.insert(victim, bytes);
                self.stats.count_eviction();
                return Some(victim);
            }
        }
        None
    }

    /// Simulates `pwb`: snapshot the line now; it persists at `psync`.
    pub(crate) fn pwb(&self, line: u64) {
        self.stats.count_pwb();
        let bytes = {
            let _guard = self.lock_line(line);
            self.read_line(line)
        };
        let tid = std::thread::current().id();
        self.pending
            .lock()
            .entry(tid)
            .or_default()
            .push((line, bytes));
    }

    /// Simulates `psync`: commit this thread's pending `pwb` snapshots.
    pub(crate) fn psync(&self) {
        self.stats.count_psync();
        let tid = std::thread::current().id();
        let drained = self.pending.lock().remove(&tid);
        if let Some(entries) = drained {
            for (line, bytes) in entries {
                let mut guard = self.lock_line(line);
                guard.persisted.insert(line, bytes);
                // The snapshot may be stale relative to newer volatile
                // stores; the line stays in the dirty set in that case
                // (it was re-added by the newer store).
            }
        }
    }

    /// Builds the crash image: what NVMM holds if power fails right now.
    pub(crate) fn crash(&self, mode: CrashMode) -> CrashImage {
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed ^ 0xdead_beef);
        // Resolve in-flight (unfenced) pwbs first: each one independently
        // completed or not.
        let pending: Vec<(u64, [u8; CACHE_LINE])> = {
            let mut p = self.pending.lock();
            p.drain().flat_map(|(_, v)| v).collect()
        };
        for (line, bytes) in pending {
            let survive = match mode {
                CrashMode::PowerFailure => rng.gen::<bool>(),
                CrashMode::EvictAll => true,
            };
            if survive {
                self.lock_line(line).persisted.insert(line, bytes);
            }
        }
        if mode == CrashMode::EvictAll {
            for shard in &self.shards {
                let mut guard = shard.lock();
                let dirty = std::mem::take(&mut guard.dirty);
                for line in dirty {
                    let bytes = self.read_line(line);
                    guard.persisted.insert(line, bytes);
                }
            }
        }
        let mut bytes = self.baseline.lock().clone();
        for shard in &self.shards {
            let guard = shard.lock();
            for (&line, content) in &guard.persisted {
                let off = line as usize * CACHE_LINE;
                bytes[off..off + CACHE_LINE].copy_from_slice(content);
            }
        }
        CrashImage { bytes }
    }

    /// Resets the simulator after the region restored from `image`: the
    /// persisted and volatile images are now identical.
    pub(crate) fn reset_to(&self, image: &CrashImage) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            guard.dirty.clear();
            guard.persisted.clear();
        }
        self.pending.lock().clear();
        self.baseline.lock().copy_from_slice(&image.bytes);
    }

    /// Forces every dirty line to the persisted image (clean shutdown).
    pub(crate) fn persist_all(&self) {
        for shard in &self.shards {
            let mut guard = shard.lock();
            let dirty = std::mem::take(&mut guard.dirty);
            for line in dirty {
                let bytes = self.read_line(line);
                guard.persisted.insert(line, bytes);
            }
        }
    }
}

// Manual impl: `Shard` contains no pointers; `base` is a plain integer and
// the referenced buffer is owned by the `Region` that also owns this sim.
// SAFETY: all interior mutability is behind `Mutex`es.
unsafe impl Send for CacheSim {}
// SAFETY: as above.
unsafe impl Sync for CacheSim {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_with_buf(size: usize, cfg: SimConfig) -> (CacheSim, Vec<u8>) {
        let stats = Arc::new(PmemStats::default());
        let sim = CacheSim::new(cfg, size, stats);
        let buf = vec![0u8; size];
        sim.attach(buf.as_ptr());
        (sim, buf)
    }

    fn store(sim: &CacheSim, buf: &mut [u8], off: usize, val: u8) {
        let line = (off / CACHE_LINE) as u64;
        let guard = sim.lock_line(line);
        buf[off] = val;
        sim.note_store(guard, line);
    }

    #[test]
    fn unflushed_store_lost_on_crash() {
        let (sim, mut buf) = sim_with_buf(256, SimConfig::no_eviction(1));
        store(&sim, &mut buf, 10, 7);
        let img = sim.crash(CrashMode::PowerFailure);
        assert_eq!(img.bytes()[10], 0, "dirty line must not persist");
    }

    #[test]
    fn pwb_psync_persists() {
        let (sim, mut buf) = sim_with_buf(256, SimConfig::no_eviction(1));
        store(&sim, &mut buf, 10, 7);
        sim.pwb(0);
        sim.psync();
        let img = sim.crash(CrashMode::PowerFailure);
        assert_eq!(img.bytes()[10], 7);
    }

    #[test]
    fn pwb_snapshot_taken_at_pwb_time() {
        let (sim, mut buf) = sim_with_buf(256, SimConfig::no_eviction(1));
        store(&sim, &mut buf, 10, 7);
        sim.pwb(0);
        store(&sim, &mut buf, 10, 9); // after the pwb snapshot
        sim.psync();
        let img = sim.crash(CrashMode::PowerFailure);
        // The snapshot at pwb time had 7; the 9 was never written back.
        assert_eq!(img.bytes()[10], 7);
    }

    #[test]
    fn evict_all_persists_everything() {
        let (sim, mut buf) = sim_with_buf(512, SimConfig::no_eviction(1));
        for i in 0..8 {
            store(&sim, &mut buf, i * CACHE_LINE, (i + 1) as u8);
        }
        let img = sim.crash(CrashMode::EvictAll);
        for i in 0..8 {
            assert_eq!(img.bytes()[i * CACHE_LINE], (i + 1) as u8);
        }
    }

    #[test]
    fn same_line_prefix_order() {
        // Two stores to one line: if the second persisted, the first did too
        // (they are snapshot together). With heavy eviction, verify over many
        // iterations that we never see the second without the first.
        for seed in 0..50u64 {
            let (sim, mut buf) = sim_with_buf(128, SimConfig::with_eviction(0, seed));
            store(&sim, &mut buf, 0, 1); // "log" write
            store(&sim, &mut buf, 8, 2); // "data" write, same line
            let img = sim.crash(CrashMode::PowerFailure);
            if img.bytes()[8] == 2 {
                assert_eq!(img.bytes()[0], 1, "data persisted before log (seed {seed})");
            }
        }
    }

    #[test]
    fn reset_after_restore() {
        let (sim, mut buf) = sim_with_buf(256, SimConfig::no_eviction(1));
        store(&sim, &mut buf, 0, 5);
        sim.pwb(0);
        sim.psync();
        let img = sim.crash(CrashMode::PowerFailure);
        sim.reset_to(&img);
        // After reset, a crash with no further stores returns the image.
        let img2 = sim.crash(CrashMode::PowerFailure);
        assert_eq!(img.bytes(), img2.bytes());
    }

    #[test]
    fn persist_all_flushes_dirty() {
        let (sim, mut buf) = sim_with_buf(256, SimConfig::no_eviction(1));
        store(&sim, &mut buf, 100, 42);
        sim.persist_all();
        let img = sim.crash(CrashMode::PowerFailure);
        assert_eq!(img.bytes()[100], 42);
    }

    #[test]
    fn stats_counted() {
        let stats = Arc::new(PmemStats::default());
        let sim = CacheSim::new(SimConfig::no_eviction(1), 256, Arc::clone(&stats));
        let buf = vec![0u8; 256];
        sim.attach(buf.as_ptr());
        let guard = sim.lock_line(0);
        sim.note_store(guard, 0);
        sim.pwb(0);
        sim.psync();
        let snap = stats.snapshot();
        assert_eq!(snap.stores, 1);
        assert_eq!(snap.pwb, 1);
        assert_eq!(snap.psync, 1);
    }
}
