//! Classic per-operation undo logging (NV-Heaps / PMDK `libpmemobj` style):
//! durable linearizability.
//!
//! Every store inside a failure-atomic section first appends `(addr, old)`
//! to a per-thread undo log in NVMM and *persists the log entry before the
//! store* (`pwb` + `psync` — this ordering write is the technique's
//! signature cost). At commit, all modified lines are flushed, fenced, and
//! the log is truncated with another persisted write. The paper's related
//! work (§2.2) identifies exactly this extra synchronization as the reason
//! checkpointing approaches exist.

use std::sync::Arc;

use respct_pmem::{PAddr, Region};

use crate::nvheap::{NvCtx, NvHeap};
use crate::policy::{PersistPolicy, WriteKind};

const LOG_BYTES: u64 = 256 * 1024;

/// The undo-logging policy.
pub struct UndoPolicy {
    heap: Arc<NvHeap>,
}

/// Per-thread state: NVMM log area + tracked lines.
pub struct UndoCtx {
    alloc: NvCtx,
    /// Log layout: `len` at +0, entries (addr, old) from +64.
    log: PAddr,
    log_len: u64,
    modified: Vec<u64>,
}

impl UndoPolicy {
    /// Creates the policy over `region`.
    pub fn new(region: Arc<Region>) -> UndoPolicy {
        UndoPolicy {
            heap: Arc::new(NvHeap::new(region)),
        }
    }

    fn region(&self) -> &Arc<Region> {
        self.heap.region()
    }

    fn log_append(&self, ctx: &mut UndoCtx, addr: PAddr, old: u64) {
        let region = self.region();
        let slot = PAddr(ctx.log.0 + 64 + ctx.log_len * 16);
        debug_assert!(ctx.log_len * 16 + 64 + 16 <= LOG_BYTES, "undo log overflow");
        region.store(slot, addr.0);
        region.store(slot.offset(8), old);
        // Persist the log entry before the in-place store may reach NVMM.
        region.pwb(slot);
        region.psync();
        ctx.log_len += 1;
    }
}

impl PersistPolicy for UndoPolicy {
    type Ctx = UndoCtx;

    fn register(&self) -> UndoCtx {
        let mut alloc = self.heap.ctx();
        let log = self.heap.alloc(&mut alloc, LOG_BYTES);
        self.region().store(log, 0u64);
        UndoCtx {
            alloc,
            log,
            log_len: 0,
            modified: Vec::new(),
        }
    }

    fn stride(&self) -> u64 {
        8
    }

    fn alloc(&self, ctx: &mut UndoCtx, size: u64) -> PAddr {
        self.heap.alloc(&mut ctx.alloc, size)
    }

    fn free(&self, ctx: &mut UndoCtx, addr: PAddr, size: u64) {
        let _ = ctx;
        self.heap.free(addr, size);
    }

    fn begin(&self, ctx: &mut UndoCtx) {
        ctx.log_len = 0;
        ctx.modified.clear();
    }

    fn read(&self, addr: PAddr) -> u64 {
        self.region().load(addr)
    }

    fn write(&self, ctx: &mut UndoCtx, addr: PAddr, val: u64, _kind: WriteKind) {
        // Undo logging logs every in-place store, WAR or not.
        let old: u64 = self.region().load(addr);
        self.log_append(ctx, addr, old);
        self.region().store(addr, val);
        ctx.modified.push(addr.line());
    }

    fn init(&self, ctx: &mut UndoCtx, addr: PAddr, val: u64) {
        // Fresh memory: no old value to preserve, but the line must still
        // be durable at commit.
        self.region().store(addr, val);
        ctx.modified.push(addr.line());
    }

    fn commit(&self, ctx: &mut UndoCtx) {
        let region = self.region();
        if !ctx.modified.is_empty() {
            ctx.modified.sort_unstable();
            ctx.modified.dedup();
            for &line in &ctx.modified {
                region.pwb_line(line);
            }
            region.psync();
        }
        if ctx.log_len > 0 {
            // Truncate the log durably: the transaction is now committed.
            region.store(ctx.log, 0u64);
            region.pwb(ctx.log);
            region.psync();
            ctx.log_len = 0;
        }
        ctx.modified.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;
    use respct_ds::traits::BenchMap;
    use respct_pmem::RegionConfig;

    fn policy() -> Arc<UndoPolicy> {
        Arc::new(UndoPolicy::new(Region::new(RegionConfig::fast(32 << 20))))
    }

    #[test]
    fn map_conformance() {
        conformance::check_map(policy());
    }

    #[test]
    fn queue_conformance() {
        conformance::check_queue(policy());
    }

    #[test]
    fn concurrent_map() {
        conformance::check_map_concurrent(policy());
    }

    #[test]
    fn flushes_per_op_exceed_respct() {
        // The signature cost: at least one psync per logged write plus two
        // at commit.
        let region = Region::new(RegionConfig::fast(32 << 20));
        let p = Arc::new(UndoPolicy::new(Arc::clone(&region)));
        let m = crate::policy::PolicyHashMap::new(Arc::clone(&p), 16);
        let mut ctx = m.register();
        let before = region.stats().snapshot();
        for k in 0..100 {
            m.insert(&mut ctx, k, k);
        }
        let delta = region.stats().snapshot().since(&before);
        assert!(
            delta.psync >= 200,
            "expected ≥2 fences/op, saw {}",
            delta.psync
        );
        assert!(delta.pwb >= 200);
    }
}
