//! Quadra/Trinity (PPoPP '21): durable linearizability with in-cache-line
//! logging.
//!
//! Like ResPCT, Quadra/Trinity keeps each word's undo information in the
//! same cache line as the word, so no separate log write (and no ordering
//! fence before the store) is needed. Unlike ResPCT, it guarantees full
//! durable linearizability: every operation ends by flushing its modified
//! lines and issuing one fence. This is the paper's closest
//! durably-linearizable competitor — its Fig. 8/9 gap versus ResPCT is
//! exactly the per-operation flush + fence that checkpointing amortizes.
//!
//! Cell layout per logical field (32 bytes, never straddling a line):
//! `record@0, backup@8, tag@16` where `tag` identifies the operation that
//! last took a backup (thread id ⊕ per-thread op counter).
//!
//! Simplification versus the artifact: the flat-combining critical-section
//! optimization is not reproduced (the paper itself replaces it with a
//! plain lock for the queue comparison), and recovery is not exercised —
//! only the failure-free cost profile is measured.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use respct_pmem::{PAddr, Region};

use crate::nvheap::{NvCtx, NvHeap};
use crate::policy::{PersistPolicy, WriteKind};

/// The in-cache-line-logging durable policy.
pub struct QuadraPolicy {
    heap: Arc<NvHeap>,
    next_thread: AtomicU64,
}

/// Per-thread state.
pub struct QuadraCtx {
    alloc: NvCtx,
    /// Unique tag for the current operation (thread id in the high bits).
    op_tag: u64,
    modified: Vec<u64>,
}

impl QuadraPolicy {
    /// Creates the policy over `region`.
    pub fn new(region: Arc<Region>) -> QuadraPolicy {
        QuadraPolicy {
            heap: Arc::new(NvHeap::new(region)),
            next_thread: AtomicU64::new(1),
        }
    }

    fn region(&self) -> &Arc<Region> {
        self.heap.region()
    }
}

impl PersistPolicy for QuadraPolicy {
    type Ctx = QuadraCtx;

    fn register(&self) -> QuadraCtx {
        let tid = self.next_thread.fetch_add(1, Ordering::Relaxed);
        QuadraCtx {
            alloc: self.heap.ctx(),
            op_tag: tid << 40,
            modified: Vec::new(),
        }
    }

    fn stride(&self) -> u64 {
        32
    }

    fn alloc(&self, ctx: &mut QuadraCtx, size: u64) -> PAddr {
        self.heap.alloc(&mut ctx.alloc, size)
    }

    fn free(&self, _ctx: &mut QuadraCtx, addr: PAddr, size: u64) {
        self.heap.free(addr, size);
    }

    fn begin(&self, ctx: &mut QuadraCtx) {
        ctx.op_tag += 1;
        ctx.modified.clear();
    }

    fn read(&self, addr: PAddr) -> u64 {
        self.region().load(addr)
    }

    fn write(&self, ctx: &mut QuadraCtx, addr: PAddr, val: u64, _kind: WriteKind) {
        let region = self.region();
        let tag: u64 = region.load(addr.offset(16));
        if tag != ctx.op_tag {
            // First write of this op to this cell: back up in-line. PCSO
            // orders these same-line stores, so no flush/fence is needed.
            let old: u64 = region.load(addr);
            region.store(addr.offset(8), old);
            region.store(addr.offset(16), ctx.op_tag);
        }
        region.store(addr, val);
        ctx.modified.push(addr.line());
    }

    fn init(&self, ctx: &mut QuadraCtx, addr: PAddr, val: u64) {
        let region = self.region();
        region.store(addr, val);
        region.store(addr.offset(8), val);
        region.store(addr.offset(16), 0u64);
        ctx.modified.push(addr.line());
    }

    fn commit(&self, ctx: &mut QuadraCtx) {
        // Durable linearizability: one flush per modified line + one fence,
        // on every operation.
        let region = self.region();
        if !ctx.modified.is_empty() {
            ctx.modified.sort_unstable();
            ctx.modified.dedup();
            for &line in &ctx.modified {
                region.pwb_line(line);
            }
            region.psync();
            ctx.modified.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;
    use respct_ds::traits::BenchMap;
    use respct_pmem::RegionConfig;

    fn policy() -> Arc<QuadraPolicy> {
        Arc::new(QuadraPolicy::new(Region::new(RegionConfig::fast(64 << 20))))
    }

    #[test]
    fn map_conformance() {
        conformance::check_map(policy());
    }

    #[test]
    fn queue_conformance() {
        conformance::check_queue(policy());
    }

    #[test]
    fn concurrent_map() {
        conformance::check_map_concurrent(policy());
    }

    #[test]
    fn one_fence_per_update_op() {
        let region = Region::new(RegionConfig::fast(64 << 20));
        let p = Arc::new(QuadraPolicy::new(Arc::clone(&region)));
        let m = crate::policy::PolicyHashMap::new(Arc::clone(&p), 16);
        let mut ctx = m.register();
        for k in 0..50 {
            m.insert(&mut ctx, k, 0);
        }
        let before = region.stats().snapshot();
        for k in 0..50 {
            m.insert(&mut ctx, k, 1); // in-place value updates
        }
        let delta = region.stats().snapshot().since(&before);
        // Exactly one fence per op (plus none for the lookups inside), and
        // no separate log writes: pwb count ≈ modified lines.
        assert_eq!(delta.psync, 50, "one fence per op, saw {}", delta.psync);
        assert!(
            delta.pwb <= 60,
            "no separate log flushes expected, saw {}",
            delta.pwb
        );
    }

    #[test]
    fn backup_taken_once_per_op() {
        let region = Region::new(RegionConfig::fast(1 << 20));
        let p = QuadraPolicy::new(Arc::clone(&region));
        let mut ctx = p.register();
        let cell = p.alloc(&mut ctx, 32);
        p.begin(&mut ctx);
        p.init(&mut ctx, cell, 1);
        p.commit(&mut ctx);
        p.begin(&mut ctx);
        p.write(&mut ctx, cell, 2, WriteKind::War);
        p.write(&mut ctx, cell, 3, WriteKind::War);
        // Backup holds the pre-op value, not the intermediate.
        assert_eq!(region.load::<u64>(cell.offset(8)), 1);
        assert_eq!(region.load::<u64>(cell), 3);
        p.commit(&mut ctx);
    }
}
