//! Quiesce barrier shared by the epoch-based baselines (PMThreads, Montage,
//! Dalí).
//!
//! The checkpointing thread must observe a state where no operation is
//! mid-flight before it copies/flushes epoch data. Operations bracket
//! themselves with [`EpochBarrier::op_begin`]/[`EpochBarrier::op_end`]
//! (cheap flag flips); the checkpointer calls [`EpochBarrier::quiesce`]
//! to stop new operations and wait out in-flight ones. This mirrors
//! PMThreads' "checkpoint at the end of any critical section" rule.

use std::sync::atomic::{AtomicBool, Ordering};

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

/// Maximum registered operators.
pub const MAX_OPS: usize = 128;

/// The barrier. See the module docs.
pub struct EpochBarrier {
    pause: AtomicBool,
    in_op: Box<[CachePadded<AtomicBool>]>,
    free: Mutex<Vec<usize>>,
}

impl Default for EpochBarrier {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochBarrier {
    /// Creates a barrier.
    pub fn new() -> EpochBarrier {
        EpochBarrier {
            pause: AtomicBool::new(false),
            in_op: (0..MAX_OPS)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            free: Mutex::new((0..MAX_OPS).rev().collect()),
        }
    }

    /// Registers an operator; returns its slot.
    ///
    /// # Panics
    ///
    /// Panics when all slots are taken.
    pub fn register(&self) -> usize {
        self.free.lock().pop().expect("barrier slots exhausted")
    }

    /// Returns a slot (operator finished).
    pub fn deregister(&self, slot: usize) {
        self.in_op[slot].store(false, Ordering::SeqCst);
        self.free.lock().push(slot);
    }

    /// Marks the start of an operation; blocks while a quiesce is pending.
    #[inline]
    pub fn op_begin(&self, slot: usize) {
        loop {
            while self.pause.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            self.in_op[slot].store(true, Ordering::SeqCst);
            if !self.pause.load(Ordering::SeqCst) {
                return;
            }
            // A quiesce started between the check and the flag set; back off.
            self.in_op[slot].store(false, Ordering::SeqCst);
        }
    }

    /// Marks the end of an operation.
    #[inline]
    pub fn op_end(&self, slot: usize) {
        self.in_op[slot].store(false, Ordering::SeqCst);
    }

    /// Stops new operations, waits for in-flight ones, runs `f`, resumes.
    pub fn quiesce<R>(&self, f: impl FnOnce() -> R) -> R {
        self.pause.store(true, Ordering::SeqCst);
        for flag in &self.in_op {
            let mut spins = 0u32;
            while flag.load(Ordering::SeqCst) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        let r = f();
        self.pause.store(false, Ordering::SeqCst);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn register_recycles() {
        let b = EpochBarrier::new();
        let s = b.register();
        b.deregister(s);
        assert_eq!(b.register(), s);
    }

    #[test]
    fn quiesce_excludes_ops() {
        let b = Arc::new(EpochBarrier::new());
        let counter = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let (b, counter, stop) = (Arc::clone(&b), Arc::clone(&counter), Arc::clone(&stop));
                std::thread::spawn(move || {
                    let slot = b.register();
                    while !stop.load(Ordering::Relaxed) {
                        b.op_begin(slot);
                        counter.fetch_add(1, Ordering::Relaxed);
                        counter.fetch_sub(1, Ordering::Relaxed);
                        b.op_end(slot);
                    }
                    b.deregister(slot);
                })
            })
            .collect();
        for _ in 0..50 {
            b.quiesce(|| {
                assert_eq!(
                    counter.load(Ordering::SeqCst),
                    0,
                    "op in flight during quiesce"
                );
            });
        }
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
    }
}
