//! Generic lock-based map/queue parameterized by a persistence policy.
//!
//! The durable-linearizability systems the paper compares against (undo
//! logging, Clobber-NVM, Quadra/Trinity) and PMThreads all run the *same*
//! data-structure algorithm; what differs is the persistence work wrapped
//! around each load and store. [`PersistPolicy`] captures exactly that
//! interface, and [`PolicyHashMap`]/[`PolicyQueue`] are the shared
//! structures, so the benchmark differences between systems come purely
//! from their persistence mechanics — the comparison the paper makes.

use std::sync::Arc;

use parking_lot::Mutex;
use respct_ds::hash_u64;
use respct_ds::traits::{BenchMap, BenchQueue};
use respct_pmem::PAddr;

/// How a store relates to the operation's read set — Clobber-NVM logs only
/// writes to locations the operation has already read (WAR); others are
/// recovered by re-execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Write-after-read within this operation: needs an undo log entry in
    /// log-based systems.
    War,
    /// Blind write (not previously read in this operation).
    Blind,
}

/// A persistence discipline for lock-based operations on `u64` fields.
pub trait PersistPolicy: Send + Sync {
    /// Per-thread context (logs, allocation caches, tracked lines).
    type Ctx: Send;

    /// Registers the calling thread.
    fn register(&self) -> Self::Ctx;

    /// Byte stride of one logical `u64` field (8 for most systems; 32 for
    /// in-cache-line-logged cells that carry their backup inline).
    fn stride(&self) -> u64;

    /// Allocates raw persistent bytes.
    fn alloc(&self, ctx: &mut Self::Ctx, size: u64) -> PAddr;

    /// Frees a block.
    fn free(&self, ctx: &mut Self::Ctx, addr: PAddr, size: u64);

    /// Starts an operation (failure-atomic section / transaction).
    fn begin(&self, ctx: &mut Self::Ctx);

    /// Reads a logical field.
    fn read(&self, addr: PAddr) -> u64;

    /// Writes a logical field with the system's logging discipline.
    fn write(&self, ctx: &mut Self::Ctx, addr: PAddr, val: u64, kind: WriteKind);

    /// First write to freshly allocated memory (never needs an undo log).
    fn init(&self, ctx: &mut Self::Ctx, addr: PAddr, val: u64);

    /// Commits the operation (flushes + fences per the system's rules).
    fn commit(&self, ctx: &mut Self::Ctx);
}

/// Chained lock-per-bucket hash map over a [`PersistPolicy`].
///
/// Node layout in field strides `s`: key@0, value@s, next@2s.
pub struct PolicyHashMap<P: PersistPolicy> {
    policy: Arc<P>,
    buckets: PAddr,
    nbuckets: u64,
    locks: Box<[Mutex<()>]>,
}

impl<P: PersistPolicy> PolicyHashMap<P> {
    /// Creates a map with `nbuckets` buckets.
    pub fn new(policy: Arc<P>, nbuckets: u64) -> PolicyHashMap<P> {
        assert!(nbuckets > 0);
        let mut ctx = policy.register();
        let s = policy.stride();
        let buckets = policy.alloc(&mut ctx, nbuckets * s);
        policy.begin(&mut ctx);
        for b in 0..nbuckets {
            policy.init(&mut ctx, PAddr(buckets.0 + b * s), 0);
        }
        policy.commit(&mut ctx);
        let locks = (0..nbuckets).map(|_| Mutex::new(())).collect::<Vec<_>>();
        PolicyHashMap {
            policy,
            buckets,
            nbuckets,
            locks: locks.into_boxed_slice(),
        }
    }

    /// The policy (for epoch drivers etc.).
    pub fn policy(&self) -> &Arc<P> {
        &self.policy
    }

    fn node_size(&self) -> u64 {
        3 * self.policy.stride()
    }

    fn bucket(&self, k: u64) -> (usize, PAddr) {
        let b = hash_u64(k) % self.nbuckets;
        (b as usize, PAddr(self.buckets.0 + b * self.policy.stride()))
    }

    /// Inserts or updates; `true` when newly inserted.
    pub fn insert(&self, ctx: &mut P::Ctx, k: u64, v: u64) -> bool {
        let s = self.policy.stride();
        let (b, head) = self.bucket(k);
        self.policy.begin(ctx);
        let _g = self.locks[b].lock();
        let mut cur = self.policy.read(head);
        let newly = loop {
            if cur == 0 {
                let node = self.policy.alloc(ctx, self.node_size());
                self.policy.init(ctx, node, k);
                self.policy.init(ctx, PAddr(node.0 + s), v);
                self.policy
                    .init(ctx, PAddr(node.0 + 2 * s), self.policy.read(head));
                self.policy.write(ctx, head, node.0, WriteKind::War);
                break true;
            }
            if self.policy.read(PAddr(cur)) == k {
                self.policy.write(ctx, PAddr(cur + s), v, WriteKind::Blind);
                break false;
            }
            cur = self.policy.read(PAddr(cur + 2 * s));
        };
        self.policy.commit(ctx);
        newly
    }

    /// Removes; `true` if present.
    pub fn remove(&self, ctx: &mut P::Ctx, k: u64) -> bool {
        let s = self.policy.stride();
        let (b, head) = self.bucket(k);
        self.policy.begin(ctx);
        let _g = self.locks[b].lock();
        let mut prev = 0u64;
        let mut cur = self.policy.read(head);
        let found = loop {
            if cur == 0 {
                break false;
            }
            let next = self.policy.read(PAddr(cur + 2 * s));
            if self.policy.read(PAddr(cur)) == k {
                if prev == 0 {
                    self.policy.write(ctx, head, next, WriteKind::War);
                } else {
                    self.policy
                        .write(ctx, PAddr(prev + 2 * s), next, WriteKind::War);
                }
                self.policy.free(ctx, PAddr(cur), self.node_size());
                break true;
            }
            prev = cur;
            cur = next;
        };
        self.policy.commit(ctx);
        found
    }

    /// Looks a key up.
    pub fn get(&self, ctx: &mut P::Ctx, k: u64) -> Option<u64> {
        let s = self.policy.stride();
        let (b, head) = self.bucket(k);
        self.policy.begin(ctx);
        let _g = self.locks[b].lock();
        let mut cur = self.policy.read(head);
        let mut out = None;
        while cur != 0 {
            if self.policy.read(PAddr(cur)) == k {
                out = Some(self.policy.read(PAddr(cur + s)));
                break;
            }
            cur = self.policy.read(PAddr(cur + 2 * s));
        }
        self.policy.commit(ctx);
        out
    }
}

impl<P: PersistPolicy> BenchMap for PolicyHashMap<P> {
    type Ctx = P::Ctx;

    fn register(&self) -> P::Ctx {
        self.policy.register()
    }

    fn insert(&self, ctx: &mut P::Ctx, k: u64, v: u64) -> bool {
        PolicyHashMap::insert(self, ctx, k, v)
    }

    fn remove(&self, ctx: &mut P::Ctx, k: u64) -> bool {
        PolicyHashMap::remove(self, ctx, k)
    }

    fn get(&self, ctx: &mut P::Ctx, k: u64) -> Option<u64> {
        PolicyHashMap::get(self, ctx, k)
    }
}

/// Single-lock linked FIFO queue over a [`PersistPolicy`].
///
/// Descriptor in strides `s`: head@0, tail@s. Node: value@0, next@s.
pub struct PolicyQueue<P: PersistPolicy> {
    policy: Arc<P>,
    desc: PAddr,
    lock: Mutex<()>,
}

impl<P: PersistPolicy> PolicyQueue<P> {
    /// Creates an empty queue.
    pub fn new(policy: Arc<P>) -> PolicyQueue<P> {
        let mut ctx = policy.register();
        let s = policy.stride();
        let desc = policy.alloc(&mut ctx, 2 * s);
        policy.begin(&mut ctx);
        policy.init(&mut ctx, desc, 0);
        policy.init(&mut ctx, PAddr(desc.0 + s), 0);
        policy.commit(&mut ctx);
        PolicyQueue {
            policy,
            desc,
            lock: Mutex::new(()),
        }
    }

    /// The policy (for epoch drivers etc.).
    pub fn policy(&self) -> &Arc<P> {
        &self.policy
    }

    /// Appends a value.
    pub fn enqueue(&self, ctx: &mut P::Ctx, v: u64) {
        let s = self.policy.stride();
        self.policy.begin(ctx);
        let _g = self.lock.lock();
        let node = self.policy.alloc(ctx, 2 * s);
        self.policy.init(ctx, node, v);
        self.policy.init(ctx, PAddr(node.0 + s), 0);
        let tail = self.policy.read(PAddr(self.desc.0 + s));
        if tail == 0 {
            self.policy.write(ctx, self.desc, node.0, WriteKind::War);
        } else {
            self.policy
                .write(ctx, PAddr(tail + s), node.0, WriteKind::Blind);
        }
        self.policy
            .write(ctx, PAddr(self.desc.0 + s), node.0, WriteKind::War);
        self.policy.commit(ctx);
    }

    /// Pops the oldest value.
    pub fn dequeue(&self, ctx: &mut P::Ctx) -> Option<u64> {
        let s = self.policy.stride();
        self.policy.begin(ctx);
        let _g = self.lock.lock();
        let head = self.policy.read(self.desc);
        let out = if head == 0 {
            None
        } else {
            let v = self.policy.read(PAddr(head));
            let next = self.policy.read(PAddr(head + s));
            self.policy.write(ctx, self.desc, next, WriteKind::War);
            if next == 0 {
                self.policy
                    .write(ctx, PAddr(self.desc.0 + s), 0, WriteKind::War);
            }
            self.policy.free(ctx, PAddr(head), 2 * s);
            Some(v)
        };
        self.policy.commit(ctx);
        out
    }
}

impl<P: PersistPolicy> BenchQueue for PolicyQueue<P> {
    type Ctx = P::Ctx;

    fn register(&self) -> P::Ctx {
        self.policy.register()
    }

    fn enqueue(&self, ctx: &mut P::Ctx, v: u64) {
        PolicyQueue::enqueue(self, ctx, v);
    }

    fn dequeue(&self, ctx: &mut P::Ctx) -> Option<u64> {
        PolicyQueue::dequeue(self, ctx)
    }
}

/// Shared conformance tests: every policy's map/queue must behave like a
/// map/queue.
#[cfg(test)]
pub(crate) mod conformance {
    use super::*;

    pub fn check_map<P: PersistPolicy>(policy: Arc<P>) {
        let m = PolicyHashMap::new(policy, 4);
        let mut ctx = m.register();
        assert!(m.insert(&mut ctx, 1, 10));
        assert!(m.insert(&mut ctx, 2, 20));
        assert!(!m.insert(&mut ctx, 1, 11));
        assert_eq!(m.get(&mut ctx, 1), Some(11));
        assert_eq!(m.get(&mut ctx, 2), Some(20));
        assert_eq!(m.get(&mut ctx, 99), None);
        assert!(m.remove(&mut ctx, 1));
        assert!(!m.remove(&mut ctx, 1));
        // Chain through collisions.
        for k in 100..160 {
            assert!(m.insert(&mut ctx, k, k * 3));
        }
        for k in (100..160).step_by(2) {
            assert!(m.remove(&mut ctx, k));
        }
        for k in 100..160 {
            let expect = if k % 2 == 1 { Some(k * 3) } else { None };
            assert_eq!(m.get(&mut ctx, k), expect, "key {k}");
        }
    }

    pub fn check_queue<P: PersistPolicy>(policy: Arc<P>) {
        let q = PolicyQueue::new(policy);
        let mut ctx = q.register();
        assert_eq!(q.dequeue(&mut ctx), None);
        for v in 0..200 {
            q.enqueue(&mut ctx, v);
        }
        for v in 0..200 {
            assert_eq!(q.dequeue(&mut ctx), Some(v));
        }
        assert_eq!(q.dequeue(&mut ctx), None);
        q.enqueue(&mut ctx, 7);
        assert_eq!(q.dequeue(&mut ctx), Some(7));
    }

    pub fn check_map_concurrent<P: PersistPolicy + 'static>(policy: Arc<P>) {
        let m = Arc::new(PolicyHashMap::new(policy, 64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let mut ctx = m.register();
                    for i in 0..300 {
                        m.insert(&mut ctx, t * 10_000 + i, i);
                    }
                });
            }
        });
        let mut ctx = m.register();
        for t in 0..4u64 {
            for i in 0..300 {
                assert_eq!(m.get(&mut ctx, t * 10_000 + i), Some(i));
            }
        }
    }
}
