//! The durable lock-free queue of Friedman, Herlihy, Marathe & Petrank
//! (PPoPP '18): a Michael–Scott queue with persistence barriers at the
//! linearization points (durable linearizability).
//!
//! Cost profile reproduced: per enqueue, the new node is flushed before it
//! is linked and the link is flushed (+fence) once the CAS succeeds; per
//! dequeue, the dequeued value/marker is flushed (+fence) before the head
//! swings. Node layout: value@0, next@8 (CAS word), 16 bytes.
//!
//! Simplifications: the per-thread `returnedValues` announcement array used
//! for exactly-once recovery of dequeue results is omitted (values are
//! returned directly), and dequeued nodes are not reclaimed during a run
//! (the original uses an epoch-based reclaimer) — both are off the hot
//! path's persistence cost.

use std::sync::Arc;

use parking_lot::Mutex;
use respct_ds::traits::BenchQueue;
use respct_pmem::{PAddr, Region};

use crate::nvheap::{NvCtx, NvHeap};

const NODE_SIZE: u64 = 16;

/// The durable lock-free MS queue.
pub struct FriedmanQueue {
    heap: Arc<NvHeap>,
    /// Queue anchor: head@0, tail@8 (CAS words in NVMM).
    anchor: PAddr,
    /// Serializes context creation only.
    reg: Mutex<()>,
}

impl FriedmanQueue {
    /// Creates an empty queue over `region`.
    pub fn new(region: Arc<Region>) -> FriedmanQueue {
        let heap = Arc::new(NvHeap::new(region));
        let mut boot = heap.ctx();
        let anchor = heap.alloc(&mut boot, 64);
        // Sentinel node.
        let sentinel = heap.alloc(&mut boot, NODE_SIZE);
        let r = heap.region();
        r.store(sentinel, 0u64);
        r.store(PAddr(sentinel.0 + 8), 0u64);
        r.flush_range(sentinel, NODE_SIZE as usize);
        r.store(anchor, sentinel.0);
        r.store(PAddr(anchor.0 + 8), sentinel.0);
        r.flush_range(anchor, 16);
        FriedmanQueue {
            heap,
            anchor,
            reg: Mutex::new(()),
        }
    }

    fn region(&self) -> &Arc<Region> {
        self.heap.region()
    }

    #[inline]
    fn head_addr(&self) -> PAddr {
        self.anchor
    }

    #[inline]
    fn tail_addr(&self) -> PAddr {
        PAddr(self.anchor.0 + 8)
    }

    /// Appends a value (lock-free).
    pub fn enqueue(&self, ctx: &mut NvCtx, v: u64) {
        let r = self.region();
        let node = self.heap.alloc(ctx, NODE_SIZE);
        r.store(node, v);
        r.store(PAddr(node.0 + 8), 0u64);
        // Persist the node before it can become reachable.
        r.pwb(node);
        r.psync();
        loop {
            let tail = r.load_acquire_u64(self.tail_addr());
            let next_addr = PAddr(tail + 8);
            let next = r.load_acquire_u64(next_addr);
            if tail != r.load_acquire_u64(self.tail_addr()) {
                continue;
            }
            if next == 0 {
                if r.cas_u64(next_addr, 0, node.0).is_ok() {
                    // Linearized: persist the link, then swing the tail.
                    r.pwb(next_addr);
                    r.psync();
                    let _ = r.cas_u64(self.tail_addr(), tail, node.0);
                    return;
                }
            } else {
                // Help: the link is set but tail lags; persist and advance.
                r.pwb(next_addr);
                r.psync();
                let _ = r.cas_u64(self.tail_addr(), tail, next);
            }
        }
    }

    /// Pops the oldest value (lock-free).
    pub fn dequeue(&self, _ctx: &mut NvCtx) -> Option<u64> {
        let r = self.region();
        loop {
            let head = r.load_acquire_u64(self.head_addr());
            let tail = r.load_acquire_u64(self.tail_addr());
            let next = r.load_acquire_u64(PAddr(head + 8));
            if head != r.load_acquire_u64(self.head_addr()) {
                continue;
            }
            if head == tail {
                if next == 0 {
                    return None;
                }
                r.pwb(PAddr(head + 8));
                r.psync();
                let _ = r.cas_u64(self.tail_addr(), tail, next);
                continue;
            }
            let v: u64 = r.load(PAddr(next));
            // Persist the dequeue marker (here: the value read point) before
            // the head swings — the durable linearization barrier.
            r.pwb(PAddr(next));
            r.psync();
            if r.cas_u64(self.head_addr(), head, next).is_ok() {
                // `head` (the old sentinel) is retired but not reclaimed
                // during the run (see module docs).
                return Some(v);
            }
        }
    }

    /// Per-thread context.
    pub fn ctx(&self) -> NvCtx {
        let _g = self.reg.lock();
        self.heap.ctx()
    }
}

impl BenchQueue for FriedmanQueue {
    type Ctx = NvCtx;

    fn register(&self) -> NvCtx {
        self.ctx()
    }

    fn enqueue(&self, ctx: &mut NvCtx, v: u64) {
        FriedmanQueue::enqueue(self, ctx, v);
    }

    fn dequeue(&self, ctx: &mut NvCtx) -> Option<u64> {
        FriedmanQueue::dequeue(self, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct_pmem::RegionConfig;

    #[test]
    fn fifo_single_thread() {
        let q = FriedmanQueue::new(Region::new(RegionConfig::fast(16 << 20)));
        let mut ctx = q.ctx();
        assert_eq!(q.dequeue(&mut ctx), None);
        for v in 1..=100 {
            q.enqueue(&mut ctx, v);
        }
        for v in 1..=100 {
            assert_eq!(q.dequeue(&mut ctx), Some(v));
        }
        assert_eq!(q.dequeue(&mut ctx), None);
    }

    #[test]
    fn concurrent_mpmc_conserves_elements() {
        let q = Arc::new(FriedmanQueue::new(Region::new(RegionConfig::fast(
            64 << 20,
        ))));
        let produced: u64 = 4 * 2000;
        let sum = std::sync::atomic::AtomicU64::new(0);
        let count = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let mut ctx = q.ctx();
                    for i in 0..2000u64 {
                        q.enqueue(&mut ctx, t * 1_000_000 + i + 1);
                    }
                });
            }
            for _ in 0..4 {
                let q = Arc::clone(&q);
                let (sum, count) = (&sum, &count);
                s.spawn(move || {
                    let mut ctx = q.ctx();
                    while count.load(std::sync::atomic::Ordering::Relaxed) < produced {
                        if let Some(v) = q.dequeue(&mut ctx) {
                            sum.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                            count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        let expect: u64 = (0..4u64)
            .map(|t| (0..2000u64).map(|i| t * 1_000_000 + i + 1).sum::<u64>())
            .sum();
        assert_eq!(sum.load(std::sync::atomic::Ordering::Relaxed), expect);
    }

    #[test]
    fn flushes_on_both_ops() {
        let region = Region::new(RegionConfig::fast(16 << 20));
        let q = FriedmanQueue::new(Arc::clone(&region));
        let mut ctx = q.ctx();
        let before = region.stats().snapshot();
        q.enqueue(&mut ctx, 1);
        q.dequeue(&mut ctx);
        let delta = region.stats().snapshot().since(&before);
        assert!(
            delta.psync >= 3,
            "expected ≥3 fences for enq+deq, saw {}",
            delta.psync
        );
    }
}
