//! PMThreads (PLDI '20): buffered durable linearizability via versioned
//! shadow copies.
//!
//! PMThreads keeps the working copy of persistent data in DRAM; during an
//! epoch all reads and writes hit DRAM, and every store is *intercepted* to
//! record the dirty page (that interception is the system's tracking cost —
//! the paper's Fig. 8 shows it dominating once the persistent state grows).
//! At the end of each epoch a quiescent point is reached and the dirty
//! pages are copied to NVMM and flushed.
//!
//! Reproduced here: DRAM working region + NVMM target region at identical
//! offsets, store interception marking a page-granularity dirty bitmap, and
//! a periodic checkpointer that quiesces (operations are the paper's
//! critical sections), copies dirty pages, flushes, and fences. Following
//! the paper's methodology note, our checkpoint copy loop is the
//! *parallelized* variant the authors helped tune (a pool of copiers),
//! reduced to inline copy on this 1-CPU container.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use respct_pmem::{PAddr, Region};

use crate::barrier::EpochBarrier;
use crate::nvheap::{NvCtx, NvHeap};
use crate::policy::{PersistPolicy, WriteKind};

const PAGE: u64 = 4096;

/// The shadow-copy policy.
pub struct PmThreadsPolicy {
    /// DRAM working copy (all reads/writes).
    work: Arc<Region>,
    /// NVMM persistent copy (checkpoint target), same offsets.
    nvmm: Arc<Region>,
    heap: Arc<NvHeap>,
    /// One bit per page: dirty since the last checkpoint.
    dirty: Box<[AtomicU64]>,
    barrier: EpochBarrier,
}

/// Per-thread state.
pub struct PmCtx {
    alloc: NvCtx,
    slot: usize,
}

impl PmThreadsPolicy {
    /// Creates the policy: `work` is the DRAM working region, `nvmm` the
    /// persistent region (must be the same size).
    pub fn new(work: Arc<Region>, nvmm: Arc<Region>) -> PmThreadsPolicy {
        assert_eq!(
            work.size(),
            nvmm.size(),
            "shadow and NVMM regions must match"
        );
        let pages = (work.size() as u64).div_ceil(PAGE);
        let words = pages.div_ceil(64) as usize;
        PmThreadsPolicy {
            heap: Arc::new(NvHeap::new(Arc::clone(&work))),
            work,
            nvmm,
            dirty: (0..words).map(|_| AtomicU64::new(0)).collect(),
            barrier: EpochBarrier::new(),
        }
    }

    #[inline]
    fn mark_dirty(&self, addr: PAddr) {
        let page = addr.0 / PAGE;
        let (word, bit) = ((page / 64) as usize, page % 64);
        // The interception cost PMThreads pays on every store.
        self.dirty[word].fetch_or(1 << bit, Ordering::Relaxed);
    }

    /// Copies all dirty pages to NVMM, flushes them, and clears the bitmap.
    /// Returns the number of pages persisted.
    pub fn checkpoint(&self) -> u64 {
        self.barrier.quiesce(|| {
            let mut pages = 0;
            let mut buf = vec![0u8; PAGE as usize];
            for (w, word) in self.dirty.iter().enumerate() {
                let mut bits = word.swap(0, Ordering::SeqCst);
                while bits != 0 {
                    let bit = bits.trailing_zeros() as u64;
                    bits &= bits - 1;
                    let page = (w as u64) * 64 + bit;
                    let base = PAddr(page * PAGE);
                    let len = (PAGE as usize).min(self.work.size() - base.0 as usize);
                    self.work.load_bytes(base, &mut buf[..len]);
                    self.nvmm.store_bytes(base, &buf[..len]);
                    self.nvmm.flush_range(base, len);
                    pages += 1;
                }
            }
            pages
        })
    }

    /// Spawns a periodic checkpointer.
    pub fn start_checkpointer(self: &Arc<Self>, period: Duration) -> PmCheckpointer {
        let this = Arc::clone(self);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("pmthreads-ckpt".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    this.checkpoint();
                }
            })
            .expect("spawn pmthreads checkpointer");
        PmCheckpointer {
            stop,
            handle: Some(handle),
        }
    }

    /// The NVMM region (flush-count diagnostics).
    pub fn nvmm(&self) -> &Arc<Region> {
        &self.nvmm
    }
}

/// Stops the periodic checkpointer when dropped.
pub struct PmCheckpointer {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for PmCheckpointer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl PersistPolicy for PmThreadsPolicy {
    type Ctx = PmCtx;

    fn register(&self) -> PmCtx {
        PmCtx {
            alloc: self.heap.ctx(),
            slot: self.barrier.register(),
        }
    }

    fn stride(&self) -> u64 {
        8
    }

    fn alloc(&self, ctx: &mut PmCtx, size: u64) -> PAddr {
        let addr = self.heap.alloc(&mut ctx.alloc, size);
        self.mark_dirty(addr);
        addr
    }

    fn free(&self, _ctx: &mut PmCtx, addr: PAddr, size: u64) {
        self.heap.free(addr, size);
    }

    fn begin(&self, ctx: &mut PmCtx) {
        self.barrier.op_begin(ctx.slot);
    }

    fn read(&self, addr: PAddr) -> u64 {
        // Reads hit the DRAM working copy — PMThreads' advantage.
        self.work.load(addr)
    }

    fn write(&self, ctx: &mut PmCtx, addr: PAddr, val: u64, _kind: WriteKind) {
        let _ = ctx;
        self.work.store(addr, val);
        self.mark_dirty(addr);
    }

    fn init(&self, ctx: &mut PmCtx, addr: PAddr, val: u64) {
        self.write(ctx, addr, val, WriteKind::Blind);
    }

    fn commit(&self, ctx: &mut PmCtx) {
        // No flush/fence: durability is deferred to the checkpoint.
        self.barrier.op_end(ctx.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;
    use respct_ds::traits::BenchMap;
    use respct_pmem::RegionConfig;

    fn policy() -> Arc<PmThreadsPolicy> {
        Arc::new(PmThreadsPolicy::new(
            Region::new(RegionConfig::fast(16 << 20)),
            Region::new(RegionConfig::fast(16 << 20)),
        ))
    }

    #[test]
    fn map_conformance() {
        conformance::check_map(policy());
    }

    #[test]
    fn queue_conformance() {
        conformance::check_queue(policy());
    }

    #[test]
    fn concurrent_map() {
        conformance::check_map_concurrent(policy());
    }

    #[test]
    fn checkpoint_copies_dirty_pages_to_nvmm() {
        let p = policy();
        let m = crate::policy::PolicyHashMap::new(Arc::clone(&p), 8);
        let mut ctx = m.register();
        for k in 0..100 {
            m.insert(&mut ctx, k, k + 7);
        }
        // Nothing reached NVMM yet.
        let pages = p.checkpoint();
        assert!(pages > 0);
        // After the checkpoint, the NVMM copy of a bucket page matches DRAM.
        let mut a = vec![0u8; 4096];
        let mut b = vec![0u8; 4096];
        p.work.load_bytes(PAddr(0), &mut a);
        p.nvmm.load_bytes(PAddr(0), &mut b);
        assert_eq!(a, b);
        // A second checkpoint with no writes copies nothing.
        assert_eq!(p.checkpoint(), 0);
    }

    #[test]
    fn periodic_checkpointer_under_load() {
        let p = policy();
        let m = Arc::new(crate::policy::PolicyHashMap::new(Arc::clone(&p), 64));
        let guard = p.start_checkpointer(Duration::from_millis(3));
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let mut ctx = m.register();
                    for i in 0..2000 {
                        m.insert(&mut ctx, t * 10_000 + i, i);
                    }
                });
            }
        });
        drop(guard);
        let mut ctx = m.register();
        for t in 0..3u64 {
            for i in 0..2000 {
                assert_eq!(m.get(&mut ctx, t * 10_000 + i), Some(i));
            }
        }
    }
}
