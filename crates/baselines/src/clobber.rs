//! Clobber-NVM (ASPLOS '21): durable linearizability with WAR-only logging.
//!
//! Clobber-NVM's observation: only variables that are *both read and
//! written* by a failure-atomic section ("clobbered" inputs) need an undo
//! log — everything else is reconstructed by re-executing the section from
//! its persisted inputs. Blind writes therefore skip the log append and its
//! ordering fence; modified lines are still flushed at commit, and the log
//! is truncated durably. The paper compares against Clobber-NVM directly
//! (§5.1) and finds ResPCT up to 2.7× faster because even one log fence per
//! op on the critical path is costly.

use std::sync::Arc;

use respct_pmem::{PAddr, Region};

use crate::nvheap::{NvCtx, NvHeap};
use crate::policy::{PersistPolicy, WriteKind};

const LOG_BYTES: u64 = 256 * 1024;

/// The WAR-only logging policy.
pub struct ClobberPolicy {
    heap: Arc<NvHeap>,
}

/// Per-thread state.
pub struct ClobberCtx {
    alloc: NvCtx,
    log: PAddr,
    log_len: u64,
    modified: Vec<u64>,
}

impl ClobberPolicy {
    /// Creates the policy over `region`.
    pub fn new(region: Arc<Region>) -> ClobberPolicy {
        ClobberPolicy {
            heap: Arc::new(NvHeap::new(region)),
        }
    }

    fn region(&self) -> &Arc<Region> {
        self.heap.region()
    }
}

impl PersistPolicy for ClobberPolicy {
    type Ctx = ClobberCtx;

    fn register(&self) -> ClobberCtx {
        let mut alloc = self.heap.ctx();
        let log = self.heap.alloc(&mut alloc, LOG_BYTES);
        self.region().store(log, 0u64);
        ClobberCtx {
            alloc,
            log,
            log_len: 0,
            modified: Vec::new(),
        }
    }

    fn stride(&self) -> u64 {
        8
    }

    fn alloc(&self, ctx: &mut ClobberCtx, size: u64) -> PAddr {
        self.heap.alloc(&mut ctx.alloc, size)
    }

    fn free(&self, _ctx: &mut ClobberCtx, addr: PAddr, size: u64) {
        self.heap.free(addr, size);
    }

    fn begin(&self, ctx: &mut ClobberCtx) {
        ctx.log_len = 0;
        ctx.modified.clear();
    }

    fn read(&self, addr: PAddr) -> u64 {
        self.region().load(addr)
    }

    fn write(&self, ctx: &mut ClobberCtx, addr: PAddr, val: u64, kind: WriteKind) {
        let region = self.region();
        if kind == WriteKind::War {
            // Only clobbered inputs are logged (with the ordering fence).
            let old: u64 = region.load(addr);
            let slot = PAddr(ctx.log.0 + 64 + ctx.log_len * 16);
            debug_assert!(ctx.log_len * 16 + 64 + 16 <= LOG_BYTES);
            region.store(slot, addr.0);
            region.store(slot.offset(8), old);
            region.pwb(slot);
            region.psync();
            ctx.log_len += 1;
        }
        region.store(addr, val);
        ctx.modified.push(addr.line());
    }

    fn init(&self, ctx: &mut ClobberCtx, addr: PAddr, val: u64) {
        self.region().store(addr, val);
        ctx.modified.push(addr.line());
    }

    fn commit(&self, ctx: &mut ClobberCtx) {
        let region = self.region();
        if !ctx.modified.is_empty() {
            ctx.modified.sort_unstable();
            ctx.modified.dedup();
            for &line in &ctx.modified {
                region.pwb_line(line);
            }
            region.psync();
        }
        if ctx.log_len > 0 {
            region.store(ctx.log, 0u64);
            region.pwb(ctx.log);
            region.psync();
            ctx.log_len = 0;
        }
        ctx.modified.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::conformance;
    use respct_ds::traits::BenchMap;
    use respct_pmem::RegionConfig;

    fn policy() -> Arc<ClobberPolicy> {
        Arc::new(ClobberPolicy::new(Region::new(RegionConfig::fast(
            32 << 20,
        ))))
    }

    #[test]
    fn map_conformance() {
        conformance::check_map(policy());
    }

    #[test]
    fn queue_conformance() {
        conformance::check_queue(policy());
    }

    #[test]
    fn concurrent_map() {
        conformance::check_map_concurrent(policy());
    }

    #[test]
    fn logs_less_than_undo() {
        // Value-update workload: the value store is blind, so Clobber must
        // issue strictly fewer flushes than full undo logging.
        let r1 = Region::new(RegionConfig::fast(16 << 20));
        let r2 = Region::new(RegionConfig::fast(16 << 20));
        let clobber = Arc::new(ClobberPolicy::new(Arc::clone(&r1)));
        let undo = Arc::new(crate::undo::UndoPolicy::new(Arc::clone(&r2)));
        let mc = crate::policy::PolicyHashMap::new(clobber, 16);
        let mu = crate::policy::PolicyHashMap::new(undo, 16);
        let mut cc = mc.register();
        let mut cu = mu.register();
        for k in 0..50 {
            mc.insert(&mut cc, k, 0);
            mu.insert(&mut cu, k, 0);
        }
        let b1 = r1.stats().snapshot();
        let b2 = r2.stats().snapshot();
        for k in 0..50 {
            mc.insert(&mut cc, k, 1); // pure value updates
            mu.insert(&mut cu, k, 1);
        }
        let d1 = r1.stats().snapshot().since(&b1);
        let d2 = r2.stats().snapshot().since(&b2);
        assert!(
            d1.pwb < d2.pwb,
            "clobber ({}) should flush less than undo ({})",
            d1.pwb,
            d2.pwb
        );
    }
}
