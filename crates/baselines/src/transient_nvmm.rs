//! `Transient<NVMM>`: the unmodified algorithms with their data placed in
//! (emulated) NVMM instead of DRAM — no logging, tracking, flushing, or
//! fault tolerance. Isolates how much of a persistent system's overhead is
//! simply "running on slower memory" (paper Fig. 10's first bar).
//!
//! Use with an Optane-latency region ([`RegionConfig::optane`]) for the
//! paper's configuration.
//!
//! [`RegionConfig::optane`]: respct_pmem::RegionConfig::optane

use std::sync::Arc;

use parking_lot::Mutex;
use respct_ds::hash_u64;
use respct_ds::traits::{BenchMap, BenchQueue};
use respct_pmem::{PAddr, Region};

use crate::nvheap::{NvCtx, NvHeap};

// Map node: key@0 val@8 next@16 (24 bytes, class 32).
const MNODE_SIZE: u64 = 24;
// Queue node: val@0 next@8 (16 bytes, class 16).
const QNODE_SIZE: u64 = 16;

/// Transient chained hash map resident in NVMM.
pub struct NvmmHashMap {
    heap: Arc<NvHeap>,
    buckets: PAddr,
    nbuckets: u64,
    locks: Box<[Mutex<()>]>,
}

impl NvmmHashMap {
    /// Creates a map with `nbuckets` buckets over `region`.
    pub fn new(region: Arc<Region>, nbuckets: u64) -> NvmmHashMap {
        assert!(nbuckets > 0);
        let heap = Arc::new(NvHeap::new(region));
        let mut ctx = heap.ctx();
        let buckets = heap.alloc(&mut ctx, nbuckets * 8);
        for b in 0..nbuckets {
            heap.region().store(PAddr(buckets.0 + b * 8), 0u64);
        }
        let locks = (0..nbuckets).map(|_| Mutex::new(())).collect::<Vec<_>>();
        NvmmHashMap {
            heap,
            buckets,
            nbuckets,
            locks: locks.into_boxed_slice(),
        }
    }

    fn bucket(&self, k: u64) -> (u64, PAddr) {
        let b = hash_u64(k) % self.nbuckets;
        (b, PAddr(self.buckets.0 + b * 8))
    }

    /// Inserts or updates; `true` when newly inserted.
    pub fn insert(&self, ctx: &mut NvCtx, k: u64, v: u64) -> bool {
        let region = self.heap.region();
        let (b, head) = self.bucket(k);
        let _g = self.locks[b as usize].lock();
        let mut cur: u64 = region.load(head);
        while cur != 0 {
            if region.load::<u64>(PAddr(cur)) == k {
                region.store(PAddr(cur + 8), v);
                return false;
            }
            cur = region.load(PAddr(cur + 16));
        }
        let node = self.heap.alloc(ctx, MNODE_SIZE);
        region.store(node, k);
        region.store(PAddr(node.0 + 8), v);
        region.store(PAddr(node.0 + 16), region.load::<u64>(head));
        region.store(head, node.0);
        true
    }

    /// Removes; `true` if present.
    pub fn remove(&self, _ctx: &mut NvCtx, k: u64) -> bool {
        let region = self.heap.region();
        let (b, head) = self.bucket(k);
        let _g = self.locks[b as usize].lock();
        let mut prev = 0u64;
        let mut cur: u64 = region.load(head);
        while cur != 0 {
            let next: u64 = region.load(PAddr(cur + 16));
            if region.load::<u64>(PAddr(cur)) == k {
                if prev == 0 {
                    region.store(head, next);
                } else {
                    region.store(PAddr(prev + 16), next);
                }
                self.heap.free(PAddr(cur), MNODE_SIZE);
                return true;
            }
            prev = cur;
            cur = next;
        }
        false
    }

    /// Looks a key up.
    pub fn get(&self, k: u64) -> Option<u64> {
        let region = self.heap.region();
        let (b, head) = self.bucket(k);
        let _g = self.locks[b as usize].lock();
        let mut cur: u64 = region.load(head);
        while cur != 0 {
            if region.load::<u64>(PAddr(cur)) == k {
                return Some(region.load(PAddr(cur + 8)));
            }
            cur = region.load(PAddr(cur + 16));
        }
        None
    }
}

impl BenchMap for NvmmHashMap {
    type Ctx = NvCtx;

    fn register(&self) -> NvCtx {
        self.heap.ctx()
    }

    fn insert(&self, ctx: &mut NvCtx, k: u64, v: u64) -> bool {
        NvmmHashMap::insert(self, ctx, k, v)
    }

    fn remove(&self, ctx: &mut NvCtx, k: u64) -> bool {
        NvmmHashMap::remove(self, ctx, k)
    }

    fn get(&self, _ctx: &mut NvCtx, k: u64) -> Option<u64> {
        NvmmHashMap::get(self, k)
    }
}

/// Transient single-lock linked queue resident in NVMM.
pub struct NvmmQueue {
    heap: Arc<NvHeap>,
    /// head PAddr, tail PAddr — protected by `lock`.
    state: Mutex<(u64, u64)>,
}

impl NvmmQueue {
    /// Creates an empty queue over `region`.
    pub fn new(region: Arc<Region>) -> NvmmQueue {
        NvmmQueue {
            heap: Arc::new(NvHeap::new(region)),
            state: Mutex::new((0, 0)),
        }
    }

    /// Appends a value.
    pub fn enqueue(&self, ctx: &mut NvCtx, v: u64) {
        let region = self.heap.region();
        let node = self.heap.alloc(ctx, QNODE_SIZE);
        region.store(node, v);
        region.store(PAddr(node.0 + 8), 0u64);
        let mut st = self.state.lock();
        if st.1 == 0 {
            st.0 = node.0;
        } else {
            region.store(PAddr(st.1 + 8), node.0);
        }
        st.1 = node.0;
    }

    /// Pops the oldest value.
    pub fn dequeue(&self, _ctx: &mut NvCtx) -> Option<u64> {
        let region = self.heap.region();
        let mut st = self.state.lock();
        if st.0 == 0 {
            return None;
        }
        let node = st.0;
        let v: u64 = region.load(PAddr(node));
        let next: u64 = region.load(PAddr(node + 8));
        st.0 = next;
        if next == 0 {
            st.1 = 0;
        }
        drop(st);
        self.heap.free(PAddr(node), QNODE_SIZE);
        Some(v)
    }
}

impl BenchQueue for NvmmQueue {
    type Ctx = NvCtx;

    fn register(&self) -> NvCtx {
        self.heap.ctx()
    }

    fn enqueue(&self, ctx: &mut NvCtx, v: u64) {
        NvmmQueue::enqueue(self, ctx, v);
    }

    fn dequeue(&self, ctx: &mut NvCtx) -> Option<u64> {
        NvmmQueue::dequeue(self, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct_pmem::RegionConfig;

    #[test]
    fn map_semantics() {
        let m = NvmmHashMap::new(Region::new(RegionConfig::fast(8 << 20)), 16);
        let mut ctx = m.register();
        assert!(m.insert(&mut ctx, 1, 10));
        assert!(!m.insert(&mut ctx, 1, 11));
        assert_eq!(m.get(1), Some(11));
        assert!(m.remove(&mut ctx, 1));
        assert_eq!(m.get(1), None);
    }

    #[test]
    fn map_collisions() {
        let m = NvmmHashMap::new(Region::new(RegionConfig::fast(8 << 20)), 1);
        let mut ctx = m.register();
        for k in 0..60 {
            m.insert(&mut ctx, k, k + 1);
        }
        for k in (0..60).step_by(2) {
            assert!(m.remove(&mut ctx, k));
        }
        for k in 0..60 {
            assert_eq!(m.get(k), if k % 2 == 1 { Some(k + 1) } else { None });
        }
    }

    #[test]
    fn queue_fifo() {
        let q = NvmmQueue::new(Region::new(RegionConfig::fast(8 << 20)));
        let mut ctx = q.register();
        for v in 0..100 {
            q.enqueue(&mut ctx, v);
        }
        for v in 0..100 {
            assert_eq!(q.dequeue(&mut ctx), Some(v));
        }
        assert_eq!(q.dequeue(&mut ctx), None);
        q.enqueue(&mut ctx, 5);
        assert_eq!(q.dequeue(&mut ctx), Some(5));
    }
}
