//! Montage (ICPP '21): buffered durable linearizability via copy-on-write
//! payloads.
//!
//! Montage never updates NVMM in place: every mutation allocates a fresh
//! *payload block* in NVMM (key, value, epoch tag), while all pointers live
//! only in DRAM. At each epoch boundary the new payloads are flushed and
//! the epoch advances; payloads retired two epochs ago become reclaimable.
//! Two cost signatures follow, both visible in the paper's Figs. 8–9:
//! pressure on the memory allocator (one allocation per update), and extra
//! NVMM metadata for order-dependent structures — the queue keeps a global
//! sequence number in NVMM, updated inside the critical section, so that
//! recovery can rebuild FIFO order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use respct_ds::hash_u64;
use respct_ds::traits::{BenchMap, BenchQueue};
use respct_pmem::{PAddr, Region};

use crate::barrier::EpochBarrier;
use crate::nvheap::{NvCtx, NvHeap};

/// Payload block: key@0, value@8, epoch@16 (24 bytes, class 32).
const PAYLOAD_SIZE: u64 = 24;

/// Shared Montage runtime: epoch clock, flush lists, retirement.
pub struct MontageRuntime {
    heap: Arc<NvHeap>,
    epoch: AtomicU64,
    barrier: EpochBarrier,
    /// Payloads created this epoch, per barrier slot (uncontended pushes).
    fresh: Box<[Mutex<Vec<u64>>]>,
    /// Payloads retired this epoch / last epoch.
    retired: Mutex<(Vec<u64>, Vec<u64>)>,
    /// NVMM word holding the persistent epoch.
    epoch_addr: PAddr,
}

/// Per-thread context.
pub struct MontageCtx {
    alloc: NvCtx,
    slot: usize,
}

impl MontageRuntime {
    /// Creates a runtime over `region`.
    pub fn new(region: Arc<Region>) -> Arc<MontageRuntime> {
        let heap = Arc::new(NvHeap::new(region));
        let mut boot = heap.ctx();
        let epoch_addr = heap.alloc(&mut boot, 64);
        heap.region().store(epoch_addr, 1u64);
        Arc::new(MontageRuntime {
            heap,
            epoch: AtomicU64::new(1),
            barrier: EpochBarrier::new(),
            fresh: (0..crate::barrier::MAX_OPS)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            retired: Mutex::new((Vec::new(), Vec::new())),
            epoch_addr,
        })
    }

    /// Registers a thread.
    pub fn register(&self) -> MontageCtx {
        MontageCtx {
            alloc: self.heap.ctx(),
            slot: self.barrier.register(),
        }
    }

    /// Allocates and fills a payload for `(k, v)`; records it for the
    /// epoch flush.
    fn new_payload(&self, ctx: &mut MontageCtx, k: u64, v: u64) -> u64 {
        let p = self.heap.alloc(&mut ctx.alloc, PAYLOAD_SIZE);
        let region = self.heap.region();
        region.store(p, k);
        region.store(PAddr(p.0 + 8), v);
        region.store(PAddr(p.0 + 16), self.epoch.load(Ordering::Relaxed));
        self.fresh[ctx.slot].lock().push(p.0);
        p.0
    }

    fn retire(&self, payload: u64) {
        self.retired.lock().0.push(payload);
    }

    fn read_value(&self, payload: u64) -> u64 {
        self.heap.region().load(PAddr(payload + 8))
    }

    /// Epoch boundary: flush this epoch's payloads, advance the persistent
    /// epoch, reclaim payloads retired two epochs ago.
    pub fn checkpoint(&self) -> u64 {
        self.barrier.quiesce(|| {
            let region = self.heap.region();
            let mut flushed = 0u64;
            for list in &self.fresh {
                let drained = std::mem::take(&mut *list.lock());
                for p in drained {
                    region.pwb(PAddr(p));
                    flushed += 1;
                }
            }
            region.psync();
            let e = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
            region.store(self.epoch_addr, e);
            region.pwb(self.epoch_addr);
            region.psync();
            // Reclaim generation n-2; age generation n-1.
            let mut ret = self.retired.lock();
            let old = std::mem::take(&mut ret.1);
            ret.1 = std::mem::take(&mut ret.0);
            drop(ret);
            for p in old {
                self.heap.free(PAddr(p), PAYLOAD_SIZE);
            }
            flushed
        })
    }

    /// Spawns a periodic epoch advancer.
    pub fn start_checkpointer(self: &Arc<Self>, period: Duration) -> MontageCheckpointer {
        let this = Arc::clone(self);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("montage-ckpt".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    this.checkpoint();
                }
            })
            .expect("spawn montage checkpointer");
        MontageCheckpointer {
            stop,
            handle: Some(handle),
        }
    }

    /// The region (diagnostics).
    pub fn region(&self) -> &Arc<Region> {
        self.heap.region()
    }
}

/// Stops the periodic epoch advancer when dropped.
pub struct MontageCheckpointer {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for MontageCheckpointer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---- Hash map ---------------------------------------------------------------

struct MNode {
    k: u64,
    payload: u64,
    next: Option<Box<MNode>>,
}

/// Montage hash map: DRAM chains pointing at NVMM payloads.
pub struct MontageHashMap {
    rt: Arc<MontageRuntime>,
    buckets: Box<[Mutex<Option<Box<MNode>>>]>,
}

impl MontageHashMap {
    /// Creates a map with `nbuckets` buckets.
    pub fn new(rt: Arc<MontageRuntime>, nbuckets: usize) -> MontageHashMap {
        MontageHashMap {
            rt,
            buckets: (0..nbuckets).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// The runtime (to drive epochs).
    pub fn runtime(&self) -> &Arc<MontageRuntime> {
        &self.rt
    }
}

impl BenchMap for MontageHashMap {
    type Ctx = MontageCtx;

    fn register(&self) -> MontageCtx {
        self.rt.register()
    }

    fn insert(&self, ctx: &mut MontageCtx, k: u64, v: u64) -> bool {
        self.rt.barrier.op_begin(ctx.slot);
        let b = (hash_u64(k) % self.buckets.len() as u64) as usize;
        // Every update allocates a fresh payload — the CoW cost.
        let payload = self.rt.new_payload(ctx, k, v);
        let mut head = self.buckets[b].lock();
        let mut cur = head.as_deref_mut();
        let mut newly = true;
        loop {
            match cur {
                Some(node) if node.k == k => {
                    self.rt.retire(node.payload);
                    node.payload = payload;
                    newly = false;
                    break;
                }
                Some(node) => cur = node.next.as_deref_mut(),
                None => {
                    let old = head.take();
                    *head = Some(Box::new(MNode {
                        k,
                        payload,
                        next: old,
                    }));
                    break;
                }
            }
        }
        drop(head);
        self.rt.barrier.op_end(ctx.slot);
        newly
    }

    fn remove(&self, ctx: &mut MontageCtx, k: u64) -> bool {
        self.rt.barrier.op_begin(ctx.slot);
        let b = (hash_u64(k) % self.buckets.len() as u64) as usize;
        let mut head = self.buckets[b].lock();
        let mut link = &mut *head;
        let mut found = false;
        loop {
            match link {
                None => break,
                Some(node) if node.k == k => {
                    self.rt.retire(node.payload);
                    let next = node.next.take();
                    *link = next;
                    found = true;
                    break;
                }
                Some(node) => link = &mut node.next,
            }
        }
        drop(head);
        self.rt.barrier.op_end(ctx.slot);
        found
    }

    fn get(&self, ctx: &mut MontageCtx, k: u64) -> Option<u64> {
        self.rt.barrier.op_begin(ctx.slot);
        let b = (hash_u64(k) % self.buckets.len() as u64) as usize;
        let head = self.buckets[b].lock();
        let mut cur = head.as_deref();
        let mut out = None;
        while let Some(node) = cur {
            if node.k == k {
                // Values live in NVMM payloads; reads dereference them.
                out = Some(self.rt.read_value(node.payload));
                break;
            }
            cur = node.next.as_deref();
        }
        drop(head);
        self.rt.barrier.op_end(ctx.slot);
        out
    }
}

// ---- Queue ------------------------------------------------------------------

/// Montage queue: DRAM deque of payloads + persistent global sequence
/// number updated inside the critical section (recovery metadata that the
/// paper identifies as Montage's queue bottleneck).
pub struct MontageQueue {
    rt: Arc<MontageRuntime>,
    inner: Mutex<std::collections::VecDeque<u64>>,
    seqno_addr: PAddr,
}

impl MontageQueue {
    /// Creates an empty queue.
    pub fn new(rt: Arc<MontageRuntime>) -> MontageQueue {
        let mut boot = rt.heap.ctx();
        let seqno_addr = rt.heap.alloc(&mut boot, 64);
        rt.region().store(seqno_addr, 0u64);
        MontageQueue {
            rt,
            inner: Mutex::new(std::collections::VecDeque::new()),
            seqno_addr,
        }
    }

    /// The runtime (to drive epochs).
    pub fn runtime(&self) -> &Arc<MontageRuntime> {
        &self.rt
    }
}

impl BenchQueue for MontageQueue {
    type Ctx = MontageCtx;

    fn register(&self) -> MontageCtx {
        self.rt.register()
    }

    fn enqueue(&self, ctx: &mut MontageCtx, v: u64) {
        self.rt.barrier.op_begin(ctx.slot);
        let mut q = self.inner.lock();
        // Global sequence number: read-modify-write in NVMM inside the CS.
        let region = self.rt.region();
        let seq: u64 = region.load(self.seqno_addr);
        region.store(self.seqno_addr, seq + 1);
        let payload = self.rt.new_payload(ctx, seq, v);
        q.push_back(payload);
        drop(q);
        self.rt.barrier.op_end(ctx.slot);
    }

    fn dequeue(&self, ctx: &mut MontageCtx) -> Option<u64> {
        self.rt.barrier.op_begin(ctx.slot);
        let mut q = self.inner.lock();
        let out = q.pop_front().map(|payload| {
            let v = self.rt.read_value(payload);
            self.rt.retire(payload);
            v
        });
        drop(q);
        self.rt.barrier.op_end(ctx.slot);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct_pmem::RegionConfig;

    fn rt() -> Arc<MontageRuntime> {
        MontageRuntime::new(Region::new(RegionConfig::fast(32 << 20)))
    }

    #[test]
    fn map_semantics() {
        let m = MontageHashMap::new(rt(), 16);
        let mut ctx = m.register();
        assert!(m.insert(&mut ctx, 1, 10));
        assert!(!m.insert(&mut ctx, 1, 11));
        assert_eq!(m.get(&mut ctx, 1), Some(11));
        assert!(m.remove(&mut ctx, 1));
        assert!(!m.remove(&mut ctx, 1));
        assert_eq!(m.get(&mut ctx, 1), None);
    }

    #[test]
    fn queue_fifo_and_seqno() {
        let q = MontageQueue::new(rt());
        let mut ctx = q.register();
        for v in 0..50 {
            q.enqueue(&mut ctx, v);
        }
        let seq: u64 = q.rt.region().load(q.seqno_addr);
        assert_eq!(seq, 50, "global seqno advances per enqueue");
        for v in 0..50 {
            assert_eq!(q.dequeue(&mut ctx), Some(v));
        }
        assert_eq!(q.dequeue(&mut ctx), None);
    }

    #[test]
    fn checkpoint_flushes_fresh_payloads() {
        let rt = rt();
        let m = MontageHashMap::new(Arc::clone(&rt), 16);
        let mut ctx = m.register();
        for k in 0..40 {
            m.insert(&mut ctx, k, k);
        }
        let flushed = rt.checkpoint();
        assert_eq!(flushed, 40);
        assert_eq!(rt.checkpoint(), 0, "second epoch has no fresh payloads");
    }

    #[test]
    fn retired_payloads_reused_after_two_epochs() {
        let rt = rt();
        let m = MontageHashMap::new(Arc::clone(&rt), 16);
        let mut ctx = m.register();
        m.insert(&mut ctx, 1, 10);
        let used_after_insert = rt.heap.used();
        m.insert(&mut ctx, 1, 11); // retires payload of 10
        rt.checkpoint();
        rt.checkpoint(); // retirement generation ages out, block freed
        m.insert(&mut ctx, 1, 12); // should reuse the freed block
        assert!(
            rt.heap.used() <= used_after_insert + 64,
            "allocator should recycle"
        );
        assert_eq!(m.get(&mut ctx, 1), Some(12));
    }

    #[test]
    fn concurrent_map_with_epochs() {
        let rt = rt();
        let m = Arc::new(MontageHashMap::new(Arc::clone(&rt), 64));
        let guard = rt.start_checkpointer(Duration::from_millis(3));
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let mut ctx = m.register();
                    for i in 0..1500 {
                        m.insert(&mut ctx, t * 10_000 + i, i);
                    }
                });
            }
        });
        drop(guard);
        let mut ctx = m.register();
        for t in 0..3u64 {
            for i in 0..1500 {
                assert_eq!(m.get(&mut ctx, t * 10_000 + i), Some(i));
            }
        }
    }
}
