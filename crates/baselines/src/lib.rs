//! Competing persistence systems, re-implemented over the same emulated-NVMM
//! substrate so the paper's comparative evaluation (Figs. 8–9) can be
//! regenerated.
//!
//! Each module reproduces the *algorithmic cost profile* of one system — the
//! number and placement of log writes, flushes, fences, allocations, and
//! tracking work per operation — rather than its full artifact:
//!
//! | module        | system            | consistency                     | mechanism |
//! |---------------|-------------------|----------------------------------|-----------|
//! | [`transient_nvmm`] | Transient\<NVMM\> | none                        | unmodified code on NVMM |
//! | [`undo`]      | NV-Heaps/PMDK-style | durable linearizability        | per-op undo log, flush per log entry + commit |
//! | [`clobber`]   | Clobber-NVM        | durable linearizability         | WAR-only undo log, re-execution for the rest |
//! | [`quadra`]    | Quadra/Trinity     | durable linearizability         | in-cache-line logging, one fence per op |
//! | [`pmthreads`] | PMThreads          | buffered durable linearizability | DRAM shadow copy + dirty-page tracking, epoch copy |
//! | [`montage`]   | Montage            | buffered durable linearizability | copy-on-write payloads, DRAM index, epoch flush |
//! | [`friedman`]  | FriedmanQueue      | durable linearizability         | persistent lock-free MS queue |
//! | [`soft`]      | SOFT               | durable linearizability         | validity-bit nodes, flush on update only |
//! | [`dali`]      | Dalí               | buffered durable linearizability | versioned bucket records, no flushes in epoch |
//!
//! Simplifications versus the original artifacts are documented per module
//! and summarized in `DESIGN.md` §2.

pub mod barrier;
pub mod clobber;
pub mod dali;
pub mod friedman;
pub mod montage;
pub mod nvheap;
pub mod pmthreads;
pub mod policy;
pub mod quadra;
pub mod soft;
pub mod transient_nvmm;
pub mod undo;

pub use dali::DaliHashMap;
pub use friedman::FriedmanQueue;
pub use montage::{MontageHashMap, MontageQueue};
pub use policy::{PolicyHashMap, PolicyQueue};
pub use soft::SoftHashMap;
pub use transient_nvmm::{NvmmHashMap, NvmmQueue};
