//! Minimal NVMM heap with volatile metadata, shared by the baselines.
//!
//! The competing systems in this crate need to place their data in the
//! emulated NVMM region but manage allocation metadata their own way
//! (Montage stresses this allocator heavily — that is one of the paper's
//! findings). `NvHeap` is a plain bump allocator with per-context chunk
//! caches and per-size free lists, all metadata volatile: a crash would
//! leak, which is irrelevant here because only failure-free throughput of
//! the baselines is measured (ResPCT's allocator, in contrast, is fully
//! crash-consistent — see `respct::alloc`).

use std::sync::Arc;

use parking_lot::Mutex;
use respct_pmem::{align_up, PAddr, Region};

const CHUNK: u64 = 64 * 1024;
/// First usable offset (offset 0 is reserved so 0 can mean "null").
const BASE: u64 = 64;

/// Size classes identical to ResPCT's (16 B … 4 KiB).
fn class_of(size: u64) -> Option<usize> {
    (0..9).find(|&c| (16u64 << c) >= size)
}

struct Shared {
    bump: u64,
    free: [Vec<u64>; 9],
}

/// The heap. Clone the `Arc` freely; contexts are per thread.
pub struct NvHeap {
    region: Arc<Region>,
    shared: Mutex<Shared>,
}

/// Per-thread allocation cache.
#[derive(Default)]
pub struct NvCtx {
    cur: u64,
    end: u64,
}

impl NvHeap {
    /// Creates a heap covering `region`.
    pub fn new(region: Arc<Region>) -> NvHeap {
        NvHeap {
            region,
            shared: Mutex::new(Shared {
                bump: BASE,
                free: Default::default(),
            }),
        }
    }

    /// The underlying region.
    pub fn region(&self) -> &Arc<Region> {
        &self.region
    }

    /// Creates a per-thread context.
    pub fn ctx(&self) -> NvCtx {
        NvCtx::default()
    }

    /// Allocates `size` bytes, 64-byte aligned for sizes ≥ 64, naturally
    /// aligned below.
    ///
    /// # Panics
    ///
    /// Panics when the region is exhausted.
    pub fn alloc(&self, ctx: &mut NvCtx, size: u64) -> PAddr {
        assert!(size > 0);
        match class_of(size) {
            Some(c) => {
                let block = 16u64 << c;
                {
                    let mut sh = self.shared.lock();
                    if let Some(a) = sh.free[c].pop() {
                        return PAddr(a);
                    }
                    drop(sh);
                }
                let aligned = align_up(ctx.cur, block.min(64));
                if ctx.cur != 0 && aligned + block <= ctx.end {
                    ctx.cur = aligned + block;
                    return PAddr(aligned);
                }
                let chunk = self.grab(CHUNK);
                ctx.cur = chunk + block;
                ctx.end = chunk + CHUNK;
                PAddr(chunk)
            }
            None => PAddr(self.grab(align_up(size, 64))),
        }
    }

    fn grab(&self, size: u64) -> u64 {
        let mut sh = self.shared.lock();
        let start = align_up(sh.bump, 64);
        let new = start + size;
        assert!(new <= self.region.size() as u64, "NvHeap exhausted");
        sh.bump = new;
        start
    }

    /// Returns a block to its size class (immediately reusable — volatile
    /// metadata, no crash consistency).
    pub fn free(&self, addr: PAddr, size: u64) {
        if let Some(c) = class_of(size) {
            self.shared.lock().free[c].push(addr.0);
        }
    }

    /// Bytes handed out (diagnostics).
    pub fn used(&self) -> u64 {
        self.shared.lock().bump - BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct_pmem::RegionConfig;

    #[test]
    fn alloc_free_reuse() {
        let heap = NvHeap::new(Region::new(RegionConfig::fast(1 << 20)));
        let mut ctx = heap.ctx();
        let a = heap.alloc(&mut ctx, 64);
        let b = heap.alloc(&mut ctx, 64);
        assert_ne!(a, b);
        heap.free(a, 64);
        let c = heap.alloc(&mut ctx, 64);
        assert_eq!(a, c);
    }

    #[test]
    fn blocks_do_not_overlap_across_threads() {
        let heap = Arc::new(NvHeap::new(Region::new(RegionConfig::fast(16 << 20))));
        let all = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let heap = Arc::clone(&heap);
                let all = &all;
                s.spawn(move || {
                    let mut ctx = heap.ctx();
                    let mut mine = Vec::new();
                    for _ in 0..1000 {
                        mine.push(heap.alloc(&mut ctx, 48).0);
                    }
                    all.lock().extend(mine);
                });
            }
        });
        let mut v = all.into_inner();
        v.sort_unstable();
        for w in v.windows(2) {
            assert!(w[1] - w[0] >= 64, "overlap: {} {}", w[0], w[1]);
        }
    }

    #[test]
    fn huge_alloc_is_aligned() {
        let heap = NvHeap::new(Region::new(RegionConfig::fast(1 << 20)));
        let mut ctx = heap.ctx();
        let a = heap.alloc(&mut ctx, 100_000);
        assert_eq!(a.0 % 64, 0);
    }
}
