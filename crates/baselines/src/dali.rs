//! Dalí (DISC '17): a periodically persistent hash map.
//!
//! Dalí never issues flushes during an epoch either: each update *prepends
//! a version record* to the bucket's chain (key, value, operation, epoch),
//! and the periodic persist pass flushes the dirty buckets and advances the
//! epoch. Reads walk the chain and take the newest record for their key.
//! The price is record accumulation: chains grow until they are compacted,
//! which is why Dalí trails ResPCT in the paper's Fig. 8 even though both
//! flush lazily.
//!
//! Reproduced: prepend-only version records in NVMM, per-bucket dirty
//! tracking, epoch flush via quiesce, and per-bucket compaction once a
//! chain exceeds a threshold — records from already-persisted epochs
//! collapse to one record per live key.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use respct_ds::hash_u64;
use respct_ds::traits::BenchMap;
use respct_pmem::{PAddr, Region};

use crate::barrier::EpochBarrier;
use crate::nvheap::{NvCtx, NvHeap};

/// Record: key@0, value@8, meta@16 (op in bit 0: 1 = put, 0 = delete;
/// epoch in the upper bits), next@24. 32 bytes, class 32.
const REC_SIZE: u64 = 32;

/// Chain length that triggers compaction.
const COMPACT_THRESHOLD: usize = 16;

/// The periodically persistent map.
pub struct DaliHashMap {
    heap: Arc<NvHeap>,
    /// Bucket head words (NVMM).
    heads: PAddr,
    nbuckets: u64,
    locks: Box<[Mutex<()>]>,
    barrier: EpochBarrier,
    epoch: AtomicU64,
    /// Buckets touched this epoch, per barrier slot.
    dirty: Box<[Mutex<Vec<u64>>]>,
    epoch_addr: PAddr,
}

/// Per-thread context.
pub struct DaliCtx {
    alloc: NvCtx,
    slot: usize,
}

impl DaliHashMap {
    /// Creates a map with `nbuckets` buckets over `region`.
    pub fn new(region: Arc<Region>, nbuckets: u64) -> Arc<DaliHashMap> {
        assert!(nbuckets > 0);
        let heap = Arc::new(NvHeap::new(region));
        let mut boot = heap.ctx();
        let heads = heap.alloc(&mut boot, nbuckets * 8);
        for b in 0..nbuckets {
            heap.region().store(PAddr(heads.0 + b * 8), 0u64);
        }
        let epoch_addr = heap.alloc(&mut boot, 64);
        heap.region().store(epoch_addr, 1u64);
        Arc::new(DaliHashMap {
            heap,
            heads,
            nbuckets,
            locks: (0..nbuckets).map(|_| Mutex::new(())).collect(),
            barrier: EpochBarrier::new(),
            epoch: AtomicU64::new(1),
            dirty: (0..crate::barrier::MAX_OPS)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            epoch_addr,
        })
    }

    /// Per-thread context.
    pub fn ctx(&self) -> DaliCtx {
        DaliCtx {
            alloc: self.heap.ctx(),
            slot: self.barrier.register(),
        }
    }

    fn head_addr(&self, b: u64) -> PAddr {
        PAddr(self.heads.0 + b * 8)
    }

    /// Prepends a version record; compacts the chain when it grows long.
    fn prepend(&self, ctx: &mut DaliCtx, k: u64, v: u64, is_put: bool) -> bool {
        let region = self.heap.region();
        let b = hash_u64(k) % self.nbuckets;
        self.barrier.op_begin(ctx.slot);
        let _g = self.locks[b as usize].lock();
        // Walk once to learn the previous state of k and the chain length.
        let mut prev_state = None;
        let mut len = 0usize;
        let mut cur: u64 = region.load(self.head_addr(b));
        while cur != 0 {
            len += 1;
            if prev_state.is_none() && region.load::<u64>(PAddr(cur)) == k {
                let meta: u64 = region.load(PAddr(cur + 16));
                prev_state = Some(meta & 1 == 1);
            }
            cur = region.load(PAddr(cur + 24));
        }
        // A delete of an absent key writes no record.
        if !is_put && !prev_state.unwrap_or(false) {
            drop(_g);
            self.barrier.op_end(ctx.slot);
            return false;
        }
        let epoch = self.epoch.load(Ordering::Relaxed);
        let rec = self.heap.alloc(&mut ctx.alloc, REC_SIZE);
        region.store(rec, k);
        region.store(PAddr(rec.0 + 8), v);
        region.store(PAddr(rec.0 + 16), (epoch << 1) | u64::from(is_put));
        region.store(PAddr(rec.0 + 24), region.load::<u64>(self.head_addr(b)));
        region.store(self.head_addr(b), rec.0);
        self.dirty[ctx.slot].lock().push(b);
        if len + 1 > COMPACT_THRESHOLD {
            self.compact(ctx, b);
        }
        drop(_g);
        self.barrier.op_end(ctx.slot);
        if is_put {
            // "Newly inserted" = key was absent or deleted before.
            !prev_state.unwrap_or(false)
        } else {
            true
        }
    }

    /// Collapses records of already-persisted epochs: newest record per key
    /// wins; superseded records are freed. Caller holds the bucket lock.
    fn compact(&self, ctx: &mut DaliCtx, b: u64) {
        let region = self.heap.region();
        let cur_epoch = self.epoch.load(Ordering::Relaxed);
        let mut seen = std::collections::HashSet::new();
        let mut prev: u64 = 0;
        let mut cur: u64 = region.load(self.head_addr(b));
        while cur != 0 {
            let next: u64 = region.load(PAddr(cur + 24));
            let k: u64 = region.load(PAddr(cur));
            let meta: u64 = region.load(PAddr(cur + 16));
            let rec_epoch = meta >> 1;
            // Keep the newest record per key; drop older ones once the
            // newest is from a persisted epoch (conservative: drop
            // duplicates only when the *superseded* record is old).
            let drop_it = !seen.insert(k) && rec_epoch < cur_epoch;
            if drop_it {
                if prev == 0 {
                    region.store(self.head_addr(b), next);
                } else {
                    region.store(PAddr(prev + 24), next);
                }
                self.heap.free(PAddr(cur), REC_SIZE);
                self.dirty[ctx.slot].lock().push(b);
            } else {
                prev = cur;
            }
            cur = next;
        }
    }

    /// Looks a key up (newest record wins).
    pub fn get(&self, ctx: &mut DaliCtx, k: u64) -> Option<u64> {
        let region = self.heap.region();
        let b = hash_u64(k) % self.nbuckets;
        self.barrier.op_begin(ctx.slot);
        let _g = self.locks[b as usize].lock();
        let mut cur: u64 = region.load(self.head_addr(b));
        let mut out = None;
        while cur != 0 {
            if region.load::<u64>(PAddr(cur)) == k {
                let meta: u64 = region.load(PAddr(cur + 16));
                if meta & 1 == 1 {
                    out = Some(region.load(PAddr(cur + 8)));
                }
                break;
            }
            cur = region.load(PAddr(cur + 24));
        }
        drop(_g);
        self.barrier.op_end(ctx.slot);
        out
    }

    /// Epoch persist pass: flush every dirty bucket's chain head line and
    /// the records prepended this epoch, then advance the epoch.
    pub fn checkpoint(&self) -> u64 {
        self.barrier.quiesce(|| {
            let region = self.heap.region();
            let mut flushed = 0u64;
            let mut buckets: Vec<u64> = Vec::new();
            for list in &self.dirty {
                buckets.append(&mut list.lock());
            }
            buckets.sort_unstable();
            buckets.dedup();
            let epoch = self.epoch.load(Ordering::Relaxed);
            for b in buckets {
                region.pwb(self.head_addr(b));
                flushed += 1;
                // Flush records of the current epoch (prefix of the chain
                // plus any interior ones — walk and flush matching).
                let mut cur: u64 = region.load(self.head_addr(b));
                while cur != 0 {
                    let meta: u64 = region.load(PAddr(cur + 16));
                    if meta >> 1 == epoch {
                        region.pwb(PAddr(cur));
                        flushed += 1;
                    }
                    cur = region.load(PAddr(cur + 24));
                }
            }
            region.psync();
            let e = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
            region.store(self.epoch_addr, e);
            region.pwb(self.epoch_addr);
            region.psync();
            flushed
        })
    }

    /// Spawns a periodic persist pass.
    pub fn start_checkpointer(self: &Arc<Self>, period: Duration) -> DaliCheckpointer {
        let this = Arc::clone(self);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("dali-ckpt".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    this.checkpoint();
                }
            })
            .expect("spawn dali checkpointer");
        DaliCheckpointer {
            stop,
            handle: Some(handle),
        }
    }
}

/// Stops the periodic persist pass when dropped.
pub struct DaliCheckpointer {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for DaliCheckpointer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl BenchMap for DaliHashMap {
    type Ctx = DaliCtx;

    fn register(&self) -> DaliCtx {
        self.ctx()
    }

    fn insert(&self, ctx: &mut DaliCtx, k: u64, v: u64) -> bool {
        self.prepend(ctx, k, v, true)
    }

    fn remove(&self, ctx: &mut DaliCtx, k: u64) -> bool {
        self.prepend(ctx, k, 0, false)
    }

    fn get(&self, ctx: &mut DaliCtx, k: u64) -> Option<u64> {
        DaliHashMap::get(self, ctx, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct_pmem::RegionConfig;

    fn map(nbuckets: u64) -> Arc<DaliHashMap> {
        DaliHashMap::new(Region::new(RegionConfig::fast(32 << 20)), nbuckets)
    }

    #[test]
    fn semantics() {
        let m = map(16);
        let mut ctx = m.ctx();
        assert!(m.prepend(&mut ctx, 1, 10, true));
        assert!(
            !m.prepend(&mut ctx, 1, 11, true),
            "update is not a new insert"
        );
        assert_eq!(m.get(&mut ctx, 1), Some(11));
        assert!(m.prepend(&mut ctx, 1, 0, false));
        assert!(!m.prepend(&mut ctx, 1, 0, false));
        assert_eq!(m.get(&mut ctx, 1), None);
        assert!(
            m.prepend(&mut ctx, 1, 12, true),
            "re-insert after delete is new"
        );
        assert_eq!(m.get(&mut ctx, 1), Some(12));
    }

    #[test]
    fn compaction_bounds_chains() {
        let m = map(1);
        let mut ctx = m.ctx();
        // Hammer one key: versions pile up, compaction must kick in.
        for round in 0..200u64 {
            m.prepend(&mut ctx, 7, round, true);
            if round % 20 == 19 {
                m.checkpoint(); // age records so compaction may drop them
            }
        }
        assert_eq!(m.get(&mut ctx, 7), Some(199));
        // Chain stays bounded.
        let region = m.heap.region();
        let mut len = 0;
        let mut cur: u64 = region.load(m.head_addr(0));
        while cur != 0 {
            len += 1;
            cur = region.load(PAddr(cur + 24));
        }
        assert!(len <= 2 * COMPACT_THRESHOLD, "chain not compacted: {len}");
    }

    #[test]
    fn no_flushes_between_checkpoints() {
        let region = Region::new(RegionConfig::fast(32 << 20));
        let m = DaliHashMap::new(Arc::clone(&region), 16);
        let mut ctx = m.ctx();
        let before = region.stats().snapshot();
        for k in 0..100 {
            m.prepend(&mut ctx, k, k, true);
        }
        let delta = region.stats().snapshot().since(&before);
        assert_eq!(delta.pwb, 0, "Dalí must not flush during an epoch");
        let flushed = m.checkpoint();
        assert!(flushed > 0);
    }

    #[test]
    fn concurrent_with_periodic_persist() {
        let m = map(64);
        let guard = m.start_checkpointer(Duration::from_millis(3));
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let mut ctx = m.ctx();
                    for i in 0..1000 {
                        m.prepend(&mut ctx, t * 10_000 + i, i, true);
                    }
                });
            }
        });
        drop(guard);
        let mut ctx = m.ctx();
        for t in 0..3u64 {
            for i in 0..1000 {
                assert_eq!(m.get(&mut ctx, t * 10_000 + i), Some(i));
            }
        }
    }
}
