//! SOFT (OOPSLA '19): lock-free durable hash map with validity-bit nodes.
//!
//! SOFT splits each item into a *persistent node* (key, value, validity
//! flags in NVMM — flushed once per update, with no flushes at all on
//! lookups) and a *volatile node* used for traversal. Because searches
//! touch only volatile state, SOFT's read-intensive throughput beats even
//! transient lock-based code (paper Fig. 8, read-intensive panel) — its
//! lookups are lock-free.
//!
//! Reproduced cost profile: one persistent-node flush + fence per insert /
//! remove / in-place update; lock-free, flush-free lookups over volatile
//! links. Simplifications: writers serialize per bucket with a mutex
//! instead of SOFT's lock-free insertion protocol (the paper's read-mostly
//! result depends on the *reader* path, which is kept fully lock-free),
//! and unlinked volatile nodes are recycled only after the map is dropped
//! (standing in for SOFT's epoch-based reclamation).

use std::sync::Arc;

use parking_lot::Mutex;
use respct_ds::hash_u64;
use respct_ds::traits::BenchMap;
use respct_pmem::{PAddr, Region};

use crate::nvheap::{NvCtx, NvHeap};

/// Persistent node: key@0, value@8, valid@16 (1 = inserted, 0 = deleted).
const PNODE_SIZE: u64 = 24;
/// Volatile node (kept in a DRAM region for stable addresses):
/// key@0, value@8, pnode@16, next@24, deleted@32.
const VNODE_SIZE: u64 = 40;

/// The SOFT-style hash map.
pub struct SoftHashMap {
    /// NVMM: persistent nodes.
    pheap: Arc<NvHeap>,
    /// DRAM: volatile nodes with stable addresses (readers never see freed
    /// memory because nodes are not recycled during the run).
    vheap: Arc<NvHeap>,
    /// Bucket heads: volatile words in the DRAM region (atomic access).
    heads: PAddr,
    nbuckets: u64,
    write_locks: Box<[Mutex<()>]>,
}

/// Per-thread context.
pub struct SoftCtx {
    palloc: NvCtx,
    valloc: NvCtx,
}

impl SoftHashMap {
    /// Creates a map: `nvmm` holds persistent nodes, `dram` the volatile
    /// index (a fast, zero-latency region).
    pub fn new(nvmm: Arc<Region>, dram: Arc<Region>, nbuckets: u64) -> SoftHashMap {
        assert!(nbuckets > 0);
        let vheap = Arc::new(NvHeap::new(dram));
        let mut boot = vheap.ctx();
        let heads = vheap.alloc(&mut boot, nbuckets * 8);
        for b in 0..nbuckets {
            vheap.region().store(PAddr(heads.0 + b * 8), 0u64);
        }
        SoftHashMap {
            pheap: Arc::new(NvHeap::new(nvmm)),
            vheap,
            heads,
            nbuckets,
            write_locks: (0..nbuckets).map(|_| Mutex::new(())).collect(),
        }
    }

    fn head_addr(&self, k: u64) -> (usize, PAddr) {
        let b = hash_u64(k) % self.nbuckets;
        (b as usize, PAddr(self.heads.0 + b * 8))
    }

    /// Lock-free, flush-free lookup — SOFT's headline property.
    pub fn get(&self, k: u64) -> Option<u64> {
        let v = self.vheap.region();
        let (_b, head) = self.head_addr(k);
        let mut cur = v.load_acquire_u64(head);
        while cur != 0 {
            let key: u64 = v.load(PAddr(cur));
            if key == k {
                let deleted = v.load_acquire_u64(PAddr(cur + 32));
                if deleted != 0 {
                    return None;
                }
                return Some(v.load(PAddr(cur + 8)));
            }
            cur = v.load_acquire_u64(PAddr(cur + 24));
        }
        None
    }

    /// Inserts or updates; one pnode flush + fence.
    pub fn insert(&self, ctx: &mut SoftCtx, k: u64, val: u64) -> bool {
        let vr = self.vheap.region();
        let pr = self.pheap.region();
        let (b, head) = self.head_addr(k);
        let _g = self.write_locks[b].lock();
        // Find a live volatile node for k.
        let mut cur = vr.load_acquire_u64(head);
        while cur != 0 {
            if vr.load::<u64>(PAddr(cur)) == k && vr.load_acquire_u64(PAddr(cur + 32)) == 0 {
                // In-place update: write the persistent value, flush, fence,
                // then publish the volatile value.
                let pnode: u64 = vr.load(PAddr(cur + 16));
                pr.store(PAddr(pnode + 8), val);
                pr.pwb(PAddr(pnode + 8));
                pr.psync();
                vr.store(PAddr(cur + 8), val);
                return false;
            }
            cur = vr.load_acquire_u64(PAddr(cur + 24));
        }
        // New key: persistent node first (k, v, valid=1), flushed before the
        // volatile insert makes it reachable.
        let pnode = self.pheap.alloc(&mut ctx.palloc, PNODE_SIZE);
        pr.store(pnode, k);
        pr.store(PAddr(pnode.0 + 8), val);
        pr.store(PAddr(pnode.0 + 16), 1u64);
        pr.pwb(pnode);
        pr.psync();
        let vnode = self.vheap.alloc(&mut ctx.valloc, VNODE_SIZE);
        vr.store(vnode, k);
        vr.store(PAddr(vnode.0 + 8), val);
        vr.store(PAddr(vnode.0 + 16), pnode.0);
        vr.store(PAddr(vnode.0 + 32), 0u64);
        let old_head = vr.load_acquire_u64(head);
        vr.store(PAddr(vnode.0 + 24), old_head);
        // Publish for the lock-free readers.
        vr.store_release_u64(head, vnode.0);
        true
    }

    /// Removes; one validity flush + fence.
    pub fn remove(&self, ctx: &mut SoftCtx, k: u64) -> bool {
        let _ = ctx;
        let vr = self.vheap.region();
        let pr = self.pheap.region();
        let (b, head) = self.head_addr(k);
        let _g = self.write_locks[b].lock();
        let mut prev: u64 = 0;
        let mut cur = vr.load_acquire_u64(head);
        while cur != 0 {
            let next = vr.load_acquire_u64(PAddr(cur + 24));
            if vr.load::<u64>(PAddr(cur)) == k && vr.load_acquire_u64(PAddr(cur + 32)) == 0 {
                // Durable delete: clear the validity bit and persist it.
                let pnode: u64 = vr.load(PAddr(cur + 16));
                pr.store(PAddr(pnode + 16), 0u64);
                pr.pwb(PAddr(pnode + 16));
                pr.psync();
                // Logical delete for readers, then unlink (node is never
                // recycled during the run, so concurrent readers stay safe).
                vr.store_release_u64(PAddr(cur + 32), 1);
                if prev == 0 {
                    vr.store_release_u64(head, next);
                } else {
                    vr.store_release_u64(PAddr(prev + 24), next);
                }
                return true;
            }
            prev = cur;
            cur = next;
        }
        false
    }

    /// Per-thread context.
    pub fn ctx(&self) -> SoftCtx {
        SoftCtx {
            palloc: self.pheap.ctx(),
            valloc: self.vheap.ctx(),
        }
    }
}

impl BenchMap for SoftHashMap {
    type Ctx = SoftCtx;

    fn register(&self) -> SoftCtx {
        self.ctx()
    }

    fn insert(&self, ctx: &mut SoftCtx, k: u64, v: u64) -> bool {
        SoftHashMap::insert(self, ctx, k, v)
    }

    fn remove(&self, ctx: &mut SoftCtx, k: u64) -> bool {
        SoftHashMap::remove(self, ctx, k)
    }

    fn get(&self, _ctx: &mut SoftCtx, k: u64) -> Option<u64> {
        SoftHashMap::get(self, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct_pmem::RegionConfig;

    fn map(nbuckets: u64) -> SoftHashMap {
        SoftHashMap::new(
            Region::new(RegionConfig::fast(16 << 20)),
            Region::new(RegionConfig::fast(16 << 20)),
            nbuckets,
        )
    }

    #[test]
    fn semantics() {
        let m = map(16);
        let mut ctx = m.ctx();
        assert!(m.insert(&mut ctx, 1, 10));
        assert!(!m.insert(&mut ctx, 1, 11));
        assert_eq!(m.get(1), Some(11));
        assert!(m.remove(&mut ctx, 1));
        assert!(!m.remove(&mut ctx, 1));
        assert_eq!(m.get(1), None);
        // Re-insert after delete.
        assert!(m.insert(&mut ctx, 1, 12));
        assert_eq!(m.get(1), Some(12));
    }

    #[test]
    fn chains_with_collisions() {
        let m = map(1);
        let mut ctx = m.ctx();
        for k in 0..60 {
            m.insert(&mut ctx, k, k * 2);
        }
        for k in (0..60).step_by(3) {
            assert!(m.remove(&mut ctx, k));
        }
        for k in 0..60 {
            let expect = if k % 3 == 0 { None } else { Some(k * 2) };
            assert_eq!(m.get(k), expect, "key {k}");
        }
    }

    #[test]
    fn lookups_issue_no_flushes() {
        let nvmm = Region::new(RegionConfig::fast(16 << 20));
        let dram = Region::new(RegionConfig::fast(16 << 20));
        let m = SoftHashMap::new(Arc::clone(&nvmm), Arc::clone(&dram), 16);
        let mut ctx = m.ctx();
        for k in 0..50 {
            m.insert(&mut ctx, k, k);
        }
        let before = nvmm.stats().snapshot();
        for _ in 0..10 {
            for k in 0..50 {
                assert_eq!(m.get(k), Some(k));
            }
        }
        let delta = nvmm.stats().snapshot().since(&before);
        assert_eq!(delta.pwb, 0, "SOFT lookups must not flush");
        assert_eq!(delta.psync, 0);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let m = Arc::new(map(64));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            // Writers churn keys 0..100.
            for t in 0..2u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let mut ctx = m.ctx();
                    for round in 0..200u64 {
                        for k in (t * 50)..(t * 50 + 50) {
                            m.insert(&mut ctx, k, round);
                            if round % 3 == 2 {
                                m.remove(&mut ctx, k);
                            }
                        }
                    }
                });
            }
            // Readers: must never crash or see torn values beyond the churn.
            for _ in 0..2 {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        for k in 0..100 {
                            let _ = m.get(k);
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
}
