//! Matrix multiplication (Phoenix MatMul, paper §5.3).
//!
//! `C = A × B` with rows of `C` partitioned across threads. Under ResPCT
//! the matrices live in NVMM; every output cell is written exactly once, so
//! by the idempotence rule (§3.3.2) `C` needs **no undo logging** — each
//! thread only calls `add_modified` for the row it just produced and places
//! an RP after it. The only InCLL variable is each worker's persistent
//! progress cursor (`next_row`), which is read at restart to resume.

use std::sync::Arc;
use std::time::{Duration, Instant};

use respct::{Pool, RpId};
use respct_pmem::{PAddr, Region, RegionConfig};

use crate::Mode;

/// RP base: worker `t` declares `RP_ROW_DONE.offset(t)` per finished row.
const RP_ROW_DONE: RpId = RpId(200);

/// Configuration for one matmul run.
#[derive(Debug, Clone, Copy)]
pub struct MatmulConfig {
    /// Matrix dimension (n × n).
    pub n: usize,
    pub threads: usize,
    pub mode: Mode,
    /// Checkpoint period (ResPCT mode).
    pub ckpt_period: Duration,
}

impl Default for MatmulConfig {
    fn default() -> Self {
        MatmulConfig {
            n: 128,
            threads: 2,
            mode: Mode::TransientDram,
            ckpt_period: Duration::from_millis(64),
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone, Copy)]
pub struct MatmulOutput {
    pub duration: Duration,
    /// Sum over all cells of `C` (verification across modes).
    pub checksum: f64,
}

fn a_elem(i: usize, j: usize) -> f64 {
    ((i * 31 + j * 17) % 97) as f64 * 0.25
}

fn b_elem(i: usize, j: usize) -> f64 {
    ((i * 13 + j * 29) % 89) as f64 * 0.5
}

/// Runs matmul in the configured mode.
pub fn run(cfg: MatmulConfig) -> MatmulOutput {
    match cfg.mode {
        Mode::TransientDram => run_dram(cfg),
        Mode::TransientNvmm => run_region(cfg, Region::new(region_cfg(cfg, true)), None),
        Mode::Respct => run_respct(cfg, None),
    }
}

/// Runs matmul in ResPCT mode with `sink` attached to the region before
/// any pool traffic — the analysis hook for the trace checker and the
/// happens-before race detector.
pub fn run_traced(cfg: MatmulConfig, sink: Arc<dyn respct_pmem::TraceSink>) -> MatmulOutput {
    run_respct(cfg, Some(sink))
}

fn run_respct(cfg: MatmulConfig, sink: Option<Arc<dyn respct_pmem::TraceSink>>) -> MatmulOutput {
    let region = Region::new(region_cfg(cfg, false));
    if let Some(sink) = sink {
        region.set_trace_sink(sink);
    }
    let pool = Pool::create(Arc::clone(&region), crate::backend::pool_config()).expect("pool");
    run_region(cfg, region, Some(pool))
}

fn region_cfg(cfg: MatmulConfig, transient: bool) -> RegionConfig {
    let bytes = 3 * cfg.n * cfg.n * 8 + (4 << 20);
    if transient {
        // Transient<NVMM> always uses the emulated-Optane latency tax.
        RegionConfig::optane(bytes)
    } else {
        // ResPCT mode runs on whichever backend RESPCT_BACKEND selects.
        crate::backend::nvmm_config(bytes)
    }
}

fn run_dram(cfg: MatmulConfig) -> MatmulOutput {
    let n = cfg.n;
    let a: Vec<f64> = (0..n * n).map(|x| a_elem(x / n, x % n)).collect();
    let b: Vec<f64> = (0..n * n).map(|x| b_elem(x / n, x % n)).collect();
    let mut c = vec![0.0f64; n * n];
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (t, rows) in c.chunks_mut(n * n.div_ceil(cfg.threads)).enumerate() {
            let (a, b) = (&a, &b);
            s.spawn(move || {
                let row0 = t * n.div_ceil(cfg.threads);
                for (r, row) in rows.chunks_mut(n).enumerate() {
                    let i = row0 + r;
                    for (j, cell) in row.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc += a[i * n + k] * b[k * n + j];
                        }
                        *cell = acc;
                    }
                }
            });
        }
    });
    MatmulOutput {
        duration: t0.elapsed(),
        checksum: c.iter().sum(),
    }
}

/// Shared NVMM layout: A at 64, B after A, C after B (ResPCT mode offsets
/// these past the pool header via allocation).
fn run_region(cfg: MatmulConfig, region: Arc<Region>, pool: Option<Arc<Pool>>) -> MatmulOutput {
    let n = cfg.n;
    let mat_bytes = (n * n * 8) as u64;
    // Lay the matrices out.
    let (a_base, b_base, c_base, setup_handle) = match &pool {
        Some(pool) => {
            let h = pool.register();
            let a = h.alloc(mat_bytes, 64);
            let b = h.alloc(mat_bytes, 64);
            let c = h.alloc(mat_bytes, 64);
            (a, b, c, Some(h))
        }
        None => {
            let a = PAddr(64);
            let b = PAddr(64 + mat_bytes);
            let c = PAddr(64 + 2 * mat_bytes);
            (a, b, c, None)
        }
    };
    // Inputs: written once; tracked under ResPCT so they persist.
    for i in 0..n {
        for j in 0..n {
            region.store(PAddr(a_base.0 + ((i * n + j) * 8) as u64), a_elem(i, j));
            region.store(PAddr(b_base.0 + ((i * n + j) * 8) as u64), b_elem(i, j));
        }
    }
    if let Some(h) = &setup_handle {
        h.add_modified(a_base, mat_bytes as usize);
        h.add_modified(b_base, mat_bytes as usize);
        h.checkpoint_here(); // inputs durable before compute starts
    }
    drop(setup_handle);

    let _ckpt = pool.as_ref().map(|p| p.start_checkpointer(cfg.ckpt_period));
    let rows_per = n.div_ceil(cfg.threads);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let region = Arc::clone(&region);
            let pool = pool.clone();
            s.spawn(move || {
                let handle = pool.as_ref().map(respct::Pool::register);
                let row_lo = t * rows_per;
                let row_hi = ((t + 1) * rows_per).min(n);
                if row_lo >= n {
                    return;
                }
                // Persistent progress cursor: resume point after a crash.
                let progress = handle.as_ref().map(|h| h.alloc_cell(row_lo as u64));
                let start_row = match (&handle, &progress) {
                    (Some(h), Some(p)) => h.get(*p) as usize,
                    _ => row_lo,
                };
                // The inputs are read-only and cache-resident on real
                // hardware; model that by staging them in DRAM scratch
                // once per worker instead of paying the per-access NVMM
                // tax n³ times (which no cached machine pays).
                let mut a_loc = vec![0u8; n * n * 8];
                let mut b_loc = vec![0u8; n * n * 8];
                region.load_bytes(a_base, &mut a_loc);
                region.load_bytes(b_base, &mut b_loc);
                let elem = |buf: &[u8], idx: usize| -> f64 {
                    f64::from_ne_bytes(buf[idx * 8..idx * 8 + 8].try_into().unwrap())
                };
                for i in start_row..row_hi {
                    for j in 0..n {
                        let mut acc = 0.0;
                        for k in 0..n {
                            acc += elem(&a_loc, i * n + k) * elem(&b_loc, k * n + j);
                        }
                        region.store(PAddr(c_base.0 + ((i * n + j) * 8) as u64), acc);
                    }
                    if let (Some(h), Some(p)) = (&handle, &progress) {
                        // Row finished: track it, advance the cursor, RP.
                        h.add_modified(PAddr(c_base.0 + (i * n * 8) as u64), n * 8);
                        h.update(*p, (i + 1) as u64);
                        h.rp(RP_ROW_DONE.offset(t as u64));
                    }
                }
            });
        }
    });
    let duration = t0.elapsed();
    let mut checksum = 0.0;
    for idx in 0..n * n {
        checksum += region.load::<f64>(PAddr(c_base.0 + (idx * 8) as u64));
    }
    MatmulOutput { duration, checksum }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree() {
        let base = MatmulConfig {
            n: 24,
            threads: 2,
            ..Default::default()
        };
        let reference = run(MatmulConfig {
            mode: Mode::TransientDram,
            ..base
        });
        for mode in [Mode::TransientNvmm, Mode::Respct] {
            let out = run(MatmulConfig { mode, ..base });
            assert!(
                (out.checksum - reference.checksum).abs() < 1e-6,
                "{mode:?}: {} != {}",
                out.checksum,
                reference.checksum
            );
        }
    }

    #[test]
    fn odd_sizes_and_more_threads_than_rows() {
        let out = run(MatmulConfig {
            n: 7,
            threads: 16,
            mode: Mode::Respct,
            ..Default::default()
        });
        let reference = run(MatmulConfig {
            n: 7,
            threads: 1,
            ..Default::default()
        });
        assert!((out.checksum - reference.checksum).abs() < 1e-9);
    }
}
