//! Monte-Carlo swaption pricing (Parsec Swaptions, paper §5.3).
//!
//! A lockless data-parallel workload: each thread owns a set of swaptions
//! and prices each by simulating `trials` interest-rate paths. Under
//! ResPCT the per-swaption accumulators (sum of discounted payoffs) and
//! each worker's trial cursor are persistent; as in the paper's experience,
//! RPs go after a *batch* of trials — the naive per-trial placement is
//! measurably slower (the paper saw 4×) and is available via `batch = 1`
//! for the ablation benchmark.

use std::sync::Arc;
use std::time::{Duration, Instant};

use respct::{Pool, RpId};
use respct_pmem::{Region, RegionConfig};

use crate::Mode;

/// RP base: worker `t` declares `RP_TRIAL_DONE.offset(t)` after each batch.
const RP_TRIAL_DONE: RpId = RpId(400);

/// Configuration for one pricing run.
#[derive(Debug, Clone, Copy)]
pub struct SwaptionsConfig {
    /// Number of swaptions to price.
    pub nswaptions: usize,
    /// Monte-Carlo trials per swaption.
    pub trials: usize,
    pub threads: usize,
    pub mode: Mode,
    /// Trials between consecutive RPs.
    pub batch: usize,
    pub ckpt_period: Duration,
}

impl Default for SwaptionsConfig {
    fn default() -> Self {
        SwaptionsConfig {
            nswaptions: 16,
            trials: 2_000,
            threads: 2,
            mode: Mode::TransientDram,
            batch: 500,
            ckpt_period: Duration::from_millis(64),
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct SwaptionsOutput {
    pub duration: Duration,
    /// Price per swaption (verification across modes).
    pub prices: Vec<f64>,
}

/// Deterministic pseudo-normal increment for (swaption, trial, step).
#[inline]
fn gauss(sw: usize, trial: usize, step: usize) -> f64 {
    // Two xorshift-mixed uniforms → Irwin-Hall(2) centered: cheap,
    // deterministic, good enough for a pricing kernel's arithmetic profile.
    let mut h = (sw as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((trial as u64) << 20)
        .wrapping_add(step as u64);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    let u1 = (h & 0xffff_ffff) as f64 / u32::MAX as f64;
    let u2 = (h >> 32) as f64 / u32::MAX as f64;
    u1 + u2 - 1.0
}

/// One simulated discounted payoff.
#[inline]
fn payoff(sw: usize, trial: usize) -> f64 {
    let strike = 0.04 + (sw % 8) as f64 * 0.005;
    let mut rate: f64 = 0.05;
    const STEPS: usize = 16;
    for step in 0..STEPS {
        rate += 0.002 * gauss(sw, trial, step);
        rate = rate.max(0.0001);
    }
    let v = (rate - strike).max(0.0) * 100.0;
    v * (-rate * 5.0).exp()
}

/// Runs the pricing in the configured mode.
pub fn run(cfg: SwaptionsConfig) -> SwaptionsOutput {
    match cfg.mode {
        Mode::TransientDram | Mode::TransientNvmm => run_transient(cfg),
        Mode::Respct => run_respct(cfg, None),
    }
}

fn run_transient(cfg: SwaptionsConfig) -> SwaptionsOutput {
    // Swaptions is compute-bound with a tiny working set; the paper's
    // NVMM variant differs only marginally, which we model by streaming
    // accumulator updates through a region in NVMM mode.
    let region =
        (cfg.mode == Mode::TransientNvmm).then(|| Region::new(RegionConfig::optane(1 << 20)));
    let t0 = Instant::now();
    let per = cfg.nswaptions.div_ceil(cfg.threads);
    let prices: Vec<f64> = std::thread::scope(|s| {
        let mut joins = Vec::new();
        for t in 0..cfg.threads {
            let region = region.clone();
            joins.push(s.spawn(move || {
                let lo = t * per;
                let hi = ((t + 1) * per).min(cfg.nswaptions);
                let mut out = Vec::new();
                for sw in lo..hi {
                    let mut sum = 0.0;
                    for trial in 0..cfg.trials {
                        sum += payoff(sw, trial);
                        if let Some(r) = &region {
                            r.store(respct_pmem::PAddr(64 + (t as u64) * 64), sum);
                        }
                    }
                    out.push((sw, sum / cfg.trials as f64));
                }
                out
            }));
        }
        let mut all: Vec<(usize, f64)> = joins
            .into_iter()
            .flat_map(|j| j.join().expect("worker"))
            .collect();
        all.sort_by_key(|&(sw, _)| sw);
        all.into_iter().map(|(_, p)| p).collect()
    });
    SwaptionsOutput {
        duration: t0.elapsed(),
        prices,
    }
}

/// Runs the ResPCT mode with `sink` attached to the region before any
/// pool traffic — the analysis hook for the trace checker and the
/// happens-before race detector.
pub fn run_traced(cfg: SwaptionsConfig, sink: Arc<dyn respct_pmem::TraceSink>) -> SwaptionsOutput {
    run_respct(cfg, Some(sink))
}

fn run_respct(
    cfg: SwaptionsConfig,
    sink: Option<Arc<dyn respct_pmem::TraceSink>>,
) -> SwaptionsOutput {
    let region = Region::new(crate::backend::nvmm_config(64 << 20));
    if let Some(sink) = sink {
        region.set_trace_sink(sink);
    }
    let pool = Pool::create(Arc::clone(&region), crate::backend::pool_config()).expect("pool");
    let _ckpt = pool.start_checkpointer(cfg.ckpt_period);
    let t0 = Instant::now();
    let per = cfg.nswaptions.div_ceil(cfg.threads);
    let prices: Vec<f64> = std::thread::scope(|s| {
        let mut joins = Vec::new();
        for t in 0..cfg.threads {
            let pool = Arc::clone(&pool);
            joins.push(s.spawn(move || {
                let h = pool.register();
                let lo = t * per;
                let hi = ((t + 1) * per).min(cfg.nswaptions);
                let mut out = Vec::new();
                for sw in lo..hi {
                    // Persistent accumulator + cursor for this swaption.
                    let sum_cell = h.alloc_cell(0.0f64);
                    let cursor = h.alloc_cell(0u64);
                    let mut trial = h.get(cursor) as usize;
                    while trial < cfg.trials {
                        let end = (trial + cfg.batch).min(cfg.trials);
                        let mut local = 0.0;
                        for tr in trial..end {
                            local += payoff(sw, tr);
                        }
                        h.update(sum_cell, h.get(sum_cell) + local);
                        h.update(cursor, end as u64);
                        h.rp(RP_TRIAL_DONE.offset(t as u64));
                        trial = end;
                    }
                    out.push((sw, h.get(sum_cell) / cfg.trials as f64));
                }
                out
            }));
        }
        let mut all: Vec<(usize, f64)> = joins
            .into_iter()
            .flat_map(|j| j.join().expect("worker"))
            .collect();
        all.sort_by_key(|&(sw, _)| sw);
        all.into_iter().map(|(_, p)| p).collect()
    });
    SwaptionsOutput {
        duration: t0.elapsed(),
        prices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree() {
        let base = SwaptionsConfig {
            nswaptions: 6,
            trials: 400,
            threads: 2,
            ..Default::default()
        };
        let reference = run(SwaptionsConfig {
            mode: Mode::TransientDram,
            ..base
        });
        for mode in [Mode::TransientNvmm, Mode::Respct] {
            let out = run(SwaptionsConfig { mode, ..base });
            assert_eq!(out.prices.len(), reference.prices.len());
            for (a, b) in out.prices.iter().zip(&reference.prices) {
                assert!((a - b).abs() < 1e-9, "{mode:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn prices_are_positive_and_strike_ordered() {
        let out = run(SwaptionsConfig {
            nswaptions: 8,
            trials: 800,
            ..Default::default()
        });
        for p in &out.prices {
            assert!(*p >= 0.0);
        }
        // Higher strike ⇒ lower price (within the same deterministic noise).
        assert!(out.prices[0] > out.prices[7]);
    }
}
