//! YCSB-style workload generation (paper §5.3, Fig. 14).
//!
//! The paper drives Memcached with YCSB: a load phase inserting 1M
//! key-value pairs, then a run phase mixing reads and writes with keys
//! drawn from a zipfian distribution. This module provides the standard
//! zipfian generator (Gray et al., as used by YCSB) and the three mixes
//! the paper evaluates: read-intensive (90/10), balanced (50/50), and
//! write-intensive (10/90).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Zipfian generator over `0..n` with skew `theta` (YCSB default 0.99).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Builds a generator for `n` items (O(n) zeta precomputation).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0);
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws the next zipfian rank (0 is the hottest key).
    pub fn next(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Internal zeta(2) (exposed for tests).
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    Get(u64),
    Put(u64),
}

/// A read/update mix over a zipfian key space.
#[derive(Debug, Clone)]
pub struct Workload {
    pub zipf: Zipfian,
    /// Percentage of reads (0..=100).
    pub read_pct: u8,
}

impl Workload {
    /// The paper's three Memcached mixes.
    pub fn read_intensive(nkeys: u64) -> Workload {
        Workload {
            zipf: Zipfian::new(nkeys, 0.99),
            read_pct: 90,
        }
    }

    /// 50/50 mix.
    pub fn balanced(nkeys: u64) -> Workload {
        Workload {
            zipf: Zipfian::new(nkeys, 0.99),
            read_pct: 50,
        }
    }

    /// 10/90 mix.
    pub fn write_intensive(nkeys: u64) -> Workload {
        Workload {
            zipf: Zipfian::new(nkeys, 0.99),
            read_pct: 10,
        }
    }

    /// Draws the next request.
    pub fn next(&self, rng: &mut SmallRng) -> Op {
        let key = self.zipf.next(rng);
        if rng.gen_range(0..100u8) < self.read_pct {
            Op::Get(key)
        } else {
            Op::Put(key)
        }
    }

    /// A seeded rng for a client thread.
    pub fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = Workload::rng(42);
        let mut counts = vec![0u32; 100];
        let mut total_in_top = 0u64;
        const DRAWS: u64 = 100_000;
        for _ in 0..DRAWS {
            let k = z.next(&mut rng);
            assert!(k < 10_000);
            if k < 100 {
                counts[k as usize] += 1;
                total_in_top += 1;
            }
        }
        // With theta=0.99 over 10k keys, the hot 1% draws a large share.
        assert!(total_in_top > DRAWS / 3, "zipf not skewed: {total_in_top}");
        assert!(counts[0] > counts[50], "rank 0 must be hottest");
    }

    #[test]
    fn mix_ratio_approximate() {
        let w = Workload::read_intensive(1000);
        let mut rng = Workload::rng(7);
        let reads = (0..10_000)
            .filter(|_| matches!(w.next(&mut rng), Op::Get(_)))
            .count();
        assert!((8_700..9_300).contains(&reads), "reads = {reads}");
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_rejected() {
        Zipfian::new(10, 1.5);
    }
}
