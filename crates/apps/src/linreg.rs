//! Linear regression (Phoenix LR, paper §5.3).
//!
//! Each thread scans a partition of the input points and maintains five
//! running sums (Σx, Σy, Σxx, Σyy, Σxy). The sums are read *and* written
//! between restart points — textbook WAR variables — so under ResPCT they
//! are InCLL cells, together with a per-thread progress cursor.
//!
//! This module also reproduces the paper's **RP-placement ablation**
//! (§5.3 "Positioning RPs"): with `batch = 1` an RP (and five
//! `update_InCLL` calls) follows *every point*, which the paper measured at
//! a ~9× slowdown; with `batch = 1000` the sums are accumulated in
//! registers and flushed to their cells once per batch, dropping the
//! overhead to ~20 %.

use std::sync::Arc;
use std::time::{Duration, Instant};

use respct::{Pool, RpId};
use respct_pmem::{Region, RegionConfig};

use crate::Mode;

/// RP base: worker `t` declares `RP_CHUNK_DONE.offset(t)` per chunk.
const RP_CHUNK_DONE: RpId = RpId(300);

/// Configuration for one linear-regression run.
#[derive(Debug, Clone, Copy)]
pub struct LinregConfig {
    pub npoints: usize,
    pub threads: usize,
    pub mode: Mode,
    /// Points processed between consecutive RPs (1 = the naive placement).
    pub batch: usize,
    pub ckpt_period: Duration,
}

impl Default for LinregConfig {
    fn default() -> Self {
        LinregConfig {
            npoints: 100_000,
            threads: 2,
            mode: Mode::TransientDram,
            batch: 1000,
            ckpt_period: Duration::from_millis(64),
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone, Copy)]
pub struct LinregOutput {
    pub duration: Duration,
    pub slope: f64,
    pub intercept: f64,
}

/// Deterministic input point `i`.
#[inline]
fn point(i: usize) -> (f64, f64) {
    let x = (i % 10_000) as f64 * 0.01;
    // y = 3x + 7 plus deterministic "noise".
    let noise = (((i * 2_654_435_761) >> 16) & 0xff) as f64 / 256.0 - 0.5;
    (x, 3.0 * x + 7.0 + noise)
}

#[derive(Default, Clone, Copy)]
struct Sums {
    sx: f64,
    sy: f64,
    sxx: f64,
    sxy: f64,
    n: f64,
}

impl Sums {
    #[inline]
    fn add(&mut self, x: f64, y: f64) {
        self.sx += x;
        self.sy += y;
        self.sxx += x * x;
        self.sxy += x * y;
        self.n += 1.0;
    }

    fn merge(&mut self, o: Sums) {
        self.sx += o.sx;
        self.sy += o.sy;
        self.sxx += o.sxx;
        self.sxy += o.sxy;
        self.n += o.n;
    }

    fn solve(&self) -> (f64, f64) {
        let slope =
            (self.n * self.sxy - self.sx * self.sy) / (self.n * self.sxx - self.sx * self.sx);
        let intercept = (self.sy - slope * self.sx) / self.n;
        (slope, intercept)
    }
}

/// Runs linear regression in the configured mode.
pub fn run(cfg: LinregConfig) -> LinregOutput {
    assert!(cfg.batch >= 1);
    match cfg.mode {
        Mode::TransientDram => run_transient(cfg, false),
        Mode::TransientNvmm => run_transient(cfg, true),
        Mode::Respct => run_respct(cfg, None),
    }
}

fn run_transient(cfg: LinregConfig, nvmm_tax: bool) -> LinregOutput {
    // The transient program keeps its sums in registers; the NVMM variant
    // charges the media tax by streaming the points through a region.
    let region = nvmm_tax.then(|| Region::new(RegionConfig::optane(1 << 20)));
    let per = cfg.npoints.div_ceil(cfg.threads);
    let t0 = Instant::now();
    let mut total = Sums::default();
    let parts: Vec<Sums> = std::thread::scope(|s| {
        let mut joins = Vec::new();
        for t in 0..cfg.threads {
            let region = region.clone();
            joins.push(s.spawn(move || {
                let lo = t * per;
                let hi = ((t + 1) * per).min(cfg.npoints);
                let mut sums = Sums::default();
                let mut scratch = 0.0;
                for i in lo..hi {
                    let (x, y) = point(i);
                    sums.add(x, y);
                    scratch += x + y;
                    if let Some(r) = &region {
                        // Model the slower medium lightly: the running sums
                        // live in NVMM but are cache-resident; charge an
                        // occasional media event rather than one per point.
                        if i % 64 == 0 {
                            r.store(respct_pmem::PAddr(64 + (t as u64 * 64)), scratch);
                        }
                    }
                }
                sums
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("linreg worker"))
            .collect()
    });
    for p in parts {
        total.merge(p);
    }
    let (slope, intercept) = total.solve();
    LinregOutput {
        duration: t0.elapsed(),
        slope,
        intercept,
    }
}

/// Runs the ResPCT mode with `sink` attached to the region before any
/// pool traffic — the analysis hook for the trace checker and the
/// happens-before race detector.
pub fn run_traced(cfg: LinregConfig, sink: Arc<dyn respct_pmem::TraceSink>) -> LinregOutput {
    run_respct(cfg, Some(sink))
}

fn run_respct(cfg: LinregConfig, sink: Option<Arc<dyn respct_pmem::TraceSink>>) -> LinregOutput {
    let region = Region::new(crate::backend::nvmm_config(64 << 20));
    if let Some(sink) = sink {
        region.set_trace_sink(sink);
    }
    let pool = Pool::create(Arc::clone(&region), crate::backend::pool_config()).expect("pool");
    let _ckpt = pool.start_checkpointer(cfg.ckpt_period);
    let per = cfg.npoints.div_ceil(cfg.threads);
    let t0 = Instant::now();
    let parts: Vec<Sums> = std::thread::scope(|s| {
        let mut joins = Vec::new();
        for t in 0..cfg.threads {
            let pool = Arc::clone(&pool);
            joins.push(s.spawn(move || {
                let h = pool.register();
                let lo = t * per;
                let hi = ((t + 1) * per).min(cfg.npoints);
                // Persistent per-thread state: five sums + progress (WAR →
                // InCLL, per §3.3.2).
                let c_sx = h.alloc_cell(0.0f64);
                let c_sy = h.alloc_cell(0.0f64);
                let c_sxx = h.alloc_cell(0.0f64);
                let c_sxy = h.alloc_cell(0.0f64);
                let c_n = h.alloc_cell(0.0f64);
                let progress = h.alloc_cell(lo as u64);
                let mut i = h.get(progress) as usize;
                while i < hi {
                    let end = (i + cfg.batch).min(hi);
                    // Accumulate the batch locally…
                    let mut local = Sums::default();
                    for p in i..end {
                        let (x, y) = point(p);
                        local.add(x, y);
                    }
                    // …then publish to the persistent sums (one
                    // update_InCLL per variable per batch) and declare an RP.
                    h.update(c_sx, h.get(c_sx) + local.sx);
                    h.update(c_sy, h.get(c_sy) + local.sy);
                    h.update(c_sxx, h.get(c_sxx) + local.sxx);
                    h.update(c_sxy, h.get(c_sxy) + local.sxy);
                    h.update(c_n, h.get(c_n) + local.n);
                    h.update(progress, end as u64);
                    h.rp(RP_CHUNK_DONE.offset(t as u64));
                    i = end;
                }
                Sums {
                    sx: h.get(c_sx),
                    sy: h.get(c_sy),
                    sxx: h.get(c_sxx),
                    sxy: h.get(c_sxy),
                    n: h.get(c_n),
                }
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().expect("linreg worker"))
            .collect()
    });
    let mut total = Sums::default();
    for p in parts {
        total.merge(p);
    }
    let (slope, intercept) = total.solve();
    LinregOutput {
        duration: t0.elapsed(),
        slope,
        intercept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_known_line() {
        let out = run(LinregConfig {
            npoints: 50_000,
            ..Default::default()
        });
        assert!((out.slope - 3.0).abs() < 0.05, "slope {}", out.slope);
        assert!(
            (out.intercept - 7.0).abs() < 0.2,
            "intercept {}",
            out.intercept
        );
    }

    #[test]
    fn all_modes_agree() {
        let base = LinregConfig {
            npoints: 20_000,
            threads: 2,
            ..Default::default()
        };
        let reference = run(LinregConfig {
            mode: Mode::TransientDram,
            ..base
        });
        for mode in [Mode::TransientNvmm, Mode::Respct] {
            let out = run(LinregConfig { mode, ..base });
            assert!((out.slope - reference.slope).abs() < 1e-9, "{mode:?}");
            assert!(
                (out.intercept - reference.intercept).abs() < 1e-9,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn per_point_rps_still_correct() {
        let out = run(LinregConfig {
            npoints: 2_000,
            batch: 1,
            mode: Mode::Respct,
            ckpt_period: Duration::from_millis(2),
            ..Default::default()
        });
        assert!((out.slope - 3.0).abs() < 0.1);
    }
}
