//! The transport-agnostic KV service: engines, batch policy, metrics.
//!
//! [`KvService`] owns the store and the persistence policy; transports
//! (the in-process harness in [`crate::kvstore`], the TCP front end in
//! [`super::server`]) own threads and sockets. A transport worker calls
//! [`KvService::worker_ctx`] once, then loops: [`KvService::blocked`]
//! around its queue receive (the paper's §3.3.3 blocking-call protocol),
//! [`KvService::apply`] per request, [`KvService::end_batch`] after each
//! batch. **Restart points live only in `end_batch`** — never inside
//! `apply` — so a checkpoint stall can only park a worker between
//! batches, and the per-request persistence cost stays a handful of
//! InCLL stores.
//!
//! Engines mirror the paper's Fig. 14 comparison: transient DRAM,
//! transient emulated-NVMM, and ResPCT. The ResPCT engine stores values
//! as copy-on-write blobs (`[u64 len][bytes]`, 64-byte aligned): a PUT
//! writes a fresh blob while unreachable (no logging), atomically swings
//! the map's value cell with [`PHashMap::replace`], and defer-frees the
//! displaced blob. Replace/remove are single-bucket-lock atomic, so two
//! workers racing on one key cannot both free the same old blob.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use respct::{CheckpointerGuard, Pool, RecoveryReport, ThreadHandle};
use respct_ds::{hash_u64, PHashMap};
use respct_obs::{Counter, Histogram, MetricsRegistry, Unit};
use respct_pmem::{align_up, PAddr, Region};

use super::{Durability, KvError, KvRequest, KvResponse, KvServerConfig, RP_BATCH};
use crate::backend::{parse_backend, BACKEND_ENV};
use crate::Mode;

/// Per-worker state: the registered [`ThreadHandle`] in ResPCT mode.
/// Create one per worker thread with [`KvService::worker_ctx`]; handles
/// must not be shared across threads.
pub struct WorkerCtx {
    handle: Option<ThreadHandle>,
}

impl WorkerCtx {
    /// The worker's thread handle (ResPCT engine only).
    pub fn handle(&self) -> Option<&ThreadHandle> {
        self.handle.as_ref()
    }
}

/// `respct_kv_*` counters shared with transports. Service-side ops are
/// counted by [`KvService::apply`]; the queue/connection counters are
/// public because only the transport sees those events.
pub struct KvMetrics {
    /// Requests executed (all opcodes, both transports).
    pub requests: Arc<Counter>,
    /// GETs executed.
    pub gets: Arc<Counter>,
    /// PUTs executed.
    pub puts: Arc<Counter>,
    /// DELETEs executed.
    pub deletes: Arc<Counter>,
    /// Requests rejected with BUSY (bounded-queue backpressure).
    pub busy: Arc<Counter>,
    /// Malformed frames rejected by the codec.
    pub wire_errors: Arc<Counter>,
    /// Connections accepted since start.
    pub connections: Arc<Counter>,
    /// Responses dropped because a connection's writer queue was full
    /// when the worker finished (connection torn down mid-batch).
    pub dropped_responses: Arc<Counter>,
    /// Synchronous-durability checkpoints forced by write batches.
    pub sync_checkpoints: Arc<Counter>,
    /// Per-op service time.
    pub op_ns: Arc<Histogram>,
    /// Requests per batch (between two restart points).
    pub batch_size: Arc<Histogram>,
    /// Live connection count (backs the `respct_kv_active_connections`
    /// gauge).
    pub active_connections: Arc<AtomicU64>,
    /// Per-worker queue depth (backs `respct_kv_queue_depth{worker=...}`).
    pub queue_depth: Arc<Vec<AtomicU64>>,
}

impl KvMetrics {
    fn register(registry: &MetricsRegistry, workers: usize) -> KvMetrics {
        let active_connections = Arc::new(AtomicU64::new(0));
        let ac = Arc::clone(&active_connections);
        registry.gauge_fn(
            "respct_kv_active_connections",
            "KV connections currently open",
            Unit::None,
            move || ac.load(Ordering::Relaxed) as f64,
        );
        let queue_depth: Arc<Vec<AtomicU64>> =
            Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect());
        let qd = Arc::clone(&queue_depth);
        registry.gauge_vec_fn(
            "respct_kv_queue_depth",
            "requests waiting in each worker's bounded queue",
            Unit::None,
            "worker",
            move || {
                qd.iter()
                    .enumerate()
                    .map(|(i, d)| (i.to_string(), d.load(Ordering::Relaxed) as f64))
                    .collect()
            },
        );
        KvMetrics {
            requests: registry.counter(
                "respct_kv_requests_total",
                "KV requests executed",
                Unit::None,
            ),
            gets: registry.counter("respct_kv_gets_total", "KV GETs executed", Unit::None),
            puts: registry.counter("respct_kv_puts_total", "KV PUTs executed", Unit::None),
            deletes: registry.counter("respct_kv_deletes_total", "KV DELETEs executed", Unit::None),
            busy: registry.counter(
                "respct_kv_busy_total",
                "KV requests rejected with BUSY backpressure",
                Unit::None,
            ),
            wire_errors: registry.counter(
                "respct_kv_wire_errors_total",
                "malformed KV frames rejected",
                Unit::None,
            ),
            connections: registry.counter(
                "respct_kv_connections_total",
                "KV connections accepted",
                Unit::None,
            ),
            dropped_responses: registry.counter(
                "respct_kv_dropped_responses_total",
                "KV responses dropped on torn-down connections",
                Unit::None,
            ),
            sync_checkpoints: registry.counter(
                "respct_kv_sync_checkpoints_total",
                "checkpoints forced by sync-durability write batches",
                Unit::None,
            ),
            op_ns: registry.histogram("respct_kv_op_ns", "per-request service time", Unit::Nanos),
            batch_size: registry.histogram(
                "respct_kv_batch_size",
                "requests executed between two restart points",
                Unit::None,
            ),
            active_connections,
            queue_depth,
        }
    }
}

// ---- Store engines ------------------------------------------------------------

type DramShard = Mutex<std::collections::HashMap<u64, Vec<u8>>>;

/// Transient-NVMM blob header: `[u32 cap][u32 len]`, data at +8. Blobs are
/// rewritten in place when the new value fits `cap`, else re-bumped.
const NVMM_HDR: u64 = 8;

enum Engine {
    Dram {
        shards: Box<[DramShard]>,
    },
    Nvmm {
        region: Arc<Region>,
        shards: Box<[Mutex<std::collections::HashMap<u64, u64>>]>,
        bump: AtomicU64,
    },
    Respct {
        pool: Arc<Pool>,
        map: PHashMap,
    },
}

/// The KV store behind both transports. Construct with
/// [`KvService::open`]; share via `Arc`.
pub struct KvService {
    cfg: KvServerConfig,
    // Declared before `engine` so the periodic checkpointer stops before
    // the pool it drives goes away.
    ckpt: Option<CheckpointerGuard>,
    engine: Engine,
    registry: Arc<MetricsRegistry>,
    metrics: KvMetrics,
}

impl KvService {
    /// Opens (or recovers) the store described by `cfg`.
    ///
    /// In [`Mode::Respct`] the persistence substrate comes from
    /// `RESPCT_BACKEND`; on `mmap:<path>` this is create-or-recover via
    /// [`Pool::open`] and the returned [`RecoveryReport`] is `Some` when
    /// an existing pool was recovered. Other modes (and other backends)
    /// always start empty.
    ///
    /// # Errors
    ///
    /// [`KvError::Pool`] on pool create/open failure, [`KvError::Config`]
    /// on an unusable backend spec.
    pub fn open(cfg: KvServerConfig) -> Result<(Arc<KvService>, Option<RecoveryReport>), KvError> {
        KvService::open_with_sink(cfg, None)
    }

    /// [`KvService::open`] with a trace sink attached to the region before
    /// any pool traffic — the hook the trace checker and happens-before
    /// race detector use.
    pub fn open_with_sink(
        cfg: KvServerConfig,
        sink: Option<Arc<dyn respct_pmem::TraceSink>>,
    ) -> Result<(Arc<KvService>, Option<RecoveryReport>), KvError> {
        let (engine, report) = match cfg.mode() {
            Mode::TransientDram => (
                Engine::Dram {
                    shards: (0..64).map(|_| Mutex::new(Default::default())).collect(),
                },
                None,
            ),
            Mode::TransientNvmm => {
                let region = Region::new(crate::backend::nvmm_config(cfg.pool_bytes()));
                (
                    Engine::Nvmm {
                        region,
                        shards: (0..64).map(|_| Mutex::new(Default::default())).collect(),
                        bump: AtomicU64::new(64),
                    },
                    None,
                )
            }
            Mode::Respct => {
                let pool_cfg = cfg
                    .pool_config()
                    .cloned()
                    .unwrap_or_else(|| crate::backend::pool_config_sized(cfg.pool_bytes()));
                let mmap_path = match std::env::var(BACKEND_ENV) {
                    Ok(spec) => match parse_backend(&spec) {
                        Some(respct::RegionMode::Mmap(p)) => Some(p),
                        Some(_) => None,
                        None => {
                            return Err(KvError::Config(format!(
                                "unrecognized {BACKEND_ENV} value: {spec:?}"
                            )));
                        }
                    },
                    Err(_) => None,
                };
                let (pool, report) = match mmap_path {
                    // Create-or-recover: a pool file left by a previous
                    // (possibly SIGKILLed) server resumes from its last
                    // checkpoint.
                    Some(path) => Pool::open(path, pool_cfg)?,
                    None => {
                        let region = Region::new(crate::backend::nvmm_config(cfg.pool_bytes()));
                        if let Some(sink) = sink {
                            region.set_trace_sink(sink);
                        }
                        (Pool::create(region, pool_cfg)?, None)
                    }
                };
                let map = if pool.root() != PAddr(0) {
                    PHashMap::open(&pool, pool.root())
                } else {
                    let h = pool.register();
                    let map = PHashMap::create(&h, cfg.nbuckets());
                    h.set_root(map.desc());
                    if pool.region().backend_kind() == respct::BackendKind::Mmap {
                        // Durable backend: checkpoint the empty skeleton so
                        // a crash before the first periodic checkpoint
                        // recovers to a valid (empty) map, not a zero root.
                        h.checkpoint_here();
                    }
                    drop(h);
                    map
                };
                (Engine::Respct { pool, map }, report)
            }
        };
        let registry = match &engine {
            Engine::Respct { pool, .. } => Arc::clone(pool.metrics()),
            _ => Arc::new(MetricsRegistry::new()),
        };
        let metrics = KvMetrics::register(&registry, cfg.workers());
        let ckpt = match (&engine, cfg.ckpt_period()) {
            (Engine::Respct { pool, .. }, Some(period)) => Some(pool.start_checkpointer(period)),
            _ => None,
        };
        Ok((
            Arc::new(KvService {
                cfg,
                ckpt,
                engine,
                registry,
                metrics,
            }),
            report,
        ))
    }

    /// The service's configuration.
    pub fn config(&self) -> &KvServerConfig {
        &self.cfg
    }

    /// The metrics registry (the pool's own in ResPCT mode, so one
    /// endpoint serves `respct_*` and `respct_kv_*` together).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The `respct_kv_*` counters (transports bump the queue/connection
    /// ones).
    pub fn kv_metrics(&self) -> &KvMetrics {
        &self.metrics
    }

    /// The underlying pool (ResPCT engine only).
    pub fn pool(&self) -> Option<&Arc<Pool>> {
        match &self.engine {
            Engine::Respct { pool, .. } => Some(pool),
            _ => None,
        }
    }

    /// Registers a worker thread with the store. Call once per worker, on
    /// the worker's own thread.
    pub fn worker_ctx(&self) -> WorkerCtx {
        WorkerCtx {
            handle: match &self.engine {
                Engine::Respct { pool, .. } => Some(pool.register()),
                _ => None,
            },
        }
    }

    /// Runs `block` — a wait on something outside the store, like a queue
    /// receive — under the blocking-call protocol (§3.3.3): in ResPCT mode
    /// the worker's checkpoint-prevention flag is dropped for the wait so
    /// a checkpoint can complete while the worker is idle.
    pub fn blocked<R>(&self, ctx: &mut WorkerCtx, block: impl FnOnce() -> R) -> R {
        match ctx.handle.as_ref() {
            Some(h) => {
                let _allow = h.allow_checkpoints();
                block()
            }
            None => block(),
        }
    }

    /// Executes one request. Never places a restart point — that happens
    /// in [`KvService::end_batch`].
    pub fn apply(&self, ctx: &mut WorkerCtx, req: &KvRequest) -> KvResponse {
        let t0 = Instant::now();
        let resp = self.apply_inner(ctx, req);
        self.metrics.requests.inc();
        if self.cfg.metrics() {
            self.metrics.op_ns.record(t0.elapsed().as_nanos() as u64);
        }
        resp
    }

    fn apply_inner(&self, ctx: &mut WorkerCtx, req: &KvRequest) -> KvResponse {
        match req {
            KvRequest::Ping => KvResponse::Pong,
            KvRequest::Get { key } => {
                self.metrics.gets.inc();
                match self.get(ctx, *key) {
                    Some(v) => KvResponse::Value(v),
                    None => KvResponse::NotFound,
                }
            }
            KvRequest::Put { key, value } => {
                self.metrics.puts.inc();
                if value.len() > self.cfg.max_value_len() {
                    return KvResponse::Error(KvError::ValueTooLarge {
                        len: value.len(),
                        max: self.cfg.max_value_len(),
                    });
                }
                match self.put(ctx, *key, value) {
                    Ok(()) => KvResponse::Ok,
                    Err(e) => KvResponse::Error(e),
                }
            }
            KvRequest::Delete { key } => {
                self.metrics.deletes.inc();
                if self.delete(ctx, *key) {
                    KvResponse::Ok
                } else {
                    KvResponse::NotFound
                }
            }
        }
    }

    /// Marks the end of a request batch: records the batch size and places
    /// the batch-boundary restart point. Under [`Durability::Sync`], a
    /// batch containing writes checkpoints before returning — callers must
    /// only then release the batch's responses, so an acknowledged sync
    /// write is durable.
    pub fn end_batch(&self, ctx: &mut WorkerCtx, wrote: bool, batch_len: usize) {
        if self.cfg.metrics() && batch_len > 0 {
            self.metrics.batch_size.record(batch_len as u64);
        }
        if let Some(h) = ctx.handle.as_ref() {
            if wrote && self.cfg.durability() == Durability::Sync {
                h.checkpoint_here();
                self.metrics.sync_checkpoints.inc();
            } else {
                h.rp(RP_BATCH);
            }
        }
    }

    fn get(&self, ctx: &mut WorkerCtx, key: u64) -> Option<Vec<u8>> {
        match &self.engine {
            Engine::Dram { shards } => shards[(hash_u64(key) % 64) as usize]
                .lock()
                .get(&key)
                .cloned(),
            Engine::Nvmm { region, shards, .. } => {
                let addr = *shards[(hash_u64(key) % 64) as usize].lock().get(&key)?;
                let len: u32 = region.load(PAddr(addr + 4));
                let mut v = vec![0u8; len as usize];
                region.load_bytes(PAddr(addr + NVMM_HDR), &mut v);
                Some(v)
            }
            Engine::Respct { pool, map } => {
                let h = ctx.handle.as_ref().expect("respct worker has a handle");
                let blob = map.get(h, key)?;
                let region = pool.region();
                let len: u64 = region.load(PAddr(blob));
                let mut v = vec![0u8; len as usize];
                region.load_bytes(PAddr(blob + 8), &mut v);
                Some(v)
            }
        }
    }

    fn put(&self, ctx: &mut WorkerCtx, key: u64, value: &[u8]) -> Result<(), KvError> {
        match &self.engine {
            Engine::Dram { shards } => {
                shards[(hash_u64(key) % 64) as usize]
                    .lock()
                    .insert(key, value.to_vec());
                Ok(())
            }
            Engine::Nvmm {
                region,
                shards,
                bump,
            } => {
                let mut shard = shards[(hash_u64(key) % 64) as usize].lock();
                let addr = match shard.get(&key) {
                    Some(&a) if region.load::<u32>(PAddr(a)) as usize >= value.len() => a,
                    _ => {
                        let size = align_up(NVMM_HDR + value.len() as u64, 64);
                        let a = bump.fetch_add(size, Ordering::Relaxed);
                        if a + size > region.size() as u64 {
                            return Err(KvError::StoreFull);
                        }
                        region.store(PAddr(a), value.len() as u32);
                        shard.insert(key, a);
                        a
                    }
                };
                region.store(PAddr(addr + 4), value.len() as u32);
                region.store_bytes(PAddr(addr + NVMM_HDR), value);
                Ok(())
            }
            Engine::Respct { pool, map } => {
                let h = ctx.handle.as_ref().expect("respct worker has a handle");
                let region = pool.region();
                // Copy-on-write: the fresh blob is written + tracked while
                // unreachable (idempotent, no logging), then the map's
                // value cell swings to it in one InCLL store. `replace` is
                // atomic under the bucket lock, so the displaced blob comes
                // back to exactly one worker for the deferred free.
                let blob = h.alloc(Self::blob_size(value.len()), 64);
                region.store(blob, value.len() as u64);
                region.store_bytes(PAddr(blob.0 + 8), value);
                h.add_modified(blob, 8 + value.len());
                if let Some(old) = map.replace(h, key, blob.0) {
                    let old_len: u64 = region.load(PAddr(old));
                    h.free(PAddr(old), Self::blob_size(old_len as usize));
                }
                Ok(())
            }
        }
    }

    fn delete(&self, ctx: &mut WorkerCtx, key: u64) -> bool {
        match &self.engine {
            Engine::Dram { shards } => shards[(hash_u64(key) % 64) as usize]
                .lock()
                .remove(&key)
                .is_some(),
            // Transient store: the blob leaks (arena is bump-only), the
            // mapping goes away.
            Engine::Nvmm { shards, .. } => shards[(hash_u64(key) % 64) as usize]
                .lock()
                .remove(&key)
                .is_some(),
            Engine::Respct { pool, map } => {
                let h = ctx.handle.as_ref().expect("respct worker has a handle");
                match map.remove_entry(h, key) {
                    Some(old) => {
                        let old_len: u64 = pool.region().load(PAddr(old));
                        h.free(PAddr(old), Self::blob_size(old_len as usize));
                        true
                    }
                    None => false,
                }
            }
        }
    }

    /// 64-byte-aligned size of a `[u64 len][bytes]` value blob.
    fn blob_size(len: usize) -> u64 {
        align_up(8 + len as u64, 64)
    }

    /// Whether the periodic checkpointer is running (test hook).
    pub fn has_checkpointer(&self) -> bool {
        self.ckpt.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::fill_value;

    fn service(mode: Mode) -> Arc<KvService> {
        let cfg = KvServerConfig::builder()
            .mode(mode)
            .pool_bytes(64 << 20)
            .ckpt_period(None)
            .build()
            .expect("config");
        KvService::open(cfg).expect("open").0
    }

    #[test]
    fn all_engines_roundtrip_and_delete() {
        for mode in Mode::ALL {
            let svc = service(mode);
            let mut ctx = svc.worker_ctx();
            let mut v = vec![0u8; 100];
            fill_value(&mut v, 7, 1);
            assert_eq!(
                svc.apply(
                    &mut ctx,
                    &KvRequest::Put {
                        key: 7,
                        value: v.clone()
                    }
                ),
                KvResponse::Ok,
                "{mode:?}"
            );
            assert_eq!(
                svc.apply(&mut ctx, &KvRequest::Get { key: 7 }),
                KvResponse::Value(v.clone()),
                "{mode:?}"
            );
            // Overwrite with a different length exercises blob reuse/CoW.
            let mut w = vec![0u8; 40];
            fill_value(&mut w, 7, 2);
            svc.apply(
                &mut ctx,
                &KvRequest::Put {
                    key: 7,
                    value: w.clone(),
                },
            );
            assert_eq!(
                svc.apply(&mut ctx, &KvRequest::Get { key: 7 }),
                KvResponse::Value(w),
                "{mode:?}"
            );
            assert_eq!(
                svc.apply(&mut ctx, &KvRequest::Get { key: 99 }),
                KvResponse::NotFound,
                "{mode:?}"
            );
            assert_eq!(
                svc.apply(&mut ctx, &KvRequest::Delete { key: 7 }),
                KvResponse::Ok,
                "{mode:?}"
            );
            assert_eq!(
                svc.apply(&mut ctx, &KvRequest::Delete { key: 7 }),
                KvResponse::NotFound,
                "{mode:?}"
            );
            assert_eq!(svc.apply(&mut ctx, &KvRequest::Ping), KvResponse::Pong);
            svc.end_batch(&mut ctx, true, 7);
        }
    }

    #[test]
    fn oversize_put_rejected_with_typed_error() {
        let svc = service(Mode::TransientDram);
        let mut ctx = svc.worker_ctx();
        let max = svc.config().max_value_len();
        let resp = svc.apply(
            &mut ctx,
            &KvRequest::Put {
                key: 1,
                value: vec![0; max + 1],
            },
        );
        assert_eq!(
            resp,
            KvResponse::Error(KvError::ValueTooLarge { len: max + 1, max })
        );
    }

    #[test]
    fn respct_engine_counts_ops() {
        let svc = service(Mode::Respct);
        let mut ctx = svc.worker_ctx();
        for k in 0..10 {
            svc.apply(
                &mut ctx,
                &KvRequest::Put {
                    key: k,
                    value: vec![1; 16],
                },
            );
        }
        for k in 0..10 {
            svc.apply(&mut ctx, &KvRequest::Get { key: k });
        }
        svc.end_batch(&mut ctx, true, 20);
        let m = svc.kv_metrics();
        assert_eq!(m.requests.get(), 20);
        assert_eq!(m.gets.get(), 10);
        assert_eq!(m.puts.get(), 10);
        // The kv metrics live on the pool's registry: the Prometheus text
        // carries both respct_* and respct_kv_* families.
        let text = svc.registry().to_prometheus();
        assert!(text.contains("respct_kv_requests_total"));
        assert!(text.contains("respct_kv_queue_depth"));
    }
}
