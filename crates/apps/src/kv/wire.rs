//! The `respct-kvd` wire protocol: length-prefixed, versioned, pipelined.
//!
//! Every frame is `[u32 LE payload_len][payload]`. A request payload is
//!
//! ```text
//! [u8 version = 1][u8 opcode][u32 LE request id][body...]
//! ```
//!
//! with opcodes GET=1 (`u64 key`), PUT=2 (`u64 key, u32 len, len bytes`),
//! DELETE=3 (`u64 key`), PING=4 (empty). A response payload mirrors it:
//!
//! ```text
//! [u8 version = 1][u8 status][u32 LE request id][body...]
//! ```
//!
//! with statuses OK=0, VALUE=1 (`u32 len, len bytes`), NOT_FOUND=2,
//! PONG=3, BUSY=4, ERR=5 (`u8 code` plus code-specific detail). The
//! request id is assigned by the client and echoed verbatim, so clients
//! may pipeline arbitrarily many frames and match answers even when the
//! server interleaves BUSY rejections with executed responses.
//!
//! All integers are little-endian. Decoding never panics: malformed input
//! yields a typed [`WireError`]. The version byte is checked on every
//! frame, so a mismatched peer fails on its first message.

use std::io::{self, Read};

use super::{KvError, KvRequest, KvResponse};

/// Protocol version carried in byte 0 of every payload.
pub const VERSION: u8 = 1;

/// Frame-length prefix size.
pub const LEN_PREFIX: usize = 4;

/// Hard ceiling on a single payload, independent of the configured value
/// cap; protects the length-prefix read from absurd allocations.
pub const MAX_FRAME: usize = 2 << 20;

const OP_GET: u8 = 1;
const OP_PUT: u8 = 2;
const OP_DELETE: u8 = 3;
const OP_PING: u8 = 4;

const ST_OK: u8 = 0;
const ST_VALUE: u8 = 1;
const ST_NOT_FOUND: u8 = 2;
const ST_PONG: u8 = 3;
const ST_BUSY: u8 = 4;
const ST_ERR: u8 = 5;

const ERR_VALUE_TOO_LARGE: u8 = 1;
const ERR_STORE_FULL: u8 = 2;
const ERR_WIRE: u8 = 3;
const ERR_INTERNAL: u8 = 4;

const WIRE_VERSION: u8 = 1;
const WIRE_UNKNOWN_OPCODE: u8 = 2;
const WIRE_UNKNOWN_STATUS: u8 = 3;
const WIRE_TRUNCATED: u8 = 4;
const WIRE_OVERSIZE: u8 = 5;
const WIRE_TRAILING: u8 = 6;

/// Typed decode failures. None of these panic; all are encodable inside an
/// ERR response so the peer learns why its frame was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload byte 0 was not [`VERSION`].
    Version { got: u8 },
    /// Request carried an opcode outside GET/PUT/DELETE/PING.
    UnknownOpcode(u8),
    /// Response carried a status outside the known set.
    UnknownStatus(u8),
    /// Payload ended before its fixed-size fields or declared body.
    Truncated { need: usize, got: usize },
    /// Declared length (frame or value) exceeds the allowed maximum.
    Oversize { len: usize, max: usize },
    /// Payload had bytes left over after a complete message.
    TrailingBytes { extra: usize },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Version { got } => {
                write!(f, "protocol version {got} (this peer speaks {VERSION})")
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op}"),
            WireError::UnknownStatus(st) => write!(f, "unknown status {st}"),
            WireError::Truncated { need, got } => {
                write!(f, "truncated payload: need {need} bytes, got {got}")
            }
            WireError::Oversize { len, max } => {
                write!(f, "declared length {len} exceeds maximum {max}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian cursor over a payload; every read is bounds-checked.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Oversize {
            len: n,
            max: MAX_FRAME,
        })?;
        if end > self.buf.len() {
            return Err(WireError::Truncated {
                need: end,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::TrailingBytes {
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

fn header(out: &mut Vec<u8>, tag: u8, id: u32) {
    out.push(VERSION);
    out.push(tag);
    out.extend_from_slice(&id.to_le_bytes());
}

/// Seals the frame started at `start`: patches the length prefix that
/// `begin_frame` reserved.
fn end_frame(out: &mut [u8], start: usize) {
    let len = (out.len() - start - LEN_PREFIX) as u32;
    out[start..start + LEN_PREFIX].copy_from_slice(&len.to_le_bytes());
}

fn begin_frame(out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; LEN_PREFIX]);
    start
}

/// Appends one complete request frame (length prefix included) to `out`.
pub fn encode_request(out: &mut Vec<u8>, id: u32, req: &KvRequest) {
    let start = begin_frame(out);
    match req {
        KvRequest::Get { key } => {
            header(out, OP_GET, id);
            out.extend_from_slice(&key.to_le_bytes());
        }
        KvRequest::Put { key, value } => {
            header(out, OP_PUT, id);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&(value.len() as u32).to_le_bytes());
            out.extend_from_slice(value);
        }
        KvRequest::Delete { key } => {
            header(out, OP_DELETE, id);
            out.extend_from_slice(&key.to_le_bytes());
        }
        KvRequest::Ping => header(out, OP_PING, id),
    }
    end_frame(out, start);
}

/// Appends one complete response frame (length prefix included) to `out`.
pub fn encode_response(out: &mut Vec<u8>, id: u32, resp: &KvResponse) {
    let start = begin_frame(out);
    match resp {
        KvResponse::Ok => header(out, ST_OK, id),
        KvResponse::Value(v) => {
            header(out, ST_VALUE, id);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        KvResponse::NotFound => header(out, ST_NOT_FOUND, id),
        KvResponse::Pong => header(out, ST_PONG, id),
        KvResponse::Busy => header(out, ST_BUSY, id),
        KvResponse::Error(e) => {
            header(out, ST_ERR, id);
            encode_error(out, e);
        }
    }
    end_frame(out, start);
}

fn encode_error(out: &mut Vec<u8>, e: &KvError) {
    match e {
        KvError::ValueTooLarge { len, max } => {
            out.push(ERR_VALUE_TOO_LARGE);
            out.extend_from_slice(&(*len as u32).to_le_bytes());
            out.extend_from_slice(&(*max as u32).to_le_bytes());
        }
        KvError::StoreFull => out.push(ERR_STORE_FULL),
        KvError::Wire(w) => {
            out.push(ERR_WIRE);
            match w {
                WireError::Version { got } => out.extend_from_slice(&[WIRE_VERSION, *got]),
                WireError::UnknownOpcode(op) => {
                    out.extend_from_slice(&[WIRE_UNKNOWN_OPCODE, *op]);
                }
                WireError::UnknownStatus(st) => {
                    out.extend_from_slice(&[WIRE_UNKNOWN_STATUS, *st]);
                }
                WireError::Truncated { need, got } => {
                    out.push(WIRE_TRUNCATED);
                    out.extend_from_slice(&(*need as u32).to_le_bytes());
                    out.extend_from_slice(&(*got as u32).to_le_bytes());
                }
                WireError::Oversize { len, max } => {
                    out.push(WIRE_OVERSIZE);
                    out.extend_from_slice(&(*len as u32).to_le_bytes());
                    out.extend_from_slice(&(*max as u32).to_le_bytes());
                }
                WireError::TrailingBytes { extra } => {
                    out.push(WIRE_TRAILING);
                    out.extend_from_slice(&(*extra as u32).to_le_bytes());
                }
            }
        }
        // Setup/transport errors never travel; collapse to INTERNAL.
        KvError::Internal | KvError::Config(_) | KvError::Pool(_) | KvError::Io(_) => {
            out.push(ERR_INTERNAL);
        }
    }
}

/// Decodes one request payload (frame body, length prefix already
/// stripped). `max_value` is the configured PUT-value cap.
pub fn decode_request(payload: &[u8], max_value: usize) -> Result<(u32, KvRequest), WireError> {
    let mut c = Cursor::new(payload);
    let ver = c.u8()?;
    if ver != VERSION {
        return Err(WireError::Version { got: ver });
    }
    let op = c.u8()?;
    let id = c.u32()?;
    let req = match op {
        OP_GET => KvRequest::Get { key: c.u64()? },
        OP_PUT => {
            let key = c.u64()?;
            let len = c.u32()? as usize;
            if len > max_value {
                return Err(WireError::Oversize {
                    len,
                    max: max_value,
                });
            }
            let value = c.take(len)?.to_vec();
            KvRequest::Put { key, value }
        }
        OP_DELETE => KvRequest::Delete { key: c.u64()? },
        OP_PING => KvRequest::Ping,
        other => return Err(WireError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok((id, req))
}

/// Decodes one response payload (frame body, length prefix stripped).
pub fn decode_response(payload: &[u8]) -> Result<(u32, KvResponse), WireError> {
    let mut c = Cursor::new(payload);
    let ver = c.u8()?;
    if ver != VERSION {
        return Err(WireError::Version { got: ver });
    }
    let st = c.u8()?;
    let id = c.u32()?;
    let resp = match st {
        ST_OK => KvResponse::Ok,
        ST_VALUE => {
            let len = c.u32()? as usize;
            if len > MAX_FRAME {
                return Err(WireError::Oversize {
                    len,
                    max: MAX_FRAME,
                });
            }
            KvResponse::Value(c.take(len)?.to_vec())
        }
        ST_NOT_FOUND => KvResponse::NotFound,
        ST_PONG => KvResponse::Pong,
        ST_BUSY => KvResponse::Busy,
        ST_ERR => KvResponse::Error(decode_error(&mut c)?),
        other => return Err(WireError::UnknownStatus(other)),
    };
    c.finish()?;
    Ok((id, resp))
}

fn decode_error(c: &mut Cursor<'_>) -> Result<KvError, WireError> {
    Ok(match c.u8()? {
        ERR_VALUE_TOO_LARGE => KvError::ValueTooLarge {
            len: c.u32()? as usize,
            max: c.u32()? as usize,
        },
        ERR_STORE_FULL => KvError::StoreFull,
        ERR_WIRE => KvError::Wire(match c.u8()? {
            WIRE_VERSION => WireError::Version { got: c.u8()? },
            WIRE_UNKNOWN_OPCODE => WireError::UnknownOpcode(c.u8()?),
            WIRE_UNKNOWN_STATUS => WireError::UnknownStatus(c.u8()?),
            WIRE_TRUNCATED => WireError::Truncated {
                need: c.u32()? as usize,
                got: c.u32()? as usize,
            },
            WIRE_OVERSIZE => WireError::Oversize {
                len: c.u32()? as usize,
                max: c.u32()? as usize,
            },
            WIRE_TRAILING => WireError::TrailingBytes {
                extra: c.u32()? as usize,
            },
            other => return Err(WireError::UnknownStatus(other)),
        }),
        _ => KvError::Internal,
    })
}

/// Outcome of [`read_frame`].
#[derive(Debug)]
pub enum FrameError {
    /// Socket-level failure.
    Io(io::Error),
    /// Peer declared a payload larger than `max`; the connection must be
    /// dropped (the stream can no longer be resynchronised).
    Oversize { len: usize, max: usize },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io error reading frame: {e}"),
            FrameError::Oversize { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

/// Reads one frame into `buf`, returning its payload. `Ok(None)` means the
/// peer closed cleanly at a frame boundary; mid-frame EOF is an error.
pub fn read_frame<'a>(
    r: &mut impl Read,
    max: usize,
    buf: &'a mut Vec<u8>,
) -> Result<Option<&'a [u8]>, FrameError> {
    let mut prefix = [0u8; LEN_PREFIX];
    let mut got = 0;
    while got < LEN_PREFIX {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max {
        return Err(FrameError::Oversize { len, max });
    }
    buf.resize(len, 0);
    let mut filled = 0;
    while filled < len {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame payload",
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(&buf[..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip_req(id: u32, req: &KvRequest) {
        let mut frame = Vec::new();
        encode_request(&mut frame, id, req);
        let declared = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        assert_eq!(declared, frame.len() - LEN_PREFIX);
        let (got_id, got) = decode_request(&frame[LEN_PREFIX..], MAX_FRAME).expect("decode");
        assert_eq!(got_id, id);
        assert_eq!(&got, req);
    }

    fn roundtrip_resp(id: u32, resp: &KvResponse) {
        let mut frame = Vec::new();
        encode_response(&mut frame, id, resp);
        let (got_id, got) = decode_response(&frame[LEN_PREFIX..]).expect("decode");
        assert_eq!(got_id, id);
        assert_eq!(&got, resp);
    }

    fn arb_request() -> impl Strategy<Value = KvRequest> {
        prop_oneof![
            any::<u64>().prop_map(|key| KvRequest::Get { key }),
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..300))
                .prop_map(|(key, value)| KvRequest::Put { key, value }),
            any::<u64>().prop_map(|key| KvRequest::Delete { key }),
            Just(KvRequest::Ping),
        ]
    }

    fn arb_response() -> impl Strategy<Value = KvResponse> {
        prop_oneof![
            Just(KvResponse::Ok),
            proptest::collection::vec(any::<u8>(), 0..300).prop_map(KvResponse::Value),
            Just(KvResponse::NotFound),
            Just(KvResponse::Pong),
            Just(KvResponse::Busy),
            arb_error().prop_map(KvResponse::Error),
        ]
    }

    fn arb_error() -> impl Strategy<Value = KvError> {
        prop_oneof![
            (any::<u32>(), any::<u32>()).prop_map(|(len, max)| KvError::ValueTooLarge {
                len: len as usize,
                max: max as usize,
            }),
            Just(KvError::StoreFull),
            Just(KvError::Internal),
            arb_wire_error().prop_map(KvError::Wire),
        ]
    }

    fn arb_wire_error() -> impl Strategy<Value = WireError> {
        prop_oneof![
            any::<u8>().prop_map(|got| WireError::Version { got }),
            any::<u8>().prop_map(WireError::UnknownOpcode),
            any::<u8>().prop_map(WireError::UnknownStatus),
            (any::<u32>(), any::<u32>()).prop_map(|(need, got)| WireError::Truncated {
                need: need as usize,
                got: got as usize,
            }),
            (any::<u32>(), any::<u32>()).prop_map(|(len, max)| WireError::Oversize {
                len: len as usize,
                max: max as usize,
            }),
            any::<u32>().prop_map(|extra| WireError::TrailingBytes {
                extra: extra as usize
            }),
        ]
    }

    proptest! {
        #[test]
        fn request_roundtrip(id in any::<u32>(), req in arb_request()) {
            roundtrip_req(id, &req);
        }

        #[test]
        fn response_roundtrip(id in any::<u32>(), resp in arb_response()) {
            roundtrip_resp(id, &resp);
        }

        /// Arbitrary bytes never panic the decoders — they either decode
        /// or produce a typed error.
        #[test]
        fn garbage_never_panics(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = decode_request(&payload, 4096);
            let _ = decode_response(&payload);
        }

        /// Truncating a valid frame anywhere yields a typed error, never
        /// a bogus decode of a PUT (shorter reads can alias shorter valid
        /// messages of other opcodes only if the opcode byte survives —
        /// with a fixed PUT opcode they cannot).
        #[test]
        fn truncated_put_rejected(cut in 0usize..1000) {
            let mut frame = Vec::new();
            encode_request(&mut frame, 9, &KvRequest::Put { key: 5, value: vec![1, 2, 3, 4, 5, 6, 7] });
            let payload = &frame[LEN_PREFIX..];
            let cut = cut % payload.len();
            let err = decode_request(&payload[..cut], 4096).unwrap_err();
            let truncated = matches!(err, WireError::Truncated { need: _, got: _ });
            assert!(truncated, "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn bad_version_rejected_first() {
        let mut frame = Vec::new();
        encode_request(&mut frame, 1, &KvRequest::Ping);
        let mut payload = frame[LEN_PREFIX..].to_vec();
        payload[0] = 9;
        assert_eq!(
            decode_request(&payload, 4096),
            Err(WireError::Version { got: 9 })
        );
        assert_eq!(
            decode_response(&payload),
            Err(WireError::Version { got: 9 })
        );
    }

    #[test]
    fn unknown_opcode_and_trailing_bytes_rejected() {
        let mut payload = vec![VERSION, 42];
        payload.extend_from_slice(&7u32.to_le_bytes());
        assert_eq!(
            decode_request(&payload, 4096),
            Err(WireError::UnknownOpcode(42))
        );

        let mut frame = Vec::new();
        encode_request(&mut frame, 3, &KvRequest::Get { key: 1 });
        let mut payload = frame[LEN_PREFIX..].to_vec();
        payload.push(0xaa);
        assert_eq!(
            decode_request(&payload, 4096),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn put_over_value_cap_rejected_without_reading_body() {
        let mut frame = Vec::new();
        encode_request(
            &mut frame,
            8,
            &KvRequest::Put {
                key: 2,
                value: vec![0; 128],
            },
        );
        let err = decode_request(&frame[LEN_PREFIX..], 64).unwrap_err();
        assert_eq!(err, WireError::Oversize { len: 128, max: 64 });
    }

    #[test]
    fn read_frame_handles_eof_and_oversize() {
        let mut frame = Vec::new();
        encode_request(&mut frame, 1, &KvRequest::Get { key: 3 });
        let mut buf = Vec::new();

        // Clean boundary: one frame, then EOF.
        let mut r = &frame[..];
        assert!(read_frame(&mut r, MAX_FRAME, &mut buf).unwrap().is_some());
        assert!(read_frame(&mut r, MAX_FRAME, &mut buf).unwrap().is_none());

        // Mid-frame EOF (frame truncated by 2 bytes) is an io error.
        let mut r = &frame[..frame.len() - 2];
        match read_frame(&mut r, MAX_FRAME, &mut buf) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected mid-frame eof error, got {other:?}"),
        }

        // Oversize prefix is rejected before allocating.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut r = &huge[..];
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME, &mut buf),
            Err(FrameError::Oversize { .. })
        ));
    }
}
