//! The public KV API: one service layer, two transports.
//!
//! The paper's headline application (§5.3, Fig. 14) is a memcached-style
//! store whose checkpoint stalls must never surface in request latency.
//! This module promotes the old in-process benchmark store into a real
//! subsystem with a unified public API:
//!
//! * [`KvRequest`] / [`KvResponse`] / [`KvError`] — the typed operation
//!   vocabulary shared by every front end;
//! * [`KvServerConfig`] — a validated builder (mirroring
//!   `PoolConfig::builder()`) for the service: engine mode, worker count,
//!   queue bounds, batch limits, durability;
//! * [`service::KvService`] — the transport-agnostic core: a store engine
//!   (DRAM / emulated-NVMM / ResPCT copy-on-write blobs) plus the restart
//!   point policy (**RPs only at request-batch boundaries**) and the
//!   `respct_kv_*` metrics;
//! * [`wire`] — the versioned, length-prefixed binary protocol
//!   (GET/PUT/DELETE/PING) with typed decode errors;
//! * [`server::KvServer`] — the TCP front end (`respct-kvd`): blocking
//!   sockets, accept-sharded worker pools each owning a `ThreadHandle`,
//!   bounded per-worker queues with explicit BUSY backpressure.
//!
//! The in-process fig14/YCSB harness ([`crate::kvstore`]) and the TCP
//! server consume the same [`service::KvService`]; nothing in the store is
//! transport-specific. On the mmap backend (`RESPCT_BACKEND=mmap:<path>`)
//! the service resolves to create-or-recover via `Pool::open`, so a
//! SIGKILLed server restarts from its last checkpoint.

pub mod server;
pub mod service;
pub mod wire;

use std::time::Duration;

use crate::Mode;

/// Restart-point id for the per-batch RP every worker places after a
/// request batch (the only RP on the serving path).
pub const RP_BATCH: respct::RpId = respct::RpId(610);

/// One KV operation, as carried by both transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvRequest {
    /// Read the value stored under `key`.
    Get { key: u64 },
    /// Store `value` under `key` (copy-on-write in the ResPCT engine).
    Put { key: u64, value: Vec<u8> },
    /// Remove `key`.
    Delete { key: u64 },
    /// Liveness / latency probe; answered in-order by the worker.
    Ping,
}

impl KvRequest {
    /// Whether the request mutates the store (PUT/DELETE).
    pub fn is_write(&self) -> bool {
        matches!(self, KvRequest::Put { .. } | KvRequest::Delete { .. })
    }
}

/// The answer to one [`KvRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResponse {
    /// Write acknowledged. Under [`Durability::Sync`] the write is durable
    /// (checkpointed) before this is sent; under [`Durability::Async`] it
    /// is the paper's asynchronous-writes configuration.
    Ok,
    /// GET hit.
    Value(Vec<u8>),
    /// GET/DELETE on an absent key.
    NotFound,
    /// PING answer.
    Pong,
    /// Explicit backpressure: the assigned worker's queue was full and the
    /// server rejected the request instead of buffering it unboundedly.
    /// Retry later; nothing was executed.
    Busy,
    /// Request-level failure (the connection stays usable unless the error
    /// was a framing error).
    Error(KvError),
}

/// Typed KV failures. The wire-encodable subset round-trips through
/// [`wire::encode_response`]; transport/setup variants ([`KvError::Io`],
/// [`KvError::Pool`], [`KvError::Config`]) never travel and are mapped to
/// [`KvError::Internal`] if a server ever needs to send one.
#[derive(Debug)]
pub enum KvError {
    /// PUT value exceeds [`KvServerConfig::max_value_len`].
    ValueTooLarge { len: usize, max: usize },
    /// The store's arena is exhausted (transient-NVMM engine).
    StoreFull,
    /// Malformed frame or protocol-version mismatch.
    Wire(wire::WireError),
    /// Unspecified server-side failure.
    Internal,
    /// Invalid [`KvServerConfig`] (builder validation).
    Config(String),
    /// Pool create/open/recovery failure (ResPCT engine).
    Pool(respct::PoolError),
    /// Socket-level failure (client helpers).
    Io(std::io::Error),
}

impl PartialEq for KvError {
    fn eq(&self, other: &KvError) -> bool {
        use KvError::*;
        match (self, other) {
            (ValueTooLarge { len: a, max: b }, ValueTooLarge { len: c, max: d }) => {
                a == c && b == d
            }
            (StoreFull, StoreFull) | (Internal, Internal) => true,
            (Wire(a), Wire(b)) => a == b,
            (Config(a), Config(b)) => a == b,
            // Pool and Io errors compare by display (good enough for tests;
            // they are not wire-encodable anyway).
            (Pool(a), Pool(b)) => format!("{a:?}") == format!("{b:?}"),
            (Io(a), Io(b)) => a.kind() == b.kind(),
            _ => false,
        }
    }
}

impl Eq for KvError {}

impl Clone for KvError {
    fn clone(&self) -> KvError {
        use KvError::*;
        match self {
            ValueTooLarge { len, max } => ValueTooLarge {
                len: *len,
                max: *max,
            },
            StoreFull => StoreFull,
            Wire(e) => Wire(e.clone()),
            Internal => Internal,
            Config(s) => Config(s.clone()),
            Pool(e) => Config(format!("pool error: {e:?}")),
            Io(e) => Config(format!("io error: {e}")),
        }
    }
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::ValueTooLarge { len, max } => {
                write!(f, "value of {len} bytes exceeds the {max}-byte limit")
            }
            KvError::StoreFull => write!(f, "store arena exhausted"),
            KvError::Wire(e) => write!(f, "protocol error: {e}"),
            KvError::Internal => write!(f, "internal server error"),
            KvError::Config(s) => write!(f, "invalid KV config: {s}"),
            KvError::Pool(e) => write!(f, "pool error: {e:?}"),
            KvError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<wire::WireError> for KvError {
    fn from(e: wire::WireError) -> KvError {
        KvError::Wire(e)
    }
}

impl From<respct::PoolError> for KvError {
    fn from(e: respct::PoolError) -> KvError {
        KvError::Pool(e)
    }
}

impl From<std::io::Error> for KvError {
    fn from(e: std::io::Error) -> KvError {
        KvError::Io(e)
    }
}

/// When a write is acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Acknowledge after execution; durability comes from the periodic
    /// checkpointer (the paper's asynchronous-writes Memcached setup —
    /// RocksDB's default consistency).
    Async,
    /// Acknowledge only after the batch's epoch has checkpointed: an
    /// acked write survives SIGKILL on the mmap backend.
    Sync,
}

/// Configuration for a [`service::KvService`] (and therefore for both the
/// TCP server and the in-process harness). Build via
/// [`KvServerConfig::builder`]; every knob is validated at `build()`.
#[derive(Debug, Clone)]
pub struct KvServerConfig {
    mode: Mode,
    workers: usize,
    queue_capacity: usize,
    max_batch: usize,
    max_value_len: usize,
    nbuckets: u64,
    pool_bytes: usize,
    durability: Durability,
    ckpt_period: Option<Duration>,
    metrics: bool,
    pool: Option<respct::PoolConfig>,
}

impl KvServerConfig {
    /// A builder with serving defaults: ResPCT engine, 2 workers, 1024-deep
    /// queues, 16-request batches, 4 KiB value cap, async durability,
    /// 8 ms checkpoints.
    pub fn builder() -> KvServerConfigBuilder {
        KvServerConfigBuilder::default()
    }

    /// Store engine mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Worker-pool size (each worker owns one `ThreadHandle`).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Per-worker request-queue bound; beyond it the server answers BUSY.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Most requests a worker executes between two restart points.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Largest accepted PUT value.
    pub fn max_value_len(&self) -> usize {
        self.max_value_len
    }

    /// Hash-bucket count of the store's map.
    pub fn nbuckets(&self) -> u64 {
        self.nbuckets
    }

    /// Arena/pool size in bytes.
    pub fn pool_bytes(&self) -> usize {
        self.pool_bytes
    }

    /// Write-acknowledgement policy.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Periodic checkpoint interval; `None` disables the checkpointer
    /// (the checkpoints-off benchmark arm).
    pub fn ckpt_period(&self) -> Option<Duration> {
        self.ckpt_period
    }

    /// Whether `respct_kv_*` metrics are recorded.
    pub fn metrics(&self) -> bool {
        self.metrics
    }

    /// Explicit pool configuration (drain mode, pipeline depth). `None`
    /// defers to the `RESPCT_PIPELINE` environment via
    /// [`crate::backend::pool_config`].
    pub fn pool_config(&self) -> Option<&respct::PoolConfig> {
        self.pool.as_ref()
    }
}

impl Default for KvServerConfig {
    fn default() -> KvServerConfig {
        KvServerConfig::builder().build().expect("default is valid")
    }
}

/// Builder for [`KvServerConfig`]; `build()` validates every knob.
#[derive(Debug, Clone)]
pub struct KvServerConfigBuilder {
    cfg: KvServerConfig,
}

impl Default for KvServerConfigBuilder {
    fn default() -> KvServerConfigBuilder {
        KvServerConfigBuilder {
            cfg: KvServerConfig {
                mode: Mode::Respct,
                workers: 2,
                queue_capacity: 1024,
                max_batch: 16,
                max_value_len: 4096,
                nbuckets: 16_384,
                pool_bytes: 256 << 20,
                durability: Durability::Async,
                ckpt_period: Some(Duration::from_millis(8)),
                metrics: true,
                pool: None,
            },
        }
    }
}

impl KvServerConfigBuilder {
    /// Store engine mode (default [`Mode::Respct`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Worker-pool size (default 2; must be ≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// Per-worker bounded queue depth (default 1024; must be ≥ 1).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.cfg.queue_capacity = n;
        self
    }

    /// Batch limit between restart points (default 16; `1..=queue_capacity`).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.cfg.max_batch = n;
        self
    }

    /// Largest accepted PUT value in bytes (default 4096; ≥ 1, ≤ 1 MiB).
    pub fn max_value_len(mut self, n: usize) -> Self {
        self.cfg.max_value_len = n;
        self
    }

    /// Hash-bucket count (default 16384; must be ≥ 1).
    pub fn nbuckets(mut self, n: u64) -> Self {
        self.cfg.nbuckets = n;
        self
    }

    /// Arena/pool size in bytes (default 256 MiB; must be ≥ 1 MiB).
    pub fn pool_bytes(mut self, n: usize) -> Self {
        self.cfg.pool_bytes = n;
        self
    }

    /// Write-acknowledgement policy (default [`Durability::Async`]).
    pub fn durability(mut self, d: Durability) -> Self {
        self.cfg.durability = d;
        self
    }

    /// Periodic checkpoint interval, `None` = checkpoints off (default 8 ms).
    pub fn ckpt_period(mut self, p: Option<Duration>) -> Self {
        self.cfg.ckpt_period = p;
        self
    }

    /// Record `respct_kv_*` metrics (default on).
    pub fn metrics(mut self, on: bool) -> Self {
        self.cfg.metrics = on;
        self
    }

    /// Explicit [`respct::PoolConfig`] for the ResPCT engine, overriding
    /// the `RESPCT_PIPELINE` environment (benchmark arms use this).
    pub fn pool_config(mut self, pool: respct::PoolConfig) -> Self {
        self.cfg.pool = Some(pool);
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// [`KvError::Config`] naming the offending knob.
    pub fn build(self) -> Result<KvServerConfig, KvError> {
        let c = &self.cfg;
        if c.workers == 0 {
            return Err(KvError::Config("workers must be >= 1".into()));
        }
        if c.workers > 64 {
            return Err(KvError::Config(format!(
                "workers = {} exceeds the 64-thread serving cap",
                c.workers
            )));
        }
        if c.queue_capacity == 0 {
            return Err(KvError::Config("queue_capacity must be >= 1".into()));
        }
        if c.max_batch == 0 || c.max_batch > c.queue_capacity {
            return Err(KvError::Config(format!(
                "max_batch = {} must be in 1..=queue_capacity ({})",
                c.max_batch, c.queue_capacity
            )));
        }
        if c.max_value_len == 0 || c.max_value_len > (1 << 20) {
            return Err(KvError::Config(format!(
                "max_value_len = {} must be in 1..=1MiB",
                c.max_value_len
            )));
        }
        if c.nbuckets == 0 {
            return Err(KvError::Config("nbuckets must be >= 1".into()));
        }
        if c.pool_bytes < (1 << 20) {
            return Err(KvError::Config(format!(
                "pool_bytes = {} must be >= 1 MiB",
                c.pool_bytes
            )));
        }
        Ok(self.cfg)
    }
}

/// Deterministic value bytes for `(key, seed)` — the fill pattern shared by
/// the harness, the load generator, and the crash test (so any of them can
/// verify a value read back from a recovered pool).
pub fn fill_value(buf: &mut [u8], k: u64, seed: u64) {
    let mut x = k.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
    for chunk in buf.chunks_mut(8) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let bytes = x.to_ne_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&bytes[..n]);
    }
}

/// Order-31 polynomial checksum over a value (forces a full read).
pub fn checksum(buf: &[u8]) -> u64 {
    buf.iter()
        .fold(0u64, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_every_knob() {
        assert!(KvServerConfig::builder().build().is_ok());
        for bad in [
            KvServerConfig::builder().workers(0),
            KvServerConfig::builder().workers(65),
            KvServerConfig::builder().queue_capacity(0),
            KvServerConfig::builder().max_batch(0),
            KvServerConfig::builder().queue_capacity(8).max_batch(9),
            KvServerConfig::builder().max_value_len(0),
            KvServerConfig::builder().max_value_len((1 << 20) + 1),
            KvServerConfig::builder().nbuckets(0),
            KvServerConfig::builder().pool_bytes(4096),
        ] {
            assert!(matches!(bad.build(), Err(KvError::Config(_))));
        }
    }

    #[test]
    fn fill_value_is_deterministic_and_seed_sensitive() {
        let mut a = vec![0u8; 100];
        let mut b = vec![0u8; 100];
        fill_value(&mut a, 7, 1);
        fill_value(&mut b, 7, 1);
        assert_eq!(a, b);
        fill_value(&mut b, 7, 2);
        assert_ne!(a, b);
        assert_ne!(checksum(&a), checksum(&b));
    }
}
