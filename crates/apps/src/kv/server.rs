//! The `respct-kvd` TCP front end: threads + blocking sockets, no async
//! runtime (the same discipline as respct-obs's `MetricsServer`).
//!
//! Topology: one accept thread round-robins connections across `workers`
//! worker threads; each worker owns a registered `ThreadHandle` and a
//! bounded request queue. Every connection gets a reader thread (frame →
//! decode → enqueue to its assigned worker) and a writer thread (encode →
//! socket), so a slow peer can only stall itself.
//!
//! Backpressure is explicit: when the assigned worker's queue is full the
//! reader answers BUSY immediately instead of buffering — the server's
//! memory for queued work is bounded by `workers × queue_capacity`
//! requests. Responses carry the client's request id, so pipelined clients
//! match answers even when BUSY rejections interleave with executed
//! responses.
//!
//! Restart points never appear on the socket path. Workers batch up to
//! `max_batch` queued requests, execute them handle-in-hand, and only then
//! call [`KvService::end_batch`] — the one place an RP (or, under sync
//! durability, a checkpoint) happens. A checkpoint stall therefore parks
//! workers between batches; the accept loop and the reader/writer threads
//! hold no handles and keep moving. Under sync durability the batch's
//! responses are released only after `end_batch` returns, so an
//! acknowledged write has been checkpointed.
//!
//! A malformed frame (bad version byte, unknown opcode, truncated body)
//! gets a typed ERR response — with the request id recovered from the
//! frame's fixed-offset id field when possible — and the connection stays
//! up: framing is length-prefixed, so one bad payload does not poison the
//! stream. Only frame-level failures (oversize length prefix, mid-frame
//! EOF) tear the connection down.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use super::service::KvService;
use super::wire::{self, FrameError};
use super::{KvError, KvRequest, KvResponse};

/// One decoded request in flight from a connection's reader to a worker.
struct WorkItem {
    id: u32,
    req: KvRequest,
    resp: SyncSender<(u32, KvResponse)>,
}

/// The running TCP server. Construct with [`KvServer::start`].
pub struct KvServer;

impl KvServer {
    /// Binds `addr` and starts serving `service`. The returned guard owns
    /// every thread; dropping it stops the accept loop, tears down open
    /// connections, and joins the workers.
    pub fn start(
        service: Arc<KvService>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<KvServerGuard> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let nworkers = service.config().workers();
        let queue_cap = service.config().queue_capacity();
        let mut senders = Vec::with_capacity(nworkers);
        let mut workers = Vec::with_capacity(nworkers);
        for w in 0..nworkers {
            let (tx, rx) = std::sync::mpsc::sync_channel::<WorkItem>(queue_cap);
            senders.push(tx);
            let service = Arc::clone(&service);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("kvd-worker-{w}"))
                    .spawn(move || worker_loop(&service, &rx, w))
                    .expect("spawn kvd worker"),
            );
        }

        let accept = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("kvd-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &service, senders, &stop, &conns, &conn_threads);
                })
                .expect("spawn kvd accept")
        };

        Ok(KvServerGuard {
            local_addr,
            stop,
            accept: Some(accept),
            workers,
            conns,
            conn_threads,
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<KvService>,
    senders: Vec<SyncSender<WorkItem>>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
    conn_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let queue_cap = service.config().queue_capacity();
    let max_batch = service.config().max_batch();
    let mut next = 0usize;
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) if stop.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let m = service.kv_metrics();
        m.connections.inc();
        m.active_connections.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        // Accept-sharded: the connection is pinned to one worker for its
        // lifetime (requests from one pipeline stay ordered).
        let worker = next % senders.len();
        next = next.wrapping_add(1);

        let Ok(write_half) = stream.try_clone() else {
            m.active_connections.fetch_sub(1, Ordering::Relaxed);
            continue;
        };
        conns.lock().push(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                m.active_connections.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
        });

        // The writer drains this; BUSY rejections and worker responses
        // both flow through it, each tagged with the request id. Sized so
        // a full worker queue's worth of responses never blocks a worker.
        let (resp_tx, resp_rx) =
            std::sync::mpsc::sync_channel::<(u32, KvResponse)>(queue_cap + max_batch + 64);

        let writer = {
            let service = Arc::clone(service);
            std::thread::Builder::new()
                .name("kvd-conn-writer".into())
                .spawn(move || writer_loop(write_half, &resp_rx, &service))
                .expect("spawn kvd writer")
        };
        let reader = {
            let service = Arc::clone(service);
            let work_tx = senders[worker].clone();
            std::thread::Builder::new()
                .name("kvd-conn-reader".into())
                .spawn(move || {
                    reader_loop(stream, &service, worker, &work_tx, &resp_tx);
                    service
                        .kv_metrics()
                        .active_connections
                        .fetch_sub(1, Ordering::Relaxed);
                })
                .expect("spawn kvd reader")
        };
        let mut threads = conn_threads.lock();
        threads.push(reader);
        threads.push(writer);
    }
    // Dropping `senders` here lets the workers' `recv` fail once the last
    // connection reader is gone — the worker exit condition.
}

fn reader_loop(
    mut stream: TcpStream,
    service: &Arc<KvService>,
    worker: usize,
    work_tx: &SyncSender<WorkItem>,
    resp_tx: &SyncSender<(u32, KvResponse)>,
) {
    let m = service.kv_metrics();
    let max_value = service.config().max_value_len();
    let depth = &m.queue_depth[worker];
    let mut buf = Vec::new();
    loop {
        let payload = match wire::read_frame(&mut stream, wire::MAX_FRAME, &mut buf) {
            Ok(Some(p)) => p,
            // Clean close, socket error, or an unsyncable frame: done.
            Ok(None) => break,
            Err(FrameError::Io(_)) => break,
            Err(FrameError::Oversize { .. }) => {
                m.wire_errors.inc();
                break;
            }
        };
        let (id, req) = match wire::decode_request(payload, max_value) {
            Ok(x) => x,
            Err(e) => {
                m.wire_errors.inc();
                // Framing survived, only the payload was bad: answer with
                // a typed error and keep the connection. The id sits at a
                // fixed offset, so recover it when enough bytes exist.
                let id = payload
                    .get(2..6)
                    .map_or(0, |b| u32::from_le_bytes(b.try_into().unwrap()));
                if resp_tx
                    .send((id, KvResponse::Error(KvError::Wire(e))))
                    .is_err()
                {
                    break;
                }
                continue;
            }
        };
        let item = WorkItem {
            id,
            req,
            resp: resp_tx.clone(),
        };
        match work_tx.try_send(item) {
            Ok(()) => {
                depth.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(item)) => {
                // Bounded queue full: reject now rather than buffer. The
                // request was not executed; the client may retry. The BUSY
                // reply is a *blocking* send: if even the writer queue is
                // full, this reader stalls — admissions for this one
                // connection stop and TCP flow control pushes back on the
                // peer, which is exactly the backpressure contract.
                m.busy.inc();
                if resp_tx.send((item.id, KvResponse::Busy)).is_err() {
                    break;
                }
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

fn writer_loop(
    mut stream: TcpStream,
    resp_rx: &Receiver<(u32, KvResponse)>,
    service: &Arc<KvService>,
) {
    let mut out = Vec::new();
    // Exits when every sender (the reader plus in-flight work items) is
    // gone, or on socket error.
    while let Ok((id, resp)) = resp_rx.recv() {
        out.clear();
        wire::encode_response(&mut out, id, &resp);
        // Coalesce whatever else is already queued into one write.
        while out.len() < 64 * 1024 {
            match resp_rx.try_recv() {
                Ok((id, resp)) => wire::encode_response(&mut out, id, &resp),
                Err(_) => break,
            }
        }
        if stream.write_all(&out).is_err() {
            // Peer gone: drain and count what can no longer be delivered.
            let mut lost = 0;
            while resp_rx.try_recv().is_ok() {
                lost += 1;
            }
            service.kv_metrics().dropped_responses.add(lost);
            break;
        }
    }
    let _ = stream.flush();
}

/// A computed response waiting for its batch's restart point: the owning
/// connection's channel, the request id, and the payload.
type PendingResponse = (SyncSender<(u32, KvResponse)>, u32, KvResponse);

fn worker_loop(service: &Arc<KvService>, rx: &Receiver<WorkItem>, worker: usize) {
    let mut ctx = service.worker_ctx();
    let m = service.kv_metrics();
    let depth = &m.queue_depth[worker];
    let max_batch = service.config().max_batch();
    let mut done: Vec<PendingResponse> = Vec::new();
    loop {
        // Blocking-call protocol (§3.3.3): the checkpoint-prevention flag
        // drops while the worker waits, so an idle worker never holds up a
        // checkpoint.
        let Ok(first) = service.blocked(&mut ctx, || rx.recv()) else {
            break;
        };
        depth.fetch_sub(1, Ordering::Relaxed);
        let mut wrote = first.req.is_write();
        let resp = service.apply(&mut ctx, &first.req);
        done.push((first.resp, first.id, resp));
        while done.len() < max_batch {
            let Ok(item) = rx.try_recv() else { break };
            depth.fetch_sub(1, Ordering::Relaxed);
            wrote |= item.req.is_write();
            let resp = service.apply(&mut ctx, &item.req);
            done.push((item.resp, item.id, resp));
        }
        // Batch boundary: the only restart point on the serving path.
        // Under sync durability this checkpoints *before* any response
        // below is released — an acked write is durable.
        service.end_batch(&mut ctx, wrote, done.len());
        for (tx, id, resp) in done.drain(..) {
            if tx.try_send((id, resp)).is_err() {
                m.dropped_responses.inc();
            }
        }
    }
}

/// Handle to a running [`KvServer`]; dropping it shuts the server down.
pub struct KvServerGuard {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl KvServerGuard {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for KvServerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop out of `accept()`.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        // Shut down open connections so their reader/writer threads exit.
        for c in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        for t in self.conn_threads.lock().drain(..) {
            let _ = t.join();
        }
        // With the accept loop's senders and every reader gone, worker
        // receives fail and the workers drain out.
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for KvServerGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvServerGuard")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

// ---- Client helper ------------------------------------------------------------

/// A minimal blocking client for the kvd protocol: buffers requests,
/// flushes them in one write, reads responses in arrival order. The load
/// generator and the crash test drive it; it is not a production client.
pub struct KvClient {
    stream: TcpStream,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
}

impl KvClient {
    /// Connects (with TCP_NODELAY).
    ///
    /// # Errors
    ///
    /// [`KvError::Io`] on connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<KvClient, KvError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(KvClient {
            stream,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
        })
    }

    /// Queues one request frame locally (nothing is sent until
    /// [`KvClient::flush`]).
    pub fn send(&mut self, id: u32, req: &KvRequest) {
        wire::encode_request(&mut self.wbuf, id, req);
    }

    /// Writes all queued frames to the socket.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }

    /// Reads the next response; `Ok(None)` on clean server close.
    ///
    /// # Errors
    ///
    /// [`KvError::Io`] on socket failure, [`KvError::Wire`] on a payload
    /// that does not decode.
    pub fn recv(&mut self) -> Result<Option<(u32, KvResponse)>, KvError> {
        match wire::read_frame(&mut self.stream, wire::MAX_FRAME, &mut self.rbuf) {
            Ok(Some(payload)) => Ok(Some(wire::decode_response(payload)?)),
            Ok(None) => Ok(None),
            Err(FrameError::Io(e)) => Err(KvError::Io(e)),
            Err(FrameError::Oversize { len, max }) => {
                Err(KvError::Wire(wire::WireError::Oversize { len, max }))
            }
        }
    }

    /// One synchronous round trip.
    ///
    /// # Errors
    ///
    /// As [`KvClient::recv`]; a server close mid-call is an
    /// `UnexpectedEof` [`KvError::Io`].
    pub fn call(&mut self, id: u32, req: &KvRequest) -> Result<(u32, KvResponse), KvError> {
        self.send(id, req);
        self.flush()?;
        match self.recv()? {
            Some(x) => Ok(x),
            None => Err(KvError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            ))),
        }
    }

    /// Splits into independently-owned write and read halves (separate
    /// threads for pipelined load generation).
    ///
    /// # Errors
    ///
    /// [`KvError::Io`] if the socket cannot be cloned.
    pub fn split(self) -> Result<(KvClientWriter, KvClientReader), KvError> {
        let read_half = self.stream.try_clone()?;
        Ok((
            KvClientWriter {
                stream: self.stream,
                wbuf: self.wbuf,
            },
            KvClientReader {
                stream: read_half,
                rbuf: self.rbuf,
            },
        ))
    }
}

/// Write half of a split [`KvClient`].
pub struct KvClientWriter {
    stream: TcpStream,
    wbuf: Vec<u8>,
}

impl KvClientWriter {
    /// Queues one request frame locally.
    pub fn send(&mut self, id: u32, req: &KvRequest) {
        wire::encode_request(&mut self.wbuf, id, req);
    }

    /// Writes all queued frames.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if !self.wbuf.is_empty() {
            self.stream.write_all(&self.wbuf)?;
            self.wbuf.clear();
        }
        Ok(())
    }
}

/// Read half of a split [`KvClient`].
pub struct KvClientReader {
    stream: TcpStream,
    rbuf: Vec<u8>,
}

impl KvClientReader {
    /// Reads the next response; `Ok(None)` on clean server close.
    ///
    /// # Errors
    ///
    /// As [`KvClient::recv`].
    pub fn recv(&mut self) -> Result<Option<(u32, KvResponse)>, KvError> {
        match wire::read_frame(&mut self.stream, wire::MAX_FRAME, &mut self.rbuf) {
            Ok(Some(payload)) => Ok(Some(wire::decode_response(payload)?)),
            Ok(None) => Ok(None),
            Err(FrameError::Io(e)) => Err(KvError::Io(e)),
            Err(FrameError::Oversize { len, max }) => {
                Err(KvError::Wire(wire::WireError::Oversize { len, max }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvServerConfig;
    use crate::Mode;

    fn start(
        mode: Mode,
        builder: impl FnOnce(crate::kv::KvServerConfigBuilder) -> crate::kv::KvServerConfigBuilder,
    ) -> (Arc<KvService>, KvServerGuard) {
        let cfg = builder(
            KvServerConfig::builder()
                .mode(mode)
                .pool_bytes(64 << 20)
                .ckpt_period(None),
        )
        .build()
        .expect("config");
        let (svc, _) = KvService::open(cfg).expect("open");
        let guard = KvServer::start(Arc::clone(&svc), "127.0.0.1:0").expect("bind");
        (svc, guard)
    }

    #[test]
    fn tcp_roundtrip_all_ops() {
        let (_svc, guard) = start(Mode::Respct, |b| b);
        let mut c = KvClient::connect(guard.local_addr()).expect("connect");
        assert_eq!(c.call(1, &KvRequest::Ping).unwrap(), (1, KvResponse::Pong));
        assert_eq!(
            c.call(
                2,
                &KvRequest::Put {
                    key: 7,
                    value: vec![9; 32]
                }
            )
            .unwrap(),
            (2, KvResponse::Ok)
        );
        assert_eq!(
            c.call(3, &KvRequest::Get { key: 7 }).unwrap(),
            (3, KvResponse::Value(vec![9; 32]))
        );
        assert_eq!(
            c.call(4, &KvRequest::Delete { key: 7 }).unwrap(),
            (4, KvResponse::Ok)
        );
        assert_eq!(
            c.call(5, &KvRequest::Get { key: 7 }).unwrap(),
            (5, KvResponse::NotFound)
        );
    }

    #[test]
    fn pipelined_requests_answered_in_order_with_ids() {
        let (_svc, guard) = start(Mode::TransientDram, |b| b);
        let mut c = KvClient::connect(guard.local_addr()).expect("connect");
        for id in 0..100u32 {
            c.send(
                id,
                &KvRequest::Put {
                    key: id as u64,
                    value: vec![id as u8; 16],
                },
            );
        }
        c.flush().expect("flush");
        for want in 0..100u32 {
            let (id, resp) = c.recv().expect("recv").expect("open");
            assert_eq!(id, want);
            assert_eq!(resp, KvResponse::Ok);
        }
    }

    #[test]
    fn malformed_payload_gets_typed_error_and_connection_survives() {
        let (svc, guard) = start(Mode::TransientDram, |b| b);
        let mut c = KvClient::connect(guard.local_addr()).expect("connect");
        // Hand-build a frame with a bogus version byte but a readable id.
        let mut raw = Vec::new();
        wire::encode_request(&mut raw, 77, &KvRequest::Ping);
        raw[wire::LEN_PREFIX] = 9; // clobber the version byte
        c.stream.write_all(&raw).expect("write");
        let (id, resp) = c.recv().expect("recv").expect("open");
        assert_eq!(id, 77);
        assert_eq!(
            resp,
            KvResponse::Error(KvError::Wire(wire::WireError::Version { got: 9 }))
        );
        // Same connection still serves good frames.
        assert_eq!(
            c.call(78, &KvRequest::Ping).unwrap(),
            (78, KvResponse::Pong)
        );
        assert_eq!(svc.kv_metrics().wire_errors.get(), 1);
    }

    #[test]
    fn full_queue_answers_busy() {
        // One worker with a 2-deep queue, slowed to a crawl by
        // sync-durability checkpoints at every batch boundary: a pipelined
        // flood must overrun the queue and collect BUSY rejections.
        let (svc, guard) = start(Mode::Respct, |b| {
            b.workers(1)
                .queue_capacity(2)
                .max_batch(2)
                .durability(crate::kv::Durability::Sync)
        });
        let mut c = KvClient::connect(guard.local_addr()).expect("connect");
        let total = 600u32;
        for id in 0..total {
            c.send(
                id,
                &KvRequest::Put {
                    key: 1,
                    value: vec![0; 64],
                },
            );
        }
        c.flush().expect("flush");
        let mut busy = 0;
        let mut ok = 0;
        for _ in 0..total {
            match c.recv().expect("recv").expect("open").1 {
                KvResponse::Busy => busy += 1,
                KvResponse::Ok => ok += 1,
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert!(busy > 0, "expected BUSY under flood (ok = {ok})");
        assert!(ok > 0, "some writes must land");
        assert_eq!(svc.kv_metrics().busy.get(), busy);
        assert!(svc.kv_metrics().sync_checkpoints.get() > 0);
    }
}
