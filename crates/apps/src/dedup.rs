//! Deduplication pipeline (Parsec Dedup, paper §5.3).
//!
//! A four-stage pipeline — chunk → hash → compress → store — connected by
//! bounded queues that use condition variables, the workload the paper
//! selects precisely because it exercises the condvar protocol of §3.3.3:
//! every queue wait is bracketed by `checkpoint_allow` / and the
//! re-locking `checkpoint_prevent`, with an RP immediately before each
//! critical-section entrance.
//!
//! The persistent state is the dedup store: a hash map from chunk
//! fingerprint to reference count, plus a running total of unique
//! compressed bytes. The pipeline queues themselves are volatile (in-flight
//! chunks are re-chunked from the input after a crash).

use std::sync::atomic::{AtomicUsize, Ordering};

use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use respct::{Pool, RpId, ThreadHandle};
use respct_ds::{PHashMap, TransientHashMap};
use respct_pmem::Region;

use crate::Mode;

/// RP ids, one per static wait/progress site (channel bases leave room for
/// the paired `pop` id at base + 1).
const RP_CHAN_HASH: RpId = RpId(500);
const RP_CHAN_COMP: RpId = RpId(510);
const RP_CHAN_STORE: RpId = RpId(520);
const RP_DEDUP_STAGE: RpId = RpId(530);

/// Configuration for one pipeline run.
#[derive(Debug, Clone, Copy)]
pub struct DedupConfig {
    /// Total chunks streamed through the pipeline.
    pub chunks: usize,
    /// Distinct chunk contents (duplicates = chunks - unique).
    pub unique: usize,
    /// Bytes per chunk.
    pub chunk_size: usize,
    /// Hasher threads.
    pub hashers: usize,
    /// Compressor threads.
    pub compressors: usize,
    pub mode: Mode,
    pub ckpt_period: Duration,
}

impl Default for DedupConfig {
    fn default() -> Self {
        DedupConfig {
            chunks: 2_000,
            unique: 500,
            chunk_size: 1024,
            hashers: 2,
            compressors: 2,
            mode: Mode::TransientDram,
            ckpt_period: Duration::from_millis(64),
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupOutput {
    pub duration_us: u128,
    pub chunks: usize,
    pub unique_stored: usize,
    pub compressed_bytes: u64,
}

// ---- Checkpoint-aware bounded channel ---------------------------------------

struct ChanState<T> {
    q: std::collections::VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC channel whose blocking waits follow the paper's condvar
/// protocol when a [`ThreadHandle`] is supplied.
struct Chan<T> {
    state: Mutex<ChanState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
    /// Unique RP id for waits on this channel.
    rp_id: RpId,
}

impl<T> Chan<T> {
    fn new(cap: usize, rp_id: RpId) -> Chan<T> {
        Chan {
            state: Mutex::new(ChanState {
                q: std::collections::VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            rp_id,
        }
    }

    fn wait<'a>(
        &'a self,
        h: Option<&ThreadHandle>,
        cv: &Condvar,
        mut guard: parking_lot::MutexGuard<'a, ChanState<T>>,
    ) -> parking_lot::MutexGuard<'a, ChanState<T>> {
        match h {
            Some(h) => {
                // §3.3.3: allow checkpoints while blocked; on wake-up, wait
                // out any in-flight checkpoint (releasing the lock).
                let allow = h.allow_checkpoints();
                cv.wait(&mut guard);
                allow.rearm_locked(&self.state, guard)
            }
            None => {
                cv.wait(&mut guard);
                guard
            }
        }
    }

    fn push(&self, h: Option<&ThreadHandle>, v: T) {
        // RP immediately before the critical-section entrance (§3.3.3).
        if let Some(h) = h {
            h.rp(self.rp_id);
        }
        let mut guard = self.state.lock();
        while guard.q.len() >= self.cap {
            guard = self.wait(h, &self.not_full, guard);
        }
        guard.q.push_back(v);
        drop(guard);
        self.not_empty.notify_one();
    }

    fn pop(&self, h: Option<&ThreadHandle>) -> Option<T> {
        if let Some(h) = h {
            h.rp(self.rp_id.offset(1));
        }
        let mut guard = self.state.lock();
        loop {
            if let Some(v) = guard.q.pop_front() {
                drop(guard);
                self.not_full.notify_one();
                return Some(v);
            }
            if guard.closed {
                return None;
            }
            guard = self.wait(h, &self.not_empty, guard);
        }
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

// ---- Synthetic input ---------------------------------------------------------

/// Deterministic, RLE-friendly chunk content for content id `cid`.
fn chunk_bytes(cid: usize, size: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    let mut x = (cid as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    while out.len() < size {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let byte = (x >> 16) as u8;
        let run = 1 + ((x >> 40) % 32) as usize;
        for _ in 0..run.min(size - out.len()) {
            out.push(byte);
        }
    }
    out
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run-length "compression": returns the encoded size.
fn rle_size(data: &[u8]) -> u64 {
    let mut size = 0u64;
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut j = i + 1;
        while j < data.len() && data[j] == b && j - i < 255 {
            j += 1;
        }
        size += 2;
        i = j;
    }
    size
}

// ---- Store (persistent state) -------------------------------------------------

enum Store {
    Dram(TransientHashMap, std::sync::atomic::AtomicU64),
    Nvmm {
        map: respct_baselines_stub::NvmmLikeMap,
        bytes: std::sync::atomic::AtomicU64,
    },
    Respct {
        map: PHashMap,
        bytes_cell: respct::ICell<u64>,
    },
}

/// Minimal NVMM-resident map for the Transient<NVMM> store so this crate
/// does not depend on `respct-baselines` (which depends on `respct-ds`).
mod respct_baselines_stub {
    use parking_lot::Mutex;
    use respct_ds::hash_u64;
    use respct_pmem::{PAddr, Region};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Chained map (key@0, next@8; 16-byte nodes) over a region bump.
    pub struct NvmmLikeMap {
        region: Arc<Region>,
        buckets: u64,
        nbuckets: u64,
        bump: AtomicU64,
        locks: Box<[Mutex<()>]>,
    }

    impl NvmmLikeMap {
        pub fn new(region: Arc<Region>, nbuckets: u64) -> NvmmLikeMap {
            let buckets = 64u64;
            for b in 0..nbuckets {
                region.store(PAddr(buckets + b * 8), 0u64);
            }
            let bump = AtomicU64::new(buckets + nbuckets * 8 + 64);
            NvmmLikeMap {
                region,
                buckets,
                nbuckets,
                bump,
                locks: (0..nbuckets).map(|_| Mutex::new(())).collect(),
            }
        }

        /// Returns true if `k` was newly inserted.
        pub fn insert_new(&self, k: u64) -> bool {
            let b = hash_u64(k) % self.nbuckets;
            let head = PAddr(self.buckets + b * 8);
            let _g = self.locks[b as usize].lock();
            let mut cur: u64 = self.region.load(head);
            while cur != 0 {
                if self.region.load::<u64>(PAddr(cur)) == k {
                    return false;
                }
                cur = self.region.load(PAddr(cur + 8));
            }
            let node = self.bump.fetch_add(16, Ordering::Relaxed);
            assert!(node + 16 <= self.region.size() as u64, "NvmmLikeMap full");
            self.region.store(PAddr(node), k);
            self.region
                .store(PAddr(node + 8), self.region.load::<u64>(head));
            self.region.store(head, node);
            true
        }
    }
}

// ---- The pipeline --------------------------------------------------------------

/// Runs the dedup pipeline in the configured mode.
pub fn run(cfg: DedupConfig) -> DedupOutput {
    run_inner(cfg, None)
}

/// Runs the pipeline in ResPCT mode with `sink` attached to the region
/// before any pool traffic — the analysis hook for the trace checker and
/// the happens-before race detector.
pub fn run_traced(
    cfg: DedupConfig,
    sink: std::sync::Arc<dyn respct_pmem::TraceSink>,
) -> DedupOutput {
    assert_eq!(cfg.mode, Mode::Respct, "run_traced is ResPCT-only");
    run_inner(cfg, Some(sink))
}

fn run_inner(
    cfg: DedupConfig,
    mut sink: Option<std::sync::Arc<dyn respct_pmem::TraceSink>>,
) -> DedupOutput {
    assert!(cfg.unique >= 1 && cfg.unique <= cfg.chunks);
    let (pool, store) = match cfg.mode {
        Mode::TransientDram => (
            None,
            Store::Dram(
                TransientHashMap::new(4096),
                std::sync::atomic::AtomicU64::new(0),
            ),
        ),
        Mode::TransientNvmm => {
            let region = Region::new(crate::backend::nvmm_config(64 << 20));
            (
                None,
                Store::Nvmm {
                    map: respct_baselines_stub::NvmmLikeMap::new(region, 4096),
                    bytes: std::sync::atomic::AtomicU64::new(0),
                },
            )
        }
        Mode::Respct => {
            let region = Region::new(crate::backend::nvmm_config(128 << 20));
            if let Some(sink) = sink.take() {
                region.set_trace_sink(sink);
            }
            let pool = Pool::create(region, crate::backend::pool_config()).expect("pool");
            let h = pool.register();
            let map = PHashMap::create(&h, 4096);
            let bytes_cell = h.alloc_cell(0u64);
            h.set_root(map.desc());
            drop(h);
            (Some(pool), Store::Respct { map, bytes_cell })
        }
    };
    let _ckpt = pool.as_ref().map(|p| p.start_checkpointer(cfg.ckpt_period));

    let chan_hash: Chan<usize> = Chan::new(256, RP_CHAN_HASH);
    let chan_comp: Chan<(usize, u64)> = Chan::new(256, RP_CHAN_COMP);
    let chan_store: Chan<(u64, u64)> = Chan::new(256, RP_CHAN_STORE);
    let hashers_left = AtomicUsize::new(cfg.hashers);
    let comps_left = AtomicUsize::new(cfg.compressors);
    let unique_stored = AtomicUsize::new(0);
    let store = &store;

    let t0 = Instant::now();
    std::thread::scope(|s| {
        let (ch, cc, cs) = (&chan_hash, &chan_comp, &chan_store);
        let (hl, cl, us) = (&hashers_left, &comps_left, &unique_stored);
        // Stage 1: chunker.
        {
            let pool = pool.clone();
            s.spawn(move || {
                let h = pool.as_ref().map(respct::Pool::register);
                for cid in 0..cfg.chunks {
                    ch.push(h.as_ref(), cid);
                }
                ch.close();
            });
        }
        // Stage 2: hashers.
        for _ in 0..cfg.hashers {
            let pool = pool.clone();
            s.spawn(move || {
                let h = pool.as_ref().map(respct::Pool::register);
                while let Some(cid) = ch.pop(h.as_ref()) {
                    let content = cid % cfg.unique;
                    let data = chunk_bytes(content, cfg.chunk_size);
                    cc.push(h.as_ref(), (cid, fnv1a(&data)));
                }
                if hl.fetch_sub(1, Ordering::SeqCst) == 1 {
                    cc.close();
                }
            });
        }
        // Stage 3: compressors.
        for _ in 0..cfg.compressors {
            let pool = pool.clone();
            s.spawn(move || {
                let h = pool.as_ref().map(respct::Pool::register);
                while let Some((cid, hash)) = cc.pop(h.as_ref()) {
                    let content = cid % cfg.unique;
                    let data = chunk_bytes(content, cfg.chunk_size);
                    cs.push(h.as_ref(), (hash, rle_size(&data)));
                }
                if cl.fetch_sub(1, Ordering::SeqCst) == 1 {
                    cs.close();
                }
            });
        }
        // Stage 4: writer (owns the persistent state).
        {
            let pool = pool.clone();
            s.spawn(move || {
                let h = pool.as_ref().map(respct::Pool::register);
                let mut nvctx = ();
                let _ = &mut nvctx;
                while let Some((hash, csize)) = cs.pop(h.as_ref()) {
                    let new = match store {
                        Store::Dram(map, bytes) => {
                            let new = map.insert(hash, 1);
                            if new {
                                bytes.fetch_add(csize, Ordering::Relaxed);
                            }
                            new
                        }
                        Store::Nvmm { map, bytes } => {
                            let new = map.insert_new(hash);
                            if new {
                                bytes.fetch_add(csize, Ordering::Relaxed);
                            }
                            new
                        }
                        Store::Respct { map, bytes_cell } => {
                            let hh = h.as_ref().expect("respct writer has a handle");
                            let new = map.insert(hh, hash, 1);
                            if new {
                                hh.update(*bytes_cell, hh.get(*bytes_cell) + csize);
                            }
                            hh.rp(RP_DEDUP_STAGE);
                            new
                        }
                    };
                    if new {
                        us.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    let duration = t0.elapsed();
    let compressed_bytes = match store {
        Store::Dram(_, bytes) | Store::Nvmm { bytes, .. } => bytes.load(Ordering::SeqCst),
        Store::Respct { bytes_cell, .. } => pool.as_ref().expect("pool").cell_get(*bytes_cell),
    };
    DedupOutput {
        duration_us: duration.as_micros(),
        chunks: cfg.chunks,
        unique_stored: unique_stored.load(Ordering::SeqCst),
        compressed_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_roundtrip_size_sane() {
        let data = chunk_bytes(3, 1024);
        let size = rle_size(&data);
        assert!(size < 1024, "synthetic chunks must be compressible: {size}");
        assert!(size > 0);
    }

    #[test]
    fn dedup_counts_unique_contents() {
        let out = run(DedupConfig {
            chunks: 400,
            unique: 100,
            ..Default::default()
        });
        assert_eq!(out.unique_stored, 100);
        assert_eq!(out.chunks, 400);
    }

    #[test]
    fn all_modes_agree() {
        let base = DedupConfig {
            chunks: 300,
            unique: 80,
            chunk_size: 512,
            ckpt_period: Duration::from_millis(4),
            ..Default::default()
        };
        let reference = run(DedupConfig {
            mode: Mode::TransientDram,
            ..base
        });
        for mode in [Mode::TransientNvmm, Mode::Respct] {
            let out = run(DedupConfig { mode, ..base });
            assert_eq!(out.unique_stored, reference.unique_stored, "{mode:?}");
            assert_eq!(out.compressed_bytes, reference.compressed_bytes, "{mode:?}");
        }
    }

    #[test]
    fn single_stage_threads() {
        let out = run(DedupConfig {
            chunks: 100,
            unique: 100,
            hashers: 1,
            compressors: 1,
            mode: Mode::Respct,
            ckpt_period: Duration::from_millis(2),
            ..Default::default()
        });
        assert_eq!(out.unique_stored, 100);
    }
}
