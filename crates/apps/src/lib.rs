//! Real-world-style workloads for the ResPCT evaluation (paper §5.3).
//!
//! Four compute-intensive mini-applications retaining the computational and
//! synchronization structure of the paper's Parsec/Phoenix selections, plus
//! a memcached-like key-value store driven by a YCSB-style generator:
//!
//! * [`matmul`] — blocked matrix multiplication (Phoenix MatMul):
//!   data-parallel, write-once output cells (no WAR → `add_modified` only).
//! * [`linreg`] — linear regression over points (Phoenix LR): per-thread
//!   running sums are WAR variables → InCLL; demonstrates the paper's
//!   RP-placement ablation (per-point RPs are ~an order of magnitude slower
//!   than per-batch RPs).
//! * [`swaptions`] — Monte-Carlo swaption pricing (Parsec Swaptions):
//!   lock-free data-parallel trials with batched RPs.
//! * [`dedup`] — a 4-stage pipeline (chunk → hash → compress → store) with
//!   bounded queues and condition variables (Parsec Dedup): exercises the
//!   `checkpoint_allow`/`checkpoint_prevent` protocol of §3.3.3.
//! * [`wordcount`] — MapReduce word count (Phoenix's flagship kernel):
//!   a shared persistent hash map updated by all mappers under bucket
//!   locks, with per-thread persistent progress cursors.
//! * [`kv`] — the KV subsystem behind [`kvstore`] and `respct-kvd`: typed
//!   request/response/error API, validated server config, versioned wire
//!   protocol, transport-agnostic service core, and the TCP front end.
//! * [`kvstore`] — memcached-like store benchmark harness: the [`kv`]
//!   service driven through in-process request queues (paper Fig. 14).
//! * [`ycsb`] — YCSB-style workload generator (zipfian keys, configurable
//!   read/update mix).
//!
//! Every app runs in three modes (paper Fig. 13/14):
//! [`Mode::TransientDram`], [`Mode::TransientNvmm`], and [`Mode::Respct`].

pub mod backend;
pub mod dedup;
pub mod kv;
pub mod kvstore;
pub mod linreg;
pub mod matmul;
pub mod swaptions;
pub mod wordcount;
pub mod ycsb;

/// Execution mode of an application (paper Fig. 13 bars).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Unmodified program on DRAM.
    TransientDram,
    /// Unmodified program with its data in (emulated, slower) NVMM.
    TransientNvmm,
    /// Fault tolerant with ResPCT (periodic checkpoints).
    Respct,
}

impl Mode {
    /// All three modes, in the paper's presentation order.
    pub const ALL: [Mode; 3] = [Mode::TransientDram, Mode::TransientNvmm, Mode::Respct];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::TransientDram => "Transient<DRAM>",
            Mode::TransientNvmm => "Transient<NVMM>",
            Mode::Respct => "ResPCT",
        }
    }
}
