//! Backend selection shared by all applications.
//!
//! Every app's `Mode::Respct` path builds its region through
//! [`nvmm_config`], so one environment variable swaps the persistence
//! substrate for the whole suite without touching app code:
//!
//! * `RESPCT_BACKEND=optane` (default) — fast mode, calibrated Optane
//!   latency model (the paper's emulation setup);
//! * `RESPCT_BACKEND=dram` — fast mode, DRAM latency (no NVMM tax);
//! * `RESPCT_BACKEND=sim` — the PCSO cache simulator (crash-injectable,
//!   much slower; for correctness runs);
//! * `RESPCT_BACKEND=mmap:/path/to/file.pool` — file-backed mmap: the heap
//!   outlives the process, as on real App-Direct NVMM.
//!
//! A second variable picks the checkpoint drain for the whole suite:
//! `RESPCT_PIPELINE=K` (see [`pool_config`]) runs every app with the
//! epoch-ring pipelined drain at depth `K` (`K = 1`, the default, keeps
//! the plain synchronous checkpoint).

use respct::{PoolConfig, RegionConfig, RegionMode};
use respct_pmem::{latency::LatencyModel, SimConfig};

/// Environment variable naming the persistence backend.
pub const BACKEND_ENV: &str = "RESPCT_BACKEND";

/// Environment variable naming the epoch-pipeline depth (`K`).
pub const PIPELINE_ENV: &str = "RESPCT_PIPELINE";

/// Parses a backend spec (the `RESPCT_BACKEND` syntax above) into a
/// [`RegionMode`]. Unknown specs return `None`.
pub fn parse_backend(spec: &str) -> Option<RegionMode> {
    match spec {
        "optane" => Some(RegionMode::Fast(LatencyModel::optane())),
        "dram" | "fast" => Some(RegionMode::Fast(LatencyModel::dram())),
        "sim" => Some(RegionMode::Sim(SimConfig::no_eviction(0))),
        _ => spec
            .strip_prefix("mmap:")
            .filter(|p| !p.is_empty())
            .map(|p| RegionMode::Mmap(p.into())),
    }
}

/// The NVMM region config every app's ResPCT mode runs on: `size` bytes on
/// the backend named by `RESPCT_BACKEND` (default: emulated Optane).
///
/// # Panics
///
/// Panics on an unparseable `RESPCT_BACKEND` value — a misspelled backend
/// silently falling back to emulation would invalidate a benchmark run.
pub fn nvmm_config(size: usize) -> RegionConfig {
    let mode = match std::env::var(BACKEND_ENV) {
        Ok(spec) => parse_backend(&spec)
            .unwrap_or_else(|| panic!("unrecognized {BACKEND_ENV} value: {spec:?}")),
        Err(_) => RegionMode::Fast(LatencyModel::optane()),
    };
    RegionConfig::builder()
        .size(size)
        .mode(mode)
        .build()
        .expect("valid region config")
}

/// The pool config every app's ResPCT mode runs with: `RESPCT_PIPELINE=K`
/// selects the epoch-ring pipelined drain (`K ≥ 2` implies the
/// asynchronous drain machinery; `K = 1` or unset keeps the default
/// synchronous checkpoint, so existing runs are unchanged).
///
/// # Panics
///
/// Panics on an unparseable or out-of-range `RESPCT_PIPELINE` value — a
/// typo silently falling back to the synchronous drain would invalidate
/// a benchmark run.
pub fn pool_config() -> PoolConfig {
    pool_config_sized(respct::DEFAULT_POOL_SIZE)
}

/// [`pool_config`] with an explicit fresh-pool size — what [`Pool::open`]
/// allocates when the pool file does not exist yet (an existing file keeps
/// its own size). Apps that size their heap from their working set (the KV
/// service) use this; everything else keeps the default.
///
/// [`Pool::open`]: respct::Pool::open
///
/// # Panics
///
/// Panics on an unparseable or out-of-range `RESPCT_PIPELINE` value, like
/// [`pool_config`].
pub fn pool_config_sized(pool_bytes: usize) -> PoolConfig {
    let k: usize = match std::env::var(PIPELINE_ENV) {
        Ok(spec) => spec
            .parse()
            .unwrap_or_else(|_| panic!("unparseable {PIPELINE_ENV} value: {spec:?}")),
        Err(_) => 1,
    };
    PoolConfig::builder()
        .async_checkpoint(k > 1)
        .epoch_pipeline(k)
        .size(pool_bytes)
        .build()
        .unwrap_or_else(|e| panic!("invalid {PIPELINE_ENV} depth {k}: {e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_specs() {
        assert!(matches!(
            parse_backend("optane"),
            Some(RegionMode::Fast(m)) if !m.is_free()
        ));
        assert!(matches!(parse_backend("dram"), Some(RegionMode::Fast(_))));
        assert!(matches!(parse_backend("sim"), Some(RegionMode::Sim(_))));
        match parse_backend("mmap:/tmp/x.pool") {
            Some(RegionMode::Mmap(p)) => assert_eq!(p, std::path::Path::new("/tmp/x.pool")),
            other => panic!("expected mmap mode, got {other:?}"),
        }
        assert!(parse_backend("mmap:").is_none());
        assert!(parse_backend("pmem").is_none());
    }

    #[test]
    fn pool_config_defaults_to_synchronous() {
        // The test environment does not set the variable.
        if std::env::var(PIPELINE_ENV).is_err() {
            let cfg = pool_config();
            assert_eq!(cfg.epoch_pipeline(), 1);
            assert!(!cfg.async_checkpoint());
        }
    }

    #[test]
    fn default_config_is_optane_fast() {
        // Uses the default arm only if the variable is unset; the test
        // environment does not set it.
        if std::env::var(BACKEND_ENV).is_err() {
            let cfg = nvmm_config(1 << 20);
            assert_eq!(cfg.size(), 1 << 20);
            assert!(matches!(cfg.mode(), RegionMode::Fast(_)));
        }
    }
}
