//! Backend selection shared by all applications.
//!
//! Every app's `Mode::Respct` path builds its region through
//! [`nvmm_config`], so one environment variable swaps the persistence
//! substrate for the whole suite without touching app code:
//!
//! * `RESPCT_BACKEND=optane` (default) — fast mode, calibrated Optane
//!   latency model (the paper's emulation setup);
//! * `RESPCT_BACKEND=dram` — fast mode, DRAM latency (no NVMM tax);
//! * `RESPCT_BACKEND=sim` — the PCSO cache simulator (crash-injectable,
//!   much slower; for correctness runs);
//! * `RESPCT_BACKEND=mmap:/path/to/file.pool` — file-backed mmap: the heap
//!   outlives the process, as on real App-Direct NVMM.

use respct::{RegionConfig, RegionMode};
use respct_pmem::{latency::LatencyModel, SimConfig};

/// Environment variable naming the persistence backend.
pub const BACKEND_ENV: &str = "RESPCT_BACKEND";

/// Parses a backend spec (the `RESPCT_BACKEND` syntax above) into a
/// [`RegionMode`]. Unknown specs return `None`.
pub fn parse_backend(spec: &str) -> Option<RegionMode> {
    match spec {
        "optane" => Some(RegionMode::Fast(LatencyModel::optane())),
        "dram" | "fast" => Some(RegionMode::Fast(LatencyModel::dram())),
        "sim" => Some(RegionMode::Sim(SimConfig::no_eviction(0))),
        _ => spec
            .strip_prefix("mmap:")
            .filter(|p| !p.is_empty())
            .map(|p| RegionMode::Mmap(p.into())),
    }
}

/// The NVMM region config every app's ResPCT mode runs on: `size` bytes on
/// the backend named by `RESPCT_BACKEND` (default: emulated Optane).
///
/// # Panics
///
/// Panics on an unparseable `RESPCT_BACKEND` value — a misspelled backend
/// silently falling back to emulation would invalidate a benchmark run.
pub fn nvmm_config(size: usize) -> RegionConfig {
    let mode = match std::env::var(BACKEND_ENV) {
        Ok(spec) => parse_backend(&spec)
            .unwrap_or_else(|| panic!("unrecognized {BACKEND_ENV} value: {spec:?}")),
        Err(_) => RegionMode::Fast(LatencyModel::optane()),
    };
    RegionConfig::builder()
        .size(size)
        .mode(mode)
        .build()
        .expect("valid region config")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_specs() {
        assert!(matches!(
            parse_backend("optane"),
            Some(RegionMode::Fast(m)) if !m.is_free()
        ));
        assert!(matches!(parse_backend("dram"), Some(RegionMode::Fast(_))));
        assert!(matches!(parse_backend("sim"), Some(RegionMode::Sim(_))));
        match parse_backend("mmap:/tmp/x.pool") {
            Some(RegionMode::Mmap(p)) => assert_eq!(p, std::path::Path::new("/tmp/x.pool")),
            other => panic!("expected mmap mode, got {other:?}"),
        }
        assert!(parse_backend("mmap:").is_none());
        assert!(parse_backend("pmem").is_none());
    }

    #[test]
    fn default_config_is_optane_fast() {
        // Uses the default arm only if the variable is unset; the test
        // environment does not set it.
        if std::env::var(BACKEND_ENV).is_err() {
            let cfg = nvmm_config(1 << 20);
            assert_eq!(cfg.size(), 1 << 20);
            assert!(matches!(cfg.mode(), RegionMode::Fast(_)));
        }
    }
}
