//! Memcached-like key-value store (paper §5.3, Fig. 14).
//!
//! The paper modifies Memcached to keep its hash table of key-value objects
//! in NVMM and drives it with YCSB through 32 clients and 4 server worker
//! threads, measuring the *asynchronous writes* configuration (a response
//! returns before the object is durable — RocksDB's default consistency).
//! The network stack is not what that experiment measures, so this
//! reproduction keeps the store and the workload and replaces TCP with
//! in-process request queues: client threads push requests into per-worker
//! channels (sharded by key, as Memcached shards its hash table), workers
//! execute them against the store.
//!
//! Store design under ResPCT: a persistent hash map from key to value-blob
//! address. Values (100 bytes in the paper's setup) are updated
//! **copy-on-write** — a put allocates a fresh blob, writes + tracks it,
//! and swings the map's value cell (InCLL) — so a crashed epoch rolls back
//! to the previous blob. Old blobs are freed through the deferred-free
//! path. An RP follows every request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use respct::{Pool, RpId, ThreadHandle};
use respct_ds::{hash_u64, PHashMap};
use respct_pmem::{PAddr, Region};

use crate::ycsb::{Op, Workload};
use crate::Mode;

/// RP ids for the two store operations (one per static call site).
const RP_PUT: RpId = RpId(600);
const RP_GET: RpId = RpId(601);

/// Configuration for one KV benchmark run.
#[derive(Debug, Clone)]
pub struct KvConfig {
    pub nkeys: u64,
    pub value_size: usize,
    /// Server worker threads (paper: 4).
    pub workers: usize,
    /// Client threads (paper: 32).
    pub clients: usize,
    /// Requests per client in the run phase.
    pub ops_per_client: usize,
    pub workload: Workload,
    pub mode: Mode,
    pub ckpt_period: Duration,
}

impl KvConfig {
    /// A small default suitable for tests.
    pub fn small(mode: Mode) -> KvConfig {
        KvConfig {
            nkeys: 2_000,
            value_size: 100,
            workers: 2,
            clients: 4,
            ops_per_client: 2_000,
            workload: Workload::balanced(2_000),
            mode,
            ckpt_period: Duration::from_millis(16),
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone, Copy)]
pub struct KvOutput {
    pub duration: Duration,
    pub ops: u64,
    pub gets: u64,
    pub puts: u64,
    pub kops_per_sec: f64,
    /// Median per-request service time (sampled), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile per-request service time (sampled), nanoseconds.
    pub p99_ns: u64,
}

// ---- Store variants -----------------------------------------------------------

trait KvStore: Send + Sync {
    type Ctx: Send;
    fn ctx(&self) -> Self::Ctx;
    fn put(&self, ctx: &mut Self::Ctx, k: u64, val_seed: u64);
    /// Returns a checksum of the value (forces a full value read).
    fn get(&self, ctx: &mut Self::Ctx, k: u64) -> Option<u64>;
    /// Runs `block` — a call that waits on something outside the store,
    /// like a channel receive — under the paper's blocking-call protocol
    /// (§3.3.3). A store whose workers hold registered thread handles must
    /// allow checkpoints to complete while the worker sits in `recv`, or
    /// the checkpointer waits forever for a thread that is not going to
    /// reach an RP. The default store has no such obligation and just runs
    /// the call.
    fn blocked<R>(&self, _ctx: &mut Self::Ctx, block: impl FnOnce() -> R) -> R {
        block()
    }
}

/// Deterministic value bytes for (key, seed).
fn fill_value(buf: &mut [u8], k: u64, seed: u64) {
    let mut x = k.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
    for chunk in buf.chunks_mut(8) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let bytes = x.to_ne_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&bytes[..n]);
    }
}

fn checksum(buf: &[u8]) -> u64 {
    buf.iter()
        .fold(0u64, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u64))
}

// DRAM store: sharded std HashMap with owned value buffers.
type DramShard = Mutex<std::collections::HashMap<u64, Vec<u8>>>;

struct DramStore {
    shards: Box<[DramShard]>,
    value_size: usize,
}

impl DramStore {
    fn new(value_size: usize) -> DramStore {
        DramStore {
            shards: (0..64).map(|_| Mutex::new(Default::default())).collect(),
            value_size,
        }
    }
}

impl KvStore for DramStore {
    type Ctx = ();

    fn ctx(&self) {}

    fn put(&self, _ctx: &mut (), k: u64, seed: u64) {
        let mut shard = self.shards[(hash_u64(k) % 64) as usize].lock();
        let buf = shard.entry(k).or_insert_with(|| vec![0u8; self.value_size]);
        fill_value(buf, k, seed);
    }

    fn get(&self, _ctx: &mut (), k: u64) -> Option<u64> {
        self.shards[(hash_u64(k) % 64) as usize]
            .lock()
            .get(&k)
            .map(|v| checksum(v))
    }
}

// NVMM store: same structure, value blobs in an Optane-latency region.
struct NvmmStore {
    region: Arc<Region>,
    /// key → blob address.
    shards: Box<[Mutex<std::collections::HashMap<u64, u64>>]>,
    bump: AtomicU64,
    value_size: usize,
}

impl NvmmStore {
    fn new(region: Arc<Region>, value_size: usize) -> NvmmStore {
        NvmmStore {
            region,
            shards: (0..64).map(|_| Mutex::new(Default::default())).collect(),
            bump: AtomicU64::new(64),
            value_size,
        }
    }
}

impl KvStore for NvmmStore {
    type Ctx = Vec<u8>;

    fn ctx(&self) -> Vec<u8> {
        vec![0u8; self.value_size]
    }

    fn put(&self, buf: &mut Vec<u8>, k: u64, seed: u64) {
        fill_value(buf, k, seed);
        let mut shard = self.shards[(hash_u64(k) % 64) as usize].lock();
        let addr = *shard.entry(k).or_insert_with(|| {
            let a = self.bump.fetch_add(
                respct_pmem::align_up(self.value_size as u64, 64),
                Ordering::Relaxed,
            );
            assert!(
                a + self.value_size as u64 <= self.region.size() as u64,
                "NvmmStore full"
            );
            a
        });
        self.region.store_bytes(PAddr(addr), buf);
    }

    fn get(&self, buf: &mut Vec<u8>, k: u64) -> Option<u64> {
        let addr = *self.shards[(hash_u64(k) % 64) as usize].lock().get(&k)?;
        self.region.load_bytes(PAddr(addr), buf);
        Some(checksum(buf))
    }
}

// ResPCT store: persistent map + CoW blobs.
struct RespctStore {
    pool: Arc<Pool>,
    map: PHashMap,
    value_size: usize,
    blob_size: u64,
}

struct RespctCtx {
    handle: ThreadHandle,
    buf: Vec<u8>,
}

impl RespctStore {
    fn new(pool: Arc<Pool>, nbuckets: u64, value_size: usize) -> RespctStore {
        let h = pool.register();
        let map = PHashMap::create(&h, nbuckets);
        h.set_root(map.desc());
        drop(h);
        RespctStore {
            pool,
            map,
            value_size,
            blob_size: respct_pmem::align_up(value_size as u64, 64),
        }
    }
}

impl KvStore for RespctStore {
    type Ctx = RespctCtx;

    fn ctx(&self) -> RespctCtx {
        RespctCtx {
            handle: self.pool.register(),
            buf: vec![0u8; self.value_size],
        }
    }

    fn put(&self, ctx: &mut RespctCtx, k: u64, seed: u64) {
        let h = &ctx.handle;
        fill_value(&mut ctx.buf, k, seed);
        // Copy-on-write value: fresh blob, written + tracked while
        // unreachable (idempotent, no logging), then the map's value cell
        // swings to it (InCLL).
        let blob = h.alloc(self.blob_size, 64);
        self.pool.region().store_bytes(blob, &ctx.buf);
        h.add_modified(blob, self.value_size);
        if let Some(old) = self.map.get(h, k) {
            self.map.insert(h, k, blob.0);
            h.free(PAddr(old), self.blob_size);
        } else {
            self.map.insert(h, k, blob.0);
        }
        h.rp(RP_PUT);
    }

    fn get(&self, ctx: &mut RespctCtx, k: u64) -> Option<u64> {
        let h = &ctx.handle;
        let blob = self.map.get(h, k)?;
        self.pool.region().load_bytes(PAddr(blob), &mut ctx.buf);
        h.rp(RP_GET);
        Some(checksum(&ctx.buf))
    }

    fn blocked<R>(&self, ctx: &mut RespctCtx, block: impl FnOnce() -> R) -> R {
        // The guard's Drop re-arms prevention (waiting out any in-flight
        // checkpoint) once the blocking call returns.
        let _allow = ctx.handle.allow_checkpoints();
        block()
    }
}

// ---- The server harness ---------------------------------------------------------

fn serve<S: KvStore + 'static>(cfg: &KvConfig, store: Arc<S>) -> KvOutput {
    // Load phase.
    {
        let mut ctx = store.ctx();
        for k in 0..cfg.nkeys {
            store.put(&mut ctx, k, 0);
        }
    }
    let gets = AtomicU64::new(0);
    let puts = AtomicU64::new(0);
    // Sampled per-request service times (the paper also reports latency:
    // ResPCT's overhead stays within ~10 %).
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    // Per-worker request channels (key-sharded like Memcached).
    let mut senders: Vec<Sender<Op>> = Vec::new();
    let mut receivers = Vec::new();
    for _ in 0..cfg.workers {
        let (tx, rx) = bounded::<Op>(1024);
        senders.push(tx);
        receivers.push(rx);
    }
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for rx in receivers {
            let store = Arc::clone(&store);
            let (gets, puts) = (&gets, &puts);
            let latencies = &latencies;
            s.spawn(move || {
                let mut ctx = store.ctx();
                let mut seed = 1u64;
                let mut local_lat = Vec::new();
                let mut n = 0u64;
                loop {
                    // Blocking-call protocol around the blocking receive
                    // (§3.3.3): with the flag raised, a checkpoint can
                    // complete while this worker waits for requests.
                    let msg = store.blocked(&mut ctx, || rx.recv());
                    let Ok(op) = msg else { break };
                    // Sample every 32nd request's service time.
                    let t = n.is_multiple_of(32).then(Instant::now);
                    n += 1;
                    match op {
                        Op::Get(k) => {
                            let _ = store.get(&mut ctx, k);
                            gets.fetch_add(1, Ordering::Relaxed);
                        }
                        Op::Put(k) => {
                            seed += 1;
                            store.put(&mut ctx, k, seed);
                            puts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if let Some(t) = t {
                        local_lat.push(t.elapsed().as_nanos() as u64);
                    }
                }
                latencies.lock().append(&mut local_lat);
            });
        }
        // Clients generate the YCSB run phase.
        let workload = &cfg.workload;
        for c in 0..cfg.clients {
            let nworkers = cfg.workers;
            let ops = cfg.ops_per_client;
            let senders = senders.clone();
            s.spawn(move || {
                let mut rng = Workload::rng(0xc11e47 + c as u64);
                for _ in 0..ops {
                    let op = workload.next(&mut rng);
                    let key = match op {
                        Op::Get(k) | Op::Put(k) => k,
                    };
                    let w = (hash_u64(key) % nworkers as u64) as usize;
                    // Asynchronous writes: clients do not wait for
                    // durability (or even execution) of their requests.
                    if senders[w].send(op).is_err() {
                        break;
                    }
                }
            });
        }
        // Workers exit when the last client drops its sender clones.
        drop(senders);
    });
    let duration = t0.elapsed();
    let g = gets.load(Ordering::Relaxed);
    let p = puts.load(Ordering::Relaxed);
    let ops = g + p;
    let mut lat = latencies.into_inner();
    lat.sort_unstable();
    let pct = |q: f64| -> u64 {
        if lat.is_empty() {
            0
        } else {
            lat[((lat.len() - 1) as f64 * q) as usize]
        }
    };
    KvOutput {
        duration,
        ops,
        gets: g,
        puts: p,
        kops_per_sec: ops as f64 / duration.as_secs_f64() / 1e3,
        p50_ns: pct(0.5),
        p99_ns: pct(0.99),
    }
}

/// Runs the KV benchmark in the configured mode.
pub fn run(cfg: &KvConfig) -> KvOutput {
    match cfg.mode {
        Mode::TransientDram => serve(cfg, Arc::new(DramStore::new(cfg.value_size))),
        Mode::TransientNvmm => {
            let bytes = cfg.nkeys as usize * cfg.value_size.next_multiple_of(64) * 2 + (16 << 20);
            let region = Region::new(crate::backend::nvmm_config(bytes));
            serve(cfg, Arc::new(NvmmStore::new(region, cfg.value_size)))
        }
        Mode::Respct => run_respct(cfg, None),
    }
}

/// Runs the ResPCT mode with `sink` attached to the region before any pool
/// traffic — the analysis hook for the trace checker and the
/// happens-before race detector.
pub fn run_traced(cfg: &KvConfig, sink: Arc<dyn respct_pmem::TraceSink>) -> KvOutput {
    run_respct(cfg, Some(sink))
}

fn run_respct(cfg: &KvConfig, sink: Option<Arc<dyn respct_pmem::TraceSink>>) -> KvOutput {
    // CoW blobs churn the heap: budget generously (puts between
    // checkpoints hold blobs until the deferred free drains).
    let bytes = cfg.nkeys as usize * cfg.value_size.next_multiple_of(64) * 8 + (64 << 20);
    let region = Region::new(crate::backend::nvmm_config(bytes));
    if let Some(sink) = sink {
        region.set_trace_sink(sink);
    }
    let pool = Pool::create(region, crate::backend::pool_config()).expect("pool");
    let _ckpt = pool.start_checkpointer(cfg.ckpt_period);
    let store = Arc::new(RespctStore::new(
        Arc::clone(&pool),
        cfg.nkeys / 2 + 1,
        cfg.value_size,
    ));
    serve(cfg, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct_pmem::RegionConfig;

    #[test]
    fn all_modes_complete_all_ops() {
        for mode in Mode::ALL {
            let cfg = KvConfig {
                ops_per_client: 500,
                ..KvConfig::small(mode)
            };
            let out = run(&cfg);
            assert_eq!(
                out.ops,
                (cfg.clients * cfg.ops_per_client) as u64,
                "{mode:?}"
            );
            assert!(out.gets > 0 && out.puts > 0, "{mode:?}");
        }
    }

    #[test]
    fn respct_store_roundtrip() {
        let region = Region::new(RegionConfig::fast(64 << 20));
        let pool = Pool::create(region, crate::backend::pool_config()).expect("pool");
        let store = RespctStore::new(Arc::clone(&pool), 64, 100);
        let mut ctx = store.ctx();
        store.put(&mut ctx, 5, 1);
        let c1 = store.get(&mut ctx, 5).unwrap();
        // Same key/seed elsewhere must produce the same checksum.
        let mut buf = vec![0u8; 100];
        fill_value(&mut buf, 5, 1);
        assert_eq!(c1, checksum(&buf));
        assert_eq!(store.get(&mut ctx, 999), None);
        // Overwrite changes the value.
        store.put(&mut ctx, 5, 2);
        assert_ne!(store.get(&mut ctx, 5).unwrap(), c1);
    }

    #[test]
    fn dram_and_nvmm_stores_agree() {
        let d = DramStore::new(100);
        let region = Region::new(RegionConfig::fast(8 << 20));
        let n = NvmmStore::new(region, 100);
        d.ctx();
        let mut nc = n.ctx();
        for k in 0..50 {
            d.put(&mut (), k, k + 1);
            n.put(&mut nc, k, k + 1);
        }
        for k in 0..50 {
            assert_eq!(d.get(&mut (), k), n.get(&mut nc, k));
        }
    }
}
