//! Memcached-like key-value store benchmark harness (paper §5.3, Fig. 14).
//!
//! The paper modifies Memcached to keep its hash table of key-value objects
//! in NVMM and drives it with YCSB through 32 clients and 4 server worker
//! threads, measuring the *asynchronous writes* configuration (a response
//! returns before the object is durable — RocksDB's default consistency).
//! The network stack is not what that experiment measures, so this harness
//! keeps the store and the workload and replaces TCP with in-process
//! request queues: client threads push requests into per-worker channels
//! (sharded by key, as Memcached shards its hash table), workers execute
//! them against the store.
//!
//! The store itself is [`crate::kv::service::KvService`] — the same
//! transport-agnostic service the real TCP server (`respct-kvd`,
//! [`crate::kv::server`]) runs on; this file owns only threads and
//! channels. Workers follow the service's batch discipline: up to
//! [`BATCH`] queued requests per [`KvService::apply`] run, one restart
//! point per batch via [`KvService::end_batch`], and the §3.3.3
//! blocking-call protocol around the queue receive.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use respct_ds::hash_u64;

use crate::kv::service::KvService;
use crate::kv::{fill_value, Durability, KvRequest, KvServerConfig};
use crate::ycsb::{Op, Workload};
use crate::Mode;

/// Requests per worker batch (one RP per batch, as on the TCP path).
const BATCH: usize = 16;

/// Configuration for one KV benchmark run — a thin view over
/// [`KvServerConfig`] (see [`KvConfig::server`]) plus the workload shape.
#[derive(Debug, Clone)]
pub struct KvConfig {
    pub nkeys: u64,
    pub value_size: usize,
    /// Server worker threads (paper: 4).
    pub workers: usize,
    /// Client threads (paper: 32).
    pub clients: usize,
    /// Requests per client in the run phase.
    pub ops_per_client: usize,
    pub workload: Workload,
    pub mode: Mode,
    pub ckpt_period: Duration,
}

impl KvConfig {
    /// A small default suitable for tests.
    pub fn small(mode: Mode) -> KvConfig {
        KvConfig {
            nkeys: 2_000,
            value_size: 100,
            workers: 2,
            clients: 4,
            ops_per_client: 2_000,
            workload: Workload::balanced(2_000),
            mode,
            ckpt_period: Duration::from_millis(16),
        }
    }

    /// The [`KvServerConfig`] this run maps to: the paper's asynchronous
    /// writes, a heap budgeted for CoW churn (puts between checkpoints
    /// hold blobs until the deferred free drains), and the hot-path
    /// histograms off — the harness samples its own latencies.
    pub fn server(&self) -> KvServerConfig {
        let blob = (8 + self.value_size).next_multiple_of(64);
        KvServerConfig::builder()
            .mode(self.mode)
            .workers(self.workers)
            .max_batch(BATCH)
            .max_value_len(self.value_size.max(1))
            .nbuckets(self.nkeys / 2 + 1)
            .pool_bytes(self.nkeys as usize * blob * 8 + (64 << 20))
            .durability(Durability::Async)
            .ckpt_period(Some(self.ckpt_period))
            .metrics(false)
            .build()
            .expect("KvConfig maps to a valid server config")
    }
}

/// Result of a run.
#[derive(Debug, Clone, Copy)]
pub struct KvOutput {
    pub duration: Duration,
    pub ops: u64,
    pub gets: u64,
    pub puts: u64,
    pub kops_per_sec: f64,
    /// Median per-request service time (sampled), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile per-request service time (sampled), nanoseconds.
    pub p99_ns: u64,
}

// ---- The server harness ---------------------------------------------------------

fn serve(cfg: &KvConfig, svc: &Arc<KvService>) -> KvOutput {
    // Load phase: one batch discipline even here.
    {
        let mut ctx = svc.worker_ctx();
        let mut value = vec![0u8; cfg.value_size];
        for k in 0..cfg.nkeys {
            fill_value(&mut value, k, 0);
            svc.apply(
                &mut ctx,
                &KvRequest::Put {
                    key: k,
                    value: value.clone(),
                },
            );
            if k % BATCH as u64 == BATCH as u64 - 1 {
                svc.end_batch(&mut ctx, true, BATCH);
            }
        }
        svc.end_batch(&mut ctx, true, (cfg.nkeys as usize) % BATCH);
    }
    let gets = AtomicU64::new(0);
    let puts = AtomicU64::new(0);
    // Sampled per-request service times (the paper also reports latency:
    // ResPCT's overhead stays within ~10 %).
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    // Per-worker request channels (key-sharded like Memcached).
    let mut senders: Vec<Sender<Op>> = Vec::new();
    let mut receivers = Vec::new();
    for _ in 0..cfg.workers {
        let (tx, rx) = bounded::<Op>(1024);
        senders.push(tx);
        receivers.push(rx);
    }
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for rx in receivers {
            let svc = Arc::clone(svc);
            let (gets, puts) = (&gets, &puts);
            let latencies = &latencies;
            let value_size = cfg.value_size;
            s.spawn(move || {
                let mut ctx = svc.worker_ctx();
                let mut seed = 1u64;
                let mut local_lat = Vec::new();
                let mut n = 0u64;
                let mut batch: Vec<Op> = Vec::with_capacity(BATCH);
                loop {
                    // Blocking-call protocol around the blocking receive
                    // (§3.3.3): with the flag raised, a checkpoint can
                    // complete while this worker waits for requests.
                    let msg = svc.blocked(&mut ctx, || rx.recv());
                    let Ok(op) = msg else { break };
                    batch.push(op);
                    while batch.len() < BATCH {
                        let Ok(op) = rx.try_recv() else { break };
                        batch.push(op);
                    }
                    let len = batch.len();
                    let mut wrote = false;
                    for op in batch.drain(..) {
                        // Sample every 32nd request's service time.
                        let t = n.is_multiple_of(32).then(Instant::now);
                        n += 1;
                        match op {
                            Op::Get(k) => {
                                let _ = svc.apply(&mut ctx, &KvRequest::Get { key: k });
                                gets.fetch_add(1, Ordering::Relaxed);
                            }
                            Op::Put(k) => {
                                seed += 1;
                                let mut value = vec![0u8; value_size];
                                fill_value(&mut value, k, seed);
                                svc.apply(&mut ctx, &KvRequest::Put { key: k, value });
                                puts.fetch_add(1, Ordering::Relaxed);
                                wrote = true;
                            }
                        }
                        if let Some(t) = t {
                            local_lat.push(t.elapsed().as_nanos() as u64);
                        }
                    }
                    svc.end_batch(&mut ctx, wrote, len);
                }
                latencies.lock().append(&mut local_lat);
            });
        }
        // Clients generate the YCSB run phase.
        let workload = &cfg.workload;
        for c in 0..cfg.clients {
            let nworkers = cfg.workers;
            let ops = cfg.ops_per_client;
            let senders = senders.clone();
            s.spawn(move || {
                let mut rng = Workload::rng(0xc11e47 + c as u64);
                for _ in 0..ops {
                    let op = workload.next(&mut rng);
                    let key = match op {
                        Op::Get(k) | Op::Put(k) => k,
                    };
                    let w = (hash_u64(key) % nworkers as u64) as usize;
                    // Asynchronous writes: clients do not wait for
                    // durability (or even execution) of their requests.
                    if senders[w].send(op).is_err() {
                        break;
                    }
                }
            });
        }
        // Workers exit when the last client drops its sender clones.
        drop(senders);
    });
    let duration = t0.elapsed();
    let g = gets.load(Ordering::Relaxed);
    let p = puts.load(Ordering::Relaxed);
    let ops = g + p;
    let mut lat = latencies.into_inner();
    lat.sort_unstable();
    let pct = |q: f64| -> u64 {
        if lat.is_empty() {
            0
        } else {
            lat[((lat.len() - 1) as f64 * q) as usize]
        }
    };
    KvOutput {
        duration,
        ops,
        gets: g,
        puts: p,
        kops_per_sec: ops as f64 / duration.as_secs_f64() / 1e3,
        p50_ns: pct(0.5),
        p99_ns: pct(0.99),
    }
}

/// Runs the KV benchmark in the configured mode.
pub fn run(cfg: &KvConfig) -> KvOutput {
    let (svc, _) = KvService::open(cfg.server()).expect("kv service");
    serve(cfg, &svc)
}

/// Runs the ResPCT mode with `sink` attached to the region before any pool
/// traffic — the analysis hook for the trace checker and the
/// happens-before race detector.
pub fn run_traced(cfg: &KvConfig, sink: Arc<dyn respct_pmem::TraceSink>) -> KvOutput {
    let (svc, _) = KvService::open_with_sink(cfg.server(), Some(sink)).expect("kv service");
    serve(cfg, &svc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_complete_all_ops() {
        for mode in Mode::ALL {
            let cfg = KvConfig {
                ops_per_client: 500,
                ..KvConfig::small(mode)
            };
            let out = run(&cfg);
            assert_eq!(
                out.ops,
                (cfg.clients * cfg.ops_per_client) as u64,
                "{mode:?}"
            );
            assert!(out.gets > 0 && out.puts > 0, "{mode:?}");
        }
    }

    #[test]
    fn config_maps_to_valid_server_view() {
        let cfg = KvConfig::small(Mode::Respct);
        let server = cfg.server();
        assert_eq!(server.mode(), Mode::Respct);
        assert_eq!(server.workers(), cfg.workers);
        assert_eq!(server.durability(), Durability::Async);
        assert_eq!(server.ckpt_period(), Some(cfg.ckpt_period));
        assert!(server.pool_bytes() > 64 << 20);
    }
}
