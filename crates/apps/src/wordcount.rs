//! Word count (Phoenix's flagship MapReduce benchmark).
//!
//! The Phoenix suite the paper samples from (§5.3) is built around
//! MapReduce kernels; word count is its canonical member and exercises a
//! different ResPCT pattern than LR/MatMul: a *shared* persistent hash map
//! (word → count) updated under per-bucket locks by all mappers, combined
//! with per-thread persistent progress cursors. Counts are
//! read-modify-write shared variables (WAR under locks) → the map's InCLL
//! value cells; cursors are per-thread InCLL cells; RPs follow each input
//! block.

use std::sync::Arc;
use std::time::{Duration, Instant};

use respct::{Pool, RpId};
use respct_ds::{PHashMap, TransientHashMap};
use respct_pmem::{Region, RegionConfig};

use crate::Mode;

/// RP base: worker `t` declares `RP_BLOCK_DONE.offset(t)` per text block.
const RP_BLOCK_DONE: RpId = RpId(700);

/// Configuration for one word-count run.
#[derive(Debug, Clone, Copy)]
pub struct WordCountConfig {
    /// Number of synthetic "documents" (input blocks).
    pub blocks: usize,
    /// Words per block.
    pub words_per_block: usize,
    /// Vocabulary size (distinct words, as integer ids).
    pub vocab: u64,
    pub threads: usize,
    pub mode: Mode,
    pub ckpt_period: Duration,
}

impl Default for WordCountConfig {
    fn default() -> Self {
        WordCountConfig {
            blocks: 200,
            words_per_block: 500,
            vocab: 1_000,
            threads: 2,
            mode: Mode::TransientDram,
            ckpt_period: Duration::from_millis(64),
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct WordCountOutput {
    pub duration: Duration,
    /// Total words counted (Σ counts).
    pub total: u64,
    /// Count of word 0 (spot verification).
    pub count_word0: u64,
}

/// Deterministic word id for position `w` of block `b` — zipf-ish skew so
/// hot words contend on their buckets like real text.
#[inline]
fn word_at(b: usize, w: usize, vocab: u64) -> u64 {
    let mut x = (b as u64) << 32 | w as u64;
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    // Square the uniform to skew toward small ids.
    let u = (x % 1_000_000) as f64 / 1_000_000.0;
    ((u * u) * vocab as f64) as u64 % vocab
}

/// Runs word count in the configured mode.
pub fn run(cfg: WordCountConfig) -> WordCountOutput {
    match cfg.mode {
        Mode::TransientDram | Mode::TransientNvmm => run_transient(cfg),
        Mode::Respct => run_respct(cfg, None),
    }
}

fn run_transient(cfg: WordCountConfig) -> WordCountOutput {
    // NVMM-mode tax: stream counts through an Optane-latency region.
    let tax = (cfg.mode == Mode::TransientNvmm).then(|| Region::new(RegionConfig::optane(1 << 20)));
    let map = TransientHashMap::new((cfg.vocab / 2).max(8) as usize);
    let per = cfg.blocks.div_ceil(cfg.threads);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let map = &map;
            let tax = tax.clone();
            s.spawn(move || {
                let lo = t * per;
                let hi = ((t + 1) * per).min(cfg.blocks);
                for b in lo..hi {
                    for w in 0..cfg.words_per_block {
                        let word = word_at(b, w, cfg.vocab);
                        let cur = map.fetch_add(word, 1);
                        if let Some(r) = &tax {
                            r.store(respct_pmem::PAddr(64 + (t as u64) * 64), cur);
                        }
                    }
                }
            });
        }
    });
    finish(t0, |word| map.get(word).unwrap_or(0), cfg.vocab)
}

/// Runs the ResPCT mode with `sink` attached to the region before any
/// pool traffic — the analysis hook for the trace checker and the
/// happens-before race detector.
pub fn run_traced(cfg: WordCountConfig, sink: Arc<dyn respct_pmem::TraceSink>) -> WordCountOutput {
    run_respct(cfg, Some(sink))
}

fn run_respct(
    cfg: WordCountConfig,
    sink: Option<Arc<dyn respct_pmem::TraceSink>>,
) -> WordCountOutput {
    let region = Region::new(crate::backend::nvmm_config(256 << 20));
    if let Some(sink) = sink {
        region.set_trace_sink(sink);
    }
    let pool = Pool::create(Arc::clone(&region), crate::backend::pool_config()).expect("pool");
    let map = {
        let h = pool.register();
        let m = PHashMap::create(&h, (cfg.vocab / 2).max(8));
        h.set_root(m.desc());
        m
    };
    let map = Arc::new(map);
    let _ckpt = pool.start_checkpointer(cfg.ckpt_period);
    let per = cfg.blocks.div_ceil(cfg.threads);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let (pool, map) = (Arc::clone(&pool), Arc::clone(&map));
            s.spawn(move || {
                let h = pool.register();
                let lo = t * per;
                let hi = ((t + 1) * per).min(cfg.blocks);
                // Persistent cursor: blocks completed by this thread.
                let cursor = h.alloc_cell(lo as u64);
                let start = h.get(cursor) as usize;
                for b in start..hi {
                    for w in 0..cfg.words_per_block {
                        let word = word_at(b, w, cfg.vocab);
                        // Read-modify-write under a single bucket-lock
                        // hold: the value cell is InCLL, so the increment
                        // is logged once per epoch and never flushed.
                        map.fetch_add(&h, word, 1);
                    }
                    // Block finished: advance the cursor, declare an RP.
                    h.update(cursor, (b + 1) as u64);
                    h.rp(RP_BLOCK_DONE.offset(t as u64));
                }
            });
        }
    });
    let h = pool.register();
    finish(t0, |word| map.get(&h, word).unwrap_or(0), cfg.vocab)
}

fn finish(t0: Instant, get: impl Fn(u64) -> u64, vocab: u64) -> WordCountOutput {
    let duration = t0.elapsed();
    let mut total = 0;
    for word in 0..vocab {
        total += get(word);
    }
    WordCountOutput {
        duration,
        total,
        count_word0: get(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_word_once() {
        let cfg = WordCountConfig {
            blocks: 50,
            words_per_block: 200,
            ..Default::default()
        };
        let out = run(cfg);
        assert_eq!(out.total, 50 * 200);
    }

    #[test]
    fn all_modes_agree() {
        let base = WordCountConfig {
            blocks: 40,
            words_per_block: 100,
            vocab: 200,
            threads: 2,
            ckpt_period: Duration::from_millis(4),
            ..Default::default()
        };
        let reference = run(WordCountConfig {
            mode: Mode::TransientDram,
            ..base
        });
        for mode in [Mode::TransientNvmm, Mode::Respct] {
            let out = run(WordCountConfig { mode, ..base });
            assert_eq!(out.total, reference.total, "{mode:?}");
            assert_eq!(out.count_word0, reference.count_word0, "{mode:?}");
        }
    }

    #[test]
    fn word_distribution_is_skewed() {
        let mut counts = vec![0u32; 100];
        for b in 0..100 {
            for w in 0..100 {
                counts[(word_at(b, w, 100)) as usize] += 1;
            }
        }
        assert!(counts[0] + counts[1] > counts[98] + counts[99]);
    }
}
