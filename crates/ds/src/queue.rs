//! Persistent single-lock FIFO queue under ResPCT.
//!
//! The paper's queue micro-benchmark: a linked queue of 8-byte elements
//! protected by one mutex (§5.1). Head and tail pointers are WAR variables
//! (read, then rewritten, with RPs between operations) → InCLL cells. The
//! payload and the initial link of a fresh node are written once while the
//! node is unreachable → plain tracked stores. The link of the *previous
//! tail*, however, is rewritten after having been read earlier in the epoch
//! → InCLL cell.
//!
//! Node layout (one 32-byte class block, never straddling a line):
//!
//! ```text
//! 0..8    value (plain)
//! 8..32   next  ICell<u64> (PAddr of next node, 0 = end)
//! ```
//!
//! Descriptor layout (64 bytes): `head` cell at 0, `tail` cell at 32.

use std::sync::Arc;

use respct::{ICell, PAddr, Pool, ThreadHandle, TracedMutex};

const NODE_SIZE: u64 = 32;
const NODE_VAL: u64 = 0;
const NODE_NEXT: u64 = 8;

const DESC_SIZE: u64 = 64;
const DESC_HEAD: u64 = 0;
const DESC_TAIL: u64 = 32;

/// A persistent FIFO queue of `u64` values. See the module docs.
pub struct PQueue {
    pool: Arc<Pool>,
    desc: PAddr,
    lock: TracedMutex<()>,
}

#[inline]
fn next_cell(node: u64) -> ICell<u64> {
    ICell::from_addr(PAddr(node + NODE_NEXT))
}

impl PQueue {
    /// Creates an empty queue; keep `desc()` reachable from the pool root.
    pub fn create(h: &ThreadHandle) -> PQueue {
        let desc = h.alloc(DESC_SIZE, 64);
        h.init_cell_at::<u64>(PAddr(desc.0 + DESC_HEAD), 0);
        h.init_cell_at::<u64>(PAddr(desc.0 + DESC_TAIL), 0);
        PQueue {
            lock: TracedMutex::new(h.pool(), ()),
            pool: Arc::clone(h.pool()),
            desc,
        }
    }

    /// Re-opens a queue from its descriptor (after recovery).
    pub fn open(pool: &Arc<Pool>, desc: PAddr) -> PQueue {
        PQueue {
            lock: TracedMutex::new(pool, ()),
            pool: Arc::clone(pool),
            desc,
        }
    }

    /// Persistent descriptor address.
    pub fn desc(&self) -> PAddr {
        self.desc
    }

    #[inline]
    fn head_cell(&self) -> ICell<u64> {
        ICell::from_addr(PAddr(self.desc.0 + DESC_HEAD))
    }

    #[inline]
    fn tail_cell(&self) -> ICell<u64> {
        ICell::from_addr(PAddr(self.desc.0 + DESC_TAIL))
    }

    /// Appends `v`.
    pub fn enqueue(&self, h: &ThreadHandle, v: u64) {
        let _g = self.lock.lock();
        let node = h.alloc(NODE_SIZE, 32);
        h.store_tracked(PAddr(node.0 + NODE_VAL), v);
        h.init_cell_at::<u64>(PAddr(node.0 + NODE_NEXT), 0);
        let tail = h.get(self.tail_cell());
        if tail == 0 {
            h.update(self.head_cell(), node.0);
        } else {
            h.update(next_cell(tail), node.0);
        }
        h.update(self.tail_cell(), node.0);
    }

    /// Pops the oldest value, if any.
    pub fn dequeue(&self, h: &ThreadHandle) -> Option<u64> {
        let _g = self.lock.lock();
        let head = h.get(self.head_cell());
        if head == 0 {
            return None;
        }
        let v: u64 = self.pool.region().load(PAddr(head + NODE_VAL));
        let next = h.get(next_cell(head));
        h.update(self.head_cell(), next);
        if next == 0 {
            h.update(self.tail_cell(), 0);
        }
        h.free(PAddr(head), NODE_SIZE);
        Some(v)
    }

    /// Collects the queue front-to-back (verification).
    pub fn collect(&self) -> Vec<u64> {
        let _g = self.lock.lock();
        let region = self.pool.region();
        let mut out = Vec::new();
        let mut cur = self.pool.cell_get(self.head_cell());
        while cur != 0 {
            out.push(region.load(PAddr(cur + NODE_VAL)));
            cur = self.pool.cell_get(next_cell(cur));
        }
        out
    }

    /// Number of queued elements (walks the list).
    pub fn len(&self) -> usize {
        self.collect().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.pool.cell_get(self.head_cell()) == 0
    }
}

impl crate::traits::BenchQueue for PQueue {
    type Ctx = ThreadHandle;

    fn register(&self) -> ThreadHandle {
        self.pool.register()
    }

    fn enqueue(&self, ctx: &mut ThreadHandle, v: u64) {
        PQueue::enqueue(self, ctx, v);
        ctx.rp(crate::rp_ids::QUEUE_ENQ);
    }

    fn dequeue(&self, ctx: &mut ThreadHandle) -> Option<u64> {
        let r = PQueue::dequeue(self, ctx);
        ctx.rp(crate::rp_ids::QUEUE_DEQ);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct::PoolConfig;
    use respct_pmem::{Region, RegionConfig};

    fn setup() -> (Arc<Pool>, ThreadHandle, PQueue) {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(32 << 20)),
            PoolConfig::default(),
        )
        .expect("pool");
        let h = pool.register();
        let q = PQueue::create(&h);
        (pool, h, q)
    }

    #[test]
    fn fifo_order() {
        let (_p, h, q) = setup();
        assert!(q.is_empty());
        assert_eq!(q.dequeue(&h), None);
        for v in 1..=5 {
            q.enqueue(&h, v);
        }
        assert_eq!(q.collect(), vec![1, 2, 3, 4, 5]);
        for v in 1..=5 {
            assert_eq!(q.dequeue(&h), Some(v));
        }
        assert!(q.is_empty());
        // Tail reset: enqueue after drain works.
        q.enqueue(&h, 9);
        assert_eq!(q.dequeue(&h), Some(9));
    }

    #[test]
    fn interleaved_enq_deq() {
        let (_p, h, q) = setup();
        let mut expect = std::collections::VecDeque::new();
        for i in 0..1000u64 {
            q.enqueue(&h, i);
            expect.push_back(i);
            if i % 3 == 0 {
                assert_eq!(q.dequeue(&h), expect.pop_front());
            }
        }
        assert_eq!(q.collect(), expect.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_producers_consumers() {
        let (pool, h, q) = setup();
        for v in 0..1000u64 {
            q.enqueue(&h, v);
        }
        drop(h);
        let q = Arc::new(q);
        let total = std::sync::atomic::AtomicU64::new(0);
        let popped = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (q, pool) = (Arc::clone(&q), Arc::clone(&pool));
                let (total, popped) = (&total, &popped);
                s.spawn(move || {
                    let h = pool.register();
                    for _ in 0..500 {
                        if let Some(v) = q.dequeue(&h) {
                            total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                            popped.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(popped.load(std::sync::atomic::Ordering::Relaxed), 1000);
        assert_eq!(
            total.load(std::sync::atomic::Ordering::Relaxed),
            999 * 1000 / 2
        );
        assert!(q.is_empty());
    }

    #[test]
    fn crash_recovers_to_checkpoint() {
        let region = Region::new(respct_pmem::RegionConfig::sim(
            32 << 20,
            respct_pmem::SimConfig::with_eviction(4, 7),
        ));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).expect("pool");
        let h = pool.register();
        let q = PQueue::create(&h);
        for v in 1..=10u64 {
            q.enqueue(&h, v);
        }
        q.dequeue(&h);
        h.set_root(q.desc());
        h.checkpoint_here(); // durable: [2..=10]
        for v in 100..110u64 {
            q.enqueue(&h, v);
        }
        q.dequeue(&h);
        q.dequeue(&h);
        drop(h);
        drop(q);
        drop(pool);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        region.restore(&img);
        let (pool2, _) =
            Pool::recover(Arc::clone(&region), PoolConfig::default()).expect("recover");
        let q2 = PQueue::open(&pool2, pool2.root());
        assert_eq!(q2.collect(), (2..=10).collect::<Vec<u64>>());
        // The queue remains usable after recovery.
        let h2 = pool2.register();
        q2.enqueue(&h2, 42);
        assert_eq!(q2.dequeue(&h2), Some(2));
    }
}
