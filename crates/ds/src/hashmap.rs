//! Persistent lock-per-bucket hash map under ResPCT.
//!
//! Mirrors the Synch-framework hash map used in the paper's §5.1: one
//! pthread-style mutex per bucket, separate chaining, 8-byte keys and
//! values. Persistence per the RP rules of §3.3.2 (an RP follows every
//! operation, placed by the benchmark adapter):
//!
//! * **bucket head pointers** — read, then possibly rewritten, within an
//!   epoch (WAR) → InCLL cells;
//! * **values** — overwritten in place on update; a crashed epoch must roll
//!   them back to the checkpointed state → InCLL cells;
//! * **keys and the initial link of a fresh node** — written exactly once
//!   while the node is unreachable → plain stores + `add_modified`;
//! * **bucket locks** — volatile (checkpoints never run inside a critical
//!   section, so lock state need not persist).
//!
//! Node layout (one 64-byte class block, i.e. exactly one cache line):
//!
//! ```text
//! 0..8    key (plain)
//! 8..32   value  ICell<u64>
//! 32..56  next   ICell<u64> (PAddr of next node, 0 = end)
//! ```

use std::sync::Arc;

use respct::{ICell, PAddr, Pool, ThreadHandle, TracedMutex};

use crate::hash_u64;

const NODE_SIZE: u64 = 64;
const NODE_KEY: u64 = 0;
const NODE_VAL: u64 = 8;
const NODE_NEXT: u64 = 32;

const DESC_SIZE: u64 = 64;
const DESC_NBUCKETS: u64 = 0;
const DESC_BUCKETS: u64 = 8;

/// Byte stride of one bucket head cell.
const BUCKET_STRIDE: u64 = 32;

/// A persistent hash map (`u64 → u64`). See the module docs.
pub struct PHashMap {
    pool: Arc<Pool>,
    desc: PAddr,
    nbuckets: u64,
    buckets: PAddr,
    locks: Box<[TracedMutex<()>]>,
}

#[inline]
fn val_cell(node: u64) -> ICell<u64> {
    ICell::from_addr(PAddr(node + NODE_VAL))
}

#[inline]
fn next_cell(node: u64) -> ICell<u64> {
    ICell::from_addr(PAddr(node + NODE_NEXT))
}

impl PHashMap {
    /// Creates a map with `nbuckets` buckets in `h`'s pool and returns it
    /// together with its persistent descriptor address (store it in the
    /// pool root to find the map after recovery).
    pub fn create(h: &ThreadHandle, nbuckets: u64) -> PHashMap {
        assert!(nbuckets > 0);
        let desc = h.alloc(DESC_SIZE, 64);
        let buckets = h.alloc(nbuckets * BUCKET_STRIDE, 64);
        for b in 0..nbuckets {
            h.init_cell_at::<u64>(PAddr(buckets.0 + b * BUCKET_STRIDE), 0);
        }
        h.store_tracked(PAddr(desc.0 + DESC_NBUCKETS), nbuckets);
        h.store_tracked(PAddr(desc.0 + DESC_BUCKETS), buckets.0);
        Self::build(Arc::clone(h.pool()), desc, nbuckets, buckets)
    }

    /// Re-opens a map from its descriptor (after recovery).
    pub fn open(pool: &Arc<Pool>, desc: PAddr) -> PHashMap {
        let nbuckets: u64 = pool.region().load(PAddr(desc.0 + DESC_NBUCKETS));
        let buckets: u64 = pool.region().load(PAddr(desc.0 + DESC_BUCKETS));
        assert!(
            nbuckets > 0,
            "descriptor at {desc:?} is not an initialized map"
        );
        Self::build(Arc::clone(pool), desc, nbuckets, PAddr(buckets))
    }

    fn build(pool: Arc<Pool>, desc: PAddr, nbuckets: u64, buckets: PAddr) -> PHashMap {
        let locks = (0..nbuckets)
            .map(|_| TracedMutex::new(&pool, ()))
            .collect::<Vec<_>>();
        PHashMap {
            pool,
            desc,
            nbuckets,
            buckets,
            locks: locks.into_boxed_slice(),
        }
    }

    /// Persistent descriptor address.
    pub fn desc(&self) -> PAddr {
        self.desc
    }

    /// Number of buckets.
    pub fn nbuckets(&self) -> u64 {
        self.nbuckets
    }

    #[inline]
    fn bucket_cell(&self, b: u64) -> ICell<u64> {
        ICell::from_addr(PAddr(self.buckets.0 + b * BUCKET_STRIDE))
    }

    #[inline]
    fn bucket_of(&self, k: u64) -> u64 {
        hash_u64(k) % self.nbuckets
    }

    /// Inserts `k → v`, updating in place if present. Returns `true` when
    /// the key was newly inserted.
    pub fn insert(&self, h: &ThreadHandle, k: u64, v: u64) -> bool {
        self.replace(h, k, v).is_none()
    }

    /// Inserts `k → v` and returns the value it displaced, all under one
    /// bucket-lock hold. When values are addresses of out-of-band payloads
    /// (as in the KV store's copy-on-write blobs), the atomic read-and-swap
    /// is what lets the caller free the old payload exactly once even when
    /// several threads race on the same key.
    pub fn replace(&self, h: &ThreadHandle, k: u64, v: u64) -> Option<u64> {
        let b = self.bucket_of(k);
        let _g = self.locks[b as usize].lock();
        let head = self.bucket_cell(b);
        let region = self.pool.region();
        let mut cur = h.get(head);
        while cur != 0 {
            let key: u64 = region.load(PAddr(cur + NODE_KEY));
            if key == k {
                let old = h.get(val_cell(cur));
                h.update(val_cell(cur), v);
                return Some(old);
            }
            cur = h.get(next_cell(cur));
        }
        let node = h.alloc(NODE_SIZE, 64);
        h.store_tracked(PAddr(node.0 + NODE_KEY), k);
        h.init_cell_at::<u64>(PAddr(node.0 + NODE_VAL), v);
        h.init_cell_at::<u64>(PAddr(node.0 + NODE_NEXT), h.get(head));
        h.update(head, node.0);
        None
    }

    /// Removes `k`. Returns `true` if it was present.
    pub fn remove(&self, h: &ThreadHandle, k: u64) -> bool {
        self.remove_entry(h, k).is_some()
    }

    /// Removes `k` and returns the value it held, under one bucket-lock
    /// hold (the removal twin of [`replace`](Self::replace)).
    pub fn remove_entry(&self, h: &ThreadHandle, k: u64) -> Option<u64> {
        let b = self.bucket_of(k);
        let _g = self.locks[b as usize].lock();
        let head = self.bucket_cell(b);
        let region = self.pool.region();
        let mut prev: u64 = 0;
        let mut cur = h.get(head);
        while cur != 0 {
            let key: u64 = region.load(PAddr(cur + NODE_KEY));
            let next = h.get(next_cell(cur));
            if key == k {
                let old = h.get(val_cell(cur));
                if prev == 0 {
                    h.update(head, next);
                } else {
                    h.update(next_cell(prev), next);
                }
                h.free(PAddr(cur), NODE_SIZE);
                return Some(old);
            }
            prev = cur;
            cur = next;
        }
        None
    }

    /// Atomically adds `delta` to `k`'s value (inserting `delta` if the
    /// key is absent) under a single bucket-lock hold, and returns the new
    /// value. The read-modify-write of the value cell is a WAR access, so
    /// it goes through `update_InCLL`.
    pub fn fetch_add(&self, h: &ThreadHandle, k: u64, delta: u64) -> u64 {
        let b = self.bucket_of(k);
        let _g = self.locks[b as usize].lock();
        let head = self.bucket_cell(b);
        let region = self.pool.region();
        let mut cur = h.get(head);
        while cur != 0 {
            let key: u64 = region.load(PAddr(cur + NODE_KEY));
            if key == k {
                let new = h.get(val_cell(cur)) + delta;
                h.update(val_cell(cur), new);
                return new;
            }
            cur = h.get(next_cell(cur));
        }
        let node = h.alloc(NODE_SIZE, 64);
        h.store_tracked(PAddr(node.0 + NODE_KEY), k);
        h.init_cell_at::<u64>(PAddr(node.0 + NODE_VAL), delta);
        h.init_cell_at::<u64>(PAddr(node.0 + NODE_NEXT), h.get(head));
        h.update(head, node.0);
        delta
    }

    /// Looks up `k`.
    pub fn get(&self, h: &ThreadHandle, k: u64) -> Option<u64> {
        let b = self.bucket_of(k);
        let _g = self.locks[b as usize].lock();
        let region = self.pool.region();
        let mut cur = h.get(self.bucket_cell(b));
        while cur != 0 {
            let key: u64 = region.load(PAddr(cur + NODE_KEY));
            if key == k {
                return Some(h.get(val_cell(cur)));
            }
            cur = h.get(next_cell(cur));
        }
        None
    }

    /// Collects every key/value pair (single-threaded use: verification and
    /// post-recovery checks).
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let region = self.pool.region();
        let mut out = Vec::new();
        for b in 0..self.nbuckets {
            let _g = self.locks[b as usize].lock();
            let mut cur = self.pool.cell_get(self.bucket_cell(b));
            while cur != 0 {
                let key: u64 = region.load(PAddr(cur + NODE_KEY));
                let val: u64 = self.pool.cell_get(val_cell(cur));
                out.push((key, val));
                cur = self.pool.cell_get(next_cell(cur));
            }
        }
        out
    }

    /// Number of stored pairs (walks every chain).
    pub fn len(&self) -> usize {
        self.collect().len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl crate::traits::BenchMap for PHashMap {
    type Ctx = ThreadHandle;

    fn register(&self) -> ThreadHandle {
        self.pool.register()
    }

    fn insert(&self, ctx: &mut ThreadHandle, k: u64, v: u64) -> bool {
        let r = PHashMap::insert(self, ctx, k, v);
        ctx.rp(crate::rp_ids::MAP_INSERT);
        r
    }

    fn remove(&self, ctx: &mut ThreadHandle, k: u64) -> bool {
        let r = PHashMap::remove(self, ctx, k);
        ctx.rp(crate::rp_ids::MAP_REMOVE);
        r
    }

    fn get(&self, ctx: &mut ThreadHandle, k: u64) -> Option<u64> {
        let r = PHashMap::get(self, ctx, k);
        ctx.rp(crate::rp_ids::MAP_GET);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct::PoolConfig;
    use respct_pmem::{Region, RegionConfig};

    fn setup(nbuckets: u64) -> (Arc<Pool>, ThreadHandle, PHashMap) {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(64 << 20)),
            PoolConfig::default(),
        )
        .expect("pool");
        let h = pool.register();
        let map = PHashMap::create(&h, nbuckets);
        (pool, h, map)
    }

    #[test]
    fn insert_get_remove() {
        let (_p, h, map) = setup(64);
        assert!(map.insert(&h, 1, 10));
        assert!(map.insert(&h, 2, 20));
        assert_eq!(map.get(&h, 1), Some(10));
        assert_eq!(map.get(&h, 2), Some(20));
        assert_eq!(map.get(&h, 3), None);
        assert!(!map.insert(&h, 1, 11), "update is not a new insert");
        assert_eq!(map.get(&h, 1), Some(11));
        assert!(map.remove(&h, 1));
        assert!(!map.remove(&h, 1));
        assert_eq!(map.get(&h, 1), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn replace_and_remove_entry_return_displaced_values() {
        let (_p, h, map) = setup(2); // heavy chaining
        assert_eq!(map.replace(&h, 7, 70), None);
        assert_eq!(map.replace(&h, 9, 90), None);
        assert_eq!(map.replace(&h, 7, 71), Some(70));
        assert_eq!(map.get(&h, 7), Some(71));
        assert_eq!(map.remove_entry(&h, 7), Some(71));
        assert_eq!(map.remove_entry(&h, 7), None);
        assert_eq!(map.remove_entry(&h, 9), Some(90));
        assert!(map.is_empty());
    }

    #[test]
    fn collisions_chain_correctly() {
        let (_p, h, map) = setup(2); // heavy chaining
        for k in 0..100 {
            assert!(map.insert(&h, k, k * 2));
        }
        for k in 0..100 {
            assert_eq!(map.get(&h, k), Some(k * 2), "key {k}");
        }
        // Remove every third key, check the rest.
        for k in (0..100).step_by(3) {
            assert!(map.remove(&h, k));
        }
        for k in 0..100 {
            let expect = if k % 3 == 0 { None } else { Some(k * 2) };
            assert_eq!(map.get(&h, k), expect, "key {k}");
        }
    }

    #[test]
    fn reopen_finds_same_data() {
        let (pool, h, map) = setup(16);
        map.insert(&h, 5, 50);
        let desc = map.desc();
        drop(map);
        let map2 = PHashMap::open(&pool, desc);
        assert_eq!(map2.get(&h, 5), Some(50));
    }

    #[test]
    fn concurrent_inserts_disjoint_keys() {
        let (pool, h, map) = setup(256);
        drop(h);
        let map = Arc::new(map);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let map = Arc::clone(&map);
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let h = pool.register();
                    for i in 0..500 {
                        map.insert(&h, t * 10_000 + i, i);
                    }
                });
            }
        });
        assert_eq!(map.len(), 2000);
        let h = pool.register();
        for t in 0..4u64 {
            for i in 0..500 {
                assert_eq!(map.get(&h, t * 10_000 + i), Some(i));
            }
        }
    }

    #[test]
    fn crash_recovers_to_checkpoint() {
        let region = Region::new(respct_pmem::RegionConfig::sim(
            64 << 20,
            respct_pmem::SimConfig::with_eviction(4, 99),
        ));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).expect("pool");
        let h = pool.register();
        let map = PHashMap::create(&h, 32);
        for k in 0..50 {
            map.insert(&h, k, k + 1000);
        }
        map.remove(&h, 0);
        h.set_root(map.desc());
        h.checkpoint_here();
        // Crashed epoch: updates, inserts, removes — all must vanish.
        for k in 0..50 {
            map.insert(&h, k, 9999);
        }
        for k in 100..150 {
            map.insert(&h, k, k);
        }
        map.remove(&h, 1);
        drop(h);
        drop(map);
        drop(pool);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        region.restore(&img);
        let (pool2, _rep) =
            Pool::recover(Arc::clone(&region), PoolConfig::default()).expect("recover");
        let map2 = PHashMap::open(&pool2, pool2.root());
        let mut got = map2.collect();
        got.sort_unstable();
        let expect: Vec<(u64, u64)> = (1..50).map(|k| (k, k + 1000)).collect();
        assert_eq!(got, expect);
    }
}
