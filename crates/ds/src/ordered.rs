//! A persistent ordered map (`POrderedMap`) under ResPCT.
//!
//! In-Cache-Line Logging was born in an ordered index (Cohen et al.'s
//! Masstree, the paper's reference \[9\]); this module brings an ordered
//! structure to the general-purpose runtime: a binary search tree
//! (single-lock, as the paper's queue) with crash-consistent links.
//!
//! Persistence analysis (§3.3.2):
//!
//! * child pointers and the root — read while descending, rewritten on
//!   insert/remove (WAR) → InCLL cells;
//! * values — overwritten in place → InCLL cells;
//! * keys — written once while the node is unreachable → plain tracked.
//!
//! Node layout (two cache lines, 128-byte class block):
//!
//! ```text
//! 0..8     key (plain)
//! 8..32    value ICell<u64>
//! 32..56   left  ICell<u64>
//! 64..88   right ICell<u64>   (second line)
//! ```
//!
//! Balancing: keys are perturbed into a treap-style priority derived from
//! the key hash; insertion is plain BST by key but descends comparing
//! hashed keys, which makes adversarial (sequential) insertion orders
//! behave like random insertions — expected O(log n) height without
//! rotations (rotations would churn many InCLL cells per op).

use std::sync::Arc;

use respct::{ICell, PAddr, Pool, ThreadHandle, TracedMutex};

use crate::hash_u64;

const NODE_SIZE: u64 = 128;
const N_KEY: u64 = 0;
const N_VAL: u64 = 8;
const N_LEFT: u64 = 32;
const N_RIGHT: u64 = 64;

const DESC_SIZE: u64 = 64;
const D_ROOT: u64 = 0; // ICell<u64>
const D_LEN: u64 = 32; // ICell<u64>

/// A persistent ordered map (`u64 → u64`) protected by one lock.
pub struct POrderedMap {
    pool: Arc<Pool>,
    desc: PAddr,
    lock: TracedMutex<()>,
}

#[inline]
fn val_cell(n: u64) -> ICell<u64> {
    ICell::from_addr(PAddr(n + N_VAL))
}

#[inline]
fn left_cell(n: u64) -> ICell<u64> {
    ICell::from_addr(PAddr(n + N_LEFT))
}

#[inline]
fn right_cell(n: u64) -> ICell<u64> {
    ICell::from_addr(PAddr(n + N_RIGHT))
}

/// Shuffled key used for tree ordering (de-adversarializes sequential
/// inserts); ties broken by the raw key, but hash collisions on distinct
/// u64 inputs do not occur for splitmix (it is a bijection).
#[inline]
fn shuffle(k: u64) -> u64 {
    hash_u64(k)
}

impl POrderedMap {
    /// Creates an empty map.
    pub fn create(h: &ThreadHandle) -> POrderedMap {
        let desc = h.alloc(DESC_SIZE, 64);
        h.init_cell_at::<u64>(PAddr(desc.0 + D_ROOT), 0);
        h.init_cell_at::<u64>(PAddr(desc.0 + D_LEN), 0);
        POrderedMap {
            lock: TracedMutex::new(h.pool(), ()),
            pool: Arc::clone(h.pool()),
            desc,
        }
    }

    /// Re-opens from a descriptor (after recovery).
    pub fn open(pool: &Arc<Pool>, desc: PAddr) -> POrderedMap {
        POrderedMap {
            lock: TracedMutex::new(pool, ()),
            pool: Arc::clone(pool),
            desc,
        }
    }

    /// Persistent descriptor address.
    pub fn desc(&self) -> PAddr {
        self.desc
    }

    fn root_cell(&self) -> ICell<u64> {
        ICell::from_addr(PAddr(self.desc.0 + D_ROOT))
    }

    fn len_cell(&self) -> ICell<u64> {
        ICell::from_addr(PAddr(self.desc.0 + D_LEN))
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.pool.cell_get(self.len_cell())
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn key_of(&self, n: u64) -> u64 {
        self.pool.region().load(PAddr(n + N_KEY))
    }

    /// Inserts or updates; `true` when newly inserted.
    pub fn insert(&self, h: &ThreadHandle, k: u64, v: u64) -> bool {
        let _g = self.lock.lock();
        let sk = shuffle(k);
        // Descend to the insertion link.
        let mut link = self.root_cell();
        loop {
            let cur = h.get(link);
            if cur == 0 {
                let node = h.alloc(NODE_SIZE, 64);
                h.store_tracked(PAddr(node.0 + N_KEY), k);
                h.init_cell_at::<u64>(PAddr(node.0 + N_VAL), v);
                h.init_cell_at::<u64>(PAddr(node.0 + N_LEFT), 0);
                h.init_cell_at::<u64>(PAddr(node.0 + N_RIGHT), 0);
                h.update(link, node.0);
                h.update(self.len_cell(), h.get(self.len_cell()) + 1);
                return true;
            }
            let ck = self.key_of(cur);
            if ck == k {
                h.update(val_cell(cur), v);
                return false;
            }
            link = if sk < shuffle(ck) {
                left_cell(cur)
            } else {
                right_cell(cur)
            };
        }
    }

    /// Looks a key up.
    pub fn get(&self, h: &ThreadHandle, k: u64) -> Option<u64> {
        let _g = self.lock.lock();
        let sk = shuffle(k);
        let mut cur = h.get(self.root_cell());
        while cur != 0 {
            let ck = self.key_of(cur);
            if ck == k {
                return Some(h.get(val_cell(cur)));
            }
            cur = if sk < shuffle(ck) {
                h.get(left_cell(cur))
            } else {
                h.get(right_cell(cur))
            };
        }
        None
    }

    /// Removes `k`; `true` if present. Uses the classic BST deletion
    /// (successor splice), all link rewrites through InCLL cells.
    pub fn remove(&self, h: &ThreadHandle, k: u64) -> bool {
        let _g = self.lock.lock();
        let sk = shuffle(k);
        let mut link = self.root_cell();
        loop {
            let cur = h.get(link);
            if cur == 0 {
                return false;
            }
            let ck = self.key_of(cur);
            if ck != k {
                link = if sk < shuffle(ck) {
                    left_cell(cur)
                } else {
                    right_cell(cur)
                };
                continue;
            }
            // Found: splice.
            let l = h.get(left_cell(cur));
            let r = h.get(right_cell(cur));
            if l == 0 || r == 0 {
                h.update(link, l | r);
            } else {
                // Two children: find the in-order successor (leftmost of
                // the right subtree), unlink it, move its key/value here.
                // Moving the key is a plain tracked write: the successor
                // node's content replaces this node's, and the successor
                // node is freed. But the key is also read during descents
                // in this same epoch → it participates in WAR across RPs;
                // to stay within the §3.3.2 rules we relocate instead:
                // allocate a replacement node with the successor's k/v and
                // the current children.
                let mut s_link = right_cell(cur);
                let mut s = h.get(s_link);
                while h.get(left_cell(s)) != 0 {
                    s_link = left_cell(s);
                    s = h.get(s_link);
                }
                let (s_key, s_val) = (self.key_of(s), h.get(val_cell(s)));
                // Unlink the successor (it has no left child).
                h.update(s_link, h.get(right_cell(s)));
                h.free(PAddr(s), NODE_SIZE);
                // Replacement node adopting cur's children.
                let node = h.alloc(NODE_SIZE, 64);
                h.store_tracked(PAddr(node.0 + N_KEY), s_key);
                h.init_cell_at::<u64>(PAddr(node.0 + N_VAL), s_val);
                h.init_cell_at::<u64>(PAddr(node.0 + N_LEFT), h.get(left_cell(cur)));
                h.init_cell_at::<u64>(PAddr(node.0 + N_RIGHT), h.get(right_cell(cur)));
                h.update(link, node.0);
            }
            h.free(PAddr(cur), NODE_SIZE);
            h.update(self.len_cell(), h.get(self.len_cell()) - 1);
            return true;
        }
    }

    /// In-order traversal by *shuffled* order; returns pairs sorted by key
    /// after a final sort (the shuffle is only an internal balancing
    /// device).
    pub fn collect_sorted(&self) -> Vec<(u64, u64)> {
        let _g = self.lock.lock();
        let mut out = Vec::new();
        let mut stack = Vec::new();
        let mut cur = self.pool.cell_get(self.root_cell());
        while cur != 0 || !stack.is_empty() {
            while cur != 0 {
                stack.push(cur);
                cur = self.pool.cell_get(left_cell(cur));
            }
            let n = stack.pop().expect("non-empty stack");
            out.push((self.key_of(n), self.pool.cell_get(val_cell(n))));
            cur = self.pool.cell_get(right_cell(n));
        }
        out.sort_unstable();
        out
    }

    /// Inclusive range query `[lo, hi]`, sorted by key.
    pub fn range(&self, h: &ThreadHandle, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let _ = h;
        self.collect_sorted()
            .into_iter()
            .filter(|&(k, _)| k >= lo && k <= hi)
            .collect()
    }

    /// Tree height (diagnostics: expected O(log n)).
    pub fn height(&self) -> usize {
        fn depth(pool: &Pool, n: u64) -> usize {
            if n == 0 {
                return 0;
            }
            1 + depth(pool, pool.cell_get(left_cell(n)))
                .max(depth(pool, pool.cell_get(right_cell(n))))
        }
        let _g = self.lock.lock();
        depth(&self.pool, self.pool.cell_get(self.root_cell()))
    }
}

impl crate::traits::BenchMap for POrderedMap {
    type Ctx = ThreadHandle;

    fn register(&self) -> ThreadHandle {
        self.pool.register()
    }

    fn insert(&self, ctx: &mut ThreadHandle, k: u64, v: u64) -> bool {
        let r = POrderedMap::insert(self, ctx, k, v);
        ctx.rp(crate::rp_ids::MAP_INSERT);
        r
    }

    fn remove(&self, ctx: &mut ThreadHandle, k: u64) -> bool {
        let r = POrderedMap::remove(self, ctx, k);
        ctx.rp(crate::rp_ids::MAP_REMOVE);
        r
    }

    fn get(&self, ctx: &mut ThreadHandle, k: u64) -> Option<u64> {
        let r = POrderedMap::get(self, ctx, k);
        ctx.rp(crate::rp_ids::MAP_GET);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct::PoolConfig;
    use respct_pmem::{sim::CrashMode, Region, RegionConfig, SimConfig};

    fn setup() -> (Arc<Pool>, ThreadHandle, POrderedMap) {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(64 << 20)),
            PoolConfig::default(),
        )
        .expect("pool");
        let h = pool.register();
        let m = POrderedMap::create(&h);
        (pool, h, m)
    }

    #[test]
    fn insert_get_remove() {
        let (_p, h, m) = setup();
        assert!(m.insert(&h, 5, 50));
        assert!(m.insert(&h, 3, 30));
        assert!(m.insert(&h, 8, 80));
        assert!(!m.insert(&h, 5, 55));
        assert_eq!(m.get(&h, 5), Some(55));
        assert_eq!(m.get(&h, 4), None);
        assert!(m.remove(&h, 5));
        assert!(!m.remove(&h, 5));
        assert_eq!(m.len(), 2);
        assert_eq!(m.collect_sorted(), vec![(3, 30), (8, 80)]);
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let (_p, h, m) = setup();
        for k in 0..4096 {
            m.insert(&h, k, k);
        }
        let height = m.height();
        assert!(height < 48, "height {height} for 4096 shuffled keys");
        assert_eq!(m.len(), 4096);
    }

    #[test]
    fn removal_of_two_child_nodes() {
        let (_p, h, m) = setup();
        for k in 0..200u64 {
            m.insert(&h, k, k * 2);
        }
        for k in (0..200).step_by(2) {
            assert!(m.remove(&h, k), "key {k}");
        }
        let want: Vec<(u64, u64)> = (1..200).step_by(2).map(|k| (k, k * 2)).collect();
        assert_eq!(m.collect_sorted(), want);
    }

    #[test]
    fn range_query() {
        let (_p, h, m) = setup();
        for k in 0..100u64 {
            m.insert(&h, k * 3, k);
        }
        let r = m.range(&h, 10, 30);
        assert_eq!(
            r,
            vec![
                (12, 4),
                (15, 5),
                (18, 6),
                (21, 7),
                (24, 8),
                (27, 9),
                (30, 10)
            ]
        );
    }

    #[test]
    fn crash_recovers_to_checkpoint() {
        let region = Region::new(RegionConfig::sim(32 << 20, SimConfig::with_eviction(3, 17)));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).expect("pool");
        let h = pool.register();
        let m = POrderedMap::create(&h);
        for k in 0..60u64 {
            m.insert(&h, k, k + 500);
        }
        m.remove(&h, 10);
        h.set_root(m.desc());
        h.checkpoint_here();
        // Crashed epoch: heavy churn including structural removals.
        for k in 0..60u64 {
            m.insert(&h, k, 1);
        }
        for k in 20..40u64 {
            m.remove(&h, k);
        }
        for k in 100..140u64 {
            m.insert(&h, k, k);
        }
        drop(h);
        drop(m);
        drop(pool);
        let img = region.crash(CrashMode::PowerFailure);
        region.restore(&img);
        let (pool, _) = Pool::recover(Arc::clone(&region), PoolConfig::default()).expect("recover");
        let m = POrderedMap::open(&pool, pool.root());
        let want: Vec<(u64, u64)> = (0..60).filter(|&k| k != 10).map(|k| (k, k + 500)).collect();
        assert_eq!(m.collect_sorted(), want);
        // Usable after recovery.
        let h = pool.register();
        assert!(m.insert(&h, 10, 999));
        assert_eq!(m.len(), 60);
    }

    #[test]
    fn concurrent_smoke() {
        let (pool, h, m) = setup();
        drop(h);
        let m = Arc::new(m);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (pool, m) = (Arc::clone(&pool), Arc::clone(&m));
                s.spawn(move || {
                    let h = pool.register();
                    for i in 0..500 {
                        m.insert(&h, t * 10_000 + i, i);
                    }
                });
            }
        });
        assert_eq!(m.len(), 2000);
    }
}
