//! Transient (non-fault-tolerant) baselines: the paper's
//! `Transient<DRAM>` configuration.
//!
//! Same algorithmic structure as the persistent versions — lock per bucket
//! with separate chaining; single-lock linked queue with per-element heap
//! allocation — but ordinary heap memory and no logging, tracking, or
//! restart points. The `Transient<NVMM>` configuration lives in
//! `respct-baselines` (same algorithms over an Optane-latency region).

use parking_lot::Mutex;

use crate::hash_u64;
use crate::traits::{BenchMap, BenchQueue};

// ---- Hash map ---------------------------------------------------------------

struct TNode {
    k: u64,
    v: u64,
    next: Option<Box<TNode>>,
}

/// Transient lock-per-bucket hash map.
pub struct TransientHashMap {
    buckets: Box<[Mutex<Option<Box<TNode>>>]>,
}

impl TransientHashMap {
    /// Creates a map with `nbuckets` buckets.
    pub fn new(nbuckets: usize) -> TransientHashMap {
        assert!(nbuckets > 0);
        let buckets = (0..nbuckets).map(|_| Mutex::new(None)).collect::<Vec<_>>();
        TransientHashMap {
            buckets: buckets.into_boxed_slice(),
        }
    }

    /// Inserts or updates; `true` when newly inserted.
    pub fn insert(&self, k: u64, v: u64) -> bool {
        let b = (hash_u64(k) % self.buckets.len() as u64) as usize;
        let mut head = self.buckets[b].lock();
        let mut cur = head.as_deref_mut();
        while let Some(node) = cur {
            if node.k == k {
                node.v = v;
                return false;
            }
            cur = node.next.as_deref_mut();
        }
        let old = head.take();
        *head = Some(Box::new(TNode { k, v, next: old }));
        true
    }

    /// Removes; `true` if present.
    pub fn remove(&self, k: u64) -> bool {
        let b = (hash_u64(k) % self.buckets.len() as u64) as usize;
        let mut head = self.buckets[b].lock();
        let mut link = &mut *head;
        loop {
            match link {
                None => return false,
                Some(node) if node.k == k => {
                    let next = node.next.take();
                    *link = next;
                    return true;
                }
                Some(node) => link = &mut node.next,
            }
        }
    }

    /// Looks a key up.
    pub fn get(&self, k: u64) -> Option<u64> {
        let b = (hash_u64(k) % self.buckets.len() as u64) as usize;
        let head = self.buckets[b].lock();
        let mut cur = head.as_deref();
        while let Some(node) = cur {
            if node.k == k {
                return Some(node.v);
            }
            cur = node.next.as_deref();
        }
        None
    }

    /// Atomically adds `delta` to `k`'s value (inserting `delta` if the
    /// key is absent) under one bucket-lock hold; returns the new value.
    pub fn fetch_add(&self, k: u64, delta: u64) -> u64 {
        let b = (hash_u64(k) % self.buckets.len() as u64) as usize;
        let mut head = self.buckets[b].lock();
        let mut cur = head.as_deref_mut();
        while let Some(node) = cur {
            if node.k == k {
                node.v += delta;
                return node.v;
            }
            cur = node.next.as_deref_mut();
        }
        let old = head.take();
        *head = Some(Box::new(TNode {
            k,
            v: delta,
            next: old,
        }));
        delta
    }

    /// Number of stored pairs (walks every chain).
    pub fn len(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| {
                let head = b.lock();
                let mut n = 0;
                let mut cur = head.as_deref();
                while let Some(node) = cur {
                    n += 1;
                    cur = node.next.as_deref();
                }
                n
            })
            .sum()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl BenchMap for TransientHashMap {
    type Ctx = ();

    fn register(&self) {}

    fn insert(&self, _ctx: &mut (), k: u64, v: u64) -> bool {
        TransientHashMap::insert(self, k, v)
    }

    fn remove(&self, _ctx: &mut (), k: u64) -> bool {
        TransientHashMap::remove(self, k)
    }

    fn get(&self, _ctx: &mut (), k: u64) -> Option<u64> {
        TransientHashMap::get(self, k)
    }
}

// ---- Queue ------------------------------------------------------------------

struct QNode {
    v: u64,
    next: Option<Box<QNode>>,
}

struct QInner {
    head: Option<Box<QNode>>,
    /// Raw pointer to the last node of `head`'s chain (null when empty).
    tail: *mut QNode,
}

// SAFETY: `tail` always points into the chain owned by `head` (or is null),
// and `QInner` is only accessed under the queue's mutex.
unsafe impl Send for QInner {}

/// Transient single-lock linked FIFO queue.
pub struct TransientQueue {
    inner: Mutex<QInner>,
}

impl Default for TransientQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl TransientQueue {
    /// Creates an empty queue.
    pub fn new() -> TransientQueue {
        TransientQueue {
            inner: Mutex::new(QInner {
                head: None,
                tail: std::ptr::null_mut(),
            }),
        }
    }

    /// Appends a value.
    pub fn enqueue(&self, v: u64) {
        let mut q = self.inner.lock();
        let mut node = Box::new(QNode { v, next: None });
        let raw: *mut QNode = &mut *node;
        if q.tail.is_null() {
            q.head = Some(node);
        } else {
            // SAFETY: `tail` points at the live last node of the chain
            // owned by `q.head`; we hold the lock.
            unsafe { (*q.tail).next = Some(node) };
        }
        q.tail = raw;
    }

    /// Pops the oldest value, if any.
    pub fn dequeue(&self) -> Option<u64> {
        let mut q = self.inner.lock();
        let mut head = q.head.take()?;
        q.head = head.next.take();
        if q.head.is_none() {
            q.tail = std::ptr::null_mut();
        }
        Some(head.v)
    }

    /// Number of queued elements.
    pub fn len(&self) -> usize {
        let q = self.inner.lock();
        let mut n = 0;
        let mut cur = q.head.as_deref();
        while let Some(node) = cur {
            n += 1;
            cur = node.next.as_deref();
        }
        n
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().head.is_none()
    }
}

impl Drop for TransientQueue {
    fn drop(&mut self) {
        // Unlink iteratively: a long chain of nested `Box` drops would
        // otherwise overflow the stack.
        let mut cur = self.inner.get_mut().head.take();
        while let Some(mut node) = cur {
            cur = node.next.take();
        }
    }
}

impl BenchQueue for TransientQueue {
    type Ctx = ();

    fn register(&self) {}

    fn enqueue(&self, _ctx: &mut (), v: u64) {
        TransientQueue::enqueue(self, v);
    }

    fn dequeue(&self, _ctx: &mut ()) -> Option<u64> {
        TransientQueue::dequeue(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let m = TransientHashMap::new(8);
        assert!(m.insert(1, 10));
        assert!(!m.insert(1, 11));
        assert_eq!(m.get(1), Some(11));
        assert!(m.remove(1));
        assert!(!m.remove(1));
        assert!(m.is_empty());
    }

    #[test]
    fn map_chains() {
        let m = TransientHashMap::new(1);
        for k in 0..50 {
            m.insert(k, k);
        }
        assert_eq!(m.len(), 50);
        for k in (0..50).step_by(2) {
            assert!(m.remove(k));
        }
        for k in 0..50 {
            assert_eq!(m.get(k), if k % 2 == 1 { Some(k) } else { None });
        }
    }

    #[test]
    fn queue_fifo() {
        let q = TransientQueue::new();
        assert_eq!(q.dequeue(), None);
        for v in 0..100 {
            q.enqueue(v);
        }
        assert_eq!(q.len(), 100);
        for v in 0..100 {
            assert_eq!(q.dequeue(), Some(v));
        }
        assert!(q.is_empty());
        q.enqueue(7);
        assert_eq!(q.dequeue(), Some(7));
    }

    #[test]
    fn queue_drop_long_chain_no_overflow() {
        let q = TransientQueue::new();
        for v in 0..200_000 {
            q.enqueue(v);
        }
        drop(q); // must not overflow the stack
    }

    #[test]
    fn concurrent_map_smoke() {
        let m = std::sync::Arc::new(TransientHashMap::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..1000 {
                        m.insert(t * 10_000 + i, i);
                    }
                });
            }
        });
        assert_eq!(m.len(), 4000);
    }
}
