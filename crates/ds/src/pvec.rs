//! A persistent growable array (`PVec`) under ResPCT.
//!
//! Complements the paper's micro-benchmark structures with the container
//! compute applications often want: indexed `u64` storage with
//! amortized-O(1) append. Persistence analysis per the §3.3.2 rules:
//!
//! * `len`, `capacity`, and the buffer pointer — read and rewritten across
//!   RPs (WAR) → InCLL cells in the descriptor;
//! * **elements** — overwritable in place (`set`) and logically revived by
//!   a rolled-back `pop`, so each element slot is itself an InCLL cell
//!   (32-byte stride). This is the §6 footprint trade-off the paper
//!   acknowledges: the log lives next to the data, quadrupling the element
//!   footprint but keeping every mutation flush-free.
//!
//! Slot recycling (push after pop, buffer relocation) uses
//! [`ThreadHandle::upsert_cell`]: a slot that was live at the last
//! checkpoint is *updated* (logged), a genuinely fresh slot is
//! *initialized* — the distinction that makes `pop(); push(x); crash`
//! recover the pre-pop element correctly.
//!
//! Growth relocates into a fresh allocation, re-creating the element cells
//! at their new addresses (epoch tags are address-mixed, so cells cannot be
//! memcpy'd); a crashed growth epoch rolls the descriptor back to the old
//! buffer, which was only read.

use std::sync::Arc;

use respct::{ICell, PAddr, Pool, ThreadHandle};

const DESC_SIZE: u64 = 128;
const D_LEN: u64 = 0; // ICell<u64>
const D_CAP: u64 = 32; // ICell<u64>
const D_DATA: u64 = 64; // ICell<u64> (PAddr of the element cell array)

/// Byte stride of one element cell.
const SLOT: u64 = 32;

/// A persistent vector of `u64`. Not internally synchronized: callers
/// provide exclusion, as for all lock-based state in the paper's model.
pub struct PVec {
    pool: Arc<Pool>,
    desc: PAddr,
}

impl PVec {
    /// Creates an empty vector with the given initial capacity (rounded up
    /// to at least 8 elements).
    pub fn create(h: &ThreadHandle, capacity: u64) -> PVec {
        let capacity = capacity.max(8);
        let desc = h.alloc(DESC_SIZE, 64);
        let data = h.alloc(capacity * SLOT, 64);
        h.init_cell_at::<u64>(PAddr(desc.0 + D_LEN), 0);
        h.init_cell_at::<u64>(PAddr(desc.0 + D_CAP), capacity);
        h.init_cell_at::<u64>(PAddr(desc.0 + D_DATA), data.0);
        PVec {
            pool: Arc::clone(h.pool()),
            desc,
        }
    }

    /// Re-opens a vector from its descriptor (after recovery).
    pub fn open(pool: &Arc<Pool>, desc: PAddr) -> PVec {
        PVec {
            pool: Arc::clone(pool),
            desc,
        }
    }

    /// Persistent descriptor address.
    pub fn desc(&self) -> PAddr {
        self.desc
    }

    fn len_cell(&self) -> ICell<u64> {
        ICell::from_addr(PAddr(self.desc.0 + D_LEN))
    }

    fn cap_cell(&self) -> ICell<u64> {
        ICell::from_addr(PAddr(self.desc.0 + D_CAP))
    }

    fn data_cell(&self) -> ICell<u64> {
        ICell::from_addr(PAddr(self.desc.0 + D_DATA))
    }

    fn slot_cell(&self, data: u64, i: u64) -> ICell<u64> {
        ICell::from_addr(PAddr(data + i * SLOT))
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.pool.cell_get(self.len_cell())
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current capacity in elements.
    pub fn capacity(&self) -> u64 {
        self.pool.cell_get(self.cap_cell())
    }

    /// Reads element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: u64) -> u64 {
        let len = self.len();
        assert!(i < len, "index {i} out of bounds (len {len})");
        let data = self.pool.cell_get(self.data_cell());
        self.pool.cell_get(self.slot_cell(data, i))
    }

    /// Appends a value, growing (2×) when full.
    pub fn push(&self, h: &ThreadHandle, v: u64) {
        let len = h.get(self.len_cell());
        let cap = h.get(self.cap_cell());
        if len == cap {
            self.grow(h, cap * 2);
        }
        let data = h.get(self.data_cell());
        // upsert: a recycled slot (pushed after a pop) logs its old value
        // so a crash that rolls `len` back also restores the old element.
        h.upsert_cell::<u64>(PAddr(data + len * SLOT), v);
        h.update(self.len_cell(), len + 1);
    }

    /// Removes and returns the last element.
    pub fn pop(&self, h: &ThreadHandle) -> Option<u64> {
        let len = h.get(self.len_cell());
        if len == 0 {
            return None;
        }
        let data = h.get(self.data_cell());
        let v = self.pool.cell_get(self.slot_cell(data, len - 1));
        h.update(self.len_cell(), len - 1);
        Some(v)
    }

    /// Overwrites element `i` (logged in-place InCLL update).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&self, h: &ThreadHandle, i: u64, v: u64) {
        let len = h.get(self.len_cell());
        assert!(i < len, "index {i} out of bounds (len {len})");
        let data = h.get(self.data_cell());
        h.update(self.slot_cell(data, i), v);
    }

    /// Relocates the buffer to `new_cap` element slots.
    fn grow(&self, h: &ThreadHandle, new_cap: u64) {
        let len = h.get(self.len_cell());
        let old_cap = h.get(self.cap_cell());
        let old_data = h.get(self.data_cell());
        let new_cap = new_cap.max(8);
        let new_data = h.alloc(new_cap * SLOT, 64);
        for i in 0..len {
            let v = self.pool.cell_get(self.slot_cell(old_data, i));
            h.upsert_cell::<u64>(PAddr(new_data.0 + i * SLOT), v);
        }
        h.update(self.data_cell(), new_data.0);
        h.update(self.cap_cell(), new_cap);
        h.free(PAddr(old_data), old_cap * SLOT);
    }

    /// Collects the elements (verification).
    pub fn collect(&self) -> Vec<u64> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct::PoolConfig;
    use respct_pmem::{sim::CrashMode, Region, RegionConfig, SimConfig};

    fn setup() -> (Arc<Pool>, ThreadHandle, PVec) {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(16 << 20)),
            PoolConfig::default(),
        )
        .expect("pool");
        let h = pool.register();
        let v = PVec::create(&h, 4);
        (pool, h, v)
    }

    #[test]
    fn push_get_pop() {
        let (_p, h, v) = setup();
        assert!(v.is_empty());
        for i in 0..100 {
            v.push(&h, i * 3);
        }
        assert_eq!(v.len(), 100);
        assert!(v.capacity() >= 100);
        for i in 0..100 {
            assert_eq!(v.get(i), i * 3);
        }
        for i in (0..100).rev() {
            assert_eq!(v.pop(&h), Some(i * 3));
        }
        assert_eq!(v.pop(&h), None);
    }

    #[test]
    fn set_overwrites() {
        let (_p, h, v) = setup();
        for i in 0..20 {
            v.push(&h, i);
        }
        v.set(&h, 7, 777);
        assert_eq!(v.get(7), 777);
        assert_eq!(v.get(6), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_oob_panics() {
        let (_p, h, v) = setup();
        v.push(&h, 1);
        v.get(1);
    }

    #[test]
    fn growth_preserves_content() {
        let (_p, h, v) = setup();
        for i in 0..1000 {
            v.push(&h, i ^ 0xabcd);
        }
        assert_eq!(
            v.collect(),
            (0..1000).map(|i| i ^ 0xabcd).collect::<Vec<_>>()
        );
    }

    #[test]
    fn crash_rolls_back_all_mutations() {
        let region = Region::new(RegionConfig::sim(16 << 20, SimConfig::with_eviction(3, 11)));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).expect("pool");
        let h = pool.register();
        let v = PVec::create(&h, 4);
        for i in 0..50 {
            v.push(&h, i);
        }
        h.set_root(v.desc());
        h.checkpoint_here();
        // Crashed epoch: pops, sets, pushes, and a growth.
        for _ in 0..10 {
            v.pop(&h);
        }
        for i in 0..20 {
            v.set(&h, i, 9999);
        }
        for i in 0..100 {
            v.push(&h, 1_000_000 + i);
        }
        drop(h);
        drop(pool);
        let img = region.crash(CrashMode::PowerFailure);
        region.restore(&img);
        let (pool, _) = Pool::recover(Arc::clone(&region), PoolConfig::default()).expect("recover");
        let v = PVec::open(&pool, pool.root());
        assert_eq!(v.collect(), (0..50).collect::<Vec<u64>>());
        // Usable after recovery.
        let h = pool.register();
        v.push(&h, 50);
        assert_eq!(v.len(), 51);
    }

    #[test]
    fn pop_then_push_then_crash_recovers_old_element() {
        // The upsert distinction: the recycled slot must roll back to the
        // *pre-pop* element, not the re-pushed one.
        let region = Region::new(RegionConfig::sim(8 << 20, SimConfig::with_eviction(2, 3)));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).expect("pool");
        let h = pool.register();
        let v = PVec::create(&h, 8);
        v.push(&h, 111);
        v.push(&h, 222);
        h.set_root(v.desc());
        h.checkpoint_here();
        assert_eq!(v.pop(&h), Some(222));
        v.push(&h, 333); // recycles slot 1 within the crashed epoch
        drop(h);
        drop(pool);
        let img = region.crash(CrashMode::PowerFailure);
        region.restore(&img);
        let (pool, _) = Pool::recover(Arc::clone(&region), PoolConfig::default()).expect("recover");
        let v = PVec::open(&pool, pool.root());
        assert_eq!(
            v.collect(),
            vec![111, 222],
            "slot must roll back to the pre-pop value"
        );
    }
}
