//! Adapter traits the benchmark harness uses to drive every system — the
//! ResPCT structures, the transient baselines, and the competing persistence
//! systems in `respct-baselines` — through one code path.
//!
//! Each system defines a per-thread context (`Ctx`): for ResPCT that is the
//! [`ThreadHandle`](respct::ThreadHandle); for durable-linearizability
//! systems it typically carries a per-thread log; for transient baselines it
//! is `()`.

/// A concurrent map of `u64 → u64` (8-byte keys and values, as in §5.1).
pub trait BenchMap: Send + Sync {
    /// Per-thread context.
    type Ctx;

    /// Registers the calling thread.
    fn register(&self) -> Self::Ctx;

    /// Inserts or updates; returns `true` if the key was newly inserted.
    fn insert(&self, ctx: &mut Self::Ctx, k: u64, v: u64) -> bool;

    /// Removes; returns `true` if the key was present.
    fn remove(&self, ctx: &mut Self::Ctx, k: u64) -> bool;

    /// Looks a key up.
    fn get(&self, ctx: &mut Self::Ctx, k: u64) -> Option<u64>;
}

/// A concurrent FIFO queue of `u64` values.
pub trait BenchQueue: Send + Sync {
    /// Per-thread context.
    type Ctx;

    /// Registers the calling thread.
    fn register(&self) -> Self::Ctx;

    /// Appends a value.
    fn enqueue(&self, ctx: &mut Self::Ctx, v: u64);

    /// Pops the oldest value, if any.
    fn dequeue(&self, ctx: &mut Self::Ctx) -> Option<u64>;
}
