//! Concurrent data structures for the ResPCT evaluation (paper §5.1).
//!
//! * [`PHashMap`] — a lock-per-bucket persistent hash map in the style of
//!   the Synch framework's map the paper uses, made fault tolerant with
//!   ResPCT (bucket heads and values are InCLL cells; keys and link setup
//!   writes are idempotent and only tracked).
//! * [`PQueue`] — a single-lock persistent linked queue with 8-byte
//!   elements, as in the paper.
//! * [`PVec`] / [`POrderedMap`] — additional containers (growable array,
//!   ordered map with range queries) built on the same InCLL discipline.
//! * [`transient`] — the unmodified ("Transient\<DRAM\>") counterparts used
//!   as the performance baseline.
//! * [`traits`] — the adapter traits the benchmark harness drives every
//!   system through.

pub mod hashmap;
pub mod ordered;
pub mod pvec;
pub mod queue;
pub mod traits;
pub mod transient;

pub use hashmap::PHashMap;
pub use ordered::POrderedMap;
pub use pvec::PVec;
pub use queue::PQueue;
pub use traits::{BenchMap, BenchQueue};
pub use transient::{TransientHashMap, TransientQueue};

/// Restart-point ids used by the data-structure adapters (unique per static
/// call site, as the paper requires). Typed as [`respct::RpId`] so they
/// cannot be confused with the API's other bare `u64`s.
pub mod rp_ids {
    use respct::RpId;

    pub const MAP_INSERT: RpId = RpId(101);
    pub const MAP_REMOVE: RpId = RpId(102);
    pub const MAP_GET: RpId = RpId(103);
    pub const QUEUE_ENQ: RpId = RpId(111);
    pub const QUEUE_DEQ: RpId = RpId(112);
}

/// Multiplicative Fibonacci-style hash used by all map implementations so
/// every system sees an identical key distribution.
#[inline]
pub fn hash_u64(k: u64) -> u64 {
    // splitmix64 finalizer.
    let mut x = k.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_spreads() {
        let mut buckets = [0u32; 16];
        for k in 0..16_000u64 {
            buckets[(hash_u64(k) % 16) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "skewed bucket: {b}");
        }
    }
}
