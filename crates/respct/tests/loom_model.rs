//! Loom models of the two ResPCT protocol points whose correctness depends
//! on fine-grained interleavings: the **AllowGuard quiescence handshake**
//! (checkpoint timer / per-thread flag, checkpoint.rs) and the **two-phase
//! epoch commit with the on-demand push-out wait** (drain_async +
//! `push_out_pending_line`, pool.rs).
//!
//! The models are abstract — a handful of loom atomics standing in for the
//! real fields — because the runtime itself uses std atomics. Each model
//! states the invariant the real code relies on and asserts it inside the
//! interleaved threads, so a protocol regression reproduces here as a
//! model panic long before it shows up as a corrupt recovery.
//!
//! Run with: `cargo test -p respct --features loom --test loom_model`
//! (`LOOM_MAX_ITERS` scales the schedule count).
#![cfg(feature = "loom")]

use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::sync::Arc;

/// AllowGuard quiescence: the checkpointer must not read a worker's
/// tracking state until it has observed the worker's raised flag, and the
/// worker must not mutate it again until the timer drops.
///
/// Model: the worker "tracking list" is a plain counter guarded only by
/// the protocol (no lock). `dirty` is set around every worker mutation;
/// the checkpointer asserts it is clear for the whole gather window.
#[test]
fn allowguard_quiescence_excludes_tracking_mutation() {
    loom::model(|| {
        let timer = Arc::new(AtomicBool::new(false));
        let flag = Arc::new(AtomicBool::new(false));
        let dirty = Arc::new(AtomicBool::new(false));
        let list = Arc::new(AtomicU64::new(0));

        let worker = {
            let (timer, flag, dirty, list) =
                (timer.clone(), flag.clone(), dirty.clone(), list.clone());
            loom::thread::spawn(move || {
                // Runs until a checkpoint is pending, then parks exactly
                // once (the checkpointer raises the timer unconditionally,
                // so the loop always terminates).
                loop {
                    // Mutation window (tracking-list push in the runtime).
                    dirty.store(true, Ordering::SeqCst);
                    list.fetch_add(1, Ordering::SeqCst);
                    dirty.store(false, Ordering::SeqCst);
                    // Restart point: park if a checkpoint is pending.
                    if timer.load(Ordering::SeqCst) {
                        flag.store(true, Ordering::SeqCst);
                        while timer.load(Ordering::SeqCst) {
                            loom::hint::spin_loop();
                        }
                        flag.store(false, Ordering::SeqCst);
                        break;
                    }
                }
            })
        };

        // Checkpointer: raise the timer, await the flag, gather, release.
        timer.store(true, Ordering::SeqCst);
        while !flag.load(Ordering::SeqCst) {
            loom::hint::spin_loop();
        }
        assert!(
            !dirty.load(Ordering::SeqCst),
            "gather observed a mid-flight tracking mutation"
        );
        let a = list.load(Ordering::SeqCst);
        let b = list.load(Ordering::SeqCst);
        assert_eq!(a, b, "tracking list changed during the gather window");
        timer.store(false, Ordering::SeqCst);
        worker.join().expect("worker");
    });
}

/// Two-phase epoch commit + push-out: a worker that hits a draining cell
/// pushes the line out and must not overwrite its backup slot until the
/// drain's phase-two commit (`state ← 0`) has landed — until then a crash
/// rolls the drained epoch back and still needs the old backup.
///
/// Model: `backup_owed` is true while recovery would still read the
/// backup. The committer clears `state` only after the (modeled) shard
/// flush; the worker overwrites the backup only after its push-out wait.
#[test]
fn pushout_wait_orders_backup_overwrite_after_commit() {
    loom::model(|| {
        let state = Arc::new(AtomicU64::new(0)); // 0 = committed, N = draining
        let drain_active = Arc::new(AtomicBool::new(false));
        let flushed = Arc::new(AtomicBool::new(false));
        let backup_owed = Arc::new(AtomicBool::new(false));

        // Phase one (threads parked in the runtime): publish the draining
        // record, then release the worker.
        state.store(7, Ordering::SeqCst);
        backup_owed.store(true, Ordering::SeqCst);
        drain_active.store(true, Ordering::SeqCst);

        let committer = {
            let (state, drain_active, flushed, backup_owed) = (
                state.clone(),
                drain_active.clone(),
                flushed.clone(),
                backup_owed.clone(),
            );
            loom::thread::spawn(move || {
                // Background drain: write the snapshot back, then commit.
                flushed.store(true, Ordering::SeqCst);
                backup_owed.store(false, Ordering::SeqCst);
                state.store(0, Ordering::SeqCst);
                // Release edge: `drain_active` clears strictly after the
                // commit store (pool.rs drains in exactly this order).
                drain_active.store(false, Ordering::SeqCst);
            })
        };

        // Worker: first touch of a draining cell → push-out, wait, then
        // overwrite the backup slot for the new epoch.
        if drain_active.load(Ordering::SeqCst) {
            while drain_active.load(Ordering::SeqCst) {
                loom::hint::spin_loop();
            }
        }
        assert!(
            !backup_owed.load(Ordering::SeqCst),
            "backup overwritten while recovery could still roll back to it"
        );
        assert_eq!(state.load(Ordering::SeqCst), 0, "commit not durable yet");
        assert!(flushed.load(Ordering::SeqCst), "commit preceded the flush");
        committer.join().expect("committer");
    });
}

/// Epoch-ring pipelined checkpoints: the ring-slot claim / ordered-commit
/// handshake (checkpoint.rs `drain_pipelined` + `DrainExec::drain_one`).
///
/// Model: a ring of K = 2 slots, a claimer (the checkpointer) that spins
/// on backpressure (`closing − drain_oldest < K`) before writing epoch
/// `e` into slot `e mod K`, and a committer (the drain executor) that
/// zeroes slots strictly oldest-first and only then advances
/// `drain_oldest`. Two invariants the real code relies on are asserted in
/// the interleaved threads:
///
/// * a claim never lands on a still-claimed slot (backpressure makes slot
///   reuse wait for the predecessor commit that frees it);
/// * at each commit of epoch `e`, every epoch older than `e` has already
///   committed (`drain_oldest == e`) — a crash at any instant therefore
///   leaves the claimed slots a contiguous suffix, which is exactly what
///   recovery's ring decode asserts.
#[test]
fn ring_claim_and_ordered_commit_keep_the_ring_contiguous() {
    const K: u64 = 2;
    const EPOCHS: u64 = 3;
    loom::model(|| {
        let slots = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);
        let drain_oldest = Arc::new(AtomicU64::new(1));

        let committer = {
            let (slots, drain_oldest) = (slots.clone(), drain_oldest.clone());
            loom::thread::spawn(move || {
                for e in 1..=EPOCHS {
                    let slot = &slots[(e % K) as usize];
                    while slot.load(Ordering::SeqCst) != e {
                        loom::hint::spin_loop();
                    }
                    // Ordered commit: every predecessor already retired.
                    assert_eq!(
                        drain_oldest.load(Ordering::SeqCst),
                        e,
                        "commit of epoch {e} issued before its predecessor's"
                    );
                    slot.store(0, Ordering::SeqCst);
                    drain_oldest.store(e + 1, Ordering::SeqCst);
                }
            })
        };

        // Claimer: the checkpointer's stop-the-world ring-slot swap.
        for e in 1..=EPOCHS {
            while e - drain_oldest.load(Ordering::SeqCst) >= K {
                loom::hint::spin_loop();
            }
            let slot = &slots[(e % K) as usize];
            assert_eq!(
                slot.load(Ordering::SeqCst),
                0,
                "claim of epoch {e} would overwrite a still-draining slot"
            );
            slot.store(e, Ordering::SeqCst);
        }
        committer.join().expect("committer");
        assert_eq!(drain_oldest.load(Ordering::SeqCst), EPOCHS + 1);
        assert!(
            slots.iter().all(|s| s.load(Ordering::SeqCst) == 0),
            "ring not empty after all commits"
        );
    });
}

/// The inverse: a committer that retires epochs newest-first (the
/// `SkipRingOrder` fault) produces at least one reachable state whose
/// claimed slots are *not* a contiguous suffix — the hole recovery's
/// decode rejects. Proves the contiguity assertion above has teeth.
#[test]
fn out_of_order_commit_leaves_a_ring_hole() {
    let saw_hole = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let saw = saw_hole.clone();
    loom::model(move || {
        // Epochs 1 and 2 both claimed (two drains in flight).
        let slots = Arc::new([AtomicU64::new(2), AtomicU64::new(1)]);

        let committer = {
            let slots = slots.clone();
            loom::thread::spawn(move || {
                // Buggy order: newest first.
                slots[0].store(0, Ordering::SeqCst); // epoch 2's slot
                slots[1].store(0, Ordering::SeqCst); // epoch 1's slot
            })
        };
        // Crash observer: decode the ring the way recovery does, sampling
        // until the commits finish. With the recorded epoch at 3, a sound
        // ring only ever shows {1,2}, {2} or {} — seeing epoch 1 claimed
        // while epoch 2's slot is already zero is the hole.
        loop {
            let newest = slots[0].load(Ordering::SeqCst); // epoch 2's slot
            let oldest = slots[1].load(Ordering::SeqCst); // epoch 1's slot
            if newest == 0 && oldest == 1 {
                saw.store(true, std::sync::atomic::Ordering::SeqCst);
                break;
            }
            if newest == 0 && oldest == 0 {
                break; // both committed; this schedule missed the window
            }
            loom::hint::spin_loop();
        }
        committer.join().expect("committer");
    });
    assert!(
        saw_hole.load(std::sync::atomic::Ordering::SeqCst),
        "no schedule exposed the ring hole; the model lost its teeth"
    );
}

/// The inverse schedule: skipping the push-out wait (the bug the
/// `DrainHandshake` fault injects) lets at least one schedule overwrite
/// the backup pre-commit — the model is not vacuously safe.
#[test]
fn skipping_the_pushout_wait_is_observably_wrong() {
    let saw_violation = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let saw = saw_violation.clone();
    loom::model(move || {
        let drain_active = Arc::new(AtomicBool::new(true));
        let backup_owed = Arc::new(AtomicBool::new(true));

        let committer = {
            let (drain_active, backup_owed) = (drain_active.clone(), backup_owed.clone());
            loom::thread::spawn(move || {
                backup_owed.store(false, Ordering::SeqCst);
                drain_active.store(false, Ordering::SeqCst);
            })
        };
        // Buggy worker: overwrites without waiting for the commit.
        if backup_owed.load(Ordering::SeqCst) {
            saw.store(true, std::sync::atomic::Ordering::SeqCst);
        }
        committer.join().expect("committer");
    });
    assert!(
        saw_violation.load(std::sync::atomic::Ordering::SeqCst),
        "no schedule exposed the unordered overwrite; the model lost its teeth"
    );
}
