//! # ResPCT — fast checkpointing in (emulated) NVMM for multi-threaded programs
//!
//! This crate reproduces the runtime of *"ResPCT: Fast Checkpointing in
//! Non-volatile Memory for Multi-threaded Applications"* (Khorguani, Ropars,
//! De Palma — EuroSys 2022). ResPCT makes lock-based multi-threaded programs
//! fault tolerant by dividing execution into **epochs**: during an epoch no
//! flush or fence instructions run at all; at the end of each epoch a
//! **checkpoint** flushes exactly the modified cache lines to NVMM. After a
//! crash, the program restarts from the last completed checkpoint
//! (*buffered durable linearizability*).
//!
//! Two mechanisms make this cheap:
//!
//! * **In-Cache-Line Logging** ([`ICell`]): the undo log of a variable lives
//!   in the same cache line as the variable, so the PCSO persistency model
//!   of x86 guarantees the log reaches NVMM no later than the data — without
//!   a single `clwb`/`sfence` on the failure-free path.
//! * **Restart Points** ([`ThreadHandle::rp`]): programmer-positioned states
//!   where checkpoints may run. RP placement determines the persistent
//!   state and which variables need logging (the WAR/idempotence rule of
//!   paper §3.3.2).
//!
//! ## Quick start
//!
//! ```
//! use respct::{Pool, PoolConfig};
//! use respct_pmem::{Region, RegionConfig};
//!
//! // An emulated-NVMM region + a formatted pool. `create` is fallible —
//! // a too-small region is an error, not a panic.
//! let region = Region::new(RegionConfig::fast(8 << 20));
//! let pool = Pool::create(region, PoolConfig::default()).expect("pool");
//!
//! // Register the thread, allocate a logged variable, update it.
//! let h = pool.register();
//! let counter = h.alloc_cell(0u64);
//! for i in 1..=10 {
//!     h.update(counter, i);
//!     h.rp(1); // a checkpoint may run here
//! }
//! assert_eq!(h.get(counter), 10);
//!
//! // Make it durable.
//! h.checkpoint_here();
//! ```
//!
//! Non-default knobs go through the validated config builder — e.g. a pool
//! with two dedicated flusher threads and 16 flush shards:
//!
//! ```
//! use respct::{Pool, PoolConfig};
//! use respct_pmem::{Region, RegionConfig};
//!
//! let cfg = PoolConfig::builder()
//!     .flusher_threads(2)
//!     .flush_shards(16)
//!     .build()
//!     .expect("valid config");
//! let pool = Pool::create(Region::new(RegionConfig::fast(8 << 20)), cfg).expect("pool");
//! # drop(pool);
//! ```
//!
//! Crash testing uses a sim-mode region; see `Pool::recover` and the
//! integration tests for the full crash → restore → recover cycle.

mod alloc;
mod checkpoint;
mod condvar;
mod error;
mod incll;
pub mod layout;
pub mod metrics;
mod pool;
mod recovery;
mod registry;
mod stats;
mod sync;
mod thread;
mod verify;

pub use alloc::CHUNK_SIZE;
pub use checkpoint::{shard_of_line, CheckpointerGuard, CkptReport, ShardReport};
pub use condvar::RCondvar;
pub use error::PoolError;
pub use incll::{cell_layout, epoch_tag, tag_epoch, ICell};
pub use metrics::RuntimeMetrics;
pub use pool::{
    Backend, CheckpointMode, Pool, PoolConfig, PoolConfigBuilder, DEFAULT_POOL_SIZE, MAX_FLUSHERS,
    MAX_FLUSH_SHARDS,
};
#[cfg(feature = "fault-inject")]
pub use pool::{Fault, SyncEdgeSite};
pub use recovery::{RecoveryOptions, RecoveryReport};
pub use stats::{CkptSnapshot, CkptStats};
pub use sync::{TracedGuard, TracedMutex};
pub use thread::{AllowGuard, RpId, ThreadHandle};
pub use verify::{VerifyReport, Violation, ViolationKind};

// Re-export the substrate types users need alongside the pool API.
pub use respct_pmem::{
    BackendKind, PAddr, Pod, Region, RegionConfig, RegionConfigBuilder, RegionError, RegionMode,
};

// Re-export the observability types surfaced through `Pool::metrics`,
// `Pool::serve_metrics`, and `Pool::start_metrics_reporter`.
pub use respct_obs::{HistSnapshot, MetricsRegistry, MetricsServerGuard, ReporterGuard};
