//! Condition variables under ResPCT (paper §3.3.3, Fig. 7).
//!
//! A thread blocked in `cond_wait` cannot reach a restart point, so it must
//! *allow* checkpoints while it waits and *prevent* them again before it
//! resumes — otherwise the checkpoint deadlocks with the waiter. [`RCondvar`]
//! packages the paper's protocol:
//!
//! ```text
//! RP();                       // restart at the critical-section entrance
//! lock(mutex);
//! while !condition {
//!     allow = allow_checkpoints();
//!     cond_wait(cv, mutex);
//!     allow.rearm_locked(mutex);   // may release/re-acquire the lock
//! }
//! ...
//! unlock(mutex);
//! ```
//!
//! The caller is responsible for the two paper rules: an `rp()` immediately
//! before taking the lock, and no persistent stores between lock acquisition
//! and the wait call.

use std::time::Duration;

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::thread::ThreadHandle;

/// A checkpoint-aware condition variable.
#[derive(Default)]
pub struct RCondvar {
    cv: Condvar,
}

impl RCondvar {
    /// Creates a new condition variable.
    pub fn new() -> RCondvar {
        RCondvar { cv: Condvar::new() }
    }

    /// Waits on the condition variable, allowing checkpoints to complete
    /// while blocked. Returns the re-acquired guard.
    pub fn wait<'a, T>(
        &self,
        handle: &ThreadHandle,
        mutex: &'a Mutex<T>,
        mut guard: MutexGuard<'a, T>,
    ) -> MutexGuard<'a, T> {
        let allow = handle.allow_checkpoints();
        self.cv.wait(&mut guard);
        allow.rearm_locked(mutex, guard)
    }

    /// Timed variant of [`RCondvar::wait`]; the boolean reports whether the
    /// wait timed out.
    pub fn wait_for<'a, T>(
        &self,
        handle: &ThreadHandle,
        mutex: &'a Mutex<T>,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let allow = handle.allow_checkpoints();
        let res = self.cv.wait_for(&mut guard, timeout);
        let guard = allow.rearm_locked(mutex, guard);
        (guard, res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.cv.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{Pool, PoolConfig};
    use respct_pmem::{Region, RegionConfig};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn checkpoint_completes_while_thread_waits() {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(4 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        let mutex = Arc::new(Mutex::new(false));
        let cv = Arc::new(RCondvar::new());
        let released = Arc::new(AtomicBool::new(false));

        let waiter = {
            let (pool, mutex, cv, released) = (
                Arc::clone(&pool),
                Arc::clone(&mutex),
                Arc::clone(&cv),
                Arc::clone(&released),
            );
            std::thread::spawn(move || {
                let h = pool.register();
                h.rp(1);
                let mut guard = mutex.lock();
                while !*guard {
                    guard = cv.wait(&h, &mutex, guard);
                }
                released.store(true, Ordering::SeqCst);
            })
        };

        // Give the waiter time to block, then checkpoint: it must complete
        // even though the waiter never reaches another RP.
        std::thread::sleep(Duration::from_millis(30));
        let r = pool.checkpoint_now();
        assert_eq!(r.closed_epoch, 1);

        // Release the waiter.
        {
            let mut guard = mutex.lock();
            *guard = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
        assert!(released.load(Ordering::SeqCst));
    }

    #[test]
    fn waiter_woken_during_checkpoint_waits_for_it() {
        // Wake a waiter while a checkpoint is being held open by a second
        // worker; the waiter must park in checkpoint_prevent and only
        // proceed after the checkpoint finishes.
        let pool = Pool::create(
            Region::new(RegionConfig::fast(4 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        let mutex = Arc::new(Mutex::new(false));
        let cv = Arc::new(RCondvar::new());
        let resumed = Arc::new(AtomicBool::new(false));

        // Worker A: never at an RP until we say so — holds the checkpoint open.
        let a_go = Arc::new(AtomicBool::new(false));
        let worker_a = {
            let (pool, a_go) = (Arc::clone(&pool), Arc::clone(&a_go));
            std::thread::spawn(move || {
                let h = pool.register();
                while !a_go.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                h.rp(1);
            })
        };

        // Worker B: waits on the condvar.
        let worker_b = {
            let (pool, mutex, cv, resumed) = (
                Arc::clone(&pool),
                Arc::clone(&mutex),
                Arc::clone(&cv),
                Arc::clone(&resumed),
            );
            std::thread::spawn(move || {
                let h = pool.register();
                h.rp(2);
                let mut guard = mutex.lock();
                while !*guard {
                    guard = cv.wait(&h, &mutex, guard);
                }
                drop(guard);
                resumed.store(true, Ordering::SeqCst);
            })
        };

        std::thread::sleep(Duration::from_millis(20));
        // Start a checkpoint in the background; it will block on worker A.
        let ck = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.checkpoint_now())
        };
        std::thread::sleep(Duration::from_millis(20));
        // Wake B while the checkpoint is in flight.
        {
            let mut guard = mutex.lock();
            *guard = true;
            cv.notify_all();
        }
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            !resumed.load(Ordering::SeqCst),
            "B must wait for the ongoing checkpoint"
        );
        // Let A reach its RP; checkpoint completes; B resumes.
        a_go.store(true, Ordering::SeqCst);
        ck.join().unwrap();
        worker_a.join().unwrap();
        worker_b.join().unwrap();
        assert!(resumed.load(Ordering::SeqCst));
    }

    #[test]
    fn wait_for_times_out() {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(4 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        let mutex = Mutex::new(());
        let cv = RCondvar::new();
        let h = pool.register();
        let guard = mutex.lock();
        let (_guard, timed_out) = cv.wait_for(&h, &mutex, guard, Duration::from_millis(5));
        assert!(timed_out);
    }
}
