//! Persistent region layout and InCLL cell geometry.
//!
//! The region begins with a fixed header holding everything recovery must be
//! able to find without any volatile state: the magic number, the epoch
//! counter, the root pointer, the allocator's global bump cell, the
//! free-list heads, and one descriptor per thread slot (restart-point id,
//! per-thread allocation cache, registry chain). Everything after the header
//! is heap, carved out by the bump allocator.
//!
//! ```text
//! +---------------------------------------------------------------+
//! | magic | size | epoch | root cell | bump cell | freelists ...  |
//! | thread slot 0 | thread slot 1 | ... | thread slot N-1 | heap  |
//! +---------------------------------------------------------------+
//! ```

use respct_pmem::{align_up, PAddr, CACHE_LINE};

/// Identifies a formatted ResPCT pool ("RESPCT01").
pub const MAGIC: u64 = 0x5245_5350_4354_3031;

/// First epoch of a fresh pool. Starting above zero means the all-zero
/// content of never-initialized memory can never masquerade as "modified in
/// the current epoch".
pub const FIRST_EPOCH: u64 = 1;

/// Geometry of an `ICell<T>`: field offsets relative to the cell address.
///
/// The record comes first (so the cell address doubles as the value
/// address), then the backup, then the 8-byte epoch id. The whole cell must
/// lie within a single cache line — that containment is what makes the PCSO
/// same-line guarantee apply to value + log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellLayout {
    /// Size of the logged value in bytes.
    pub vsize: u32,
    /// Alignment of the logged value.
    pub valign: u32,
    /// Offset of the backup field.
    pub backup_off: u32,
    /// Offset of the epoch-id field.
    pub epoch_off: u32,
    /// Total footprint of the cell in bytes.
    pub total: u32,
}

impl CellLayout {
    /// Computes the layout for a value of `vsize` bytes aligned to `valign`.
    ///
    /// # Panics
    ///
    /// Panics if the value is larger than 24 bytes (cannot fit record +
    /// backup + epoch id in one cache line) or `valign` is not a power of
    /// two.
    pub const fn new(vsize: usize, valign: usize) -> CellLayout {
        assert!(valign.is_power_of_two());
        assert!(
            vsize >= 1 && vsize <= 24,
            "InCLL values must be 1..=24 bytes"
        );
        assert!(valign <= 8, "InCLL values align at most to 8");
        let backup_off = align_up(vsize as u64, valign as u64) as u32;
        let epoch_off = align_up(backup_off as u64 + vsize as u64, 8) as u32;
        let total = epoch_off + 8;
        CellLayout {
            vsize: vsize as u32,
            valign: valign as u32,
            backup_off,
            epoch_off,
            total,
        }
    }

    /// Alignment the cell itself needs so that *any* in-bounds placement at
    /// that alignment keeps it within one cache line.
    pub const fn natural_align(&self) -> u64 {
        let mut a = self.total.next_power_of_two() as u64;
        if a > CACHE_LINE as u64 {
            a = CACHE_LINE as u64;
        }
        if a < self.valign as u64 {
            a = self.valign as u64;
        }
        a
    }

    /// Whether a cell placed at `addr` stays within a single cache line and
    /// is aligned for its value type.
    pub const fn fits_at(&self, addr: PAddr) -> bool {
        let off = addr.0 % CACHE_LINE as u64;
        addr.0.is_multiple_of(self.valign as u64)
            && (addr.0 + self.epoch_off as u64).is_multiple_of(8)
            && off + self.total as u64 <= CACHE_LINE as u64
    }

    /// Packs the geometry into a registry entry's metadata word.
    pub const fn encode(&self) -> u64 {
        (self.vsize as u64) | ((self.valign as u64) << 8)
    }

    /// Reverses [`CellLayout::encode`].
    pub const fn decode(meta: u64) -> CellLayout {
        CellLayout::new((meta & 0xff) as usize, ((meta >> 8) & 0xff) as usize)
    }
}

/// Maximum number of concurrently registered threads (slots are recycled
/// when a handle is dropped).
pub const MAX_THREADS: usize = 128;

/// Number of allocator size classes: 16, 32, 64, ..., 4096 bytes.
pub const NUM_CLASSES: usize = 9;

/// Block size of size class `c`.
pub const fn class_size(c: usize) -> u64 {
    16u64 << c
}

/// Smallest class that fits `size` bytes, or `None` for bump-only sizes.
pub fn class_of(size: u64) -> Option<usize> {
    let mut c = 0;
    while c < NUM_CLASSES {
        if class_size(c) >= size {
            return Some(c);
        }
        c += 1;
    }
    None
}

/// A 32-byte aligned slot for an `ICell<u64>` (layout: record@0 backup@8
/// epoch@16, 24 bytes total, padded to 32 so two fit per line).
pub const U64_CELL_SLOT: u64 = 32;

// ---- Header field offsets -------------------------------------------------

/// Magic number (u64).
pub const OFF_MAGIC: PAddr = PAddr(0);
/// Formatted size (u64).
pub const OFF_SIZE: PAddr = PAddr(8);
/// The global epoch counter (paper Fig. 4 line 56). It shares its cache
/// line only with the epoch-record ring ([`OFF_EPOCH_STATE`]), so PCSO's
/// same-line prefix ordering makes every epoch-record update (`ring slot`,
/// `epoch`) recover to a prefix of the program-order stores — any torn
/// combination the recovery code must handle is a prefix, never a
/// reordering.
pub const OFF_EPOCH: PAddr = PAddr(64);
/// First slot of the epoch-record **ring**: [`MAX_EPOCH_PIPELINE`]
/// consecutive plain u64 words, all on the same cache line as
/// [`OFF_EPOCH`]. Slot `i` (see [`epoch_ring_slot`]) holds epoch `N` while
/// a checkpoint of epoch `N` with `N % K == i` is still draining its
/// modified lines in the background, and zero once that drain's two-phase
/// commit lands. With `epoch_pipeline(1)` (the default) only slot 0 is
/// ever used and the media format is identical to the single drain-state
/// word it generalizes. Recovery rolls back every epoch still named by a
/// non-zero slot.
pub const OFF_EPOCH_STATE: PAddr = PAddr(72);

/// Capacity of the epoch-record ring: the maximum number of epochs that
/// may be in flight (claimed but not yet drain-committed) at once, and the
/// upper bound of `PoolConfig::builder().epoch_pipeline(K)`. Fixed by the
/// header format — recovery always decodes all slots, independent of the
/// K the crashed process ran with.
pub const MAX_EPOCH_PIPELINE: usize = 4;

/// Address of ring slot `i` (`i < MAX_EPOCH_PIPELINE`). The slot for epoch
/// `N` under a pipeline depth of `K` is `N % K`.
pub const fn epoch_ring_slot(i: usize) -> PAddr {
    PAddr(OFF_EPOCH_STATE.0 + 8 * i as u64)
}
/// Root object pointer: an `ICell<u64>` holding a `PAddr`.
pub const OFF_ROOT: PAddr = PAddr(128);
/// Global bump offset: an `ICell<u64>`.
pub const OFF_BUMP: PAddr = PAddr(160);
/// Free-list heads: `NUM_CLASSES` consecutive `ICell<u64>` slots.
pub const OFF_FREELISTS: PAddr = PAddr(192);

/// Start of the thread-slot array.
pub const OFF_SLOTS: PAddr = PAddr(OFF_FREELISTS.0 + (NUM_CLASSES as u64) * U64_CELL_SLOT + 32);

// ---- Per-thread slot ------------------------------------------------------

/// Byte size of one thread slot (multiple of a cache line so slots don't
/// share lines — the paper pays the same attention to false sharing).
pub const SLOT_SIZE: u64 = 192;

/// Offset of slot `i`.
pub fn slot_base(i: usize) -> PAddr {
    PAddr(align_up(OFF_SLOTS.0, CACHE_LINE as u64) + (i as u64) * SLOT_SIZE)
}

/// `ICell<u64>`: restart-point id last persisted by this thread.
pub const SLOT_RP_ID: u64 = 0;
/// `ICell<u64>`: current bump cursor of the thread's allocation chunk.
pub const SLOT_ALLOC_CUR: u64 = 32;
/// `ICell<u64>`: end of the thread's allocation chunk.
pub const SLOT_ALLOC_END: u64 = 64;
/// `ICell<u64>`: number of valid registry entries of this slot.
pub const SLOT_REG_LEN: u64 = 96;
/// Plain u64: head chunk of the slot's registry chain (PAddr, 0 = none).
pub const SLOT_REG_HEAD: u64 = 128;

/// First heap byte.
pub fn heap_start() -> PAddr {
    PAddr(align_up(slot_base(MAX_THREADS).0, CACHE_LINE as u64))
}

// ---- Registry chunks ------------------------------------------------------

/// Registry chunk size in bytes (one bump allocation).
pub const REG_CHUNK_SIZE: u64 = 4096;
/// Entries per chunk: 8-byte next pointer, then 16-byte entries.
pub const REG_CHUNK_ENTRIES: u64 = (REG_CHUNK_SIZE - 8) / 16;
/// Offset of the next-chunk pointer within a chunk.
pub const REG_CHUNK_NEXT: u64 = 0;
/// Offset of entry `i` within a chunk.
pub const fn reg_entry_off(i: u64) -> u64 {
    8 + i * 16
}

const _HEADER_FIELDS_DISJOINT: () = {
    assert!(OFF_EPOCH_STATE.0 == OFF_EPOCH.0 + 8);
    // Epoch + the whole epoch-record ring must share a cache line (the
    // ring-slot claim and the two-phase commit rely on PCSO same-line
    // prefix order between the epoch counter and every slot).
    assert!(OFF_EPOCH_STATE.0 / 64 == OFF_EPOCH.0 / 64);
    assert!(epoch_ring_slot(MAX_EPOCH_PIPELINE - 1).0 / 64 == OFF_EPOCH.0 / 64);
    assert!(OFF_ROOT.0 >= OFF_EPOCH_STATE.0 + 8 * MAX_EPOCH_PIPELINE as u64);
    assert!(OFF_BUMP.0 >= OFF_ROOT.0 + 24);
    assert!(OFF_FREELISTS.0 >= OFF_BUMP.0 + 24);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_cell_layout() {
        let l = CellLayout::new(8, 8);
        assert_eq!(l.backup_off, 8);
        assert_eq!(l.epoch_off, 16);
        assert_eq!(l.total, 24);
        assert_eq!(l.natural_align(), 32);
    }

    #[test]
    fn u8_cell_layout() {
        let l = CellLayout::new(1, 1);
        assert_eq!(l.backup_off, 1);
        assert_eq!(l.epoch_off, 8);
        assert_eq!(l.total, 16);
        assert_eq!(l.natural_align(), 16);
    }

    #[test]
    fn sixteen_byte_cell_layout() {
        let l = CellLayout::new(16, 8);
        assert_eq!(l.backup_off, 16);
        assert_eq!(l.epoch_off, 32);
        assert_eq!(l.total, 40);
        assert_eq!(l.natural_align(), 64);
    }

    #[test]
    fn fits_at_checks_line_containment() {
        let l = CellLayout::new(8, 8);
        assert!(l.fits_at(PAddr(0)));
        assert!(l.fits_at(PAddr(40))); // 40 + 24 = 64, exactly fits
        assert!(!l.fits_at(PAddr(48))); // 48 + 24 = 72, straddles
        assert!(!l.fits_at(PAddr(44))); // misaligned
    }

    #[test]
    fn encode_decode_roundtrip() {
        for (s, a) in [(1, 1), (2, 2), (4, 4), (8, 8), (16, 8), (24, 8)] {
            let l = CellLayout::new(s, a);
            assert_eq!(CellLayout::decode(l.encode()), l);
        }
    }

    #[test]
    fn classes() {
        assert_eq!(class_size(0), 16);
        assert_eq!(class_size(8), 4096);
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(16), Some(0));
        assert_eq!(class_of(17), Some(1));
        assert_eq!(class_of(4096), Some(8));
        assert_eq!(class_of(4097), None);
    }

    // The purely-constant field bounds are checked at compile time below
    // (`_HEADER_FIELDS_DISJOINT`); this test covers the computed ones.
    #[test]
    fn header_fields_do_not_overlap() {
        // Ring slots are consecutive, disjoint from the root cell, and all
        // share the epoch counter's cache line.
        for i in 0..MAX_EPOCH_PIPELINE {
            assert_eq!(epoch_ring_slot(i).0, OFF_EPOCH_STATE.0 + 8 * i as u64);
            assert!(epoch_ring_slot(i).0 + 8 <= OFF_ROOT.0);
            assert_eq!(
                epoch_ring_slot(i).0 / CACHE_LINE as u64,
                OFF_EPOCH.0 / CACHE_LINE as u64
            );
        }
        assert!(OFF_SLOTS.0 >= OFF_FREELISTS.0 + NUM_CLASSES as u64 * U64_CELL_SLOT);
        assert!(heap_start().0 >= slot_base(MAX_THREADS).0);
        // Every u64 cell slot in the header must fit its line.
        let l = CellLayout::new(8, 8);
        assert!(l.fits_at(OFF_ROOT));
        assert!(l.fits_at(OFF_BUMP));
        for c in 0..NUM_CLASSES {
            assert!(l.fits_at(PAddr(OFF_FREELISTS.0 + c as u64 * U64_CELL_SLOT)));
        }
        for i in [0, 1, MAX_THREADS - 1] {
            let b = slot_base(i);
            assert_eq!(b.0 % CACHE_LINE as u64, 0);
            for f in [SLOT_RP_ID, SLOT_ALLOC_CUR, SLOT_ALLOC_END, SLOT_REG_LEN] {
                assert!(l.fits_at(PAddr(b.0 + f)));
            }
        }
    }

    #[test]
    fn registry_chunk_geometry() {
        assert!(reg_entry_off(REG_CHUNK_ENTRIES - 1) + 16 <= REG_CHUNK_SIZE);
        assert_eq!(REG_CHUNK_ENTRIES, 255);
    }
}
