//! Persistent registry of InCLL cells.
//!
//! The paper's recovery procedure iterates over "every variable in NVMM
//! with InCLL" (Fig. 5). A real general-purpose runtime therefore needs a
//! crash-consistent index of those variables; this module provides it as a
//! per-thread-slot chain of append-only chunks:
//!
//! * Each entry is 16 bytes: the cell address and an encoded
//!   [`CellLayout`](crate::layout::CellLayout).
//! * The number of valid entries per slot is an `ICell<u64>` (`reg_len`),
//!   so a crashed epoch's appends are rolled back together with the cells
//!   they describe (whose memory the allocator rollback reclaims anyway).
//! * Chunks come from the ordinary allocator; the chain head lives in the
//!   slot descriptor, link pointers in the chunks themselves. All plain
//!   (non-logged) writes here are registered with `add_modified` — they are
//!   written once per entry/chunk, so the idempotence rule of §3.3.2 says
//!   they need no undo log.

use respct_pmem::PAddr;

use crate::layout::{self, CellLayout, REG_CHUNK_ENTRIES, REG_CHUNK_SIZE};
use crate::pool::Pool;

impl Pool {
    /// Appends `(addr, layout)` to `slot`'s registry.
    ///
    /// # Safety
    ///
    /// Caller must have exclusive use of `slot` (see [`Pool::slot_state`]).
    pub(crate) unsafe fn register_cell(&self, slot: usize, addr: PAddr, l: CellLayout) {
        // SAFETY: forwarded caller contract.
        let (tail, used) = {
            let st = unsafe { self.slot_state(slot) };
            (st.reg_tail, st.reg_tail_used)
        };
        let (tail, used) = if tail == 0 || used == REG_CHUNK_ENTRIES {
            // SAFETY: forwarded caller contract.
            let chunk = unsafe { self.alloc_raw(slot, REG_CHUNK_SIZE, 64) };
            self.region
                .store(PAddr(chunk.0 + layout::REG_CHUNK_NEXT), 0u64);
            // SAFETY: forwarded caller contract.
            unsafe { self.add_modified_raw(slot, chunk, 8) };
            if tail == 0 {
                let head_field = PAddr(layout::slot_base(slot).0 + layout::SLOT_REG_HEAD);
                self.region.store(head_field, chunk.0);
                // SAFETY: forwarded caller contract.
                unsafe { self.add_modified_raw(slot, head_field, 8) };
            } else {
                let next_field = PAddr(tail + layout::REG_CHUNK_NEXT);
                self.region.store(next_field, chunk.0);
                // SAFETY: forwarded caller contract.
                unsafe { self.add_modified_raw(slot, next_field, 8) };
            }
            (chunk.0, 0)
        } else {
            (tail, used)
        };
        let entry = PAddr(tail + layout::reg_entry_off(used));
        self.region.store(entry, addr.0);
        self.region.store(entry.offset(8), l.encode());
        // SAFETY: forwarded caller contract. The length cursor is a
        // volatile mirror, synced into its InCLL cell at checkpoint time.
        unsafe { self.add_modified_raw(slot, entry, 16) };
        // SAFETY: forwarded caller contract.
        let st = unsafe { self.slot_state(slot) };
        st.reg_len += 1;
        st.reg_tail = tail;
        st.reg_tail_used = used + 1;
    }

    /// Recomputes a slot's volatile tail cache from persistent state
    /// (registration after a hand-off or recovery).
    ///
    /// # Safety
    ///
    /// Caller must have exclusive use of `slot`.
    pub(crate) unsafe fn rebuild_registry_cache(&self, slot: usize) {
        // SAFETY: forwarded caller contract.
        let len = unsafe { self.slot_state(slot) }.reg_len;
        let head: u64 = self
            .region
            .load(PAddr(layout::slot_base(slot).0 + layout::SLOT_REG_HEAD));
        let (tail, used) = if len == 0 {
            // An earlier incarnation may have linked chunks whose entries
            // all rolled back; reuse the first chunk if present.
            (head, 0)
        } else {
            let hops = (len - 1) / REG_CHUNK_ENTRIES;
            let mut cur = head;
            for _ in 0..hops {
                cur = self.region.load(PAddr(cur + layout::REG_CHUNK_NEXT));
                debug_assert!(cur != 0, "registry chain shorter than reg_len implies");
            }
            (cur, len - hops * REG_CHUNK_ENTRIES)
        };
        // SAFETY: forwarded caller contract.
        let st = unsafe { self.slot_state(slot) };
        st.reg_tail = tail;
        st.reg_tail_used = used;
    }

    /// Iterates the first `len` registered cells of `slot` (used by
    /// recovery with the persistent length, and by diagnostics with the
    /// volatile one), invoking `f(addr, layout)` for each entry.
    pub(crate) fn for_each_registered(
        &self,
        slot: usize,
        len: u64,
        mut f: impl FnMut(PAddr, CellLayout),
    ) {
        let mut chunk: u64 = self
            .region
            .load(PAddr(layout::slot_base(slot).0 + layout::SLOT_REG_HEAD));
        let mut seen = 0u64;
        while seen < len {
            assert!(
                chunk != 0,
                "registry chain truncated: {seen} of {len} entries"
            );
            let in_chunk = (len - seen).min(REG_CHUNK_ENTRIES);
            for i in 0..in_chunk {
                let entry = PAddr(chunk + layout::reg_entry_off(i));
                let addr: u64 = self.region.load(entry);
                let meta: u64 = self.region.load(entry.offset(8));
                f(PAddr(addr), CellLayout::decode(meta));
            }
            seen += in_chunk;
            if seen < len {
                chunk = self.region.load(PAddr(chunk + layout::REG_CHUNK_NEXT));
            }
        }
    }

    /// Persistent registry length of `slot` (value as of the last
    /// checkpoint sync).
    pub(crate) fn reg_len_persistent(&self, slot: usize) -> u64 {
        self.cell_get(self.slot_cell(slot, layout::SLOT_REG_LEN))
    }

    /// Total registered cells across all slots, as of the last checkpoint
    /// (the volatile cursors are synced to their cells at each checkpoint).
    pub fn registered_cells(&self) -> u64 {
        (0..layout::MAX_THREADS)
            .map(|s| self.reg_len_persistent(s))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::incll::cell_layout;
    use crate::pool::{Pool, PoolConfig, SYSTEM_SLOT};
    use respct_pmem::{PAddr, Region, RegionConfig};

    #[test]
    fn register_and_iterate() {
        let p = Pool::create(
            Region::new(RegionConfig::fast(8 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        let l = cell_layout::<u64>();
        let mut expect = Vec::new();
        for _ in 0..600 {
            // More than two chunks' worth (255 per chunk).
            // SAFETY: single-threaded test.
            let a = unsafe { p.alloc_raw(SYSTEM_SLOT, 32, 32) };
            // SAFETY: single-threaded test.
            unsafe { p.register_cell(SYSTEM_SLOT, a, l) };
            expect.push(a);
        }
        p.checkpoint_now(); // sync the volatile length cursor
        let mut got = Vec::new();
        p.for_each_registered(SYSTEM_SLOT, p.reg_len_persistent(SYSTEM_SLOT), |a, lay| {
            assert_eq!(lay, l);
            got.push(a);
        });
        assert_eq!(got, expect);
        assert_eq!(p.registered_cells(), 600);
    }

    #[test]
    fn rebuild_cache_matches_append_state() {
        let p = Pool::create(
            Region::new(RegionConfig::fast(8 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        let l = cell_layout::<u32>();
        for _ in 0..300 {
            // SAFETY: single-threaded test.
            let a = unsafe { p.alloc_raw(SYSTEM_SLOT, 16, 16) };
            // SAFETY: single-threaded test.
            unsafe { p.register_cell(SYSTEM_SLOT, a, l) };
        }
        // SAFETY: single-threaded test.
        let (tail_before, used_before) = {
            let st = unsafe { p.slot_state(SYSTEM_SLOT) };
            (st.reg_tail, st.reg_tail_used)
        };
        // SAFETY: single-threaded test.
        unsafe { p.rebuild_registry_cache(SYSTEM_SLOT) };
        // SAFETY: single-threaded test.
        let st = unsafe { p.slot_state(SYSTEM_SLOT) };
        assert_eq!((st.reg_tail, st.reg_tail_used), (tail_before, used_before));
        // Appending after a rebuild still works.
        // SAFETY: single-threaded test.
        let a = unsafe { p.alloc_raw(SYSTEM_SLOT, 16, 16) };
        // SAFETY: single-threaded test.
        unsafe { p.register_cell(SYSTEM_SLOT, a, l) };
        p.checkpoint_now();
        assert_eq!(p.registered_cells(), 301);
    }

    #[test]
    fn empty_registry_iterates_nothing() {
        let p = Pool::create(
            Region::new(RegionConfig::fast(1 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        let mut n = 0;
        p.for_each_registered(3, p.reg_len_persistent(3), |_a: PAddr, _l| n += 1);
        assert_eq!(n, 0);
    }
}
