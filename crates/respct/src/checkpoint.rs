//! The checkpoint procedure (paper Fig. 4, lines 46–59) and its periodic
//! driver, plus the sharded parallel flush pipeline (§5 "a pool of flusher
//! threads flushes data to NVMM in parallel during checkpoints").
//!
//! # The sharded flush pipeline
//!
//! Every tracked cache line is hash-partitioned into one of
//! `Pool::nshards` **flush shards** at append time
//! ([`shard_of_line`]); each per-thread `to_be_flushed` list is really a
//! vector of per-shard lists. Because the shard is a pure function of the
//! line address, the same line tracked by any number of threads always
//! lands in the same shard — so a *per-shard* sort + dedup is exactly as
//! strong as the global sort + dedup the pipeline replaces, with no
//! cross-shard coordination.
//!
//! At checkpoint time the stop-the-world section merely *moves* the
//! per-slot shard lists into per-shard gather vectors (O(slots × shards)
//! pointer swaps, no sorting). Flusher threads then claim whole shards
//! from a shared counter; each claimer sorts + dedups its shard locally,
//! writes the lines back, and issues **one** fence after its last shard.
//! The serial O(n log n) sort and the old chunk-scatter/ack channel
//! round-trip per chunk are both gone: the checkpointer sends one job
//! message per flusher and waits for one ack per flusher.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use respct_pmem::{PAddr, Region, SyncToken, TraceMarker};

use crate::layout::{epoch_ring_slot, MAX_THREADS, OFF_EPOCH, OFF_EPOCH_STATE};
use crate::metrics::RuntimeMetrics;
use crate::pool::{CheckpointMode, Pool, SYSTEM_SLOT};

/// The flush shard a cache line belongs to. `nshards` must be a power of
/// two (guaranteed by [`PoolConfig::resolved_shards`]).
///
/// Fibonacci (multiplicative) hashing: consecutive lines — the common
/// pattern from `add_modified` over a byte range — spread across shards
/// instead of clustering on one flusher, and the mixed high bits behave
/// well for any allocation stride.
///
/// [`PoolConfig::resolved_shards`]: crate::PoolConfig::resolved_shards
#[inline]
pub fn shard_of_line(line: u64, nshards: usize) -> usize {
    debug_assert!(nshards.is_power_of_two());
    ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (nshards - 1)
}

/// What one flusher (or the checkpointer, inline) did for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Unique lines written back.
    pub lines: u64,
    /// Nanoseconds sorting + deduplicating the shard.
    pub sort_ns: u64,
    /// Nanoseconds issuing the shard's write-backs.
    pub flush_ns: u64,
}

/// Outcome of one checkpoint, with the per-phase breakdown the paper's
/// Fig. 10 decomposes overhead into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptReport {
    /// Epoch that was just closed (the new epoch is `closed_epoch + 1`).
    pub closed_epoch: u64,
    /// Unique cache lines flushed (counted even in `NoFlush` mode, where
    /// they are deliberately not written back).
    pub lines: u64,
    /// Nanoseconds waiting for every thread to park (quiescence).
    pub wait_ns: u64,
    /// Nanoseconds moving per-slot shard lists into the gather vectors —
    /// the only per-line work left on the serial path, and it is O(1) per
    /// *list*, not per line.
    pub partition_ns: u64,
    /// Nanoseconds in the flush phase, wall-clock across all flushers
    /// (sort + dedup + write-backs + fences).
    pub flush_ns: u64,
    /// Nanoseconds application threads were held parked (the stop-the-world
    /// window, from raising `timer` to releasing it). Synchronous
    /// checkpoints hold threads through the flush, so this covers wait +
    /// partition + flush; asynchronous checkpoints release at the epoch
    /// swap, so it covers only wait + partition + the draining-record
    /// persist. Pipelined checkpoints (`epoch_pipeline(K)`, K > 1) measure
    /// from the instant quiescence completes to the release — the window
    /// the ring design actually shrinks: list snapshot + ring-slot claim,
    /// with no flush and no commit wait in it. This — not `wait_ns`, which
    /// is pure quiescence — is what the threads actually experience as
    /// stall.
    pub stw_ns: u64,
    /// Nanoseconds of background drain after the threads were released
    /// (flush + two-phase commit). Zero for synchronous checkpoints.
    pub drain_ns: u64,
    /// Nanoseconds for the whole checkpoint.
    pub total_ns: u64,
    /// Per-shard breakdown, one entry per non-empty shard.
    pub shards: Vec<ShardReport>,
}

impl Pool {
    /// Runs one checkpoint to completion.
    ///
    /// Must be called from a thread that is **not** blocked on its own
    /// per-thread flag — i.e. the periodic checkpointer, the main thread in
    /// tests, or via [`ThreadHandle::checkpoint_here`]
    /// (which parks the calling handle first).
    ///
    /// [`ThreadHandle::checkpoint_here`]: crate::thread::ThreadHandle::checkpoint_here
    pub fn checkpoint_now(&self) -> CkptReport {
        let _serial = self.lock_ckpt();
        if self.pipeline.is_some() {
            // Backpressure: epoch N's ring slot is `N mod K`, free only
            // once the drain of epoch `N − K` has committed. Wait that
            // out *before* raising `timer` — application threads keep
            // running while a full ring holds the checkpoint back.
            let closing = self.epoch_mirror.load(Ordering::Relaxed);
            let k = self.cfg.epoch_pipeline as u64;
            let mut spins = 0u32;
            while closing - self.drain_oldest.load(Ordering::Acquire) >= k {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            if closing > k {
                // Slot `closing mod K` was last claimed by epoch
                // `closing − K`, whose commit we just waited out: join the
                // executor's release so the claim below is HB-after it.
                self.region.sync_acquire(SyncToken::Drain);
            }
        }
        let t0 = Instant::now();
        self.timer.store(true, Ordering::SeqCst);
        // Wait until every active thread is parked at a restart point
        // (Fig. 4 lines 49–54). Spin briefly, then yield: this container
        // has one core, so pure spinning would starve the parked threads.
        for slot in 0..MAX_THREADS {
            if slot == SYSTEM_SLOT || !self.active[slot].load(Ordering::SeqCst) {
                continue;
            }
            let mut spins = 0u32;
            while !self.flags[slot].load(Ordering::SeqCst) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            // We observed the slot's raised flag: everything its owner did
            // before parking (stores, tracking-list pushes) happens-before
            // the checkpoint work below.
            self.region
                .sync_acquire(SyncToken::Flag { slot: slot as u64 });
        }
        let waited = t0.elapsed();
        let t_parked = Instant::now();
        let closing = self.epoch_mirror.load(Ordering::Relaxed);
        self.region.trace_marker(TraceMarker::CheckpointBegin {
            epoch: closing,
            full: self.cfg.mode == CheckpointMode::Full,
        });

        // All threads are parked: first sync the deferred allocator and
        // registry cursors into their InCLL cells (so the flush below
        // persists end-of-epoch metadata), then gather the tracking lists.
        // SAFETY: quiescence established above; `ckpt_lock` held.
        unsafe { self.sync_deferred_cells() };

        if self.pipeline.is_some() {
            // Pipelined gather: snapshot the raw per-slot lists by pointer
            // move, no merging — the drain executor flattens and dedups the
            // whole epoch off-thread anyway, so per-shard merge here would
            // be O(lines) of copying inside the parked window for nothing.
            let tp = Instant::now();
            let mut lists: Vec<Vec<u64>> = Vec::new();
            for slot in 0..MAX_THREADS {
                // SAFETY: `timer` is set and every active owner's flag was
                // observed true with SeqCst, so owners are parked; inactive
                // slots have no owner. The checkpointer has exclusive
                // access.
                let st = unsafe { self.slot_state(slot) };
                for list in &mut st.to_flush {
                    if !list.is_empty() {
                        lists.push(std::mem::take(list));
                    }
                }
            }
            let partitioned = tp.elapsed();
            let report = self.drain_pipelined(t0, t_parked, waited, partitioned, closing, lists);
            self.region
                .trace_marker(TraceMarker::CheckpointEnd { epoch: closing });
            return report;
        }

        // Gather: move each slot's per-shard lists into per-shard vectors.
        // No sorting and no per-line work here — dedup happens per shard,
        // in parallel, inside the flush phase.
        let tp = Instant::now();
        let mut shards: Vec<Vec<u64>> = vec![Vec::new(); self.nshards];
        for slot in 0..MAX_THREADS {
            // SAFETY: `timer` is set and every active owner's flag was
            // observed true with SeqCst, so owners are parked; inactive
            // slots have no owner. The checkpointer has exclusive access.
            let st = unsafe { self.slot_state(slot) };
            for (s, list) in st.to_flush.iter_mut().enumerate() {
                if list.is_empty() {
                    continue;
                }
                if shards[s].is_empty() {
                    shards[s] = std::mem::take(list);
                } else {
                    shards[s].append(list);
                }
            }
        }
        let partitioned = tp.elapsed();

        let report = if self.cfg.async_checkpoint {
            self.drain_async(t0, waited, partitioned, closing, shards)
        } else {
            self.drain_sync(t0, waited, partitioned, closing, shards)
        };
        self.region
            .trace_marker(TraceMarker::CheckpointEnd { epoch: closing });
        report
    }

    /// Synchronous tail of a checkpoint: flush, commit the epoch counter,
    /// recycle frees, then release the parked threads.
    fn drain_sync(
        &self,
        t0: Instant,
        waited: Duration,
        partitioned: Duration,
        closing: u64,
        shards: Vec<Vec<u64>>,
    ) -> CkptReport {
        let tf = Instant::now();
        let (nlines, shard_reports) = self.flush_phase(shards);
        let flushed = tf.elapsed();

        // Advance and persist the epoch counter (Fig. 4 lines 56–58). The
        // barrier marker asserts the ordering dependency this store has on
        // every data flush above: all of them must be fenced by now.
        self.region.trace_marker(TraceMarker::OrderBarrier);
        self.region.store(OFF_EPOCH, closing + 1);
        self.region.pwb(OFF_EPOCH);
        self.region.psync();
        self.epoch_mirror.store(closing + 1, Ordering::SeqCst);
        self.region
            .trace_marker(TraceMarker::EpochAdvance { epoch: closing + 1 });

        // Blocks freed during the closed epoch are now safe to recycle;
        // push them onto the persistent free lists in the new epoch.
        // SAFETY: checkpointer exclusivity — workers are still parked
        // (timer is still true) and we hold `ckpt_lock`.
        unsafe { self.drain_frees(SYSTEM_SLOT) };

        let stw = t0.elapsed();
        // Release before the timer store: parked threads resume only after
        // observing `timer == false`, so their acquire follows this edge.
        self.region.sync_release(SyncToken::Timer);
        self.timer.store(false, Ordering::SeqCst);
        let report = CkptReport {
            closed_epoch: closing,
            lines: nlines,
            wait_ns: waited.as_nanos() as u64,
            partition_ns: partitioned.as_nanos() as u64,
            flush_ns: flushed.as_nanos() as u64,
            stw_ns: stw.as_nanos() as u64,
            drain_ns: 0,
            total_ns: t0.elapsed().as_nanos() as u64,
            shards: shard_reports,
        };
        self.metrics.on_checkpoint(&report);
        report
    }

    /// Asynchronous tail of a checkpoint (two-phase commit). While the
    /// threads are still parked, only the *draining* epoch record is made
    /// durable — `state ← N` then `epoch ← N + 1`, one write-back and fence
    /// for both (they share a cache line, so PCSO guarantees any torn
    /// durable state is a program-order prefix of the two stores; every
    /// prefix is handled by recovery). The threads are then released and
    /// run epoch `N + 1` while this thread drains the snapshotted shards;
    /// only after every shard's write-backs are fenced is the state word
    /// committed back to zero. A crash anywhere in the window recovers by
    /// rolling back epochs `N` *and* `N + 1` to the start of `N` — which is
    /// why the fast path's on-demand push-out must not let an epoch-`N`
    /// backup be overwritten until the commit lands.
    fn drain_async(
        &self,
        t0: Instant,
        waited: Duration,
        partitioned: Duration,
        closing: u64,
        shards: Vec<Vec<u64>>,
    ) -> CkptReport {
        // Deferred frees must be collected while their owners are parked
        // (the lists are owner-mutable again the instant threads resume)
        // but pushed only after the commit: the link-word store overwrites
        // block content that a pre-commit crash still rolls back to live.
        // SAFETY: quiescence established by the caller; `ckpt_lock` held.
        let taken_frees = unsafe { self.take_frees() };

        self.region.store(OFF_EPOCH_STATE, closing);
        self.region.store(OFF_EPOCH, closing + 1);
        self.region.pwb(OFF_EPOCH);
        self.region.psync();

        // Publish the drain before releasing: the `SeqCst` timer store
        // orders these after-the-fact for every thread whose park loop
        // observes `timer == false`. `drain_oldest` stays at `closing`
        // (nothing below it is uncommitted) until the commit advances it.
        self.drain_active.store(true, Ordering::Relaxed);
        self.epoch_mirror.store(closing + 1, Ordering::SeqCst);
        self.region
            .trace_marker(TraceMarker::DrainBegin { epoch: closing });
        let stw = t0.elapsed();
        self.region.sync_release(SyncToken::Timer);
        self.timer.store(false, Ordering::SeqCst);

        // Background drain: application threads are running epoch N + 1
        // now. The flushers (or this thread, inline) never take data-
        // structure locks, so a thread blocked in the push-out wait cannot
        // deadlock the drain.
        let td = Instant::now();
        #[cfg(feature = "fault-inject")]
        let skip_commit_order = self.take_fault(crate::pool::Fault::SkipDrainCommitOrder);
        #[cfg(not(feature = "fault-inject"))]
        let skip_commit_order = false;
        let tf = Instant::now();
        let (nlines, shard_reports) = if skip_commit_order {
            // Injected bug: commit without writing anything back.
            Self::count_shards(shards)
        } else {
            self.flush_phase(shards)
        };
        let flushed = tf.elapsed();

        // Phase two of the commit: every snapshotted shard is fenced, so
        // the drained epoch's durability obligation is met — clear the
        // state word. Until this fence lands, recovery discards epoch N.
        self.region.trace_marker(TraceMarker::OrderBarrier);
        self.region.store(OFF_EPOCH_STATE, 0u64);
        self.region.pwb(OFF_EPOCH_STATE);
        self.region.psync();
        self.region
            .trace_marker(TraceMarker::DrainCommit { epoch: closing });
        // Release before clearing `drain_active`: a thread leaving the
        // push-out wait acquires this edge, ordering its backup overwrite
        // after the two-phase commit. Advancing `drain_oldest` past
        // `closing` is what actually ends the push-out wait.
        self.region.sync_release(SyncToken::Drain);
        self.drain_oldest.store(closing + 1, Ordering::Release);
        self.drain_active.store(false, Ordering::Release);

        // SAFETY: this thread is the checkpointer, holds `ckpt_lock`, and
        // SYSTEM_SLOT has no other owner; the tracked link-word lines land
        // in epoch N + 1's fresh lists.
        unsafe { self.push_frees(SYSTEM_SLOT, taken_frees) };

        let report = CkptReport {
            closed_epoch: closing,
            lines: nlines,
            wait_ns: waited.as_nanos() as u64,
            partition_ns: partitioned.as_nanos() as u64,
            flush_ns: flushed.as_nanos() as u64,
            stw_ns: stw.as_nanos() as u64,
            drain_ns: td.elapsed().as_nanos() as u64,
            total_ns: t0.elapsed().as_nanos() as u64,
            shards: shard_reports,
        };
        self.metrics.on_checkpoint(&report);
        report
    }

    /// Pipelined tail of a checkpoint (`epoch_pipeline(K)`, K > 1): claim
    /// the closing epoch's ring slot — `ring[N mod K] ← N`, `epoch ← N+1`,
    /// one write-back and one fence for both (they share the epoch header
    /// line, so PCSO makes any torn durable state a program-order prefix,
    /// and every prefix is handled by recovery's ring decode) — hand the
    /// snapshotted lists to the drain executor, and release the threads.
    /// Up to K−1 earlier drains may still be in flight; the executor
    /// commits strictly in ring order, so `ring[e] = 0` always implies
    /// every predecessor of `e` is durable too.
    #[allow(clippy::too_many_arguments)]
    fn drain_pipelined(
        &self,
        t0: Instant,
        t_parked: Instant,
        waited: Duration,
        partitioned: Duration,
        closing: u64,
        lists: Vec<Vec<u64>>,
    ) -> CkptReport {
        let exec = self
            .pipeline
            .as_ref()
            .expect("pipelined mode has an executor");
        // Frees from the closing epoch park inside the ticket until its
        // commit lands; the *next* checkpoint pushes them onto the free
        // lists (see `checkpoint_now`). Pushing them any earlier would let
        // a pre-commit crash roll blocks back to live while their link
        // words are already clobbered.
        // SAFETY: quiescence established by the caller; `ckpt_lock` held.
        let frees = unsafe { self.take_frees() };

        let k = self.cfg.epoch_pipeline as u64;
        self.region
            .store(epoch_ring_slot((closing % k) as usize), closing);
        self.region.store(OFF_EPOCH, closing + 1);
        self.region.pwb(OFF_EPOCH);
        self.region.psync();

        // `drain_active` is sticky in pipelined mode: with up to K−1
        // drains overlapping there is no idle window worth detecting, and
        // the push-out guard's `drain_oldest` lower bound already filters
        // committed epochs out of the wait path.
        self.drain_active.store(true, Ordering::Relaxed);
        self.epoch_mirror.store(closing + 1, Ordering::SeqCst);
        self.region
            .trace_marker(TraceMarker::PipelineBegin { epoch: closing });

        let report = CkptReport {
            closed_epoch: closing,
            // Pre-dedup estimate; the executor records the exact deduped
            // count into the metrics when the drain commits.
            lines: lists.iter().map(|l| l.len() as u64).sum(),
            wait_ns: waited.as_nanos() as u64,
            partition_ns: partitioned.as_nanos() as u64,
            flush_ns: 0,
            stw_ns: t_parked.elapsed().as_nanos() as u64,
            drain_ns: 0,
            total_ns: t0.elapsed().as_nanos() as u64,
            shards: Vec::new(),
        };
        exec.submit(DrainTicket {
            epoch: closing,
            lists,
            frees,
            report: report.clone(),
        });
        self.region.sync_release(SyncToken::Timer);
        self.timer.store(false, Ordering::SeqCst);

        // Recycle frees parked by now-committed drains, *after* releasing
        // the threads: `push_frees` publishes each link-word store through
        // the class lock (exactly the asynchronous path's ordering), so
        // running it concurrently with the new epoch is safe and keeps its
        // per-block cost out of the parked window. The link-word lines land
        // in the new epoch's tracking lists.
        let ready = exec.take_committed_frees();
        if !ready.is_empty() {
            // SAFETY: `ckpt_lock` held; SYSTEM_SLOT has no other owner.
            unsafe { self.push_frees(SYSTEM_SLOT, ready) };
        }
        report
    }

    /// Sort + dedup + count without writing anything back (the `NoFlush`
    /// mode and the `SkipDrainCommitOrder` injected fault), so reported
    /// line counts stay comparable with a full flush.
    fn count_shards(shards: Vec<Vec<u64>>) -> (u64, Vec<ShardReport>) {
        let mut total = 0u64;
        let mut reports = Vec::new();
        for (s, mut lines) in shards.into_iter().enumerate() {
            if lines.is_empty() {
                continue;
            }
            lines.sort_unstable();
            lines.dedup();
            total += lines.len() as u64;
            reports.push(ShardReport {
                shard: s,
                lines: lines.len() as u64,
                sort_ns: 0,
                flush_ns: 0,
            });
        }
        (total, reports)
    }

    /// The flush phase of a checkpoint: per-shard sort, dedup, write-back
    /// and fence — parallel when a flusher pool exists, inline otherwise.
    /// Returns the unique line count and the per-shard breakdown.
    fn flush_phase(&self, shards: Vec<Vec<u64>>) -> (u64, Vec<ShardReport>) {
        if self.cfg.mode != CheckpointMode::Full {
            // NoFlush: still sort + dedup per shard so the reported line
            // count matches what a full checkpoint would have written back.
            return Self::count_shards(shards);
        }
        if shards.iter().all(std::vec::Vec::is_empty) {
            return (0, Vec::new());
        }
        // Test-only injected faults: drop one write-back, the global fence,
        // or one shard's fence (the parallel pipeline's failure mode).
        #[cfg(feature = "fault-inject")]
        let skip_one = self.take_fault(crate::pool::Fault::SkipOneFlush);
        #[cfg(feature = "fault-inject")]
        let skip_fence = self.take_fault(crate::pool::Fault::SkipFence);
        #[cfg(feature = "fault-inject")]
        let skip_fence_shard: Option<usize> = self
            .take_fault(crate::pool::Fault::SkipShardFence)
            .then(|| shards.iter().rposition(|s| !s.is_empty()).unwrap());
        #[cfg(not(feature = "fault-inject"))]
        let (skip_one, skip_fence, skip_fence_shard) = (false, false, None::<usize>);
        #[cfg(feature = "fault-inject")]
        let drop_ack_edge = self.take_fault(crate::pool::Fault::DropSyncEdge(
            crate::pool::SyncEdgeSite::FlusherAck,
        ));
        #[cfg(not(feature = "fault-inject"))]
        let drop_ack_edge = false;

        match &self.flushers {
            Some(pool) if !skip_one && !skip_fence => {
                pool.flush_shards(shards, skip_fence_shard, drop_ack_edge)
            }
            _ => self.flush_inline(shards, skip_one, skip_fence, skip_fence_shard),
        }
    }

    /// Inline flush on the checkpointing thread: every shard sorted,
    /// deduped, written back; one fence at the end covers them all.
    fn flush_inline(
        &self,
        shards: Vec<Vec<u64>>,
        skip_one: bool,
        skip_fence: bool,
        skip_fence_shard: Option<usize>,
    ) -> (u64, Vec<ShardReport>) {
        // SkipOneFlush target: the middle line of the largest shard.
        let skip_one_shard = skip_one.then(|| {
            shards
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| l.len())
                .map(|(i, _)| i)
                .unwrap()
        });
        let mut total = 0u64;
        let mut reports: Vec<ShardReport> = Vec::new();
        // Shards written back but not yet covered by a fence.
        let mut unfenced: Vec<usize> = Vec::new();
        for (s, mut lines) in shards.into_iter().enumerate() {
            if lines.is_empty() {
                continue;
            }
            if skip_fence_shard == Some(s) {
                // Fence everything written so far, so exactly this shard's
                // write-backs race the epoch advance. (The marked shard is
                // the last non-empty one, so the loop ends right after.)
                self.region.psync();
                for &sh in &unfenced {
                    self.region
                        .trace_marker(TraceMarker::ShardFlushEnd { shard: sh as u64 });
                }
                unfenced.clear();
            }
            let ts = Instant::now();
            lines.sort_unstable();
            lines.dedup();
            let sort_ns = ts.elapsed().as_nanos() as u64;
            self.region.trace_marker(TraceMarker::ShardFlushBegin {
                shard: s as u64,
                lines: lines.len() as u64,
            });
            let skip_line = (skip_one_shard == Some(s)).then(|| lines[lines.len() / 2]);
            let tw = Instant::now();
            // During a background drain the application threads are already
            // running again and this loop competes with them for cores;
            // yield periodically so the drain cannot monopolize a CPU the
            // released threads need. (`drain_active` is false for the whole
            // synchronous path, so stop-the-world flushes are unaffected.)
            let cooperative = self.drain_active.load(Ordering::Relaxed);
            for (i, &line) in lines.iter().enumerate() {
                if Some(line) == skip_line {
                    continue;
                }
                self.region.pwb_line(line);
                if cooperative && i % 128 == 127 {
                    std::thread::yield_now();
                }
            }
            total += lines.len() as u64;
            reports.push(ShardReport {
                shard: s,
                lines: lines.len() as u64,
                sort_ns,
                flush_ns: tw.elapsed().as_nanos() as u64,
            });
            if skip_fence_shard != Some(s) {
                unfenced.push(s);
            }
        }
        // The marked shard is the last non-empty one, so skipping the final
        // fence here leaves exactly its write-backs unfenced (earlier shards
        // were covered by the psync issued when the marked shard was
        // reached).
        if !skip_fence && skip_fence_shard.is_none() {
            self.region.psync();
        }
        if skip_fence_shard.is_none() {
            // SkipFence still emits the End markers: the buggy runtime
            // *claims* the shards are done, and the checker catches the
            // unfenced write-backs at the order barrier.
            for &sh in &unfenced {
                self.region
                    .trace_marker(TraceMarker::ShardFlushEnd { shard: sh as u64 });
            }
        }
        (total, reports)
    }

    /// Spawns a background thread that checkpoints every `period`.
    ///
    /// Dropping the returned guard stops and joins the thread.
    pub fn start_checkpointer(self: &Arc<Self>, period: Duration) -> CheckpointerGuard {
        let pool = Arc::clone(self);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("respct-ckpt".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    pool.checkpoint_now();
                }
            })
            .expect("spawn checkpointer");
        CheckpointerGuard {
            stop,
            handle: Some(handle),
        }
    }
}

/// Stops the periodic checkpointer when dropped.
pub struct CheckpointerGuard {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for CheckpointerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---- Flusher pool ----------------------------------------------------------

/// One shard of one checkpoint's flush work.
struct ShardTask {
    shard: usize,
    state: Mutex<ShardTaskState>,
}

struct ShardTaskState {
    lines: Vec<u64>,
    report: Option<ShardReport>,
}

/// One checkpoint's flush job, shared by every flusher. Workers claim
/// whole shards by bumping `next`; a shard is sorted, deduped, and written
/// back entirely by its claimer, which fences once after its last shard.
struct ShardJob {
    tasks: Vec<ShardTask>,
    next: AtomicUsize,
    /// Fault injection: the worker that claims this shard skips its fence.
    skip_fence_shard: Option<usize>,
    /// Fault injection: the first worker to finish this job does not report
    /// the release edge its acknowledgement carries (one-shot).
    drop_ack_edge: std::sync::atomic::AtomicBool,
}

impl ShardJob {
    /// The happens-before token of this job's acknowledgement channel.
    fn chan_token(self: &Arc<Self>) -> SyncToken {
        SyncToken::Chan {
            id: Arc::as_ptr(self) as u64,
        }
    }
}

/// A fixed pool of threads that write back flush shards in parallel.
pub(crate) struct FlusherPool {
    workers: Vec<std::thread::JoinHandle<()>>,
    job_tx: Sender<Arc<ShardJob>>,
    done_rx: Receiver<()>,
    region: Arc<Region>,
    n: usize,
}

impl FlusherPool {
    pub(crate) fn new(n: usize, region: Arc<Region>) -> FlusherPool {
        let (job_tx, job_rx) = bounded::<Arc<ShardJob>>(n * 2);
        let (done_tx, done_rx) = bounded::<()>(n * 2);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let rx = job_rx.clone();
            let tx = done_tx.clone();
            let region = Arc::clone(&region);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("respct-flusher-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            Self::work(&region, &job);
                            // The ack publishes this worker's fences to the
                            // checkpointer: release before sending (unless a
                            // DropSyncEdge(FlusherAck) fault ate the edge).
                            if !job.drop_ack_edge.swap(false, Ordering::Relaxed) {
                                region.sync_release(job.chan_token());
                            }
                            if tx.send(()).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn flusher"),
            );
        }
        FlusherPool {
            workers,
            job_tx,
            done_rx,
            region,
            n,
        }
    }

    /// One worker's share of a job: claim shards until none remain, then
    /// fence once and close the claimed shards.
    fn work(region: &Region, job: &ShardJob) {
        let mut claimed: Vec<usize> = Vec::new();
        let mut skip_fence = false;
        loop {
            let idx = job.next.fetch_add(1, Ordering::Relaxed);
            let Some(task) = job.tasks.get(idx) else {
                break;
            };
            let mut st = task.state.lock();
            let ts = Instant::now();
            let mut lines = std::mem::take(&mut st.lines);
            lines.sort_unstable();
            lines.dedup();
            let sort_ns = ts.elapsed().as_nanos() as u64;
            region.trace_marker(TraceMarker::ShardFlushBegin {
                shard: task.shard as u64,
                lines: lines.len() as u64,
            });
            let tw = Instant::now();
            for &line in &lines {
                region.pwb_line(line);
            }
            st.report = Some(ShardReport {
                shard: task.shard,
                lines: lines.len() as u64,
                sort_ns,
                flush_ns: tw.elapsed().as_nanos() as u64,
            });
            drop(st);
            if job.skip_fence_shard == Some(task.shard) {
                skip_fence = true;
            }
            claimed.push(idx);
        }
        // A worker that claimed nothing issued no write-backs, so it has
        // nothing to fence. (This matters beyond perf: one fast worker can
        // consume several of the job's messages, and a no-op psync on the
        // later receives would fence write-backs the earlier invocation
        // deliberately left unfenced under `skip_fence_shard`.)
        if !skip_fence && !claimed.is_empty() {
            region.psync();
            for &idx in &claimed {
                region.trace_marker(TraceMarker::ShardFlushEnd {
                    shard: job.tasks[idx].shard as u64,
                });
            }
        }
    }

    /// Flushes the non-empty shards across the pool; returns when every
    /// claimed shard is written back and fenced (one ack per worker, sent
    /// after that worker's fence).
    pub(crate) fn flush_shards(
        &self,
        shards: Vec<Vec<u64>>,
        skip_fence_shard: Option<usize>,
        drop_ack_edge: bool,
    ) -> (u64, Vec<ShardReport>) {
        let tasks: Vec<ShardTask> = shards
            .into_iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(s, l)| ShardTask {
                shard: s,
                state: Mutex::new(ShardTaskState {
                    lines: l,
                    report: None,
                }),
            })
            .collect();
        if tasks.is_empty() {
            return (0, Vec::new());
        }
        let job = Arc::new(ShardJob {
            tasks,
            next: AtomicUsize::new(0),
            skip_fence_shard,
            drop_ack_edge: std::sync::atomic::AtomicBool::new(drop_ack_edge),
        });
        // One message per worker. A fast worker may consume several
        // messages; the extra receives claim nothing and ack immediately,
        // so n acks still imply every claimed shard was fenced by its
        // claimer before that claimer's ack.
        for _ in 0..self.n {
            self.job_tx
                .send(Arc::clone(&job))
                .expect("flusher pool alive");
        }
        for _ in 0..self.n {
            self.done_rx.recv().expect("flusher pool alive");
            // Each ack received joins that worker's fences into the
            // checkpointer's clock: the epoch commit that follows is
            // provably HB-after every shard write-back.
            self.region.sync_acquire(job.chan_token());
        }
        let mut total = 0u64;
        let mut reports = Vec::with_capacity(job.tasks.len());
        for t in &job.tasks {
            if let Some(r) = t.state.lock().report.take() {
                total += r.lines;
                reports.push(r);
            }
        }
        (total, reports)
    }
}

impl Drop for FlusherPool {
    fn drop(&mut self) {
        // Closing the channel terminates the workers.
        let (tx, _rx) = bounded(1);
        drop(std::mem::replace(&mut self.job_tx, tx));
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

// ---- Pipelined drain executor ----------------------------------------------

/// One closed epoch's drain obligation, snapshotted during the
/// stop-the-world window and handed to the [`DrainExec`] worker.
pub(crate) struct DrainTicket {
    /// The epoch this ticket closes (its generation tag).
    epoch: u64,
    /// The epoch's tracked-line lists, pre-sort and pre-dedup.
    lists: Vec<Vec<u64>>,
    /// Blocks freed during `epoch`, recyclable only after its commit.
    frees: Vec<(PAddr, usize)>,
    /// The stop-the-world report; the worker fills in the flush figures
    /// and records it into the metrics when the commit lands.
    report: CkptReport,
}

/// State shared between the pool and the executor's worker thread. The
/// worker deliberately holds this — not the `Pool` — so dropping the pool
/// drops the executor (joining the worker) without an `Arc` cycle.
struct DrainCtx {
    region: Arc<Region>,
    /// Oldest epoch whose drain has not yet committed; equals the running
    /// epoch when the ring is empty. Commits advance it in strict order.
    drain_oldest: Arc<AtomicU64>,
    metrics: Arc<RuntimeMetrics>,
    /// Ring capacity K.
    k: u64,
    /// Whether to actually write lines back (false under `NoFlush`).
    flush: bool,
    /// Tickets submitted but not yet committed (the in-flight gauge).
    inflight: Arc<AtomicU64>,
    ring_commits: Arc<respct_obs::Counter>,
    /// Frees whose epochs have committed, parked until the next
    /// checkpoint's stop-the-world window recycles them.
    committed_frees: Mutex<Vec<(PAddr, usize)>>,
    /// Test hook (`Pool::hold_drains`): park the worker without letting it
    /// consume tickets, pinning multiple epochs in flight.
    hold: AtomicBool,
    /// `Fault::SkipRingOrder`: commit the next two tickets newest-first.
    reorder: AtomicBool,
}

/// The background drain executor for pipelined checkpoints: a single FIFO
/// worker that flushes each ticket's lines and publishes `ring[e] ← 0`.
/// One worker draining a FIFO queue is the whole ordered-commit argument —
/// epoch `e`'s commit cannot be issued before `e − 1`'s has retired.
pub(crate) struct DrainExec {
    ctx: Arc<DrainCtx>,
    tx: Sender<DrainTicket>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl DrainExec {
    pub(crate) fn new(
        region: Arc<Region>,
        drain_oldest: Arc<AtomicU64>,
        k: usize,
        flush: bool,
        metrics: Arc<RuntimeMetrics>,
    ) -> DrainExec {
        let inflight = Arc::new(AtomicU64::new(0));
        let ring_commits = metrics.register_pipeline(&inflight);
        let ctx = Arc::new(DrainCtx {
            region,
            drain_oldest,
            metrics,
            k: k as u64,
            flush,
            inflight,
            ring_commits,
            committed_frees: Mutex::new(Vec::new()),
            hold: AtomicBool::new(false),
            reorder: AtomicBool::new(false),
        });
        let (tx, rx) = unbounded::<DrainTicket>();
        let worker = {
            let ctx = Arc::clone(&ctx);
            std::thread::Builder::new()
                .name("respct-drain".into())
                .spawn(move || Self::run(&ctx, &rx))
                .expect("spawn drain executor")
        };
        DrainExec {
            ctx,
            tx,
            worker: Some(worker),
        }
    }

    /// Hands one closed epoch to the worker. Called from the checkpointer
    /// during the stop-the-world window, after the ring-slot claim.
    pub(crate) fn submit(&self, ticket: DrainTicket) {
        self.ctx.inflight.fetch_add(1, Ordering::Relaxed);
        self.tx.send(ticket).expect("drain executor alive");
    }

    /// Takes the frees parked by committed drains (checkpointer only).
    pub(crate) fn take_committed_frees(&self) -> Vec<(PAddr, usize)> {
        std::mem::take(&mut *self.ctx.committed_frees.lock())
    }

    /// Arms `Fault::SkipRingOrder`: the worker commits the next two
    /// tickets newest-first, violating the ring-order invariant.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn arm_reorder(&self) {
        self.ctx.reorder.store(true, Ordering::Release);
    }

    /// Parks (`true`) or releases (`false`) the worker without consuming
    /// tickets — the deterministic way to pin several epochs in flight.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn hold(&self, on: bool) {
        self.ctx.hold.store(on, Ordering::Release);
    }

    fn run(ctx: &DrainCtx, rx: &Receiver<DrainTicket>) {
        loop {
            if ctx.hold.load(Ordering::Acquire) {
                std::thread::yield_now();
                continue;
            }
            // A short timeout instead of a blocking `recv`, so a `hold`
            // raised while the queue is empty parks the worker before the
            // next ticket arrives.
            let ticket = match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(t) => t,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break,
            };
            if ctx.reorder.swap(false, Ordering::AcqRel) {
                // Injected bug (`Fault::SkipRingOrder`): hold this ticket,
                // fully drain and commit its *successor* first, then commit
                // this one — `RingCommit` markers appear out of epoch
                // order, and a crash between the two commits leaves a hole
                // in the ring.
                match rx.recv() {
                    Ok(next) => {
                        Self::drain_one(ctx, next);
                        Self::drain_one(ctx, ticket);
                    }
                    // Shutdown before a successor arrived: the fault needs
                    // two outstanding drains, so fall back to a clean
                    // commit.
                    Err(_) => {
                        Self::drain_one(ctx, ticket);
                        break;
                    }
                }
            } else {
                Self::drain_one(ctx, ticket);
            }
        }
    }

    /// Flushes one ticket's lines and publishes its ring commit.
    fn drain_one(ctx: &DrainCtx, ticket: DrainTicket) {
        let DrainTicket {
            epoch,
            lists,
            frees,
            mut report,
        } = ticket;
        let td = Instant::now();
        // Merge + sort + dedup the whole epoch: a single worker drains one
        // epoch at a time, so the per-shard split from the gather phase is
        // not load-bearing here.
        let mut lines: Vec<u64> = Vec::with_capacity(lists.iter().map(Vec::len).sum());
        for l in lists {
            lines.extend(l);
        }
        lines.sort_unstable();
        lines.dedup();
        let tf = Instant::now();
        if ctx.flush {
            // Application threads are running concurrently; yield
            // periodically so the drain cannot monopolize a core.
            for (i, &line) in lines.iter().enumerate() {
                ctx.region.pwb_line(line);
                if i % 128 == 127 {
                    std::thread::yield_now();
                }
            }
            ctx.region.psync();
        }
        report.lines = lines.len() as u64;
        report.flush_ns = tf.elapsed().as_nanos() as u64;

        // The ordered commit: `ring[epoch mod K] ← 0` claims "this epoch
        // and every predecessor are durable", which a FIFO worker makes
        // true by construction (the injected reorder fault above is the
        // deliberate exception — the checker and crash sweep catch it).
        let slot = epoch_ring_slot((epoch % ctx.k) as usize);
        ctx.region.store(slot, 0u64);
        ctx.region.pwb(slot);
        ctx.region.psync();
        ctx.region.trace_marker(TraceMarker::RingCommit { epoch });
        // Release before advancing `drain_oldest`: a thread leaving the
        // push-out wait acquires this edge, ordering its backup overwrite
        // after the commit fence. `fetch_max` keeps the counter monotone
        // even under the reorder fault.
        ctx.region.sync_release(SyncToken::Drain);
        ctx.drain_oldest.fetch_max(epoch + 1, Ordering::AcqRel);
        ctx.inflight.fetch_sub(1, Ordering::Relaxed);
        ctx.ring_commits.inc();
        if !frees.is_empty() {
            ctx.committed_frees.lock().extend(frees);
        }
        report.drain_ns = td.elapsed().as_nanos() as u64;
        report.total_ns += report.drain_ns;
        ctx.metrics.on_checkpoint(&report);
    }
}

impl Drop for DrainExec {
    fn drop(&mut self) {
        // Un-park a held worker so queued tickets still drain, then close
        // the channel and join: every submitted epoch commits before the
        // pool's executor goes away, which is what lets tests (and apps)
        // crash the region right after dropping the pool.
        self.ctx.hold.store(false, Ordering::Release);
        let (tx, _rx) = unbounded();
        drop(std::mem::replace(&mut self.tx, tx));
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use respct_pmem::{PAddr, Region, RegionConfig, SimConfig};

    #[test]
    fn checkpoint_advances_and_persists_epoch() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(7)));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        assert_eq!(pool.epoch(), 1);
        let r = pool.checkpoint_now();
        assert_eq!(r.closed_epoch, 1);
        assert_eq!(pool.epoch(), 2);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        let e = u64::from_ne_bytes(img.bytes()[OFF_EPOCH.0 as usize..][..8].try_into().unwrap());
        assert_eq!(e, 2, "epoch counter must be persistent");
    }

    #[test]
    fn checkpoint_flushes_tracked_lines() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(7)));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let addr = PAddr(crate::layout::heap_start().0);
        region.store(addr, 0xabcdu64);
        // SAFETY: single-threaded test.
        unsafe { pool.add_modified_raw(SYSTEM_SLOT, addr, 8) };
        let r = pool.checkpoint_now();
        assert_eq!(r.lines, 1);
        assert_eq!(r.shards.len(), 1);
        assert_eq!(r.shards[0].lines, 1);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        let v = u64::from_ne_bytes(img.bytes()[addr.0 as usize..][..8].try_into().unwrap());
        assert_eq!(v, 0xabcd);
    }

    #[test]
    fn noflush_mode_advances_epoch_without_flushing_data() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(7)));
        let cfg = PoolConfig::builder()
            .mode(CheckpointMode::NoFlush)
            .build()
            .unwrap();
        let pool = Pool::create(Arc::clone(&region), cfg).unwrap();
        let addr = PAddr(crate::layout::heap_start().0);
        region.store(addr, 0xabcdu64);
        // SAFETY: single-threaded test.
        unsafe { pool.add_modified_raw(SYSTEM_SLOT, addr, 8) };
        let r = pool.checkpoint_now();
        assert_eq!(r.lines, 1, "NoFlush still counts tracked lines");
        assert_eq!(pool.epoch(), 2);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        let v = u64::from_ne_bytes(img.bytes()[addr.0 as usize..][..8].try_into().unwrap());
        assert_eq!(v, 0, "NoFlush must not write data back");
    }

    #[test]
    fn shard_of_line_is_stable_and_in_range() {
        for nshards in [1usize, 2, 8, 64, 4096] {
            for line in 0..1000u64 {
                let s = shard_of_line(line, nshards);
                assert!(s < nshards);
                assert_eq!(s, shard_of_line(line, nshards));
            }
        }
        // With 1 shard everything collapses to shard 0.
        assert_eq!(shard_of_line(u64::MAX, 1), 0);
    }

    #[test]
    fn shard_of_line_spreads_consecutive_lines() {
        // 256 consecutive lines over 8 shards must not all land in one
        // shard (the whole point of mixing the address).
        let mut counts = [0usize; 8];
        for line in 0..256u64 {
            counts[shard_of_line(line, 8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "empty shard: {counts:?}");
    }

    #[test]
    fn flusher_pool_flushes_everything() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(9)));
        let heap = crate::layout::heap_start().0;
        let nshards = 8;
        let mut shards: Vec<Vec<u64>> = vec![Vec::new(); nshards];
        for i in 0..100u64 {
            let a = PAddr(heap + i * 64);
            region.store(a, i + 1);
            let line = a.line();
            shards[shard_of_line(line, nshards)].push(line);
            // Duplicates must be deduped per shard.
            shards[shard_of_line(line, nshards)].push(line);
        }
        let pool = FlusherPool::new(4, Arc::clone(&region));
        let (total, reports) = pool.flush_shards(shards, None, false);
        drop(pool);
        assert_eq!(total, 100);
        assert_eq!(reports.iter().map(|r| r.lines).sum::<u64>(), 100);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        for i in 0..100u64 {
            let off = (heap + i * 64) as usize;
            let v = u64::from_ne_bytes(img.bytes()[off..off + 8].try_into().unwrap());
            assert_eq!(v, i + 1);
        }
    }

    #[test]
    fn parallel_checkpoint_flushes_tracked_lines() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(5)));
        let cfg = PoolConfig::builder().flusher_threads(2).build().unwrap();
        let pool = Pool::create(Arc::clone(&region), cfg).unwrap();
        let heap = crate::layout::heap_start().0;
        for i in 0..64u64 {
            let a = PAddr(heap + i * 64);
            region.store(a, i + 7);
            // SAFETY: single-threaded test.
            unsafe { pool.add_modified_raw(SYSTEM_SLOT, a, 8) };
        }
        let r = pool.checkpoint_now();
        assert_eq!(r.lines, 64);
        assert!(r.shards.len() > 1, "expected several non-empty shards");
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        for i in 0..64u64 {
            let off = (heap + i * 64) as usize;
            let v = u64::from_ne_bytes(img.bytes()[off..off + 8].try_into().unwrap());
            assert_eq!(v, i + 7);
        }
    }

    #[test]
    fn periodic_checkpointer_runs_and_stops() {
        let region = Region::new(RegionConfig::fast(1 << 20));
        let pool = Pool::create(region, PoolConfig::default()).unwrap();
        let guard = pool.start_checkpointer(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(60));
        drop(guard);
        let done = pool.ckpt_stats().snapshot().count;
        assert!(done >= 2, "expected several checkpoints, got {done}");
        let epoch = pool.epoch();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(pool.epoch(), epoch, "checkpointer must stop after drop");
    }

    #[test]
    fn stats_mean_lines() {
        let region = Region::new(RegionConfig::fast(1 << 20));
        let pool = Pool::create(region, PoolConfig::default()).unwrap();
        let addr = PAddr(crate::layout::heap_start().0);
        // SAFETY: single-threaded test.
        unsafe { pool.add_modified_raw(SYSTEM_SLOT, addr, 128) };
        pool.checkpoint_now();
        assert_eq!(pool.ckpt_stats().snapshot().lines_flushed, 2);
    }
}
