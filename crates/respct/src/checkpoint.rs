//! The checkpoint procedure (paper Fig. 4, lines 46–59) and its periodic
//! driver, plus the parallel flusher pool (§5 "a pool of flusher threads
//! flushes data to NVMM in parallel during checkpoints").

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use respct_pmem::{Region, TraceMarker};

use crate::layout::{MAX_THREADS, OFF_EPOCH};
use crate::pool::{CheckpointMode, Pool, SYSTEM_SLOT};

/// Outcome of one checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CkptReport {
    /// Epoch that was just closed (the new epoch is `closed_epoch + 1`).
    pub closed_epoch: u64,
    /// Cache lines flushed.
    pub lines: u64,
}

impl Pool {
    /// Runs one checkpoint to completion.
    ///
    /// Must be called from a thread that is **not** blocked on its own
    /// per-thread flag — i.e. the periodic checkpointer, the main thread in
    /// tests, or via [`ThreadHandle::checkpoint_here`]
    /// (which parks the calling handle first).
    ///
    /// [`ThreadHandle::checkpoint_here`]: crate::thread::ThreadHandle::checkpoint_here
    pub fn checkpoint_now(&self) -> CkptReport {
        let _serial = self.ckpt_lock.lock();
        let t0 = Instant::now();
        self.timer.store(true, Ordering::SeqCst);
        // Wait until every active thread is parked at a restart point
        // (Fig. 4 lines 49–54). Spin briefly, then yield: this container
        // has one core, so pure spinning would starve the parked threads.
        for slot in 0..MAX_THREADS {
            if slot == SYSTEM_SLOT || !self.active[slot].load(Ordering::SeqCst) {
                continue;
            }
            let mut spins = 0u32;
            while !self.flags[slot].load(Ordering::SeqCst) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        let waited = t0.elapsed();
        let closing = self.epoch_mirror.load(Ordering::Relaxed);
        self.region.trace_marker(TraceMarker::CheckpointBegin {
            epoch: closing,
            full: self.cfg.mode == CheckpointMode::Full,
        });

        // All threads are parked: first sync the deferred allocator and
        // registry cursors into their InCLL cells (so the flush below
        // persists end-of-epoch metadata), then drain the tracking lists.
        // SAFETY: quiescence established above; `ckpt_lock` held.
        unsafe { self.sync_deferred_cells() };

        // Drain every slot's tracking list.
        let mut lines: Vec<u64> = Vec::new();
        for slot in 0..MAX_THREADS {
            // SAFETY: `timer` is set and every active owner's flag was
            // observed true with SeqCst, so owners are parked; inactive
            // slots have no owner. The checkpointer has exclusive access.
            let st = unsafe { self.slot_state(slot) };
            if !st.to_flush.is_empty() {
                if lines.is_empty() {
                    lines = std::mem::take(&mut st.to_flush);
                } else {
                    lines.append(&mut st.to_flush);
                }
            }
        }
        // The per-slot lists only skip *adjacent* duplicates, and hot lines
        // (bucket heads, shared descriptors) are tracked by several slots:
        // without a global dedup a checkpoint writes the same line back many
        // times over (the trace checker's RedundantFlush advisory counts
        // them). One sort makes every write-back unique.
        lines.sort_unstable();
        lines.dedup();
        let nlines = lines.len() as u64;

        let tf = Instant::now();
        if self.cfg.mode == CheckpointMode::Full && !lines.is_empty() {
            // Test-only injected faults: drop one write-back, or the fence
            // that makes the write-backs durable before the epoch advance.
            #[cfg(feature = "fault-inject")]
            let skip_line: Option<u64> = self
                .take_fault(crate::pool::Fault::SkipOneFlush)
                .then(|| lines[lines.len() / 2]);
            #[cfg(not(feature = "fault-inject"))]
            let skip_line: Option<u64> = None;
            #[cfg(feature = "fault-inject")]
            let skip_fence = self.take_fault(crate::pool::Fault::SkipFence);
            #[cfg(not(feature = "fault-inject"))]
            let skip_fence = false;
            match &self.flushers {
                Some(pool) if skip_line.is_none() && !skip_fence => {
                    pool.flush(lines);
                }
                _ => {
                    for &line in &lines {
                        if Some(line) == skip_line {
                            continue;
                        }
                        self.region.pwb_line(line);
                    }
                    if !skip_fence {
                        self.region.psync();
                    }
                }
            }
        }
        let flushed = tf.elapsed();

        // Advance and persist the epoch counter (Fig. 4 lines 56–58). The
        // barrier marker asserts the ordering dependency this store has on
        // every data flush above: all of them must be fenced by now.
        self.region.trace_marker(TraceMarker::OrderBarrier);
        let closed = self.epoch_mirror.load(Ordering::Relaxed);
        self.region.store(OFF_EPOCH, closed + 1);
        self.region.pwb(OFF_EPOCH);
        self.region.psync();
        self.epoch_mirror.store(closed + 1, Ordering::SeqCst);
        self.region
            .trace_marker(TraceMarker::EpochAdvance { epoch: closed + 1 });

        // Blocks freed during the closed epoch are now safe to recycle;
        // push them onto the persistent free lists in the new epoch.
        // SAFETY: checkpointer exclusivity — workers are still parked
        // (timer is still true) and we hold `ckpt_lock`.
        unsafe { self.drain_frees(SYSTEM_SLOT) };

        self.timer.store(false, Ordering::SeqCst);
        self.ckpt_stats
            .record(nlines, waited, flushed, t0.elapsed());
        self.region
            .trace_marker(TraceMarker::CheckpointEnd { epoch: closed });
        CkptReport {
            closed_epoch: closed,
            lines: nlines,
        }
    }

    /// Spawns a background thread that checkpoints every `period`.
    ///
    /// Dropping the returned guard stops and joins the thread.
    pub fn start_checkpointer(self: &Arc<Self>, period: Duration) -> CheckpointerGuard {
        let pool = Arc::clone(self);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("respct-ckpt".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    pool.checkpoint_now();
                }
            })
            .expect("spawn checkpointer");
        CheckpointerGuard {
            stop,
            handle: Some(handle),
        }
    }
}

/// Stops the periodic checkpointer when dropped.
pub struct CheckpointerGuard {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for CheckpointerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---- Flusher pool ----------------------------------------------------------

enum FlushJob {
    /// Flush `lines[range]`, then `psync`, then acknowledge.
    Run(Arc<Vec<u64>>, std::ops::Range<usize>),
}

/// A fixed pool of threads that write back cache lines in parallel.
pub(crate) struct FlusherPool {
    workers: Vec<std::thread::JoinHandle<()>>,
    job_tx: Sender<FlushJob>,
    done_rx: Receiver<()>,
    n: usize,
}

impl FlusherPool {
    pub(crate) fn new(n: usize, region: Arc<Region>) -> FlusherPool {
        let (job_tx, job_rx) = bounded::<FlushJob>(n * 2);
        let (done_tx, done_rx) = bounded::<()>(n * 2);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let rx = job_rx.clone();
            let tx = done_tx.clone();
            let region = Arc::clone(&region);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("respct-flusher-{i}"))
                    .spawn(move || {
                        while let Ok(FlushJob::Run(lines, range)) = rx.recv() {
                            for &line in &lines[range] {
                                region.pwb_line(line);
                            }
                            region.psync();
                            if tx.send(()).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn flusher"),
            );
        }
        FlusherPool {
            workers,
            job_tx,
            done_rx,
            n,
        }
    }

    /// Flushes `lines`, partitioned across the pool; returns when all
    /// partitions are written back and fenced.
    pub(crate) fn flush(&self, lines: Vec<u64>) {
        let total = lines.len();
        if total == 0 {
            return;
        }
        let lines = Arc::new(lines);
        let per = total.div_ceil(self.n);
        let mut jobs = 0;
        let mut start = 0;
        while start < total {
            let end = (start + per).min(total);
            self.job_tx
                .send(FlushJob::Run(Arc::clone(&lines), start..end))
                .expect("flusher pool alive");
            jobs += 1;
            start = end;
        }
        for _ in 0..jobs {
            self.done_rx.recv().expect("flusher pool alive");
        }
    }
}

impl Drop for FlusherPool {
    fn drop(&mut self) {
        // Closing the channel terminates the workers.
        let (tx, _rx) = bounded(1);
        drop(std::mem::replace(&mut self.job_tx, tx));
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use respct_pmem::{PAddr, Region, RegionConfig, SimConfig};

    #[test]
    fn checkpoint_advances_and_persists_epoch() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(7)));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default());
        assert_eq!(pool.epoch(), 1);
        let r = pool.checkpoint_now();
        assert_eq!(r.closed_epoch, 1);
        assert_eq!(pool.epoch(), 2);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        let e = u64::from_ne_bytes(img.bytes()[OFF_EPOCH.0 as usize..][..8].try_into().unwrap());
        assert_eq!(e, 2, "epoch counter must be persistent");
    }

    #[test]
    fn checkpoint_flushes_tracked_lines() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(7)));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default());
        let addr = PAddr(crate::layout::heap_start().0);
        region.store(addr, 0xabcdu64);
        // SAFETY: single-threaded test.
        unsafe { pool.add_modified_raw(SYSTEM_SLOT, addr, 8) };
        let r = pool.checkpoint_now();
        assert_eq!(r.lines, 1);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        let v = u64::from_ne_bytes(img.bytes()[addr.0 as usize..][..8].try_into().unwrap());
        assert_eq!(v, 0xabcd);
    }

    #[test]
    fn noflush_mode_advances_epoch_without_flushing_data() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(7)));
        let pool = Pool::create(
            Arc::clone(&region),
            PoolConfig {
                mode: CheckpointMode::NoFlush,
                ..Default::default()
            },
        );
        let addr = PAddr(crate::layout::heap_start().0);
        region.store(addr, 0xabcdu64);
        // SAFETY: single-threaded test.
        unsafe { pool.add_modified_raw(SYSTEM_SLOT, addr, 8) };
        pool.checkpoint_now();
        assert_eq!(pool.epoch(), 2);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        let v = u64::from_ne_bytes(img.bytes()[addr.0 as usize..][..8].try_into().unwrap());
        assert_eq!(v, 0, "NoFlush must not write data back");
    }

    #[test]
    fn flusher_pool_flushes_everything() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(9)));
        let heap = crate::layout::heap_start().0;
        let mut lines = Vec::new();
        for i in 0..100u64 {
            let a = PAddr(heap + i * 64);
            region.store(a, i + 1);
            lines.push(a.line());
        }
        let pool = FlusherPool::new(4, Arc::clone(&region));
        pool.flush(lines);
        drop(pool);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        for i in 0..100u64 {
            let off = (heap + i * 64) as usize;
            let v = u64::from_ne_bytes(img.bytes()[off..off + 8].try_into().unwrap());
            assert_eq!(v, i + 1);
        }
    }

    #[test]
    fn periodic_checkpointer_runs_and_stops() {
        let region = Region::new(RegionConfig::fast(1 << 20));
        let pool = Pool::create(region, PoolConfig::default());
        let guard = pool.start_checkpointer(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(60));
        drop(guard);
        let done = pool.ckpt_stats().snapshot().count;
        assert!(done >= 2, "expected several checkpoints, got {done}");
        let epoch = pool.epoch();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(pool.epoch(), epoch, "checkpointer must stop after drop");
    }

    #[test]
    fn stats_mean_lines() {
        let region = Region::new(RegionConfig::fast(1 << 20));
        let pool = Pool::create(region, PoolConfig::default());
        let addr = PAddr(crate::layout::heap_start().0);
        // SAFETY: single-threaded test.
        unsafe { pool.add_modified_raw(SYSTEM_SLOT, addr, 128) };
        pool.checkpoint_now();
        assert_eq!(pool.ckpt_stats().snapshot().lines_flushed, 2);
    }
}
