//! The checkpoint procedure (paper Fig. 4, lines 46–59) and its periodic
//! driver, plus the sharded parallel flush pipeline (§5 "a pool of flusher
//! threads flushes data to NVMM in parallel during checkpoints").
//!
//! # The sharded flush pipeline
//!
//! Every tracked cache line is hash-partitioned into one of
//! `Pool::nshards` **flush shards** at append time
//! ([`shard_of_line`]); each per-thread `to_be_flushed` list is really a
//! vector of per-shard lists. Because the shard is a pure function of the
//! line address, the same line tracked by any number of threads always
//! lands in the same shard — so a *per-shard* sort + dedup is exactly as
//! strong as the global sort + dedup the pipeline replaces, with no
//! cross-shard coordination.
//!
//! At checkpoint time the stop-the-world section merely *moves* the
//! per-slot shard lists into per-shard gather vectors (O(slots × shards)
//! pointer swaps, no sorting). Flusher threads then claim whole shards
//! from a shared counter; each claimer sorts + dedups its shard locally,
//! writes the lines back, and issues **one** fence after its last shard.
//! The serial O(n log n) sort and the old chunk-scatter/ack channel
//! round-trip per chunk are both gone: the checkpointer sends one job
//! message per flusher and waits for one ack per flusher.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use respct_pmem::{Region, SyncToken, TraceMarker};

use crate::layout::{MAX_THREADS, OFF_EPOCH, OFF_EPOCH_STATE};
use crate::pool::{CheckpointMode, Pool, SYSTEM_SLOT};

/// The flush shard a cache line belongs to. `nshards` must be a power of
/// two (guaranteed by [`PoolConfig::resolved_shards`]).
///
/// Fibonacci (multiplicative) hashing: consecutive lines — the common
/// pattern from `add_modified` over a byte range — spread across shards
/// instead of clustering on one flusher, and the mixed high bits behave
/// well for any allocation stride.
///
/// [`PoolConfig::resolved_shards`]: crate::PoolConfig::resolved_shards
#[inline]
pub fn shard_of_line(line: u64, nshards: usize) -> usize {
    debug_assert!(nshards.is_power_of_two());
    ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (nshards - 1)
}

/// What one flusher (or the checkpointer, inline) did for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Unique lines written back.
    pub lines: u64,
    /// Nanoseconds sorting + deduplicating the shard.
    pub sort_ns: u64,
    /// Nanoseconds issuing the shard's write-backs.
    pub flush_ns: u64,
}

/// Outcome of one checkpoint, with the per-phase breakdown the paper's
/// Fig. 10 decomposes overhead into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptReport {
    /// Epoch that was just closed (the new epoch is `closed_epoch + 1`).
    pub closed_epoch: u64,
    /// Unique cache lines flushed (counted even in `NoFlush` mode, where
    /// they are deliberately not written back).
    pub lines: u64,
    /// Nanoseconds waiting for every thread to park (quiescence).
    pub wait_ns: u64,
    /// Nanoseconds moving per-slot shard lists into the gather vectors —
    /// the only per-line work left on the serial path, and it is O(1) per
    /// *list*, not per line.
    pub partition_ns: u64,
    /// Nanoseconds in the flush phase, wall-clock across all flushers
    /// (sort + dedup + write-backs + fences).
    pub flush_ns: u64,
    /// Nanoseconds application threads were held parked (the stop-the-world
    /// window, from raising `timer` to releasing it). Synchronous
    /// checkpoints hold threads through the flush, so this covers wait +
    /// partition + flush; asynchronous checkpoints release at the epoch
    /// swap, so it covers only wait + partition + the draining-record
    /// persist. This — not `wait_ns`, which is pure quiescence — is what
    /// the threads actually experience as stall.
    pub stw_ns: u64,
    /// Nanoseconds of background drain after the threads were released
    /// (flush + two-phase commit). Zero for synchronous checkpoints.
    pub drain_ns: u64,
    /// Nanoseconds for the whole checkpoint.
    pub total_ns: u64,
    /// Per-shard breakdown, one entry per non-empty shard.
    pub shards: Vec<ShardReport>,
}

impl Pool {
    /// Runs one checkpoint to completion.
    ///
    /// Must be called from a thread that is **not** blocked on its own
    /// per-thread flag — i.e. the periodic checkpointer, the main thread in
    /// tests, or via [`ThreadHandle::checkpoint_here`]
    /// (which parks the calling handle first).
    ///
    /// [`ThreadHandle::checkpoint_here`]: crate::thread::ThreadHandle::checkpoint_here
    pub fn checkpoint_now(&self) -> CkptReport {
        let _serial = self.lock_ckpt();
        let t0 = Instant::now();
        self.timer.store(true, Ordering::SeqCst);
        // Wait until every active thread is parked at a restart point
        // (Fig. 4 lines 49–54). Spin briefly, then yield: this container
        // has one core, so pure spinning would starve the parked threads.
        for slot in 0..MAX_THREADS {
            if slot == SYSTEM_SLOT || !self.active[slot].load(Ordering::SeqCst) {
                continue;
            }
            let mut spins = 0u32;
            while !self.flags[slot].load(Ordering::SeqCst) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            // We observed the slot's raised flag: everything its owner did
            // before parking (stores, tracking-list pushes) happens-before
            // the checkpoint work below.
            self.region
                .sync_acquire(SyncToken::Flag { slot: slot as u64 });
        }
        let waited = t0.elapsed();
        let closing = self.epoch_mirror.load(Ordering::Relaxed);
        self.region.trace_marker(TraceMarker::CheckpointBegin {
            epoch: closing,
            full: self.cfg.mode == CheckpointMode::Full,
        });

        // All threads are parked: first sync the deferred allocator and
        // registry cursors into their InCLL cells (so the flush below
        // persists end-of-epoch metadata), then gather the tracking lists.
        // SAFETY: quiescence established above; `ckpt_lock` held.
        unsafe { self.sync_deferred_cells() };

        // Gather: move each slot's per-shard lists into per-shard vectors.
        // No sorting and no per-line work here — dedup happens per shard,
        // in parallel, inside the flush phase.
        let tp = Instant::now();
        let mut shards: Vec<Vec<u64>> = vec![Vec::new(); self.nshards];
        for slot in 0..MAX_THREADS {
            // SAFETY: `timer` is set and every active owner's flag was
            // observed true with SeqCst, so owners are parked; inactive
            // slots have no owner. The checkpointer has exclusive access.
            let st = unsafe { self.slot_state(slot) };
            for (s, list) in st.to_flush.iter_mut().enumerate() {
                if list.is_empty() {
                    continue;
                }
                if shards[s].is_empty() {
                    shards[s] = std::mem::take(list);
                } else {
                    shards[s].append(list);
                }
            }
        }
        let partitioned = tp.elapsed();

        let report = if self.cfg.async_checkpoint {
            self.drain_async(t0, waited, partitioned, closing, shards)
        } else {
            self.drain_sync(t0, waited, partitioned, closing, shards)
        };
        self.metrics.on_checkpoint(&report);
        self.region
            .trace_marker(TraceMarker::CheckpointEnd { epoch: closing });
        report
    }

    /// Synchronous tail of a checkpoint: flush, commit the epoch counter,
    /// recycle frees, then release the parked threads.
    fn drain_sync(
        &self,
        t0: Instant,
        waited: Duration,
        partitioned: Duration,
        closing: u64,
        shards: Vec<Vec<u64>>,
    ) -> CkptReport {
        let tf = Instant::now();
        let (nlines, shard_reports) = self.flush_phase(shards);
        let flushed = tf.elapsed();

        // Advance and persist the epoch counter (Fig. 4 lines 56–58). The
        // barrier marker asserts the ordering dependency this store has on
        // every data flush above: all of them must be fenced by now.
        self.region.trace_marker(TraceMarker::OrderBarrier);
        self.region.store(OFF_EPOCH, closing + 1);
        self.region.pwb(OFF_EPOCH);
        self.region.psync();
        self.epoch_mirror.store(closing + 1, Ordering::SeqCst);
        self.region
            .trace_marker(TraceMarker::EpochAdvance { epoch: closing + 1 });

        // Blocks freed during the closed epoch are now safe to recycle;
        // push them onto the persistent free lists in the new epoch.
        // SAFETY: checkpointer exclusivity — workers are still parked
        // (timer is still true) and we hold `ckpt_lock`.
        unsafe { self.drain_frees(SYSTEM_SLOT) };

        let stw = t0.elapsed();
        // Release before the timer store: parked threads resume only after
        // observing `timer == false`, so their acquire follows this edge.
        self.region.sync_release(SyncToken::Timer);
        self.timer.store(false, Ordering::SeqCst);
        CkptReport {
            closed_epoch: closing,
            lines: nlines,
            wait_ns: waited.as_nanos() as u64,
            partition_ns: partitioned.as_nanos() as u64,
            flush_ns: flushed.as_nanos() as u64,
            stw_ns: stw.as_nanos() as u64,
            drain_ns: 0,
            total_ns: t0.elapsed().as_nanos() as u64,
            shards: shard_reports,
        }
    }

    /// Asynchronous tail of a checkpoint (two-phase commit). While the
    /// threads are still parked, only the *draining* epoch record is made
    /// durable — `state ← N` then `epoch ← N + 1`, one write-back and fence
    /// for both (they share a cache line, so PCSO guarantees any torn
    /// durable state is a program-order prefix of the two stores; every
    /// prefix is handled by recovery). The threads are then released and
    /// run epoch `N + 1` while this thread drains the snapshotted shards;
    /// only after every shard's write-backs are fenced is the state word
    /// committed back to zero. A crash anywhere in the window recovers by
    /// rolling back epochs `N` *and* `N + 1` to the start of `N` — which is
    /// why the fast path's on-demand push-out must not let an epoch-`N`
    /// backup be overwritten until the commit lands.
    fn drain_async(
        &self,
        t0: Instant,
        waited: Duration,
        partitioned: Duration,
        closing: u64,
        shards: Vec<Vec<u64>>,
    ) -> CkptReport {
        // Deferred frees must be collected while their owners are parked
        // (the lists are owner-mutable again the instant threads resume)
        // but pushed only after the commit: the link-word store overwrites
        // block content that a pre-commit crash still rolls back to live.
        // SAFETY: quiescence established by the caller; `ckpt_lock` held.
        let taken_frees = unsafe { self.take_frees() };

        self.region.store(OFF_EPOCH_STATE, closing);
        self.region.store(OFF_EPOCH, closing + 1);
        self.region.pwb(OFF_EPOCH);
        self.region.psync();

        // Publish the drain before releasing: the `SeqCst` timer store
        // orders these after-the-fact for every thread whose park loop
        // observes `timer == false`.
        self.draining_epoch.store(closing, Ordering::Relaxed);
        self.drain_active.store(true, Ordering::Relaxed);
        self.epoch_mirror.store(closing + 1, Ordering::SeqCst);
        self.region
            .trace_marker(TraceMarker::DrainBegin { epoch: closing });
        let stw = t0.elapsed();
        self.region.sync_release(SyncToken::Timer);
        self.timer.store(false, Ordering::SeqCst);

        // Background drain: application threads are running epoch N + 1
        // now. The flushers (or this thread, inline) never take data-
        // structure locks, so a thread blocked in the push-out wait cannot
        // deadlock the drain.
        let td = Instant::now();
        #[cfg(feature = "fault-inject")]
        let skip_commit_order = self.take_fault(crate::pool::Fault::SkipDrainCommitOrder);
        #[cfg(not(feature = "fault-inject"))]
        let skip_commit_order = false;
        let tf = Instant::now();
        let (nlines, shard_reports) = if skip_commit_order {
            // Injected bug: commit without writing anything back.
            Self::count_shards(shards)
        } else {
            self.flush_phase(shards)
        };
        let flushed = tf.elapsed();

        // Phase two of the commit: every snapshotted shard is fenced, so
        // the drained epoch's durability obligation is met — clear the
        // state word. Until this fence lands, recovery discards epoch N.
        self.region.trace_marker(TraceMarker::OrderBarrier);
        self.region.store(OFF_EPOCH_STATE, 0u64);
        self.region.pwb(OFF_EPOCH_STATE);
        self.region.psync();
        self.region
            .trace_marker(TraceMarker::DrainCommit { epoch: closing });
        // Release before clearing `drain_active`: a thread leaving the
        // push-out wait acquires this edge, ordering its backup overwrite
        // after the two-phase commit.
        self.region.sync_release(SyncToken::Drain);
        self.drain_active.store(false, Ordering::Release);

        // SAFETY: this thread is the checkpointer, holds `ckpt_lock`, and
        // SYSTEM_SLOT has no other owner; the tracked link-word lines land
        // in epoch N + 1's fresh lists.
        unsafe { self.push_frees(SYSTEM_SLOT, taken_frees) };

        CkptReport {
            closed_epoch: closing,
            lines: nlines,
            wait_ns: waited.as_nanos() as u64,
            partition_ns: partitioned.as_nanos() as u64,
            flush_ns: flushed.as_nanos() as u64,
            stw_ns: stw.as_nanos() as u64,
            drain_ns: td.elapsed().as_nanos() as u64,
            total_ns: t0.elapsed().as_nanos() as u64,
            shards: shard_reports,
        }
    }

    /// Sort + dedup + count without writing anything back (the `NoFlush`
    /// mode and the `SkipDrainCommitOrder` injected fault), so reported
    /// line counts stay comparable with a full flush.
    fn count_shards(shards: Vec<Vec<u64>>) -> (u64, Vec<ShardReport>) {
        let mut total = 0u64;
        let mut reports = Vec::new();
        for (s, mut lines) in shards.into_iter().enumerate() {
            if lines.is_empty() {
                continue;
            }
            lines.sort_unstable();
            lines.dedup();
            total += lines.len() as u64;
            reports.push(ShardReport {
                shard: s,
                lines: lines.len() as u64,
                sort_ns: 0,
                flush_ns: 0,
            });
        }
        (total, reports)
    }

    /// The flush phase of a checkpoint: per-shard sort, dedup, write-back
    /// and fence — parallel when a flusher pool exists, inline otherwise.
    /// Returns the unique line count and the per-shard breakdown.
    fn flush_phase(&self, shards: Vec<Vec<u64>>) -> (u64, Vec<ShardReport>) {
        if self.cfg.mode != CheckpointMode::Full {
            // NoFlush: still sort + dedup per shard so the reported line
            // count matches what a full checkpoint would have written back.
            return Self::count_shards(shards);
        }
        if shards.iter().all(std::vec::Vec::is_empty) {
            return (0, Vec::new());
        }
        // Test-only injected faults: drop one write-back, the global fence,
        // or one shard's fence (the parallel pipeline's failure mode).
        #[cfg(feature = "fault-inject")]
        let skip_one = self.take_fault(crate::pool::Fault::SkipOneFlush);
        #[cfg(feature = "fault-inject")]
        let skip_fence = self.take_fault(crate::pool::Fault::SkipFence);
        #[cfg(feature = "fault-inject")]
        let skip_fence_shard: Option<usize> = self
            .take_fault(crate::pool::Fault::SkipShardFence)
            .then(|| shards.iter().rposition(|s| !s.is_empty()).unwrap());
        #[cfg(not(feature = "fault-inject"))]
        let (skip_one, skip_fence, skip_fence_shard) = (false, false, None::<usize>);
        #[cfg(feature = "fault-inject")]
        let drop_ack_edge = self.take_fault(crate::pool::Fault::DropSyncEdge(
            crate::pool::SyncEdgeSite::FlusherAck,
        ));
        #[cfg(not(feature = "fault-inject"))]
        let drop_ack_edge = false;

        match &self.flushers {
            Some(pool) if !skip_one && !skip_fence => {
                pool.flush_shards(shards, skip_fence_shard, drop_ack_edge)
            }
            _ => self.flush_inline(shards, skip_one, skip_fence, skip_fence_shard),
        }
    }

    /// Inline flush on the checkpointing thread: every shard sorted,
    /// deduped, written back; one fence at the end covers them all.
    fn flush_inline(
        &self,
        shards: Vec<Vec<u64>>,
        skip_one: bool,
        skip_fence: bool,
        skip_fence_shard: Option<usize>,
    ) -> (u64, Vec<ShardReport>) {
        // SkipOneFlush target: the middle line of the largest shard.
        let skip_one_shard = skip_one.then(|| {
            shards
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| l.len())
                .map(|(i, _)| i)
                .unwrap()
        });
        let mut total = 0u64;
        let mut reports: Vec<ShardReport> = Vec::new();
        // Shards written back but not yet covered by a fence.
        let mut unfenced: Vec<usize> = Vec::new();
        for (s, mut lines) in shards.into_iter().enumerate() {
            if lines.is_empty() {
                continue;
            }
            if skip_fence_shard == Some(s) {
                // Fence everything written so far, so exactly this shard's
                // write-backs race the epoch advance. (The marked shard is
                // the last non-empty one, so the loop ends right after.)
                self.region.psync();
                for &sh in &unfenced {
                    self.region
                        .trace_marker(TraceMarker::ShardFlushEnd { shard: sh as u64 });
                }
                unfenced.clear();
            }
            let ts = Instant::now();
            lines.sort_unstable();
            lines.dedup();
            let sort_ns = ts.elapsed().as_nanos() as u64;
            self.region.trace_marker(TraceMarker::ShardFlushBegin {
                shard: s as u64,
                lines: lines.len() as u64,
            });
            let skip_line = (skip_one_shard == Some(s)).then(|| lines[lines.len() / 2]);
            let tw = Instant::now();
            // During a background drain the application threads are already
            // running again and this loop competes with them for cores;
            // yield periodically so the drain cannot monopolize a CPU the
            // released threads need. (`drain_active` is false for the whole
            // synchronous path, so stop-the-world flushes are unaffected.)
            let cooperative = self.drain_active.load(Ordering::Relaxed);
            for (i, &line) in lines.iter().enumerate() {
                if Some(line) == skip_line {
                    continue;
                }
                self.region.pwb_line(line);
                if cooperative && i % 128 == 127 {
                    std::thread::yield_now();
                }
            }
            total += lines.len() as u64;
            reports.push(ShardReport {
                shard: s,
                lines: lines.len() as u64,
                sort_ns,
                flush_ns: tw.elapsed().as_nanos() as u64,
            });
            if skip_fence_shard != Some(s) {
                unfenced.push(s);
            }
        }
        // The marked shard is the last non-empty one, so skipping the final
        // fence here leaves exactly its write-backs unfenced (earlier shards
        // were covered by the psync issued when the marked shard was
        // reached).
        if !skip_fence && skip_fence_shard.is_none() {
            self.region.psync();
        }
        if skip_fence_shard.is_none() {
            // SkipFence still emits the End markers: the buggy runtime
            // *claims* the shards are done, and the checker catches the
            // unfenced write-backs at the order barrier.
            for &sh in &unfenced {
                self.region
                    .trace_marker(TraceMarker::ShardFlushEnd { shard: sh as u64 });
            }
        }
        (total, reports)
    }

    /// Spawns a background thread that checkpoints every `period`.
    ///
    /// Dropping the returned guard stops and joins the thread.
    pub fn start_checkpointer(self: &Arc<Self>, period: Duration) -> CheckpointerGuard {
        let pool = Arc::clone(self);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("respct-ckpt".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    pool.checkpoint_now();
                }
            })
            .expect("spawn checkpointer");
        CheckpointerGuard {
            stop,
            handle: Some(handle),
        }
    }
}

/// Stops the periodic checkpointer when dropped.
pub struct CheckpointerGuard {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for CheckpointerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---- Flusher pool ----------------------------------------------------------

/// One shard of one checkpoint's flush work.
struct ShardTask {
    shard: usize,
    state: Mutex<ShardTaskState>,
}

struct ShardTaskState {
    lines: Vec<u64>,
    report: Option<ShardReport>,
}

/// One checkpoint's flush job, shared by every flusher. Workers claim
/// whole shards by bumping `next`; a shard is sorted, deduped, and written
/// back entirely by its claimer, which fences once after its last shard.
struct ShardJob {
    tasks: Vec<ShardTask>,
    next: AtomicUsize,
    /// Fault injection: the worker that claims this shard skips its fence.
    skip_fence_shard: Option<usize>,
    /// Fault injection: the first worker to finish this job does not report
    /// the release edge its acknowledgement carries (one-shot).
    drop_ack_edge: std::sync::atomic::AtomicBool,
}

impl ShardJob {
    /// The happens-before token of this job's acknowledgement channel.
    fn chan_token(self: &Arc<Self>) -> SyncToken {
        SyncToken::Chan {
            id: Arc::as_ptr(self) as u64,
        }
    }
}

/// A fixed pool of threads that write back flush shards in parallel.
pub(crate) struct FlusherPool {
    workers: Vec<std::thread::JoinHandle<()>>,
    job_tx: Sender<Arc<ShardJob>>,
    done_rx: Receiver<()>,
    region: Arc<Region>,
    n: usize,
}

impl FlusherPool {
    pub(crate) fn new(n: usize, region: Arc<Region>) -> FlusherPool {
        let (job_tx, job_rx) = bounded::<Arc<ShardJob>>(n * 2);
        let (done_tx, done_rx) = bounded::<()>(n * 2);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let rx = job_rx.clone();
            let tx = done_tx.clone();
            let region = Arc::clone(&region);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("respct-flusher-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            Self::work(&region, &job);
                            // The ack publishes this worker's fences to the
                            // checkpointer: release before sending (unless a
                            // DropSyncEdge(FlusherAck) fault ate the edge).
                            if !job.drop_ack_edge.swap(false, Ordering::Relaxed) {
                                region.sync_release(job.chan_token());
                            }
                            if tx.send(()).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn flusher"),
            );
        }
        FlusherPool {
            workers,
            job_tx,
            done_rx,
            region,
            n,
        }
    }

    /// One worker's share of a job: claim shards until none remain, then
    /// fence once and close the claimed shards.
    fn work(region: &Region, job: &ShardJob) {
        let mut claimed: Vec<usize> = Vec::new();
        let mut skip_fence = false;
        loop {
            let idx = job.next.fetch_add(1, Ordering::Relaxed);
            let Some(task) = job.tasks.get(idx) else {
                break;
            };
            let mut st = task.state.lock();
            let ts = Instant::now();
            let mut lines = std::mem::take(&mut st.lines);
            lines.sort_unstable();
            lines.dedup();
            let sort_ns = ts.elapsed().as_nanos() as u64;
            region.trace_marker(TraceMarker::ShardFlushBegin {
                shard: task.shard as u64,
                lines: lines.len() as u64,
            });
            let tw = Instant::now();
            for &line in &lines {
                region.pwb_line(line);
            }
            st.report = Some(ShardReport {
                shard: task.shard,
                lines: lines.len() as u64,
                sort_ns,
                flush_ns: tw.elapsed().as_nanos() as u64,
            });
            drop(st);
            if job.skip_fence_shard == Some(task.shard) {
                skip_fence = true;
            }
            claimed.push(idx);
        }
        // A worker that claimed nothing issued no write-backs, so it has
        // nothing to fence. (This matters beyond perf: one fast worker can
        // consume several of the job's messages, and a no-op psync on the
        // later receives would fence write-backs the earlier invocation
        // deliberately left unfenced under `skip_fence_shard`.)
        if !skip_fence && !claimed.is_empty() {
            region.psync();
            for &idx in &claimed {
                region.trace_marker(TraceMarker::ShardFlushEnd {
                    shard: job.tasks[idx].shard as u64,
                });
            }
        }
    }

    /// Flushes the non-empty shards across the pool; returns when every
    /// claimed shard is written back and fenced (one ack per worker, sent
    /// after that worker's fence).
    pub(crate) fn flush_shards(
        &self,
        shards: Vec<Vec<u64>>,
        skip_fence_shard: Option<usize>,
        drop_ack_edge: bool,
    ) -> (u64, Vec<ShardReport>) {
        let tasks: Vec<ShardTask> = shards
            .into_iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(s, l)| ShardTask {
                shard: s,
                state: Mutex::new(ShardTaskState {
                    lines: l,
                    report: None,
                }),
            })
            .collect();
        if tasks.is_empty() {
            return (0, Vec::new());
        }
        let job = Arc::new(ShardJob {
            tasks,
            next: AtomicUsize::new(0),
            skip_fence_shard,
            drop_ack_edge: std::sync::atomic::AtomicBool::new(drop_ack_edge),
        });
        // One message per worker. A fast worker may consume several
        // messages; the extra receives claim nothing and ack immediately,
        // so n acks still imply every claimed shard was fenced by its
        // claimer before that claimer's ack.
        for _ in 0..self.n {
            self.job_tx
                .send(Arc::clone(&job))
                .expect("flusher pool alive");
        }
        for _ in 0..self.n {
            self.done_rx.recv().expect("flusher pool alive");
            // Each ack received joins that worker's fences into the
            // checkpointer's clock: the epoch commit that follows is
            // provably HB-after every shard write-back.
            self.region.sync_acquire(job.chan_token());
        }
        let mut total = 0u64;
        let mut reports = Vec::with_capacity(job.tasks.len());
        for t in &job.tasks {
            if let Some(r) = t.state.lock().report.take() {
                total += r.lines;
                reports.push(r);
            }
        }
        (total, reports)
    }
}

impl Drop for FlusherPool {
    fn drop(&mut self) {
        // Closing the channel terminates the workers.
        let (tx, _rx) = bounded(1);
        drop(std::mem::replace(&mut self.job_tx, tx));
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use respct_pmem::{PAddr, Region, RegionConfig, SimConfig};

    #[test]
    fn checkpoint_advances_and_persists_epoch() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(7)));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        assert_eq!(pool.epoch(), 1);
        let r = pool.checkpoint_now();
        assert_eq!(r.closed_epoch, 1);
        assert_eq!(pool.epoch(), 2);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        let e = u64::from_ne_bytes(img.bytes()[OFF_EPOCH.0 as usize..][..8].try_into().unwrap());
        assert_eq!(e, 2, "epoch counter must be persistent");
    }

    #[test]
    fn checkpoint_flushes_tracked_lines() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(7)));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let addr = PAddr(crate::layout::heap_start().0);
        region.store(addr, 0xabcdu64);
        // SAFETY: single-threaded test.
        unsafe { pool.add_modified_raw(SYSTEM_SLOT, addr, 8) };
        let r = pool.checkpoint_now();
        assert_eq!(r.lines, 1);
        assert_eq!(r.shards.len(), 1);
        assert_eq!(r.shards[0].lines, 1);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        let v = u64::from_ne_bytes(img.bytes()[addr.0 as usize..][..8].try_into().unwrap());
        assert_eq!(v, 0xabcd);
    }

    #[test]
    fn noflush_mode_advances_epoch_without_flushing_data() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(7)));
        let cfg = PoolConfig::builder()
            .mode(CheckpointMode::NoFlush)
            .build()
            .unwrap();
        let pool = Pool::create(Arc::clone(&region), cfg).unwrap();
        let addr = PAddr(crate::layout::heap_start().0);
        region.store(addr, 0xabcdu64);
        // SAFETY: single-threaded test.
        unsafe { pool.add_modified_raw(SYSTEM_SLOT, addr, 8) };
        let r = pool.checkpoint_now();
        assert_eq!(r.lines, 1, "NoFlush still counts tracked lines");
        assert_eq!(pool.epoch(), 2);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        let v = u64::from_ne_bytes(img.bytes()[addr.0 as usize..][..8].try_into().unwrap());
        assert_eq!(v, 0, "NoFlush must not write data back");
    }

    #[test]
    fn shard_of_line_is_stable_and_in_range() {
        for nshards in [1usize, 2, 8, 64, 4096] {
            for line in 0..1000u64 {
                let s = shard_of_line(line, nshards);
                assert!(s < nshards);
                assert_eq!(s, shard_of_line(line, nshards));
            }
        }
        // With 1 shard everything collapses to shard 0.
        assert_eq!(shard_of_line(u64::MAX, 1), 0);
    }

    #[test]
    fn shard_of_line_spreads_consecutive_lines() {
        // 256 consecutive lines over 8 shards must not all land in one
        // shard (the whole point of mixing the address).
        let mut counts = [0usize; 8];
        for line in 0..256u64 {
            counts[shard_of_line(line, 8)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "empty shard: {counts:?}");
    }

    #[test]
    fn flusher_pool_flushes_everything() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(9)));
        let heap = crate::layout::heap_start().0;
        let nshards = 8;
        let mut shards: Vec<Vec<u64>> = vec![Vec::new(); nshards];
        for i in 0..100u64 {
            let a = PAddr(heap + i * 64);
            region.store(a, i + 1);
            let line = a.line();
            shards[shard_of_line(line, nshards)].push(line);
            // Duplicates must be deduped per shard.
            shards[shard_of_line(line, nshards)].push(line);
        }
        let pool = FlusherPool::new(4, Arc::clone(&region));
        let (total, reports) = pool.flush_shards(shards, None, false);
        drop(pool);
        assert_eq!(total, 100);
        assert_eq!(reports.iter().map(|r| r.lines).sum::<u64>(), 100);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        for i in 0..100u64 {
            let off = (heap + i * 64) as usize;
            let v = u64::from_ne_bytes(img.bytes()[off..off + 8].try_into().unwrap());
            assert_eq!(v, i + 1);
        }
    }

    #[test]
    fn parallel_checkpoint_flushes_tracked_lines() {
        let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(5)));
        let cfg = PoolConfig::builder().flusher_threads(2).build().unwrap();
        let pool = Pool::create(Arc::clone(&region), cfg).unwrap();
        let heap = crate::layout::heap_start().0;
        for i in 0..64u64 {
            let a = PAddr(heap + i * 64);
            region.store(a, i + 7);
            // SAFETY: single-threaded test.
            unsafe { pool.add_modified_raw(SYSTEM_SLOT, a, 8) };
        }
        let r = pool.checkpoint_now();
        assert_eq!(r.lines, 64);
        assert!(r.shards.len() > 1, "expected several non-empty shards");
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        for i in 0..64u64 {
            let off = (heap + i * 64) as usize;
            let v = u64::from_ne_bytes(img.bytes()[off..off + 8].try_into().unwrap());
            assert_eq!(v, i + 7);
        }
    }

    #[test]
    fn periodic_checkpointer_runs_and_stops() {
        let region = Region::new(RegionConfig::fast(1 << 20));
        let pool = Pool::create(region, PoolConfig::default()).unwrap();
        let guard = pool.start_checkpointer(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(60));
        drop(guard);
        let done = pool.ckpt_stats().snapshot().count;
        assert!(done >= 2, "expected several checkpoints, got {done}");
        let epoch = pool.epoch();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(pool.epoch(), epoch, "checkpointer must stop after drop");
    }

    #[test]
    fn stats_mean_lines() {
        let region = Region::new(RegionConfig::fast(1 << 20));
        let pool = Pool::create(region, PoolConfig::default()).unwrap();
        let addr = PAddr(crate::layout::heap_start().0);
        // SAFETY: single-threaded test.
        unsafe { pool.add_modified_raw(SYSTEM_SLOT, addr, 128) };
        pool.checkpoint_now();
        assert_eq!(pool.ckpt_stats().snapshot().lines_flushed, 2);
    }
}
