//! Crash recovery (paper Fig. 5).
//!
//! After a crash, NVMM holds the persisted image of the region: everything
//! flushed by the last completed checkpoint, plus an arbitrary subset of the
//! crashed epoch's updates (lines that happened to be written back). The
//! recovery procedure:
//!
//! 1. decodes the epoch-record ring on the epoch header line: the failed
//!    epoch `E` is the oldest epoch whose drain never committed (or the
//!    recorded running epoch when the ring is empty), and every epoch from
//!    `E` through the running one rolls back with it;
//! 2. rolls back every fixed header cell (root, bump, free lists, per-slot
//!    descriptors) tagged inside the rolled-back range;
//! 3. walks every slot's cell registry (lengths now rolled back to their
//!    checkpointed values) and rolls back every registered cell tagged
//!    inside the range — this step parallelizes across worker threads, which
//!    is how the paper reconstructs a 4M-bucket hash map in < 240 ms
//!    (Fig. 12);
//! 4. re-tracks every such cell in the system tracking list, so the next
//!    checkpoint persists both the rollback writes and any re-executed
//!    updates (which will skip `add_modified` because their `epoch_id`
//!    already equals `E` — the subtle interaction the paper's recovery line
//!    `epoch = failed_epoch` relies on);
//! 5. resumes with the volatile epoch mirror set to `E` (the crashed epoch
//!    is re-executed, not skipped).

use std::sync::Arc;
use std::time::{Duration, Instant};

use respct_pmem::arch::thread_cpu_ns;
use respct_pmem::{BackendKind, PAddr, Region, SyncToken, TraceMarker};

use crate::layout::{
    self, CellLayout, MAGIC, MAX_THREADS, NUM_CLASSES, OFF_BUMP, OFF_EPOCH, OFF_FREELISTS,
    OFF_MAGIC, OFF_ROOT, U64_CELL_SLOT,
};
use crate::pool::{Pool, PoolConfig, SYSTEM_SLOT};

/// Where a recovery reads the crashed state from.
#[derive(Clone)]
enum RecoverySource {
    /// A live region whose volatile image was already restored from a
    /// crash image.
    Region(Arc<Region>),
    /// Raw crash-image bytes; recovery builds a deterministic
    /// (no-eviction) sim region around them.
    Image(Vec<u8>),
}

/// Builder-style options for [`Pool::recover_with`] — the one entry point
/// behind the thin [`Pool::recover`] / [`Pool::recover_from_image`] /
/// [`Pool::recover_with_threads`] wrappers. Construct from a source, then
/// chain the knobs:
///
/// ```
/// use respct::{Pool, PoolConfig, RecoveryOptions};
/// # use std::sync::Arc;
/// # use respct_pmem::{Region, RegionConfig, SimConfig};
/// # let region = Region::new(RegionConfig::sim(1 << 20, SimConfig::no_eviction(1)));
/// # let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
/// # let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
/// # region.restore(&img);
/// let (pool, report) = Pool::recover_with(
///     RecoveryOptions::from_region(region)
///         .config(PoolConfig::default())
///         .threads(4),
/// )
/// .expect("recover");
/// # assert_eq!(report.threads, 4);
/// ```
#[derive(Clone)]
#[must_use = "pass the options to Pool::recover_with"]
pub struct RecoveryOptions {
    source: RecoverySource,
    cfg: PoolConfig,
    threads: usize,
}

impl std::fmt::Debug for RecoveryOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let source = match &self.source {
            RecoverySource::Region(r) => format!("region({} bytes)", r.size()),
            RecoverySource::Image(b) => format!("image({} bytes)", b.len()),
        };
        f.debug_struct("RecoveryOptions")
            .field("source", &source)
            .field("threads", &self.threads)
            .finish()
    }
}

impl RecoveryOptions {
    /// Recovery over a live region (restored in place).
    pub fn from_region(region: Arc<Region>) -> RecoveryOptions {
        RecoveryOptions {
            source: RecoverySource::Region(region),
            cfg: PoolConfig::default(),
            threads: 1,
        }
    }

    /// Recovery over a raw crash image (the crash-point sweep entry point).
    pub fn from_image(image: &[u8]) -> RecoveryOptions {
        RecoveryOptions {
            source: RecoverySource::Image(image.to_vec()),
            cfg: PoolConfig::default(),
            threads: 1,
        }
    }

    /// Config of the recovered pool (default: [`PoolConfig::default`]).
    pub fn config(mut self, cfg: PoolConfig) -> RecoveryOptions {
        self.cfg = cfg;
        self
    }

    /// Worker threads for the registry scan (default 1; clamped to ≥ 1;
    /// paper Fig. 12 uses 32).
    pub fn threads(mut self, threads: usize) -> RecoveryOptions {
        self.threads = threads;
        self
    }
}

/// Summary of a recovery run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The epoch that crashed (execution resumes inside it).
    pub failed_epoch: u64,
    /// Registered cells examined.
    pub cells_scanned: u64,
    /// Cells whose record was restored from backup.
    pub cells_rolled_back: u64,
    /// Wall-clock duration of the recovery procedure.
    pub duration: Duration,
    /// Critical path of the registry scan: the longest per-worker thread
    /// CPU time. Equals the scan's wall time on an unloaded multicore
    /// machine; on a core-limited runner (where workers timeshare and
    /// wall-clock collapses to the sum of their work) it still reflects
    /// the parallel speedup an unconstrained machine would observe.
    pub scan_span: Duration,
    /// Worker threads used for the registry scan.
    pub threads: usize,
}

/// The happens-before token for the parallel registry scan's fork/join:
/// every worker releases it before finishing, the coordinating thread
/// acquires it once after the scope join.
fn recovery_join_token(region: &Region) -> SyncToken {
    SyncToken::Chan {
        id: region as *const Region as u64,
    }
}

/// Restores `record` from `backup` if the cell was touched in any epoch of
/// the uncommitted range `failed_epoch ..= recorded_epoch` — the oldest
/// epoch whose drain never committed through the epoch that was running at
/// the crash (see [`crate::layout::epoch_ring_slot`]; with a single drain
/// in flight the range is one or two epochs, matching the original
/// two-phase record). Returns whether a rollback happened. Collects the
/// cell's line either way when it belongs to a rolled-back epoch (it must
/// be flushed at the next checkpoint; see module docs). Garbage tags in
/// never-initialized cells decode to astronomically large epochs and fall
/// outside the range.
fn roll_back_cell(
    region: &Region,
    addr: PAddr,
    l: CellLayout,
    failed_epoch: u64,
    recorded_epoch: u64,
    lines: &mut Vec<u64>,
) -> bool {
    let stored: u64 = region.load(addr.offset(l.epoch_off as u64));
    let tag = crate::incll::tag_epoch(addr, stored);
    if tag < failed_epoch || tag > recorded_epoch {
        return false;
    }
    let mut buf = [0u8; 24];
    let v = &mut buf[..l.vsize as usize];
    region.load_bytes(addr.offset(l.backup_off as u64), v);
    region.trace_marker(TraceMarker::RecoveryApply { addr: addr.0 });
    region.store_bytes(addr, v);
    lines.push(addr.line());
    true
}

impl Pool {
    /// The unified recovery entry point: every other `recover*` function is
    /// a thin wrapper over this. See [`RecoveryOptions`] for the knobs.
    ///
    /// # Errors
    ///
    /// [`PoolError::NotAPool`](crate::PoolError::NotAPool) if the region was
    /// never formatted, [`PoolError::SizeMismatch`](crate::PoolError::SizeMismatch)
    /// if the header size disagrees with the region.
    ///
    /// # Panics
    ///
    /// With an image source, panics unless the image is a positive
    /// cache-line multiple in size (all region images are).
    pub fn recover_with(
        opts: RecoveryOptions,
    ) -> Result<(Arc<Pool>, RecoveryReport), crate::error::PoolError> {
        let region = match opts.source {
            RecoverySource::Region(region) => region,
            RecoverySource::Image(image) => {
                // A deterministic (no-eviction) sim region around the raw
                // bytes, so the recovered state is a pure function of the
                // image.
                let region = Region::new(respct_pmem::RegionConfig::sim(
                    image.len(),
                    respct_pmem::SimConfig::no_eviction(0),
                ));
                let img = respct_pmem::CrashImage::from_bytes(image);
                region.restore(&img);
                region
            }
        };
        Self::recover_impl(region, opts.cfg, opts.threads)
    }

    /// Recovers a pool from a region whose volatile image was restored from
    /// a crash image (single-threaded registry scan).
    ///
    /// # Errors
    ///
    /// As for [`Pool::recover_with`].
    pub fn recover(
        region: Arc<Region>,
        cfg: PoolConfig,
    ) -> Result<(Arc<Pool>, RecoveryReport), crate::error::PoolError> {
        Self::recover_with(RecoveryOptions::from_region(region).config(cfg))
    }

    /// Recovers a pool from a raw crash image (the crash-point sweep entry
    /// point).
    ///
    /// # Errors
    ///
    /// As for [`Pool::recover_with`].
    ///
    /// # Panics
    ///
    /// As for [`Pool::recover_with`].
    pub fn recover_from_image(
        image: &[u8],
        cfg: PoolConfig,
    ) -> Result<(Arc<Pool>, RecoveryReport), crate::error::PoolError> {
        Self::recover_with(RecoveryOptions::from_image(image).config(cfg))
    }

    /// Recovery with a parallel registry scan (paper Fig. 12 uses 32
    /// recovery threads).
    ///
    /// # Errors
    ///
    /// As for [`Pool::recover_with`].
    pub fn recover_with_threads(
        region: Arc<Region>,
        cfg: PoolConfig,
        threads: usize,
    ) -> Result<(Arc<Pool>, RecoveryReport), crate::error::PoolError> {
        Self::recover_with(
            RecoveryOptions::from_region(region)
                .config(cfg)
                .threads(threads),
        )
    }

    fn recover_impl(
        region: Arc<Region>,
        cfg: PoolConfig,
        threads: usize,
    ) -> Result<(Arc<Pool>, RecoveryReport), crate::error::PoolError> {
        let threads = threads.max(1);
        let t0 = Instant::now();
        if region.load::<u64>(OFF_MAGIC) != MAGIC {
            return Err(crate::error::PoolError::NotAPool);
        }
        let header_size = region.load::<u64>(layout::OFF_SIZE);
        if header_size != region.size() as u64 {
            return Err(crate::error::PoolError::SizeMismatch {
                header: header_size,
                region: region.size() as u64,
            });
        }
        // Decode the epoch-record ring. Each slot holds the epoch number of
        // an in-flight (claimed, uncommitted) drain, or 0 once committed;
        // the decode is config-independent — a K=1 pool simply never wrote
        // slots 1.. and they read back 0. An empty ring means the last
        // checkpoint committed fully: only the recorded (running) epoch
        // rolls back. Otherwise the oldest uncommitted epoch and everything
        // after it — through the running epoch — roll back, and execution
        // resumes in the oldest one. Drains commit strictly in ring order,
        // so legitimate images always show a *contiguous* ascending run of
        // uncommitted epochs ending at the running epoch or (when the
        // ring-slot claim itself tore mid-line) at the recorded epoch
        // itself; anything else is corruption.
        let recorded_epoch: u64 = region.load(OFF_EPOCH);
        // `(slot index, claimed epoch)` for every in-flight drain, oldest
        // epoch first. The slot index is remembered rather than recomputed:
        // the crashed pool's ring width K (which determined `epoch mod K`)
        // is not knowable from the image, and does not need to be.
        let mut uncommitted: Vec<(usize, u64)> = (0..layout::MAX_EPOCH_PIPELINE)
            .map(|i| (i, region.load::<u64>(layout::epoch_ring_slot(i))))
            .filter(|&(_, e)| e != 0)
            .collect();
        uncommitted.sort_unstable_by_key(|&(_, e)| e);
        let failed_epoch = match uncommitted.first() {
            None => recorded_epoch,
            Some(&(_, oldest)) => {
                let newest = uncommitted.last().expect("non-empty").1;
                let contiguous = uncommitted.windows(2).all(|w| w[1].1 == w[0].1 + 1);
                assert!(
                    contiguous && (newest == recorded_epoch || newest + 1 == recorded_epoch),
                    "corrupt epoch ring {uncommitted:?} for epoch {recorded_epoch}: \
                     a hole or a stray commit means drains did not commit in ring order",
                );
                oldest
            }
        };
        // Phase 0: prefault an mmap-backed region. A freshly mapped pool
        // file is all unpopulated PTEs, and at GB scale the demand minor
        // faults (one per 4 KiB) would otherwise dominate the registry
        // scan. Touch every page up front, one contiguous extent per scan
        // worker, so the fault storm parallelizes and each worker's stream
        // keeps the kernel's readahead sequential. Runs before load
        // tracing is enabled: warm-up reads carry no recovery semantics.
        if region.backend_kind() == BackendKind::Mmap {
            const PAGE: u64 = 4096;
            let pages = (region.size() as u64).div_ceil(PAGE);
            let per = pages.div_ceil(threads as u64);
            std::thread::scope(|s| {
                for w in 0..threads as u64 {
                    let region = &region;
                    s.spawn(move || {
                        let mut acc = 0u8;
                        for p in (per * w)..(per * (w + 1)).min(pages) {
                            acc ^= region.load::<u8>(PAddr(p * PAGE));
                        }
                        std::hint::black_box(acc);
                    });
                }
            });
        }
        region.trace_marker(TraceMarker::RecoveryBegin { failed_epoch });
        // Recovery-time reads are what rule (c) of the race detector
        // audits: surface them as Load events for the recovery window.
        region.set_trace_loads(true);

        let u64_layout = CellLayout::new(8, 8);
        let mut lines: Vec<u64> = Vec::new();
        let mut rolled = 0u64;

        // Phase 1: fixed header cells.
        let mut fixed: Vec<PAddr> = vec![OFF_ROOT, OFF_BUMP];
        for c in 0..NUM_CLASSES {
            fixed.push(PAddr(OFF_FREELISTS.0 + c as u64 * U64_CELL_SLOT));
        }
        for slot in 0..MAX_THREADS {
            let b = layout::slot_base(slot).0;
            for f in [
                layout::SLOT_RP_ID,
                layout::SLOT_ALLOC_CUR,
                layout::SLOT_ALLOC_END,
                layout::SLOT_REG_LEN,
            ] {
                fixed.push(PAddr(b + f));
            }
        }
        let fixed_count = fixed.len() as u64;
        for addr in fixed {
            if roll_back_cell(
                &region,
                addr,
                u64_layout,
                failed_epoch,
                recorded_epoch,
                &mut lines,
            ) {
                rolled += 1;
            }
        }

        // Phase 1.5: clear registry heads whose every entry rolled back.
        // Such a head chunk was allocated in the failed epoch, so the
        // allocator rollback reclaims its memory — the pointer dangles
        // into re-allocatable space. An empty chain contributes nothing to
        // recovery, so clearing is always safe; the next `register_cell`
        // starts a fresh chain.
        let mut cleared_head = false;
        for slot in 0..MAX_THREADS {
            let b = layout::slot_base(slot).0;
            let len: u64 = region.load(PAddr(b + layout::SLOT_REG_LEN));
            let head_field = PAddr(b + layout::SLOT_REG_HEAD);
            let head: u64 = region.load(head_field);
            if len == 0 && head != 0 {
                region.store(head_field, 0u64);
                region.pwb(head_field);
                cleared_head = true;
            }
        }
        if cleared_head {
            region.psync();
        }

        // Phase 2: registered cells, scanned in parallel. Slot registries
        // are disjoint, so slots partition cleanly across workers. The pool
        // is only needed for its registry-walk helpers; build it now (no
        // application thread exists yet).
        let pool = Pool::attach(Arc::clone(&region), cfg, failed_epoch, true);
        let mut scanned = 0u64;
        let mut scan_span_ns = 0u64;
        if threads == 1 {
            let cpu0 = thread_cpu_ns();
            for slot in 0..MAX_THREADS {
                let len = pool.reg_len_persistent(slot);
                pool.for_each_registered(slot, len, |addr, l| {
                    scanned += 1;
                    if roll_back_cell(&region, addr, l, failed_epoch, recorded_epoch, &mut lines) {
                        rolled += 1;
                    }
                });
            }
            scan_span_ns = thread_cpu_ns().saturating_sub(cpu0);
        } else {
            let results: Vec<(u64, u64, u64, Vec<u64>)> = std::thread::scope(|s| {
                let mut joins = Vec::new();
                for w in 0..threads {
                    let pool = &pool;
                    let region = &region;
                    joins.push(s.spawn(move || {
                        let cpu0 = thread_cpu_ns();
                        let mut scanned = 0u64;
                        let mut rolled = 0u64;
                        let mut lines = Vec::new();
                        let mut slot = w;
                        while slot < MAX_THREADS {
                            let len = pool.reg_len_persistent(slot);
                            pool.for_each_registered(slot, len, |addr, l| {
                                scanned += 1;
                                if roll_back_cell(
                                    region,
                                    addr,
                                    l,
                                    failed_epoch,
                                    recorded_epoch,
                                    &mut lines,
                                ) {
                                    rolled += 1;
                                }
                            });
                            slot += threads;
                        }
                        region.sync_release(recovery_join_token(region));
                        (scanned, rolled, thread_cpu_ns().saturating_sub(cpu0), lines)
                    }));
                }
                joins
                    .into_iter()
                    .map(|j| j.join().expect("recovery worker"))
                    .collect()
            });
            // The scope join is a real happens-before edge from every
            // worker to this thread; report it so the workers' rollback
            // stores are visibly ordered before post-recovery execution.
            region.sync_acquire(recovery_join_token(&region));
            for (s, r, cpu, mut l) in results {
                scanned += s;
                rolled += r;
                scan_span_ns = scan_span_ns.max(cpu);
                lines.append(&mut l);
            }
        }

        // Phase 3: everything recovery rewrote — and every cell already
        // stamped with the failed epoch — must reach NVMM at the next
        // checkpoint. `track_line_raw` shards the lines exactly as live
        // tracking does, so the recovered lines flow through the same
        // sharded flush pipeline.
        // SAFETY: no application thread is registered yet; recovery has
        // exclusive access to the system slot.
        for &line in &lines {
            unsafe { pool.track_line_raw(SYSTEM_SLOT, line) };
        }

        // Repair the epoch ring if any drain was interrupted. The rollback
        // writes must be durable *before* the ring mutates: zeroing slot
        // `e mod K` claims "epoch `e` committed", which a re-crash trusts
        // by not re-rolling `e`'s cells — so their restored values have to
        // already sit in NVMM (a rolled cell's record equals its backup, so
        // later epochs re-using a stale tag still roll back to the same
        // committed value). The ring words and the epoch counter share one
        // cache line and the stores run oldest-epoch-first with the epoch
        // counter last, so by PCSO's same-line prefix order every torn
        // state a re-crash can observe is a contiguous ring suffix this
        // decode handles idempotently — the committed horizon only ever
        // moves forward.
        if !uncommitted.is_empty() {
            for &line in &lines {
                region.pwb_line(line);
            }
            region.psync();
            for &(slot, _) in &uncommitted {
                region.store(layout::epoch_ring_slot(slot), 0u64);
            }
            region.store(OFF_EPOCH, failed_epoch);
            region.pwb(OFF_EPOCH);
            region.psync();
        }
        region.set_trace_loads(false);
        region.trace_marker(TraceMarker::RecoveryEnd {
            epoch: failed_epoch,
        });
        // Re-publish on the checkpoint-lock token: everything recovery
        // wrote (rollbacks, epoch-record repair) happens-before the first
        // post-recovery `register()`.
        region.sync_release(pool.ckpt_lock_token());

        let report = RecoveryReport {
            failed_epoch,
            cells_scanned: scanned + fixed_count,
            cells_rolled_back: rolled,
            duration: t0.elapsed(),
            scan_span: Duration::from_nanos(scan_span_ns),
            threads,
        };
        Ok((pool, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct_pmem::sim::CrashMode;
    use respct_pmem::{RegionConfig, SimConfig};

    fn sim_region(seed: u64) -> Arc<Region> {
        Region::new(RegionConfig::sim(
            8 << 20,
            SimConfig::with_eviction(3, seed),
        ))
    }

    /// Crash the pool and come back up on the same region.
    fn crash_and_recover(region: &Arc<Region>) -> (Arc<Pool>, RecoveryReport) {
        let img = region.crash(CrashMode::PowerFailure);
        region.restore(&img);
        Pool::recover(Arc::clone(region), PoolConfig::default()).unwrap()
    }

    #[test]
    fn uncheckpointed_update_rolls_back() {
        let region = sim_region(1);
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let c = h.alloc_cell(10u64);
        h.checkpoint_here(); // value 10 is durable
        h.update(c, 99); // crashed epoch
        drop(h);
        drop(pool);
        let (pool2, report) = crash_and_recover(&region);
        assert_eq!(report.failed_epoch, 2);
        assert_eq!(
            pool2.cell_get(c),
            10,
            "update from the crashed epoch must roll back"
        );
    }

    #[test]
    fn checkpointed_update_survives() {
        let region = sim_region(2);
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let c = h.alloc_cell(10u64);
        h.update(c, 20);
        h.checkpoint_here();
        drop(h);
        drop(pool);
        let (pool2, _) = crash_and_recover(&region);
        assert_eq!(pool2.cell_get(c), 20);
    }

    #[test]
    fn rollback_even_when_everything_persisted() {
        // Clean shutdown (EvictAll) still counts as a crash: the epoch did
        // not complete, so its updates must roll back.
        let region = sim_region(3);
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let c = h.alloc_cell(10u64);
        h.checkpoint_here();
        h.update(c, 99);
        drop(h);
        drop(pool);
        let img = region.crash(CrashMode::EvictAll);
        region.restore(&img);
        let (pool2, report) = Pool::recover(Arc::clone(&region), PoolConfig::default()).unwrap();
        assert_eq!(pool2.cell_get(c), 10);
        assert!(report.cells_rolled_back >= 1);
    }

    #[test]
    fn allocation_rolls_back_with_epoch() {
        let region = sim_region(4);
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let _c1 = h.alloc_cell(1u64);
        h.checkpoint_here();
        let used_before = pool.heap_used();
        for _ in 0..3 {
            // Large blocks bypass the chunk cache and move the global bump.
            let _ = h.alloc(100_000, 64); // crashed-epoch allocations
        }
        for _ in 0..100 {
            let _ = h.alloc_cell(2u64); // crashed-epoch cell allocations
        }
        assert!(pool.heap_used() > used_before);
        drop(h);
        drop(pool);
        let (pool2, _) = crash_and_recover(&region);
        assert_eq!(pool2.heap_used(), used_before, "bump cursor must roll back");
    }

    #[test]
    fn repeated_crash_rounds_reuse_dirty_allocations() {
        // Regression: memory allocated in a crashed epoch keeps valid
        // address-mixed epoch tags while the registry entries describing it
        // roll back with `reg_len`. A later epoch re-allocating that memory
        // as-is fooled `init_InCLL`'s recycled-cell detection into skipping
        // re-registration — the new cell was then invisible to every future
        // recovery, and its dirty updates survived the *next* crash.
        // `EvictAll` persists everything (the mmap-backend shape, where all
        // stores reach the pool file), which maximizes surviving stale tags.
        let region = sim_region(11);
        {
            let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
            let h = pool.register();
            h.checkpoint_here();
            let _dirty = h.alloc_cell(0xdeadu64); // crashed-epoch allocation
        }
        let mut cells: Vec<crate::ICell<u64>> = Vec::new();
        for round in 0..4u64 {
            let img = region.crash(CrashMode::EvictAll);
            region.restore(&img);
            let (pool, _) = Pool::recover(Arc::clone(&region), PoolConfig::default()).unwrap();
            for (i, c) in cells.iter().enumerate() {
                assert_eq!(
                    pool.cell_get(*c),
                    i as u64,
                    "round {round}: dirty update of round-{i} cell must have rolled back"
                );
            }
            let h = pool.register();
            // Committed work: a fresh cell, re-using the previous round's
            // rolled-back allocation.
            let c = h.alloc_cell(round);
            h.checkpoint_here();
            cells.push(c);
            // Dirty epoch: overwrite the committed cell and allocate again.
            h.update(c, 5555);
            let _dirty = h.alloc_cell(0xdeadu64);
        }
    }

    #[test]
    fn resumed_epoch_then_checkpoint_then_second_crash() {
        // The trickiest schedule: crash in epoch E, recover, re-execute the
        // update (which skips re-logging because epoch_id == E), checkpoint,
        // then crash again in E+1 and verify the value from the E checkpoint
        // survives — this exercises the recovery re-tracking of step 4.
        let region = sim_region(5);
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let c = h.alloc_cell(10u64);
        h.checkpoint_here(); // E=2 begins
        h.update(c, 50);
        drop(h);
        drop(pool);
        let (pool2, report) = crash_and_recover(&region);
        assert_eq!(report.failed_epoch, 2);
        assert_eq!(pool2.cell_get(c), 10);
        let h2 = pool2.register();
        h2.update(c, 60); // re-execution in the resumed epoch 2
        h2.checkpoint_here(); // closes epoch 2
        h2.update(c, 70); // epoch 3, will crash
        drop(h2);
        drop(pool2);
        let (pool3, report3) = crash_and_recover(&region);
        assert_eq!(report3.failed_epoch, 3);
        assert_eq!(
            pool3.cell_get(c),
            60,
            "checkpointed re-execution must survive"
        );
    }

    #[test]
    fn rp_id_recovered() {
        let region = sim_region(6);
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let slot = {
            h.rp(41);
            h.checkpoint_here();
            h.rp(42); // crashed epoch: rolls back to 41
            41
        };
        let _ = slot;
        drop(h);
        drop(pool);
        let (pool2, _) = crash_and_recover(&region);
        let h2 = pool2.register();
        assert_eq!(h2.last_rp(), 41);
    }

    #[test]
    fn parallel_recovery_matches_serial() {
        let region = sim_region(7);
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let mut cells = Vec::new();
        for i in 0..500u64 {
            cells.push(h.alloc_cell(i));
        }
        h.checkpoint_here();
        for (i, c) in cells.iter().enumerate() {
            h.update(*c, 10_000 + i as u64);
        }
        drop(h);
        drop(pool);
        let img = region.crash(CrashMode::PowerFailure);
        region.restore(&img);
        let (pool2, report) =
            Pool::recover_with_threads(Arc::clone(&region), PoolConfig::default(), 4).unwrap();
        assert_eq!(report.threads, 4);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(pool2.cell_get(*c), i as u64);
        }
    }

    #[test]
    fn root_pointer_recovers() {
        let region = sim_region(8);
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let obj = h.alloc(64, 64);
        h.set_root(obj);
        h.checkpoint_here();
        drop(h);
        drop(pool);
        let (pool2, _) = crash_and_recover(&region);
        assert_eq!(pool2.root(), obj);
    }

    #[test]
    fn recover_from_image_matches_in_place_recovery() {
        let region = sim_region(9);
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let c = h.alloc_cell(10u64);
        h.checkpoint_here();
        h.update(c, 99); // crashed epoch
        drop(h);
        drop(pool);
        let img = region.crash(CrashMode::PowerFailure);
        // Recover on a synthetic region built from the raw bytes, without
        // touching the original region.
        let (pool2, report) = Pool::recover_from_image(img.bytes(), PoolConfig::default()).unwrap();
        assert_eq!(report.failed_epoch, 2);
        assert_eq!(pool2.cell_get(c), 10);
    }

    #[test]
    fn recover_from_image_rejects_garbage() {
        let err = Pool::recover_from_image(&[0u8; 1 << 20], PoolConfig::default()).unwrap_err();
        assert_eq!(err, crate::error::PoolError::NotAPool);
    }

    #[test]
    fn recover_with_options_from_image_and_threads() {
        let region = sim_region(10);
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let c = h.alloc_cell(10u64);
        h.checkpoint_here();
        h.update(c, 99); // crashed epoch
        drop(h);
        drop(pool);
        let img = region.crash(CrashMode::PowerFailure);
        let (pool2, report) = Pool::recover_with(
            RecoveryOptions::from_image(img.bytes())
                .config(PoolConfig::default())
                .threads(2),
        )
        .unwrap();
        assert_eq!(report.threads, 2);
        assert_eq!(pool2.cell_get(c), 10);
    }

    #[test]
    fn recover_unformatted_region_fails() {
        let region = Region::new(RegionConfig::fast(1 << 20));
        let err = Pool::recover(region, PoolConfig::default()).unwrap_err();
        assert_eq!(err, crate::error::PoolError::NotAPool);
    }
}
