//! Typed construction/recovery errors.
//!
//! [`Pool::create`](crate::Pool::create) and
//! [`Pool::recover`](crate::Pool::recover) return `Result<_, PoolError>`
//! instead of panicking: a region that is too small, not formatted, or a
//! config that makes no sense are all conditions an embedding application
//! can hit with user-supplied inputs and must be able to handle.

use respct_pmem::RegionError;

/// Why a pool could not be created, recovered, or configured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The region cannot hold the pool header plus a minimal heap.
    RegionTooSmall {
        /// Minimum region size in bytes.
        need: u64,
        /// Actual region size in bytes.
        got: u64,
    },
    /// The region does not start with the ResPCT magic number — it was
    /// never formatted by [`Pool::create`](crate::Pool::create), or the
    /// image is corrupt.
    NotAPool,
    /// The size recorded in the pool header disagrees with the region
    /// (a crash image restored into a differently-sized region).
    SizeMismatch {
        /// Size recorded in the persistent header.
        header: u64,
        /// Size of the region being recovered.
        region: u64,
    },
    /// A [`PoolConfig`](crate::PoolConfig) validation failure (bad flusher
    /// or shard count, contradictory mode combination). Produced by
    /// [`PoolConfig::builder`](crate::PoolConfig::builder).
    InvalidConfig(&'static str),
    /// The persistence backend failed: region construction, pool-file I/O,
    /// or a bad image. Carries the path and operation that failed.
    Backend(RegionError),
}

impl From<RegionError> for PoolError {
    fn from(e: RegionError) -> PoolError {
        PoolError::Backend(e)
    }
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::RegionTooSmall { need, got } => {
                write!(
                    f,
                    "region too small: need more than {need} bytes, got {got}"
                )
            }
            PoolError::NotAPool => write!(f, "not a ResPCT pool (magic mismatch)"),
            PoolError::SizeMismatch { header, region } => write!(
                f,
                "size mismatch: header says {header} bytes, region is {region}"
            ),
            PoolError::InvalidConfig(why) => write!(f, "invalid pool config: {why}"),
            PoolError::Backend(e) => write!(f, "backend error: {e}"),
        }
    }
}

impl std::error::Error for PoolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PoolError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PoolError::RegionTooSmall { need: 100, got: 10 };
        assert!(e.to_string().contains("region too small"));
        assert!(PoolError::NotAPool.to_string().contains("magic"));
        assert!(PoolError::SizeMismatch {
            header: 1,
            region: 2
        }
        .to_string()
        .contains("size mismatch"));
        assert!(PoolError::InvalidConfig("shards")
            .to_string()
            .contains("shards"));
    }

    #[test]
    fn backend_errors_wrap_with_context() {
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied");
        let e: PoolError = RegionError::io("/pools/a.pool", "mmap", &io).into();
        let s = e.to_string();
        assert!(s.contains("mmap"), "{s}");
        assert!(s.contains("/pools/a.pool"), "{s}");
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(e.clone(), e);
    }
}
