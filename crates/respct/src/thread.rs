//! Per-thread handles: the application-facing ResPCT API (paper Table 1).
//!
//! Every program thread registers with the pool and receives a
//! [`ThreadHandle`]. The handle implements `update_InCLL`, `add_modified`,
//! `RP(id)`, the blocking-call protocol ([`ThreadHandle::allow_checkpoints`]
//! returning an [`AllowGuard`]), and persistent allocation. Handles are
//! `Send` (a thread may be handed its handle) but not `Sync`: a handle
//! belongs to exactly one thread at a time, which is what makes the
//! unsynchronized tracking list sound.

use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use respct_pmem::{PAddr, Pod, SyncToken};

use crate::incll::ICell;
use crate::layout::{self, MAX_THREADS};
use crate::pool::{Pool, SYSTEM_SLOT};

/// A restart-point identifier (paper §3.3: RP ids name the static program
/// locations recovery can resume from). A dedicated type keeps RP ids from
/// being confused with the other bare `u64`s of the API (epochs, addresses,
/// slot indexes); `From<u64>` keeps literal call sites (`h.rp(7)`) working.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RpId(pub u64);

impl RpId {
    /// `self + d`: derives a per-worker id from a per-call-site base (the
    /// common "base + thread index" pattern of the app kernels).
    pub const fn offset(self, d: u64) -> RpId {
        RpId(self.0 + d)
    }
}

impl From<u64> for RpId {
    fn from(id: u64) -> RpId {
        RpId(id)
    }
}

impl std::fmt::Display for RpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A registered program thread's capability to mutate persistent state.
pub struct ThreadHandle {
    pool: Arc<Pool>,
    slot: usize,
    /// Last `rp_id` written to the persistent RP cell: writing the same id
    /// again is a semantic no-op *across epochs too* — the cell already
    /// holds the id, and rolling back an untouched cell keeps it — so
    /// `rp()` skips the cell update (hot loops sit on one RP site). The
    /// skip also matters for the asynchronous drain: re-logging the RP cell
    /// on the first `rp()` of each epoch would hit the push-out guard and
    /// stall every thread once per drain for no semantic gain.
    last_rp: std::cell::Cell<u64>,
    /// `!Sync` marker: the tracking-list protocol requires single ownership.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl Pool {
    /// Registers the calling context as a program thread.
    ///
    /// Blocks while a checkpoint is in progress (a thread may not join an
    /// epoch halfway through its checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if all thread slots are taken.
    pub fn register(self: &Arc<Self>) -> ThreadHandle {
        let _serial = self.lock_ckpt();
        let slot = self
            .free_slots
            .lock()
            .pop()
            .unwrap_or_else(|| panic!("all {MAX_THREADS} thread slots in use"));
        // SAFETY: the slot was just popped from the free list and the
        // checkpoint lock is held, so nobody else touches it.
        unsafe { self.rebuild_registry_cache(slot) };
        self.flags[slot].store(false, Ordering::SeqCst);
        self.active[slot].store(true, Ordering::SeqCst);
        ThreadHandle {
            pool: Arc::clone(self),
            slot,
            last_rp: std::cell::Cell::new(u64::MAX),
            _not_sync: PhantomData,
        }
    }
}

impl Drop for ThreadHandle {
    fn drop(&mut self) {
        // Mark ourselves quiescent *before* taking the checkpoint lock:
        // a checkpoint already in progress is waiting for this flag, and
        // we will make no further persistent writes. The SeqCst store also
        // publishes our tracking-list pushes to the checkpointer.
        self.pool.region.sync_release(self.flag_token());
        self.pool.flags[self.slot].store(true, Ordering::SeqCst);
        let _serial = self.pool.lock_ckpt();
        self.pool.active[self.slot].store(false, Ordering::SeqCst);
        self.pool.free_slots.lock().push(self.slot);
        // The flag stays true: an unowned slot never blocks checkpoints.
    }
}

impl ThreadHandle {
    /// The pool this handle belongs to.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// The thread slot index backing this handle (diagnostics).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The happens-before token of this slot's quiescence flag. Raising
    /// the flag is a release (the checkpointer acquires it when it observes
    /// the raise); resuming after a checkpoint acquires [`SyncToken::Timer`]
    /// (released by the checkpointer when it un-quiesces the threads).
    fn flag_token(&self) -> SyncToken {
        SyncToken::Flag {
            slot: self.slot as u64,
        }
    }

    // ---- InCLL API (paper Table 1) -----------------------------------

    /// Allocates an InCLL variable initialized to `val` (`alloc_in_nvmm` +
    /// `init_InCLL`).
    pub fn alloc_cell<T: Pod>(&self, val: T) -> ICell<T> {
        let l = crate::incll::cell_layout::<T>();
        // SAFETY: this thread owns `slot` (handle is `!Sync`) and is not
        // parked (it is running this code outside `rp()`).
        unsafe {
            let addr = self
                .pool
                .alloc_raw(self.slot, l.total as u64, l.natural_align());
            self.pool.cell_init_raw(self.slot, addr, val)
        }
    }

    /// Initializes an InCLL variable at a caller-chosen address inside a
    /// larger allocation (for cells embedded in structs). The placement
    /// must keep the whole cell within one cache line (checked).
    pub fn init_cell_at<T: Pod>(&self, addr: PAddr, val: T) -> ICell<T> {
        // SAFETY: slot ownership as in `alloc_cell`.
        unsafe { self.pool.cell_init_raw(self.slot, addr, val) }
    }

    /// Initializes *or* updates an InCLL variable at `addr`, depending on
    /// whether the address already carries a live cell of this layout —
    /// the right primitive for containers that recycle element slots.
    pub fn upsert_cell<T: Pod>(&self, addr: PAddr, val: T) -> ICell<T> {
        // SAFETY: slot ownership as in `alloc_cell`.
        unsafe { self.pool.cell_upsert_raw(self.slot, addr, val) }
    }

    /// `update_InCLL`: logs the old value on the first update of the epoch,
    /// then stores `val`.
    ///
    /// Per the paper's model (§2.1), if the variable is shared the caller
    /// must hold the lock that protects it; two concurrent `update`s of the
    /// same cell yield an unspecified (but memory-safe) value.
    #[inline]
    pub fn update<T: Pod>(&self, cell: ICell<T>, val: T) {
        // SAFETY: slot ownership (handle is `!Sync`, thread not parked).
        unsafe { self.pool.cell_update_raw(self.slot, cell, val) };
    }

    /// Reads a cell's current value.
    #[inline]
    pub fn get<T: Pod>(&self, cell: ICell<T>) -> T {
        self.pool.cell_get(cell)
    }

    /// Registers `[addr, addr+len)` as modified this epoch (`add_modified`).
    /// Used for persistent data that needs no undo log (no WAR dependency
    /// after the preceding restart point, §3.3.2).
    #[inline]
    pub fn add_modified(&self, addr: PAddr, len: usize) {
        // SAFETY: slot ownership.
        unsafe { self.pool.add_modified_raw(self.slot, addr, len) };
    }

    /// Plain persistent store + `add_modified` in one call.
    #[inline]
    pub fn store_tracked<T: Pod>(&self, addr: PAddr, val: T) {
        self.pool.region.store(addr, val);
        self.add_modified(addr, std::mem::size_of::<T>());
    }

    // ---- Allocation ----------------------------------------------------

    /// Allocates `size` bytes aligned to `align` in persistent memory.
    ///
    /// # Panics
    ///
    /// Panics when the pool is exhausted.
    pub fn alloc(&self, size: u64, align: u64) -> PAddr {
        // SAFETY: slot ownership.
        unsafe { self.pool.alloc_raw(self.slot, size, align) }
    }

    /// Frees a block (deferred to the next checkpoint; see `alloc.rs`).
    pub fn free(&self, addr: PAddr, size: u64) {
        // SAFETY: slot ownership.
        unsafe { self.pool.free_raw(self.slot, addr, size) };
    }

    /// Sets the pool's root pointer (how an application finds its data
    /// after recovery).
    pub fn set_root(&self, addr: PAddr) {
        let cell = self.pool.root_cell();
        self.update(cell, addr.0);
    }

    // ---- Restart points (paper Fig. 4, lines 40–45) ---------------------

    /// Declares a restart point with identifier `id` (a [`RpId`] or a bare
    /// `u64` via `From`).
    ///
    /// Persists the RP id thread-locally (so recovery can report where to
    /// resume), then parks if a checkpoint is pending.
    pub fn rp(&self, id: impl Into<RpId>) {
        let RpId(id) = id.into();
        self.pool
            .region
            .trace_marker(respct_pmem::TraceMarker::RestartPoint {
                slot: self.slot as u64,
                id,
            });
        if self.last_rp.get() != id {
            let rp_cell = self.pool.slot_cell(self.slot, layout::SLOT_RP_ID);
            self.update(rp_cell, id);
            self.last_rp.set(id);
        }
        if self.pool.timer.load(Ordering::Acquire) {
            self.park_for_checkpoint();
        }
    }

    /// The last restart-point id persisted by this thread slot.
    pub fn last_rp(&self) -> u64 {
        self.pool
            .cell_get(self.pool.slot_cell(self.slot, layout::SLOT_RP_ID))
    }

    /// Parks until no checkpoint is pending, with the flag raised while
    /// parked. Hardened against back-to-back checkpoints: after lowering
    /// the flag we re-check `timer` and re-park if a new checkpoint began
    /// in the window (the paper's pseudocode has the same benign race;
    /// SeqCst + the re-check loop closes it).
    ///
    /// Timing the stall here is off the failure-free hot path: the function
    /// only runs when a checkpoint is already pending.
    fn park_for_checkpoint(&self) {
        let metrics = self.pool.runtime_metrics();
        let t0 = metrics.enabled().then(std::time::Instant::now);
        loop {
            self.pool.region.sync_release(self.flag_token());
            self.pool.flags[self.slot].store(true, Ordering::SeqCst);
            let mut spins = 0u32;
            while self.pool.timer.load(Ordering::SeqCst) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            self.pool.flags[self.slot].store(false, Ordering::SeqCst);
            if !self.pool.timer.load(Ordering::SeqCst) {
                break;
            }
        }
        // We observed the checkpointer clearing `timer`: everything the
        // checkpoint did (epoch advance, deferred-cell sync, free-list
        // drain) happens-before our next persistent write.
        self.pool.region.sync_acquire(SyncToken::Timer);
        if let Some(t0) = t0 {
            metrics.on_rp_stall(self.slot, t0.elapsed().as_nanos() as u64);
        }
    }

    // ---- Blocking-call protocol (paper Fig. 4 lines 30–39, §3.3.3) ------

    /// Permits checkpoints to complete while this thread is about to block
    /// (the paper's `checkpoint_allow`). The returned [`AllowGuard`]
    /// re-arms prevention when dropped, so the window in which this thread
    /// does not gate checkpoints is exactly the guard's lifetime — there is
    /// no way to forget the matching `checkpoint_prevent` or to write
    /// persistent state while the flag is still up without keeping the
    /// guard alive (which is the bug made visible).
    ///
    /// For the condvar pattern of §3.3.3 — re-arming while holding a mutex
    /// guard — consume the guard with [`AllowGuard::rearm_locked`].
    pub fn allow_checkpoints(&self) -> AllowGuard<'_> {
        self.allow_raw();
        AllowGuard {
            handle: self,
            armed: true,
        }
    }

    fn allow_raw(&self) {
        self.pool.region.sync_release(self.flag_token());
        self.pool.flags[self.slot].store(true, Ordering::SeqCst);
    }

    fn prevent_raw(&self) {
        loop {
            self.pool.flags[self.slot].store(false, Ordering::SeqCst);
            if !self.pool.timer.load(Ordering::SeqCst) {
                // No checkpoint pending (or one just finished): acquire the
                // checkpointer's timer release before touching pool state.
                self.pool.region.sync_acquire(SyncToken::Timer);
                return;
            }
            self.park_for_checkpoint();
        }
    }

    fn prevent_locked_raw<'a, T>(
        &self,
        mutex: &'a parking_lot::Mutex<T>,
        mut guard: parking_lot::MutexGuard<'a, T>,
    ) -> parking_lot::MutexGuard<'a, T> {
        loop {
            self.pool.flags[self.slot].store(false, Ordering::SeqCst);
            if !self.pool.timer.load(Ordering::SeqCst) {
                self.pool.region.sync_acquire(SyncToken::Timer);
                return guard;
            }
            // A checkpoint started while we were blocked: let it finish.
            self.pool.region.sync_release(self.flag_token());
            self.pool.flags[self.slot].store(true, Ordering::SeqCst);
            drop(guard);
            let mut spins = 0u32;
            while self.pool.timer.load(Ordering::SeqCst) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            guard = mutex.lock();
        }
    }

    /// Runs a checkpoint from this thread (tests / single-threaded apps):
    /// parks the calling handle as if at an RP, then drives the checkpoint.
    pub fn checkpoint_here(&self) -> crate::checkpoint::CkptReport {
        self.pool.region.sync_release(self.flag_token());
        self.pool.flags[self.slot].store(true, Ordering::SeqCst);
        let report = self.pool.checkpoint_now();
        // Lower the flag with the full prevent protocol: another thread's
        // checkpoint may have started while our flag was still up (it saw
        // us as parked), so an unconditional lower here would let this
        // thread write persistent state mid-flush. Re-park until no
        // checkpoint is pending.
        self.prevent_raw();
        report
    }
}

/// Proof that the owning thread currently permits checkpoints to complete
/// without it (obtained from [`ThreadHandle::allow_checkpoints`]).
///
/// While the guard is alive the thread's per-thread flag is raised and the
/// thread **must not** touch persistent state. Dropping the guard re-arms
/// prevention, waiting out any in-flight checkpoint first — the misuse the
/// old `checkpoint_allow`/`checkpoint_prevent` pair allowed (forgetting the
/// second call, or returning early between the two) is unrepresentable.
#[must_use = "dropping the guard immediately re-arms checkpoint prevention"]
pub struct AllowGuard<'h> {
    handle: &'h ThreadHandle,
    armed: bool,
}

impl AllowGuard<'_> {
    /// Re-arms prevention after a `cond_wait` returned, while holding
    /// `mutex`'s guard (the §3.3.3 pattern). If a checkpoint is in flight,
    /// the mutex guard is released while waiting for it — avoiding the
    /// deadlock of a parked checkpointer needing the lock — and
    /// re-acquired afterwards; the returned guard is valid either way.
    ///
    /// Consumes the `AllowGuard`: prevention is re-armed exactly once.
    pub fn rearm_locked<'a, T>(
        mut self,
        mutex: &'a parking_lot::Mutex<T>,
        guard: parking_lot::MutexGuard<'a, T>,
    ) -> parking_lot::MutexGuard<'a, T> {
        self.armed = false;
        self.handle.prevent_locked_raw(mutex, guard)
    }
}

impl Drop for AllowGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.handle.prevent_raw();
        }
    }
}

impl std::fmt::Debug for AllowGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AllowGuard")
            .field("slot", &self.handle.slot)
            .finish()
    }
}

impl std::fmt::Debug for ThreadHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadHandle")
            .field("slot", &self.slot)
            .finish()
    }
}

/// Compile-time guarantee that handles can move across threads but not be
/// shared.
#[allow(dead_code)]
fn _assert_send(h: ThreadHandle) -> impl Send {
    h
}

// The system slot must never be handed to `register`.
const _: () = assert!(SYSTEM_SLOT == 0);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use respct_pmem::{Region, RegionConfig};
    use std::time::Duration;

    fn pool() -> Arc<Pool> {
        Pool::create(
            Region::new(RegionConfig::fast(8 << 20)),
            PoolConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn register_reuses_slots() {
        let p = pool();
        let h1 = p.register();
        let s1 = h1.slot();
        drop(h1);
        let h2 = p.register();
        assert_eq!(h2.slot(), s1);
    }

    #[test]
    fn cell_roundtrip_through_handle() {
        let p = pool();
        let h = p.register();
        let c = h.alloc_cell(41u64);
        assert_eq!(h.get(c), 41);
        h.update(c, 42);
        assert_eq!(h.get(c), 42);
    }

    #[test]
    fn rp_updates_persistent_rp_id() {
        let p = pool();
        let h = p.register();
        h.rp(7);
        assert_eq!(h.last_rp(), 7);
        h.rp(9);
        assert_eq!(h.last_rp(), 9);
    }

    #[test]
    fn checkpoint_waits_for_worker_rp() {
        let p = pool();
        let h = p.register();
        let p2 = Arc::clone(&p);
        let ck = std::thread::spawn(move || p2.checkpoint_now());
        // Give the checkpointer time to raise `timer`.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(p.epoch(), 1, "checkpoint must not complete before the RP");
        h.rp(1);
        ck.join().unwrap();
        assert_eq!(p.epoch(), 2);
    }

    #[test]
    fn dropping_handle_unblocks_checkpoint() {
        let p = pool();
        let h = p.register();
        let p2 = Arc::clone(&p);
        let ck = std::thread::spawn(move || p2.checkpoint_now());
        std::thread::sleep(Duration::from_millis(10));
        drop(h);
        ck.join().unwrap();
        assert_eq!(p.epoch(), 2);
    }

    #[test]
    fn allow_guard_roundtrip() {
        let p = pool();
        let h = p.register();
        let allow = h.allow_checkpoints();
        let r = p.checkpoint_now(); // completes because the flag is up
        assert_eq!(r.closed_epoch, 1);
        drop(allow); // re-arms prevention
                     // After the guard drops, a checkpoint blocks on this thread again.
        let p2 = Arc::clone(&p);
        let ck = std::thread::spawn(move || p2.checkpoint_now());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(p.epoch(), 2);
        h.rp(1);
        ck.join().unwrap();
        assert_eq!(p.epoch(), 3);
    }

    #[test]
    fn allow_guard_rearm_locked() {
        let p = pool();
        let h = p.register();
        let mutex = parking_lot::Mutex::new(0u32);
        let allow = h.allow_checkpoints();
        let guard = mutex.lock();
        // A checkpoint completes while we "block" holding the lock.
        let p2 = Arc::clone(&p);
        let ck = std::thread::spawn(move || p2.checkpoint_now());
        ck.join().unwrap();
        let guard = allow.rearm_locked(&mutex, guard);
        assert_eq!(*guard, 0);
        drop(guard);
        assert_eq!(p.epoch(), 2);
        // Prevention is re-armed: the next checkpoint waits for our RP.
        let p2 = Arc::clone(&p);
        let ck = std::thread::spawn(move || p2.checkpoint_now());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(p.epoch(), 2);
        h.rp(1);
        ck.join().unwrap();
        assert_eq!(p.epoch(), 3);
    }

    #[test]
    fn allow_guard_spans_checkpoint() {
        let p = pool();
        let h = p.register();
        let allow = h.allow_checkpoints();
        let r = p.checkpoint_now();
        assert_eq!(r.closed_epoch, 1);
        drop(allow);
        assert_eq!(p.epoch(), 2);
    }

    #[test]
    fn checkpoint_here_from_worker() {
        let p = pool();
        let h = p.register();
        let c = h.alloc_cell(5u64);
        h.update(c, 6);
        let r = h.checkpoint_here();
        assert_eq!(r.closed_epoch, 1);
        assert!(r.lines >= 1);
        // Next epoch: another update logs again.
        h.update(c, 7);
        let backup: u64 = p.region().load(c.backup_addr());
        assert_eq!(backup, 6, "new epoch must re-log the pre-epoch value");
    }

    #[test]
    fn multi_threaded_updates_with_periodic_checkpoints() {
        let p = pool();
        let guard = p.start_checkpointer(Duration::from_millis(2));
        let mut cells = Vec::new();
        {
            let h = p.register();
            for _ in 0..8 {
                cells.push(h.alloc_cell(0u64));
            }
        }
        std::thread::scope(|s| {
            for (t, &cell) in cells.iter().enumerate() {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    let h = p.register();
                    for i in 0..20_000u64 {
                        h.update(cell, t as u64 * 1_000_000 + i);
                        if i % 64 == 0 {
                            h.rp(t as u64);
                        }
                    }
                });
            }
        });
        drop(guard);
        for (t, &cell) in cells.iter().enumerate() {
            assert_eq!(p.cell_get(cell), t as u64 * 1_000_000 + 19_999);
        }
        // In release on one core the workload may outrun the 2 ms timer;
        // ensure the machinery completes at least one checkpoint either way.
        p.checkpoint_now();
        assert!(p.ckpt_stats().snapshot().count > 0);
    }
}
