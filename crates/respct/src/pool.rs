//! The persistent pool: region + epoch state + checkpoint machinery.
//!
//! A [`Pool`] owns an emulated-NVMM [`Region`] formatted with the layout of
//! [`crate::layout`] and implements the primitive operations of the ResPCT
//! algorithm (paper Fig. 4): `init_InCLL`, `update_InCLL`, `add_modified`,
//! plus the allocator and cell registry that make general-purpose recovery
//! possible. Application threads interact with the pool through
//! [`ThreadHandle`](crate::thread::ThreadHandle)s.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use respct_pmem::{PAddr, Pod, Region, SyncToken, TraceMarker};

use crate::incll::{cell_layout, ICell};
use crate::layout::{
    self, CellLayout, FIRST_EPOCH, MAGIC, MAX_THREADS, NUM_CLASSES, OFF_BUMP, OFF_EPOCH,
    OFF_FREELISTS, OFF_MAGIC, OFF_ROOT, OFF_SIZE, U64_CELL_SLOT,
};
use crate::stats::CkptStats;

/// What the checkpoint procedure actually does — the knobs behind the
/// paper's Fig. 10 overhead decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointMode {
    /// The full algorithm: quiesce, flush modified lines, advance the epoch.
    #[default]
    Full,
    /// Everything except flushing the modified lines ("ResPCT-noFlush").
    NoFlush,
}

/// A persistency fault to inject into the runtime (test-only; behind the
/// `fault-inject` feature). Each injected fault fires exactly once, at the
/// next opportunity, and exists so tests can prove the trace checker
/// actually detects the corresponding violation (non-vacuity).
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The next full checkpoint skips the `pwb` of one tracked line
    /// (inline-flush path): a missed-flush bug.
    SkipOneFlush,
    /// The next first-update-in-epoch of an InCLL cell skips writing the
    /// in-line backup + epoch tag: a logging-rule bug.
    SkipLog,
    /// The next full checkpoint omits the `psync` between the data flushes
    /// and the epoch-counter store: a cross-line ordering bug.
    SkipFence,
    /// The flusher claiming the last non-empty shard of the next full
    /// checkpoint skips its fence: one shard's write-backs race the epoch
    /// advance while every other shard is properly fenced — the parallel
    /// pipeline's characteristic failure mode.
    SkipShardFence,
    /// The next asynchronous checkpoint commits the drain-state word back
    /// to zero *without* writing back and fencing the snapshotted shards:
    /// the two-phase commit's characteristic bug (committing a drain whose
    /// write-backs are not durable).
    SkipDrainCommitOrder,
    /// The pipelined drain executor commits the next two queued epochs in
    /// the *wrong* order: it holds the older epoch's ticket, flushes and
    /// commits the newer epoch first, then commits the older one — the
    /// ordered-commit invariant's characteristic bug. A crash between the
    /// two commits leaves a ring with a hole (a committed epoch sandwiched
    /// between uncommitted ones), which recovery rejects as corrupt.
    SkipRingOrder,
    /// The next happens-before edge at the given site is *not* reported to
    /// the trace sink (the runtime still synchronizes — only the edge the
    /// race detector relies on disappears). Proves each race-detector rule
    /// non-vacuous without actually corrupting the execution.
    DropSyncEdge(SyncEdgeSite),
}

/// Which synchronization edge [`Fault::DropSyncEdge`] suppresses.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEdgeSite {
    /// The release edge of the next [`TracedMutex`](crate::TracedMutex)
    /// guard drop: the next thread through that lock appears unsynchronized
    /// with this one's stores — a persist race (rule a).
    LockRelease,
    /// The release edge a flusher worker publishes with its shard
    /// acknowledgement: the epoch commit appears not HB-after that worker's
    /// fences — an un-ordered commit (rule b).
    FlusherAck,
    /// The acquire edge a thread takes when its push-out wait observes the
    /// drain commit: the thread's backup overwrite appears unordered with
    /// the two-phase commit (rule b, push-out leg).
    DrainHandshake,
}

/// Pool construction parameters.
///
/// Construct via [`PoolConfig::default`] or, for anything non-default,
/// [`PoolConfig::builder`] — the builder validates knob combinations so an
/// invalid config is unrepresentable as a live `PoolConfig`.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of dedicated flusher threads; 0 flushes inline on the
    /// checkpointing thread. The paper uses a pool of flusher threads
    /// pinned one-to-one with program threads (§5).
    pub(crate) flusher_threads: usize,
    pub(crate) mode: CheckpointMode,
    /// Number of flush shards each thread's tracking list is partitioned
    /// into at append time; 0 = auto-size from `flusher_threads`. Always a
    /// power of two once resolved.
    pub(crate) flush_shards: usize,
    /// Hot-path metrics instrumentation (per-update counters, RP-stall
    /// timing). Checkpoint-phase metrics are recorded regardless — they are
    /// per checkpoint, not per operation.
    pub(crate) metrics: bool,
    /// Asynchronous checkpoint drain: release the quiesced threads as soon
    /// as the flush-shard lists are snapshotted and the draining epoch
    /// record is durable, then write the snapshot back in the background
    /// and commit the record afterwards (two-phase commit). Default off.
    pub(crate) async_checkpoint: bool,
    /// Epoch pipeline depth `K`: how many epochs may be in flight (claimed
    /// in the header's epoch-record ring but not yet drain-committed) at
    /// once. 1 (the default) is exactly the single-record asynchronous
    /// drain; `K > 1` routes drains through a background executor so a new
    /// epoch begins with one atomic ring-slot claim while up to `K - 1`
    /// older drains are still committing. Requires `async_checkpoint`.
    pub(crate) epoch_pipeline: usize,
    /// Which persistence backend [`Pool::open`] builds the region on
    /// (default: fast mode with DRAM latency). `Pool::open(path, ..)`
    /// overrides an mmap backend's path with its `path` argument.
    pub(crate) backend: Backend,
    /// Region size [`Pool::open`] uses when it must create a fresh pool
    /// (an existing pool file keeps its own size). Default 64 MiB.
    pub(crate) pool_size: usize,
    /// Worker threads for the recovery registry scan when [`Pool::open`]
    /// finds an existing pool (default 1; paper Fig. 12 uses 32).
    pub(crate) recovery_threads: usize,
}

/// Which persistence substrate a pool's region runs on — an alias for
/// [`respct_pmem::RegionMode`], re-exported so pool users can write
/// `PoolConfig::builder().backend(Backend::Mmap(path))` without importing
/// the pmem crate.
pub type Backend = respct_pmem::RegionMode;

/// Default region size for pools created by [`Pool::open`] (64 MiB).
pub const DEFAULT_POOL_SIZE: usize = 64 << 20;

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            flusher_threads: 0,
            mode: CheckpointMode::Full,
            flush_shards: 0,
            metrics: true,
            async_checkpoint: false,
            epoch_pipeline: 1,
            backend: Backend::Fast(respct_pmem::latency::LatencyModel::dram()),
            pool_size: DEFAULT_POOL_SIZE,
            recovery_threads: 1,
        }
    }
}

impl PoolConfig {
    /// Starts building a validated config.
    pub fn builder() -> PoolConfigBuilder {
        PoolConfigBuilder {
            cfg: PoolConfig::default(),
        }
    }

    /// Number of dedicated flusher threads (0 = inline flushing).
    pub fn flusher_threads(&self) -> usize {
        self.flusher_threads
    }

    /// The checkpoint mode.
    pub fn mode(&self) -> CheckpointMode {
        self.mode
    }

    /// The configured shard count (0 = auto). See
    /// [`PoolConfig::resolved_shards`] for the effective value.
    pub fn flush_shards(&self) -> usize {
        self.flush_shards
    }

    /// Whether hot-path metrics instrumentation is on.
    pub fn metrics(&self) -> bool {
        self.metrics
    }

    /// Whether checkpoints drain asynchronously (threads released at the
    /// epoch swap, flush + commit in the background).
    pub fn async_checkpoint(&self) -> bool {
        self.async_checkpoint
    }

    /// The epoch pipeline depth `K` (1 = one drain in flight at a time).
    pub fn epoch_pipeline(&self) -> usize {
        self.epoch_pipeline
    }

    /// The persistence backend [`Pool::open`] builds the region on.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Region size [`Pool::open`] uses when creating a fresh pool.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Worker threads for the recovery registry scan in [`Pool::open`].
    pub fn recovery_threads(&self) -> usize {
        self.recovery_threads
    }

    /// The effective shard count: the configured power of two, or — when
    /// auto-sized — enough shards that each flusher claims several (4×,
    /// rounded up to a power of two), which keeps the claim race
    /// load-balanced when shard sizes are skewed.
    pub fn resolved_shards(&self) -> usize {
        if self.flush_shards != 0 {
            self.flush_shards
        } else {
            (4 * self.flusher_threads.max(1)).next_power_of_two()
        }
    }
}

/// Maximum dedicated flusher threads.
pub const MAX_FLUSHERS: usize = 64;
/// Maximum flush shards.
pub const MAX_FLUSH_SHARDS: usize = 4096;

/// Builder for [`PoolConfig`]. Terminate with [`build`](Self::build), which
/// validates the combination of knobs.
#[derive(Debug, Clone)]
#[must_use = "call .build() to obtain the validated PoolConfig"]
pub struct PoolConfigBuilder {
    cfg: PoolConfig,
}

impl PoolConfigBuilder {
    /// Sets the number of dedicated flusher threads (0 = flush inline on
    /// the checkpointing thread).
    pub fn flusher_threads(mut self, n: usize) -> Self {
        self.cfg.flusher_threads = n;
        self
    }

    /// Sets the checkpoint mode.
    pub fn mode(mut self, mode: CheckpointMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Sets the flush shard count: 0 for auto-sizing, otherwise a power of
    /// two no smaller than the flusher count.
    pub fn flush_shards(mut self, n: usize) -> Self {
        self.cfg.flush_shards = n;
        self
    }

    /// Enables or disables hot-path metrics instrumentation (default: on).
    /// Checkpoint-phase metrics stay on either way.
    pub fn metrics(mut self, on: bool) -> Self {
        self.cfg.metrics = on;
        self
    }

    /// Enables the asynchronous checkpoint drain (default: off). Threads
    /// are released as soon as the stop-the-world phase snapshots the
    /// flush-shard lists and persists the draining epoch record; the flush
    /// and the final commit happen in the background.
    pub fn async_checkpoint(mut self, on: bool) -> Self {
        self.cfg.async_checkpoint = on;
        self
    }

    /// Sets the epoch pipeline depth `K` (default 1): how many epochs may
    /// be claimed-but-uncommitted at once. `K > 1` requires
    /// [`async_checkpoint`](Self::async_checkpoint) and is capped by
    /// [`layout::MAX_EPOCH_PIPELINE`](crate::layout::MAX_EPOCH_PIPELINE)
    /// (the header ring's capacity). With `K > 1` the stop-the-world phase
    /// shrinks to the ring-slot claim: drains queue to a background
    /// executor and commit strictly in epoch order.
    pub fn epoch_pipeline(mut self, k: usize) -> Self {
        self.cfg.epoch_pipeline = k;
        self
    }

    /// Sets the persistence backend [`Pool::open`] builds the region on
    /// (default: [`Backend::Fast`] with DRAM latency). For
    /// [`Backend::Mmap`], `Pool::open`'s `path` argument wins over the path
    /// embedded here.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Sets the region size [`Pool::open`] uses when it creates a fresh
    /// pool (default 64 MiB). An existing pool file keeps its own size.
    pub fn size(mut self, bytes: usize) -> Self {
        self.cfg.pool_size = bytes;
        self
    }

    /// Sets the worker-thread count for the recovery registry scan when
    /// [`Pool::open`] finds an existing pool (default 1).
    pub fn recovery_threads(mut self, n: usize) -> Self {
        self.cfg.recovery_threads = n;
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<PoolConfig, crate::error::PoolError> {
        use crate::error::PoolError::InvalidConfig;
        let c = &self.cfg;
        if c.flusher_threads > MAX_FLUSHERS {
            return Err(InvalidConfig("flusher_threads exceeds MAX_FLUSHERS (64)"));
        }
        if c.flush_shards != 0 && !c.flush_shards.is_power_of_two() {
            return Err(InvalidConfig(
                "flush_shards must be 0 (auto) or a power of two",
            ));
        }
        if c.flush_shards > MAX_FLUSH_SHARDS {
            return Err(InvalidConfig(
                "flush_shards exceeds MAX_FLUSH_SHARDS (4096)",
            ));
        }
        if c.flush_shards != 0 && c.flush_shards < c.flusher_threads {
            return Err(InvalidConfig(
                "flush_shards must be at least flusher_threads so every flusher can claim a shard",
            ));
        }
        if c.mode == CheckpointMode::NoFlush && c.flusher_threads > 0 {
            return Err(InvalidConfig(
                "NoFlush mode never flushes; flusher_threads must be 0",
            ));
        }
        if c.mode == CheckpointMode::NoFlush && c.async_checkpoint {
            return Err(InvalidConfig(
                "NoFlush mode has no drain to run asynchronously; async_checkpoint must be off",
            ));
        }
        if c.epoch_pipeline == 0 {
            return Err(InvalidConfig(
                "epoch_pipeline must be at least 1 (1 = single drain in flight)",
            ));
        }
        if c.epoch_pipeline > layout::MAX_EPOCH_PIPELINE {
            return Err(InvalidConfig(
                "epoch_pipeline exceeds MAX_EPOCH_PIPELINE (the header's epoch-record ring capacity)",
            ));
        }
        if c.epoch_pipeline > 1 && !c.async_checkpoint {
            return Err(InvalidConfig(
                "epoch_pipeline > 1 pipelines the asynchronous drain; enable async_checkpoint",
            ));
        }
        if c.pool_size == 0 {
            return Err(InvalidConfig("pool size must be positive"));
        }
        if c.recovery_threads == 0 {
            return Err(InvalidConfig(
                "recovery_threads must be at least 1 (the scan needs a worker)",
            ));
        }
        Ok(self.cfg)
    }
}

/// Volatile per-slot state, owned by the registered thread.
pub(crate) struct SlotState {
    /// Cache lines modified this epoch (`to_be_flushed`, paper Fig. 3),
    /// hash-partitioned by line address into `Pool::nshards` shard lists at
    /// append time. A given line always lands in the same shard (the shard
    /// is a pure function of the address), so checkpoint-time dedup can run
    /// per shard with no cross-shard coordination.
    pub to_flush: Vec<Vec<u64>>,
    /// Tail chunk of the slot's registry chain (0 = none). Volatile cache;
    /// reconstructed from persistent state on registration.
    pub reg_tail: u64,
    /// Entries already used in the tail chunk.
    pub reg_tail_used: u64,
    /// Blocks freed this epoch (deferred to the next checkpoint).
    pub frees: Vec<(respct_pmem::PAddr, usize)>,
    /// Volatile mirrors of the slot's persistent cursors. The InCLL cells
    /// are only synced from these at checkpoint time (while every thread is
    /// parked): mid-epoch persistent values are irrelevant because a crash
    /// rolls the entire epoch back, so the hot paths run on plain memory.
    pub alloc_cur: u64,
    pub alloc_end: u64,
    pub reg_len: u64,
}

/// `UnsafeCell` wrapper so the slot array can be shared.
pub(crate) struct SlotCell(UnsafeCell<SlotState>);

// SAFETY: access to the inner `SlotState` follows the epoch protocol
// documented on `Pool::slot_state`: the owning thread accesses it only while
// its per-thread flag is false (it is running), and the checkpointer
// accesses it only while the flag is true *and* `timer` is set (the owner is
// parked inside `rp()`/`checkpoint_prevent()` or has deregistered). The
// flag's SeqCst store/load pair provides the happens-before edge.
unsafe impl Sync for SlotCell {}

/// The persistent pool. See the module docs.
pub struct Pool {
    pub(crate) region: Arc<Region>,
    pub(crate) cfg: PoolConfig,
    /// Resolved flush shard count (power of two; see
    /// [`PoolConfig::resolved_shards`]). Shard index of a line is
    /// [`crate::checkpoint::shard_of_line`]`(line, nshards)`.
    pub(crate) nshards: usize,
    /// Volatile mirror of the NVMM epoch counter. Written only by the
    /// checkpointer while every worker is parked.
    pub(crate) epoch_mirror: AtomicU64,
    /// "A checkpoint wants to run" (paper Fig. 3 `timer`).
    pub(crate) timer: AtomicBool,
    /// Per-thread "I am parked / checkpoint may proceed" flags
    /// (`perThread_flag`), cache-padded against false sharing.
    pub(crate) flags: Box<[CachePadded<AtomicBool>]>,
    /// Which slots belong to live handles.
    pub(crate) active: Box<[AtomicBool]>,
    pub(crate) slots: Box<[SlotCell]>,
    /// Free slot ids for registration (slot 0 is the system slot).
    pub(crate) free_slots: Mutex<Vec<usize>>,
    /// Volatile mirror of the global bump offset (the mutex is also the
    /// chunk-grab lock); synced into the bump cell at checkpoints.
    pub(crate) bump_vol: Mutex<u64>,
    /// Volatile mirrors of the free-list heads, one mutex per size class;
    /// synced into the head cells at checkpoints.
    pub(crate) class_heads: Box<[Mutex<u64>]>,
    /// Serializes checkpoints and registration/deregistration.
    pub(crate) ckpt_lock: Mutex<()>,
    /// Whether an asynchronous drain may be in flight: set before the
    /// quiesced threads are released, cleared with `Release` once the
    /// drain's two-phase commit completes (with `epoch_pipeline > 1` it is
    /// set at the first pipelined checkpoint and stays set — `drain_oldest`
    /// alone decides whether a given epoch is still owed). The hot path
    /// reads it relaxed — one branch, no fence — and only escalates to an
    /// `Acquire` wait when it must overwrite a backup still owed to an
    /// uncommitted epoch.
    pub(crate) drain_active: AtomicBool,
    /// The oldest epoch whose drain has not yet committed; equal to the
    /// current epoch when no drain is in flight. Commits advance it in
    /// strict epoch order (the ring's ordered-commit invariant), so an
    /// epoch `e` is fully durable iff `e < drain_oldest`. Shared (`Arc`)
    /// with the pipelined drain executor's worker thread.
    pub(crate) drain_oldest: Arc<AtomicU64>,
    /// Background drain executor (`epoch_pipeline > 1` only): owns the
    /// worker thread that flushes queued epoch tickets and commits their
    /// ring slots in order.
    pub(crate) pipeline: Option<crate::checkpoint::DrainExec>,
    pub(crate) metrics: Arc<crate::metrics::RuntimeMetrics>,
    pub(crate) ckpt_stats: CkptStats,
    pub(crate) flushers: Option<crate::checkpoint::FlusherPool>,
    /// Whether bump-fresh allocations must be zeroed before hand-out. Set
    /// on recovered pools: memory the crashed epoch allocated and wrote
    /// sits above the restored cursors with live-looking InCLL epoch tags,
    /// while the registry entries describing it rolled back with
    /// `reg_len`. Handing such a block out as-is would fool `init_InCLL`'s
    /// recycled-cell detection into skipping re-registration, leaving the
    /// new cell invisible to every future recovery. Zeroing on hand-out
    /// restores the fresh-memory invariant exactly where it is consumed
    /// (the crashed epoch's high-water mark is not recorded anywhere, so
    /// recovery itself cannot bound a scrub). Fresh pools skip the cost:
    /// their bump memory is virgin-zero by construction.
    pub(crate) scrub_fresh: bool,
    /// One-shot injected fault (test-only). See [`Fault`].
    #[cfg(feature = "fault-inject")]
    pub(crate) fault: Mutex<Option<Fault>>,
}

/// The reserved slot used by the checkpointer and recovery.
pub(crate) const SYSTEM_SLOT: usize = 0;

impl Pool {
    /// Formats `region` as a fresh pool and returns it.
    ///
    /// # Errors
    ///
    /// [`PoolError::RegionTooSmall`](crate::PoolError::RegionTooSmall) if
    /// the region cannot hold the header plus a minimal heap.
    pub fn create(
        region: Arc<Region>,
        cfg: PoolConfig,
    ) -> Result<Arc<Pool>, crate::error::PoolError> {
        let heap = layout::heap_start();
        if (region.size() as u64) <= heap.0 + 4096 {
            return Err(crate::error::PoolError::RegionTooSmall {
                need: heap.0 + 4096,
                got: region.size() as u64,
            });
        }
        region.store(OFF_SIZE, region.size() as u64);
        region.store(OFF_EPOCH, FIRST_EPOCH);
        // No drain in flight: every epoch-record ring slot is free.
        for i in 0..layout::MAX_EPOCH_PIPELINE {
            region.store(layout::epoch_ring_slot(i), 0u64);
        }

        // Header cells: record = backup = initial value, epoch_id = 0 so the
        // first update in epoch FIRST_EPOCH logs them normally.
        Self::format_cell_u64(&region, OFF_ROOT, 0);
        Self::format_cell_u64(&region, OFF_BUMP, heap.0);
        for c in 0..NUM_CLASSES {
            Self::format_cell_u64(
                &region,
                PAddr(OFF_FREELISTS.0 + c as u64 * U64_CELL_SLOT),
                0,
            );
        }
        for i in 0..MAX_THREADS {
            let b = layout::slot_base(i);
            Self::format_cell_u64(&region, PAddr(b.0 + layout::SLOT_RP_ID), 0);
            Self::format_cell_u64(&region, PAddr(b.0 + layout::SLOT_ALLOC_CUR), 0);
            Self::format_cell_u64(&region, PAddr(b.0 + layout::SLOT_ALLOC_END), 0);
            Self::format_cell_u64(&region, PAddr(b.0 + layout::SLOT_REG_LEN), 0);
            region.store(PAddr(b.0 + layout::SLOT_REG_HEAD), 0u64);
        }
        // Persist the formatted header, then set the magic *last* and
        // persist it separately: the magic's durability implies the whole
        // header's (it is fenced after everything else, and shares its
        // cache line with the size field written above, so PCSO's same-line
        // prefix order covers an eviction of that line too). A crash at any
        // instant of format therefore reads as "not a pool" or as a valid
        // empty pool — never as a valid magic over a partial header.
        region.flush_range(PAddr(0), heap.0 as usize);
        region.store(OFF_MAGIC, MAGIC);
        region.flush_range(OFF_MAGIC, 8);
        Ok(Self::attach(region, cfg, FIRST_EPOCH, false))
    }

    /// Opens the pool file at `path` on the mmap backend, resolving to
    /// create-or-recover:
    ///
    /// * no file (or an empty one) → create a fresh pool of
    ///   [`PoolConfig::pool_size`] bytes and format it; the returned report
    ///   is `None`;
    /// * an existing formatted pool → map it at its own size and run
    ///   recovery with [`PoolConfig::recovery_threads`] scan workers; the
    ///   returned report is `Some` (its `failed_epoch` is the epoch
    ///   execution resumes in — recovery after a clean shutdown simply
    ///   rolls back the empty open epoch);
    /// * an existing file that is not a pool →
    ///   [`PoolError::NotAPool`](crate::PoolError::NotAPool) — never a
    ///   silent reformat.
    ///
    /// `cfg.backend()` is ignored here: `open` always maps `path`. Use
    /// [`Pool::open_with`] to honor a heap backend from the config.
    ///
    /// # Errors
    ///
    /// [`PoolError::Backend`](crate::PoolError::Backend) for pool-file I/O
    /// failures, plus every error [`Pool::create`] and recovery can return.
    pub fn open(
        path: impl AsRef<std::path::Path>,
        cfg: PoolConfig,
    ) -> Result<(Arc<Pool>, Option<crate::recovery::RecoveryReport>), crate::error::PoolError> {
        let mut cfg = cfg;
        cfg.backend = Backend::Mmap(path.as_ref().to_path_buf());
        Self::open_with(cfg)
    }

    /// Opens a pool on whatever backend the config names. Heap backends
    /// ([`Backend::Fast`], [`Backend::Sim`]) always create a fresh pool;
    /// [`Backend::Mmap`] resolves to create-or-recover as in [`Pool::open`].
    ///
    /// # Errors
    ///
    /// As for [`Pool::open`].
    pub fn open_with(
        cfg: PoolConfig,
    ) -> Result<(Arc<Pool>, Option<crate::recovery::RecoveryReport>), crate::error::PoolError> {
        let region_cfg = respct_pmem::RegionConfig::builder()
            .size(cfg.pool_size)
            .mode(cfg.backend.clone())
            .build()?;
        let region = Region::try_new(region_cfg)?;
        if region.was_created() {
            return Ok((Self::create(region, cfg)?, None));
        }
        // Existing content: recover, never reformat. A wrong file (magic
        // mismatch) surfaces as NotAPool.
        let threads = cfg.recovery_threads;
        let (pool, report) = Self::recover_with(
            crate::recovery::RecoveryOptions::from_region(region)
                .config(cfg)
                .threads(threads),
        )?;
        Ok((pool, Some(report)))
    }

    /// Flushes the region to its backing store (`msync` on the mmap
    /// backend; no-op on heap backends). Call after a checkpoint when the
    /// pool file must survive a *machine* crash on a non-DAX filesystem —
    /// process-crash durability needs no msync (the kernel owns the mapped
    /// pages).
    ///
    /// # Errors
    ///
    /// [`PoolError::Backend`](crate::PoolError::Backend) with the `msync`
    /// failure.
    pub fn sync_data(&self) -> Result<(), crate::error::PoolError> {
        self.region
            .sync_data()
            .map_err(crate::error::PoolError::from)
    }

    fn format_cell_u64(region: &Region, addr: PAddr, val: u64) {
        let l = CellLayout::new(8, 8);
        debug_assert!(l.fits_at(addr));
        region.store(addr, val);
        region.store(addr.offset(l.backup_off as u64), val);
        region.store(addr.offset(l.epoch_off as u64), 0u64);
        region.trace_marker(TraceMarker::CellDeclare {
            addr: addr.0,
            vsize: l.vsize,
            backup_off: l.backup_off,
            epoch_off: l.epoch_off,
        });
    }

    /// Builds the volatile side of a pool over an already-valid region.
    /// `scrub_fresh` is set for recovered pools (see [`Pool::scrub_fresh`]).
    pub(crate) fn attach(
        region: Arc<Region>,
        cfg: PoolConfig,
        epoch: u64,
        scrub_fresh: bool,
    ) -> Arc<Pool> {
        let nshards = cfg.resolved_shards();
        let flags = (0..MAX_THREADS)
            .map(|i| CachePadded::new(AtomicBool::new(i == SYSTEM_SLOT)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let active = (0..MAX_THREADS)
            .map(|_| AtomicBool::new(false))
            .collect::<Vec<_>>();
        let u64_cell = |addr: PAddr| -> u64 { region.load(addr) };
        let slots = (0..MAX_THREADS)
            .map(|i| {
                let b = layout::slot_base(i).0;
                SlotCell(UnsafeCell::new(SlotState {
                    to_flush: vec![Vec::new(); nshards],
                    reg_tail: 0,
                    reg_tail_used: 0,
                    frees: Vec::new(),
                    alloc_cur: u64_cell(PAddr(b + layout::SLOT_ALLOC_CUR)),
                    alloc_end: u64_cell(PAddr(b + layout::SLOT_ALLOC_END)),
                    reg_len: u64_cell(PAddr(b + layout::SLOT_REG_LEN)),
                }))
            })
            .collect::<Vec<_>>();
        let class_heads = (0..NUM_CLASSES)
            .map(|c| Mutex::new(u64_cell(PAddr(OFF_FREELISTS.0 + c as u64 * U64_CELL_SLOT))))
            .collect::<Vec<_>>();
        let bump_vol = Mutex::new(u64_cell(OFF_BUMP));
        let flushers = if cfg.flusher_threads > 0 {
            Some(crate::checkpoint::FlusherPool::new(
                cfg.flusher_threads,
                Arc::clone(&region),
            ))
        } else {
            None
        };
        // Slots 1.. are free; 0 is the system slot.
        let free: Vec<usize> = (1..MAX_THREADS).rev().collect();
        let metrics = Arc::new(crate::metrics::RuntimeMetrics::new(cfg.metrics));
        metrics.register_pmem(region.stats());
        let drain_oldest = Arc::new(AtomicU64::new(epoch));
        let pipeline = (cfg.epoch_pipeline > 1).then(|| {
            crate::checkpoint::DrainExec::new(
                Arc::clone(&region),
                Arc::clone(&drain_oldest),
                cfg.epoch_pipeline,
                cfg.mode == CheckpointMode::Full,
                Arc::clone(&metrics),
            )
        });
        let pool = Arc::new(Pool {
            region,
            cfg,
            nshards,
            epoch_mirror: AtomicU64::new(epoch),
            timer: AtomicBool::new(false),
            flags,
            active: active.into_boxed_slice(),
            slots: slots.into_boxed_slice(),
            free_slots: Mutex::new(free),
            bump_vol,
            class_heads: class_heads.into_boxed_slice(),
            ckpt_lock: Mutex::new(()),
            drain_active: AtomicBool::new(false),
            drain_oldest,
            pipeline,
            ckpt_stats: CkptStats::over(Arc::clone(&metrics)),
            metrics,
            flushers,
            scrub_fresh,
            #[cfg(feature = "fault-inject")]
            fault: Mutex::new(None),
        });
        // Publish the constructing thread's work (header format, recovery
        // phase-1 rollbacks) on the checkpoint-lock token: the first
        // `register()` acquires it, so pool construction happens-before
        // every handle's stores in the trace — matching the real `Arc`
        // hand-off that publishes the pool to other threads.
        pool.region.sync_release(pool.ckpt_lock_token());
        pool
    }

    /// Arms a one-shot persistency fault. Test-only: lets the analysis
    /// crate prove its checker catches real protocol violations.
    #[cfg(feature = "fault-inject")]
    pub fn inject_fault(&self, fault: Fault) {
        if fault == Fault::SkipRingOrder {
            // This fault fires on the drain executor's worker thread, which
            // has no access to the pool's fault slot — arm it directly.
            let exec = self
                .pipeline
                .as_ref()
                .expect("SkipRingOrder needs epoch_pipeline > 1");
            exec.arm_reorder();
            return;
        }
        *self.fault.lock() = Some(fault);
    }

    /// Pauses (`true`) or resumes (`false`) the pipelined drain executor
    /// *before* it dequeues its next ticket. Test-only: lets tests park
    /// several claimed epochs in the ring deterministically (e.g. to record
    /// a trace window with two drains genuinely outstanding). No-op without
    /// `epoch_pipeline > 1`.
    #[cfg(feature = "fault-inject")]
    pub fn hold_drains(&self, on: bool) {
        if let Some(exec) = &self.pipeline {
            exec.hold(on);
        }
    }

    /// Consumes the armed fault if it matches `want`.
    #[cfg(feature = "fault-inject")]
    pub(crate) fn take_fault(&self, want: Fault) -> bool {
        let mut f = self.fault.lock();
        if *f == Some(want) {
            *f = None;
            true
        } else {
            false
        }
    }

    /// The underlying region.
    pub fn region(&self) -> &Arc<Region> {
        &self.region
    }

    /// The happens-before token identifying `ckpt_lock` in the trace.
    pub(crate) fn ckpt_lock_token(&self) -> SyncToken {
        SyncToken::Lock {
            id: &self.ckpt_lock as *const Mutex<()> as u64,
        }
    }

    /// Takes the checkpoint-serialization lock, reporting acquire/release
    /// happens-before edges to the trace sink. Every `ckpt_lock` user goes
    /// through this so registration, deregistration, and checkpoints are
    /// visibly ordered in the trace.
    pub(crate) fn lock_ckpt(&self) -> CkptLockGuard<'_> {
        let guard = self.ckpt_lock.lock();
        self.region.sync_acquire(self.ckpt_lock_token());
        CkptLockGuard { pool: self, guard }
    }

    /// The current epoch number.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch_mirror.load(Ordering::Relaxed)
    }

    /// Checkpoint statistics (durations, flushed lines, effective period).
    pub fn ckpt_stats(&self) -> &CkptStats {
        &self.ckpt_stats
    }

    /// The pool's runtime metrics (registry access, enabled flag).
    pub fn runtime_metrics(&self) -> &Arc<crate::metrics::RuntimeMetrics> {
        &self.metrics
    }

    /// The pool's metrics registry — render with
    /// [`to_prometheus`](respct_obs::MetricsRegistry::to_prometheus) or
    /// [`to_json`](respct_obs::MetricsRegistry::to_json).
    pub fn metrics(&self) -> &Arc<respct_obs::MetricsRegistry> {
        self.metrics.registry()
    }

    /// Serves the pool's metrics over HTTP on `addr` (`GET /metrics` for
    /// Prometheus text, `GET /json` for the JSON snapshot) until the
    /// returned guard is dropped. Bind port 0 to let the OS choose; the
    /// guard reports the effective address.
    ///
    /// # Errors
    ///
    /// Whatever binding the listener returns (address in use, permission).
    pub fn serve_metrics(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<respct_obs::MetricsServerGuard> {
        respct_obs::MetricsServer::serve(Arc::clone(self.metrics.registry()), addr)
    }

    /// Emits a JSON metrics snapshot to `emit` every `period` on a
    /// background thread (plus one final snapshot at shutdown), mirroring
    /// [`start_checkpointer`](Pool::start_checkpointer). Dropping the guard
    /// stops the thread.
    pub fn start_metrics_reporter(
        &self,
        period: std::time::Duration,
        emit: impl Fn(&str) + Send + 'static,
    ) -> respct_obs::ReporterGuard {
        respct_obs::Reporter::start(Arc::clone(self.metrics.registry()), period, emit)
    }

    /// Reads the pool's root pointer (0 if unset).
    pub fn root(&self) -> PAddr {
        PAddr(self.region.load::<u64>(OFF_ROOT))
    }

    /// Mutable access to a slot's volatile state.
    ///
    /// # Safety
    ///
    /// Callers must hold the slot's exclusive-access right under the epoch
    /// protocol: either they are the registered owner of `slot` and their
    /// per-thread flag is false, or they are the checkpointer/recovery and
    /// every owner is parked (flag true, observed with SeqCst after setting
    /// `timer`).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slot_state(&self, slot: usize) -> &mut SlotState {
        // SAFETY: exclusivity per the caller contract above.
        unsafe { &mut *self.slots[slot].0.get() }
    }

    // ---- Raw InCLL operations (used by ThreadHandle and the checkpointer).

    /// Appends `line` to `slot`'s tracking list, in the shard the line
    /// hashes to. Adjacent writes to the same line are common (node payload
    /// plus embedded cell); skipping trivial duplicates shrinks the flush,
    /// and works per shard because a line always hashes to the same shard.
    ///
    /// # Safety
    ///
    /// Slot exclusivity as for [`Pool::slot_state`].
    #[inline]
    pub(crate) unsafe fn track_line_raw(&self, slot: usize, line: u64) {
        // SAFETY: forwarded caller contract.
        let list = &mut unsafe { self.slot_state(slot) }.to_flush
            [crate::checkpoint::shard_of_line(line, self.nshards)];
        if list.last() != Some(&line) {
            list.push(line);
        }
        self.region.trace_marker(TraceMarker::TrackLine { line });
    }

    /// `update_InCLL` (paper Fig. 4, lines 24–29) executed on behalf of
    /// `slot`.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive use of `slot` (see [`Pool::slot_state`])
    /// and, per the paper's model, hold the lock protecting the variable in
    /// `cell` if it is shared.
    #[inline]
    pub(crate) unsafe fn cell_update_raw<T: Pod>(&self, slot: usize, cell: ICell<T>, val: T) {
        let plain_epoch = self.epoch_mirror.load(Ordering::Relaxed);
        let epoch = crate::incll::epoch_tag(cell.addr(), plain_epoch);
        let eid: u64 = self.region.load(cell.epoch_addr());
        #[cfg(feature = "fault-inject")]
        let eid = if self.take_fault(Fault::SkipLog) {
            epoch
        } else {
            eid
        };
        let first_touch = eid != epoch;
        if first_touch {
            // On-demand push-out (asynchronous drain only — one relaxed
            // load + branch otherwise): the cell's single backup slot may
            // still be owed to an epoch whose drain has not committed. The
            // guard is generation-aware: any valid tag in
            // `[drain_oldest, current)` names an uncommitted epoch (commits
            // advance `drain_oldest` in strict order). The upper bound
            // keeps garbage tags (which decode to huge epochs) off the
            // wait path.
            if self.drain_active.load(Ordering::Relaxed) {
                let t = crate::incll::tag_epoch(cell.addr(), eid);
                if t < plain_epoch && t >= self.drain_oldest.load(Ordering::Relaxed) {
                    self.push_out_pending_line(cell.addr(), t);
                }
            }
            let old: T = self.region.load(cell.addr());
            self.region.store(cell.backup_addr(), old);
            // The backup must be written (in program order) before the
            // epoch id, and both before the record: PCSO then guarantees
            // the log reaches NVMM no later than the data. The stores are
            // relaxed atomics; the compiler fence pins their program order
            // (x86-TSO pins the hardware order).
            std::sync::atomic::compiler_fence(Ordering::Release);
            self.region.store(cell.epoch_addr(), epoch);
            self.region.trace_marker(TraceMarker::CellLogged {
                addr: cell.addr().0,
                epoch: plain_epoch,
            });
            // SAFETY: slot exclusivity per caller contract.
            unsafe { self.track_line_raw(slot, cell.addr().line()) };
        }
        std::sync::atomic::compiler_fence(Ordering::Release);
        self.region.store(cell.addr(), val);
        self.metrics
            .on_update(std::mem::size_of::<T>() as u64, first_touch);
    }

    /// On-demand push-out: a first touch in the current epoch hit a cell
    /// whose in-line log is still owed to an uncommitted epoch `t`. Eagerly
    /// write the line back and fence it (the line's epoch-`t` state —
    /// record, backup, tag — becomes durable ahead of the background drain
    /// reaching it), then wait for `t`'s commit (`drain_oldest > t`; with a
    /// pipeline this may wait out several ordered commits) before the
    /// caller overwrites the backup: until the commit lands, recovery may
    /// roll epoch `t` back and must still find the start-of-`t` value in
    /// the single backup slot. The wait is bounded by the drain itself,
    /// whose progress never depends on application locks.
    #[cold]
    fn push_out_pending_line(&self, addr: PAddr, t: u64) {
        self.region
            .trace_marker(TraceMarker::DrainPushOut { addr: addr.0 });
        self.region.pwb_line(addr.line());
        self.region.psync();
        self.metrics.on_drain_pushout();
        let mut spins = 0u32;
        while self.drain_oldest.load(Ordering::Acquire) <= t {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // The loop exit observed the drain commit's release store: the
        // backup overwrite that follows is HB-after the two-phase commit.
        #[cfg(feature = "fault-inject")]
        if self.take_fault(Fault::DropSyncEdge(SyncEdgeSite::DrainHandshake)) {
            return;
        }
        self.region.sync_acquire(SyncToken::Drain);
    }

    /// `init_InCLL` (paper Fig. 4, lines 19–23): writes all three fields,
    /// registers the cell for recovery, and tracks its line.
    ///
    /// # Safety
    ///
    /// Slot exclusivity as for [`Pool::cell_update_raw`]; `addr` must be a
    /// fresh allocation that fits the cell (checked).
    pub(crate) unsafe fn cell_init_raw<T: Pod>(
        &self,
        slot: usize,
        addr: PAddr,
        val: T,
    ) -> ICell<T> {
        let l = cell_layout::<T>();
        assert!(
            l.fits_at(addr),
            "ICell at {addr:?} would straddle a cache line"
        );
        let cell = ICell::<T>::from_addr(addr);
        let epoch = self.epoch_mirror.load(Ordering::Relaxed);
        // If this address already carries a valid tag (a recycled cell of
        // the same layout), its registry entry is still live — skip the
        // re-registration. Fresh (zeroed or foreign) memory decodes to an
        // implausible epoch with probability 1 - ~2⁻⁶⁴.
        let stored: u64 = self.region.load(cell.epoch_addr());
        let prev_epoch = crate::incll::tag_epoch(cell.addr(), stored);
        let already_registered = prev_epoch >= 1 && prev_epoch <= epoch;
        self.region.store(cell.addr(), val);
        self.region.store(cell.backup_addr(), val);
        self.region.store(
            cell.epoch_addr(),
            crate::incll::epoch_tag(cell.addr(), epoch),
        );
        self.region.trace_marker(TraceMarker::CellDeclare {
            addr: addr.0,
            vsize: l.vsize,
            backup_off: l.backup_off,
            epoch_off: l.epoch_off,
        });
        self.region.trace_marker(TraceMarker::CellLogged {
            addr: addr.0,
            epoch,
        });
        // SAFETY: forwarded caller contract.
        unsafe {
            if !already_registered {
                self.register_cell(slot, addr, l);
            }
            self.track_line_raw(slot, addr.line());
        }
        self.metrics.on_bytes_stored(l.vsize as u64);
        cell
    }

    /// `init_InCLL` *or* `update_InCLL`, depending on whether `addr`
    /// already carries a live cell of this layout (detected via the
    /// address-mixed epoch tag). Used by containers that recycle element
    /// slots: overwriting a slot that was live at the last checkpoint must
    /// log its old value, while a genuinely fresh slot must not.
    ///
    /// # Safety
    ///
    /// As for [`Pool::cell_init_raw`].
    pub(crate) unsafe fn cell_upsert_raw<T: Pod>(
        &self,
        slot: usize,
        addr: PAddr,
        val: T,
    ) -> ICell<T> {
        let cell = ICell::<T>::from_addr(addr);
        let epoch = self.epoch_mirror.load(Ordering::Relaxed);
        let stored: u64 = self.region.load(cell.epoch_addr());
        let prev_epoch = crate::incll::tag_epoch(cell.addr(), stored);
        if prev_epoch >= 1 && prev_epoch <= epoch {
            // Live cell: a logged update.
            // SAFETY: forwarded caller contract.
            unsafe { self.cell_update_raw(slot, cell, val) };
            cell
        } else {
            // Fresh memory: initialize (and register).
            // SAFETY: forwarded caller contract.
            unsafe { self.cell_init_raw(slot, addr, val) }
        }
    }

    /// Reads the current value of a cell. Needs no slot: reads are
    /// unrestricted (the paper's model makes readers hold the same lock as
    /// writers, which is the data structure's business, not the pool's).
    #[inline]
    pub fn cell_get<T: Pod>(&self, cell: ICell<T>) -> T {
        self.region.load(cell.addr())
    }

    /// `add_modified` (paper Fig. 4, lines 12–13) for a byte range: records
    /// every cache line covered by `[addr, addr+len)`.
    ///
    /// # Safety
    ///
    /// Slot exclusivity as for [`Pool::cell_update_raw`].
    #[inline]
    pub(crate) unsafe fn add_modified_raw(&self, slot: usize, addr: PAddr, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr.line();
        let last = PAddr(addr.0 + len as u64 - 1).line();
        for line in first..=last {
            // SAFETY: forwarded caller contract.
            unsafe { self.track_line_raw(slot, line) };
        }
        self.metrics.on_bytes_stored(len as u64);
    }

    /// Header cell handle: the root pointer.
    pub(crate) fn root_cell(&self) -> ICell<u64> {
        ICell::from_addr(OFF_ROOT)
    }

    /// Header cell handle: the global bump offset.
    pub(crate) fn bump_cell(&self) -> ICell<u64> {
        ICell::from_addr(OFF_BUMP)
    }

    /// Header cell handle: free-list head of size class `c`.
    pub(crate) fn freelist_cell(&self, c: usize) -> ICell<u64> {
        debug_assert!(c < NUM_CLASSES);
        ICell::from_addr(PAddr(OFF_FREELISTS.0 + c as u64 * U64_CELL_SLOT))
    }

    /// Per-slot header cell handles.
    pub(crate) fn slot_cell(&self, slot: usize, field: u64) -> ICell<u64> {
        ICell::from_addr(PAddr(layout::slot_base(slot).0 + field))
    }
}

/// Guard for [`Pool::lock_ckpt`]: reports the release edge just before the
/// lock is dropped (field order: the edge is emitted in `drop`, then the
/// inner guard unlocks).
pub(crate) struct CkptLockGuard<'a> {
    pool: &'a Pool,
    #[allow(dead_code)]
    guard: parking_lot::MutexGuard<'a, ()>,
}

impl Drop for CkptLockGuard<'_> {
    fn drop(&mut self) {
        self.pool.region.sync_release(self.pool.ckpt_lock_token());
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("epoch", &self.epoch())
            .field("size", &self.region.size())
            .field("mode", &self.cfg.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use respct_pmem::RegionConfig;

    fn small_pool() -> Arc<Pool> {
        let region = Region::new(RegionConfig::fast(1 << 20));
        Pool::create(region, PoolConfig::default()).unwrap()
    }

    /// All tracked lines of a slot, across shards, in sorted order.
    fn tracked_sorted(pool: &Pool, slot: usize) -> Vec<u64> {
        // SAFETY: single-threaded test.
        let st = unsafe { pool.slot_state(slot) };
        let mut all: Vec<u64> = st.to_flush.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn create_formats_header() {
        let pool = small_pool();
        assert_eq!(pool.region.load::<u64>(OFF_MAGIC), MAGIC);
        assert_eq!(pool.epoch(), FIRST_EPOCH);
        assert_eq!(pool.root(), PAddr(0));
        assert_eq!(pool.cell_get(pool.bump_cell()), layout::heap_start().0);
    }

    #[test]
    fn cell_update_logs_once_per_epoch() {
        let pool = small_pool();
        let cell = pool.bump_cell();
        let before = pool.cell_get(cell);
        // SAFETY: single-threaded test; system slot unused by a checkpointer.
        unsafe {
            pool.cell_update_raw(SYSTEM_SLOT, cell, before + 64);
            pool.cell_update_raw(SYSTEM_SLOT, cell, before + 128);
        }
        assert_eq!(pool.cell_get(cell), before + 128);
        // Backup holds the value from the start of the epoch, not the
        // intermediate one.
        let backup: u64 = pool.region.load(cell.backup_addr());
        assert_eq!(backup, before);
        let eid: u64 = pool.region.load(cell.epoch_addr());
        assert_eq!(crate::incll::tag_epoch(cell.addr(), eid), FIRST_EPOCH);
        // Only one tracking entry despite two updates.
        assert_eq!(
            tracked_sorted(&pool, SYSTEM_SLOT)
                .iter()
                .filter(|&&l| l == cell.addr().line())
                .count(),
            1
        );
    }

    #[test]
    fn add_modified_covers_all_lines() {
        let pool = small_pool();
        // SAFETY: single-threaded test.
        unsafe { pool.add_modified_raw(SYSTEM_SLOT, PAddr(100), 200) };
        assert_eq!(tracked_sorted(&pool, SYSTEM_SLOT), vec![1, 2, 3, 4]);
    }

    #[test]
    fn tiny_region_rejected() {
        let region = Region::new(RegionConfig::fast(4096));
        let err = Pool::create(region, PoolConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            crate::error::PoolError::RegionTooSmall { got: 4096, .. }
        ));
    }

    #[test]
    fn builder_validates() {
        use crate::error::PoolError;
        let ok = PoolConfig::builder()
            .flusher_threads(4)
            .flush_shards(16)
            .build()
            .unwrap();
        assert_eq!(ok.flusher_threads(), 4);
        assert_eq!(ok.resolved_shards(), 16);
        // Auto-sizing: 4× flushers, power of two.
        let auto = PoolConfig::builder().flusher_threads(3).build().unwrap();
        assert_eq!(auto.resolved_shards(), 16);
        assert_eq!(PoolConfig::default().resolved_shards(), 4);
        assert!(matches!(
            PoolConfig::builder().flush_shards(12).build(),
            Err(PoolError::InvalidConfig(_))
        ));
        assert!(matches!(
            PoolConfig::builder().flusher_threads(65).build(),
            Err(PoolError::InvalidConfig(_))
        ));
        assert!(matches!(
            PoolConfig::builder()
                .flusher_threads(8)
                .flush_shards(4)
                .build(),
            Err(PoolError::InvalidConfig(_))
        ));
        assert!(matches!(
            PoolConfig::builder()
                .mode(CheckpointMode::NoFlush)
                .flusher_threads(2)
                .build(),
            Err(PoolError::InvalidConfig(_))
        ));
        assert!(matches!(
            PoolConfig::builder()
                .mode(CheckpointMode::NoFlush)
                .async_checkpoint(true)
                .build(),
            Err(PoolError::InvalidConfig(_))
        ));
        let async_on = PoolConfig::builder()
            .async_checkpoint(true)
            .build()
            .unwrap();
        assert!(async_on.async_checkpoint());
        assert!(!PoolConfig::default().async_checkpoint());
    }

    #[test]
    fn tracked_lines_partition_stably() {
        let pool = small_pool();
        // The same line appended twice back-to-back dedups; interleaved
        // appends of distinct lines land in shards determined only by the
        // address, so re-appending line 1 later still finds it (or not)
        // purely within its own shard.
        // SAFETY: single-threaded test.
        unsafe {
            pool.track_line_raw(SYSTEM_SLOT, 1);
            pool.track_line_raw(SYSTEM_SLOT, 1);
            pool.track_line_raw(SYSTEM_SLOT, 2);
        }
        assert_eq!(tracked_sorted(&pool, SYSTEM_SLOT), vec![1, 2]);
        let shard_of_1 = crate::checkpoint::shard_of_line(1, pool.nshards);
        // SAFETY: single-threaded test.
        let st = unsafe { pool.slot_state(SYSTEM_SLOT) };
        assert!(st.to_flush[shard_of_1].contains(&1));
    }
}
