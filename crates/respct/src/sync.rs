//! Trace-visible synchronization primitives.
//!
//! The happens-before race detector (`respct-analysis`) reconstructs the
//! program's synchronization order from [`SyncRel`]/[`SyncAcq`] events in
//! the region trace. Runtime-internal synchronization (quiescence flags,
//! the checkpoint timer, the drain handshake, flusher acknowledgements)
//! emits those edges directly — but the locks *applications and data
//! structures* use to order their pool stores are ordinary mutexes the
//! region never sees. [`TracedMutex`] is the bridge: a `parking_lot` mutex
//! that reports its acquire/release pairs to the pool's trace sink, so a
//! store protected by it is provably ordered and not a persist race.
//!
//! Emission is zero-cost when the pool's region has no sink attached.
//!
//! [`SyncRel`]: respct_pmem::TraceEvent::SyncRel
//! [`SyncAcq`]: respct_pmem::TraceEvent::SyncAcq

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard};

use respct_pmem::SyncToken;

use crate::pool::Pool;

/// A mutex whose acquire/release edges are visible in the region trace.
///
/// Use it (instead of a plain `parking_lot::Mutex`) for any lock that
/// guards stores to pool memory: the race detector treats unsynchronized
/// cross-thread stores to the same InCLL-bearing cache line within one
/// epoch as a persist race, and only traced edges count as
/// synchronization.
pub struct TracedMutex<T> {
    pool: Arc<Pool>,
    inner: Mutex<T>,
}

impl<T> TracedMutex<T> {
    /// Wraps `value` in a traced mutex belonging to `pool`.
    pub fn new(pool: &Arc<Pool>, value: T) -> TracedMutex<T> {
        TracedMutex {
            pool: Arc::clone(pool),
            inner: Mutex::new(value),
        }
    }

    /// The happens-before token identifying this lock in the trace. Stable
    /// once the `TracedMutex` has its final address (lock creation is
    /// expected to finish before the structure is shared across threads —
    /// the same precondition any `&self`-based sharing already has).
    fn token(&self) -> SyncToken {
        SyncToken::Lock {
            id: &self.inner as *const Mutex<T> as u64,
        }
    }

    /// Acquires the lock, reporting the acquire edge after the lock is
    /// held. The returned guard reports the release edge just before
    /// unlocking.
    pub fn lock(&self) -> TracedGuard<'_, T> {
        let guard = self.inner.lock();
        self.pool.region().sync_acquire(self.token());
        TracedGuard {
            lock: self,
            guard: Some(guard),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TracedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracedMutex")
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard for [`TracedMutex::lock`].
#[must_use = "releasing the guard immediately defeats the lock"]
pub struct TracedGuard<'a, T> {
    lock: &'a TracedMutex<T>,
    /// `Some` for the guard's whole life; taken only in `drop`/`wait` so
    /// the release edge can be emitted *before* the inner unlock.
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> TracedGuard<'_, T> {
    /// Waits on `cv`, releasing and re-acquiring the lock's happens-before
    /// edges around the blocking wait (condition-variable hand-off is a
    /// release/acquire pair like any other unlock/lock).
    pub fn wait(&mut self, cv: &Condvar) {
        let region = self.lock.pool.region();
        region.sync_release(self.lock.token());
        cv.wait(self.guard.as_mut().expect("guard present outside drop"));
        region.sync_acquire(self.lock.token());
    }
}

impl<T> Deref for TracedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside drop")
    }
}

impl<T> DerefMut for TracedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside drop")
    }
}

impl<T> Drop for TracedGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "fault-inject")]
        let dropped = self.lock.pool.take_fault(crate::pool::Fault::DropSyncEdge(
            crate::pool::SyncEdgeSite::LockRelease,
        ));
        #[cfg(not(feature = "fault-inject"))]
        let dropped = false;
        if !dropped {
            self.lock.pool.region().sync_release(self.lock.token());
        }
        // Unlock strictly after the release edge has been reported.
        drop(self.guard.take());
    }
}
