//! Checkpoint statistics (feeds Fig. 10/11 and the effective-period study).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::checkpoint::CkptReport;

/// Aggregate counters over all checkpoints of a pool.
#[derive(Debug, Default)]
pub struct CkptStats {
    /// Completed checkpoints.
    pub count: AtomicU64,
    /// Cache lines flushed in total.
    pub lines_flushed: AtomicU64,
    /// Nanoseconds spent waiting for all threads to reach an RP.
    pub wait_ns: AtomicU64,
    /// Nanoseconds spent gathering the per-slot shard lists (the serial
    /// part of the flush pipeline).
    pub partition_ns: AtomicU64,
    /// Nanoseconds spent in the flush phase (sort + dedup + write-back +
    /// fence, wall-clock across flushers).
    pub flush_ns: AtomicU64,
    /// Nanoseconds of total checkpoint duration (quiesce + flush + epoch).
    pub total_ns: AtomicU64,
}

/// Point-in-time copy of [`CkptStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CkptSnapshot {
    pub count: u64,
    pub lines_flushed: u64,
    pub wait_ns: u64,
    pub partition_ns: u64,
    pub flush_ns: u64,
    pub total_ns: u64,
}

impl CkptStats {
    pub(crate) fn record(&self, report: &CkptReport) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.lines_flushed
            .fetch_add(report.lines, Ordering::Relaxed);
        self.wait_ns.fetch_add(report.wait_ns, Ordering::Relaxed);
        self.partition_ns
            .fetch_add(report.partition_ns, Ordering::Relaxed);
        self.flush_ns.fetch_add(report.flush_ns, Ordering::Relaxed);
        self.total_ns.fetch_add(report.total_ns, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> CkptSnapshot {
        CkptSnapshot {
            count: self.count.load(Ordering::Relaxed),
            lines_flushed: self.lines_flushed.load(Ordering::Relaxed),
            wait_ns: self.wait_ns.load(Ordering::Relaxed),
            partition_ns: self.partition_ns.load(Ordering::Relaxed),
            flush_ns: self.flush_ns.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
        }
    }
}

impl CkptSnapshot {
    /// Mean lines flushed per checkpoint.
    pub fn mean_lines(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.lines_flushed as f64 / self.count as f64
        }
    }

    /// Mean checkpoint duration.
    pub fn mean_duration(&self) -> Duration {
        self.total_ns
            .checked_div(self.count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Mean flush-phase duration per checkpoint.
    pub fn mean_flush(&self) -> Duration {
        self.flush_ns
            .checked_div(self.count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Mean gather/partition duration per checkpoint.
    pub fn mean_partition(&self) -> Duration {
        self.partition_ns
            .checked_div(self.count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(lines: u64, total_us: u64) -> CkptReport {
        CkptReport {
            closed_epoch: 1,
            lines,
            wait_ns: 10_000,
            partition_ns: 5_000,
            flush_ns: 20_000,
            total_ns: total_us * 1_000,
            shards: Vec::new(),
        }
    }

    #[test]
    fn record_and_means() {
        let s = CkptStats::default();
        s.record(&report(100, 40));
        s.record(&report(300, 60));
        let snap = s.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.lines_flushed, 400);
        assert_eq!(snap.mean_lines(), 200.0);
        assert_eq!(snap.mean_duration(), Duration::from_micros(50));
        assert_eq!(snap.mean_flush(), Duration::from_micros(20));
        assert_eq!(snap.mean_partition(), Duration::from_micros(5));
    }

    #[test]
    fn empty_means_are_zero() {
        let snap = CkptStats::default().snapshot();
        assert_eq!(snap.mean_lines(), 0.0);
        assert_eq!(snap.mean_duration(), Duration::ZERO);
    }
}
