//! Checkpoint statistics (feeds Fig. 10/11 and the effective-period study).
//!
//! Since the observability layer landed, the per-checkpoint counters live in
//! [`RuntimeMetrics`](crate::metrics::RuntimeMetrics) as phase histograms;
//! [`CkptStats`] is a thin compatibility view that reconstructs the old
//! aggregate counters (exactly — histogram counts and sums are exact) so
//! existing callers of `pool.ckpt_stats().snapshot()` keep working.

use std::sync::Arc;
use std::time::Duration;

#[cfg(test)]
use crate::checkpoint::CkptReport;
use crate::metrics::RuntimeMetrics;

/// Aggregate counters over all checkpoints of a pool, backed by the pool's
/// [`RuntimeMetrics`].
#[derive(Debug)]
pub struct CkptStats {
    metrics: Arc<RuntimeMetrics>,
}

impl Default for CkptStats {
    /// A standalone stats instance over a private metric set (tests).
    fn default() -> Self {
        CkptStats {
            metrics: Arc::new(RuntimeMetrics::new(true)),
        }
    }
}

/// Point-in-time copy of [`CkptStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CkptSnapshot {
    pub count: u64,
    pub lines_flushed: u64,
    pub wait_ns: u64,
    pub partition_ns: u64,
    pub flush_ns: u64,
    /// Cumulative stop-the-world time (threads held parked). In sync mode
    /// this covers the flush too; in async mode it ends at the epoch swap.
    pub stw_ns: u64,
    /// Cumulative background-drain time (async mode; 0 in sync mode).
    pub drain_ns: u64,
    pub total_ns: u64,
}

impl CkptStats {
    /// A view over `metrics` (the pool's instance).
    pub(crate) fn over(metrics: Arc<RuntimeMetrics>) -> CkptStats {
        CkptStats { metrics }
    }

    /// Feeds one checkpoint report (the live path goes through the pool's
    /// `RuntimeMetrics` directly; this exists for tests of the view).
    #[cfg(test)]
    fn record(&self, report: &CkptReport) {
        self.metrics.on_checkpoint(report);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> CkptSnapshot {
        self.metrics.ckpt_snapshot()
    }
}

impl CkptSnapshot {
    /// Mean lines flushed per checkpoint.
    pub fn mean_lines(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.lines_flushed as f64 / self.count as f64
        }
    }

    /// Mean checkpoint duration.
    pub fn mean_duration(&self) -> Duration {
        self.total_ns
            .checked_div(self.count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Mean flush-phase duration per checkpoint.
    pub fn mean_flush(&self) -> Duration {
        self.flush_ns
            .checked_div(self.count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Mean gather/partition duration per checkpoint.
    pub fn mean_partition(&self) -> Duration {
        self.partition_ns
            .checked_div(self.count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(lines: u64, total_us: u64) -> CkptReport {
        CkptReport {
            closed_epoch: 1,
            lines,
            wait_ns: 10_000,
            partition_ns: 5_000,
            flush_ns: 20_000,
            stw_ns: 35_000,
            drain_ns: 0,
            total_ns: total_us * 1_000,
            shards: Vec::new(),
        }
    }

    #[test]
    fn record_and_means() {
        let s = CkptStats::default();
        s.record(&report(100, 40));
        s.record(&report(300, 60));
        let snap = s.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.lines_flushed, 400);
        assert_eq!(snap.mean_lines(), 200.0);
        assert_eq!(snap.mean_duration(), Duration::from_micros(50));
        assert_eq!(snap.mean_flush(), Duration::from_micros(20));
        assert_eq!(snap.mean_partition(), Duration::from_micros(5));
    }

    #[test]
    fn empty_means_are_zero() {
        let snap = CkptStats::default().snapshot();
        assert_eq!(snap.mean_lines(), 0.0);
        assert_eq!(snap.mean_duration(), Duration::ZERO);
    }
}
