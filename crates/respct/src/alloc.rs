//! Crash-consistent persistent allocator.
//!
//! The paper assumes an `alloc_in_nvmm()` facility; this module provides one
//! whose metadata is protected by InCLL so that allocations performed in a
//! crashed epoch are rolled back together with the data:
//!
//! * A **global bump cell** hands out 64 KiB chunks (and large blocks
//!   directly).
//! * Each thread slot owns a **chunk cache** it bumps without
//!   synchronization.
//! * **Segregated free lists** (16 B … 4 KiB classes) with InCLL heads.
//!
//! All three cursors follow the same *deferred-persistence* discipline as
//! the rest of ResPCT: the hot paths operate on **volatile mirrors**
//! (`SlotState::alloc_cur`/`alloc_end`, `Pool::bump_vol`,
//! `Pool::class_heads`), and the checkpoint procedure syncs the mirrors
//! into their InCLL cells while every thread is parked
//! ([`Pool::sync_deferred_cells`]). Mid-epoch persistent values are
//! irrelevant: a crash rolls the whole epoch back, so the cells only need
//! to be correct (and logged) at epoch boundaries. This keeps allocation
//! off the persistence hot path entirely — one emulated-NVMM load per
//! free-list pop, zero for a chunk bump.
//!
//! `free()` is *deferred*: blocks freed during an epoch are parked in a
//! volatile per-slot list and only pushed onto the free lists after the
//! next checkpoint (the paper's quiescent point), which makes within-epoch
//! reuse impossible and closes the classic rollback/reuse hazard. The park
//! list is lost in a crash — those blocks leak, which is safe (documented
//! trade-off; Montage's epoch retirement makes the same compromise).

use respct_pmem::{align_up, PAddr, SyncToken};

use crate::layout::{self, class_of, class_size};
use crate::pool::{Pool, SYSTEM_SLOT};

/// Granularity of per-thread chunk grabs from the global bump.
pub const CHUNK_SIZE: u64 = 64 * 1024;

impl Pool {
    /// Allocates `size` bytes aligned to `align` on behalf of `slot`.
    ///
    /// Small sizes (≤ 4 KiB) are rounded up to a size class and served from
    /// the class free list or the slot's chunk cache; larger sizes bump the
    /// global cursor directly at 64-byte (or stronger) alignment.
    ///
    /// # Safety
    ///
    /// Caller must have exclusive use of `slot` (see [`Pool::slot_state`]).
    ///
    /// # Panics
    ///
    /// Panics when the region is exhausted.
    pub(crate) unsafe fn alloc_raw(&self, slot: usize, size: u64, align: u64) -> PAddr {
        assert!(size > 0, "zero-size allocation");
        assert!(align.is_power_of_two());
        match class_of(size) {
            Some(c) => {
                let block = class_size(c);
                assert!(
                    align <= block.min(64),
                    "alignment {align} stronger than class alignment {}",
                    block.min(64)
                );
                // SAFETY: forwarded caller contract.
                unsafe { self.alloc_class(slot, c) }
            }
            None => {
                let align = align.max(64);
                let addr = self.bump_global(size, align);
                self.scrub_fresh_block(addr, size);
                addr
            }
        }
    }

    /// Zeroes a bump-fresh block before hand-out on recovered pools (see
    /// [`Pool::scrub_fresh`]): the crashed epoch may have left live-looking
    /// InCLL epoch tags in un-allocated memory, which would fool
    /// `init_InCLL`'s recycled-cell detection. Free-list blocks are *not*
    /// scrubbed — their tags and registry entries are exactly what the
    /// recycled-cell path relies on.
    #[inline]
    fn scrub_fresh_block(&self, addr: PAddr, size: u64) {
        if !self.scrub_fresh {
            return;
        }
        const ZEROS: [u8; 4096] = [0u8; 4096];
        let mut off = 0u64;
        while off < size {
            let n = ((size - off) as usize).min(ZEROS.len());
            self.region.store_bytes(PAddr(addr.0 + off), &ZEROS[..n]);
            off += n as u64;
        }
    }

    /// Serves one block of class `c`: free list first, then the slot chunk.
    ///
    /// # Safety
    ///
    /// Same contract as [`Self::alloc_raw`]: the caller owns `slot`.
    unsafe fn alloc_class(&self, slot: usize, c: usize) -> PAddr {
        // Free-list pop: volatile head under the class lock; the persistent
        // head cell is synced at the next checkpoint.
        {
            let mut head = self.class_heads[c].lock();
            if *head != 0 {
                let block = *head;
                *head = self.region.load(PAddr(block));
                // The checkpointer stored this block's link word under the
                // same lock ([`Pool::push_frees`]); joining its published
                // clock orders our upcoming payload stores after that
                // write for the happens-before race detector.
                self.region.sync_acquire(self.class_lock_token(c));
                return PAddr(block);
            }
        }
        let block = class_size(c);
        // SAFETY: forwarded caller contract.
        let st = unsafe { self.slot_state(slot) };
        let aligned = align_up(st.alloc_cur, block.min(64));
        if st.alloc_cur != 0 && aligned + block <= st.alloc_end {
            st.alloc_cur = aligned + block;
            self.scrub_fresh_block(PAddr(aligned), block);
            return PAddr(aligned);
        }
        // Grab a fresh chunk. The remainder of the old chunk (< one block)
        // is abandoned — bounded internal fragmentation.
        let chunk = self.bump_global(CHUNK_SIZE, 64);
        st.alloc_cur = chunk.0 + block;
        st.alloc_end = chunk.0 + CHUNK_SIZE;
        self.scrub_fresh_block(chunk, block);
        PAddr(chunk.0)
    }

    /// Takes `size` bytes straight from the global bump mirror.
    fn bump_global(&self, size: u64, align: u64) -> PAddr {
        let mut bump = self.bump_vol.lock();
        let start = align_up(*bump, align);
        let new = start + size;
        assert!(
            new <= self.region.size() as u64,
            "persistent pool exhausted: need {size} bytes, {} of {} used",
            *bump,
            self.region.size()
        );
        *bump = new;
        PAddr(start)
    }

    /// Frees a block previously returned by [`Pool::alloc_raw`] for `size`
    /// bytes. Deferred: the block becomes reusable only after the next
    /// checkpoint. Blocks above the largest class are not recycled.
    ///
    /// # Safety
    ///
    /// Caller must have exclusive use of `slot` (see [`Pool::slot_state`]).
    pub(crate) unsafe fn free_raw(&self, slot: usize, addr: PAddr, size: u64) {
        if let Some(c) = class_of(size) {
            self.region
                .trace_marker(respct_pmem::TraceMarker::CellRetire {
                    addr: addr.0,
                    len: class_size(c),
                });
            // SAFETY: forwarded caller contract.
            unsafe { self.slot_state(slot) }.frees.push((addr, c));
        }
    }

    /// Syncs every volatile cursor mirror into its InCLL cell so the
    /// imminent flush persists end-of-epoch allocator and registry state.
    ///
    /// # Safety
    ///
    /// Must only be called by the checkpointer, after quiescence and before
    /// the tracking lists are drained.
    pub(crate) unsafe fn sync_deferred_cells(&self) {
        for slot in 0..layout::MAX_THREADS {
            // SAFETY: checkpointer exclusivity (all owners parked).
            let st = unsafe { self.slot_state(slot) };
            let (cur, end, rlen) = (st.alloc_cur, st.alloc_end, st.reg_len);
            for (field, v) in [
                (layout::SLOT_ALLOC_CUR, cur),
                (layout::SLOT_ALLOC_END, end),
                (layout::SLOT_REG_LEN, rlen),
            ] {
                let cell = self.slot_cell(slot, field);
                if self.cell_get(cell) != v {
                    // SAFETY: checkpointer exclusivity.
                    unsafe { self.cell_update_raw(slot, cell, v) };
                }
            }
        }
        {
            let bump = *self.bump_vol.lock();
            let cell = self.bump_cell();
            if self.cell_get(cell) != bump {
                // SAFETY: checkpointer exclusivity.
                unsafe { self.cell_update_raw(SYSTEM_SLOT, cell, bump) };
            }
        }
        for c in 0..layout::NUM_CLASSES {
            let head = *self.class_heads[c].lock();
            let cell = self.freelist_cell(c);
            if self.cell_get(cell) != head {
                // SAFETY: checkpointer exclusivity.
                unsafe { self.cell_update_raw(SYSTEM_SLOT, cell, head) };
            }
        }
    }

    /// Pushes all blocks freed before the just-completed checkpoint onto
    /// the free lists (volatile heads; the head cells are synced at the
    /// *next* checkpoint). Runs on the checkpointer, in the new epoch.
    ///
    /// # Safety
    ///
    /// Must only be called by the checkpointer while holding `ckpt_lock`.
    pub(crate) unsafe fn drain_frees(&self, slot: usize) {
        // SAFETY: forwarded caller contract.
        let drained = unsafe { self.take_frees() };
        // SAFETY: forwarded caller contract.
        unsafe { self.push_frees(slot, drained) };
    }

    /// Collects every slot's deferred-free list. The asynchronous drain
    /// calls this during the stop-the-world phase (the lists are owned by
    /// the parked threads, who may touch them again the instant they are
    /// released) and pushes the result with [`Pool::push_frees`] only after
    /// the drain commits.
    ///
    /// # Safety
    ///
    /// Checkpointer exclusivity: all owners parked.
    pub(crate) unsafe fn take_frees(&self) -> Vec<(PAddr, usize)> {
        let mut drained: Vec<(PAddr, usize)> = Vec::new();
        for s in 0..crate::layout::MAX_THREADS {
            // SAFETY: checkpointer exclusivity (all owners parked).
            let st = unsafe { self.slot_state(s) };
            if !st.frees.is_empty() {
                drained.append(&mut st.frees);
            }
        }
        drained
    }

    /// Pushes taken free blocks onto the volatile free-list heads, tracking
    /// the link-word stores against `slot`. On the asynchronous path this
    /// must run *after* the drain's two-phase commit: the link word
    /// overwrites the block's first 8 bytes, and until the commit lands a
    /// crash still rolls back to a state in which the block was live.
    ///
    /// # Safety
    ///
    /// Must only be called by the checkpointer while holding `ckpt_lock`
    /// with exclusive use of `slot`.
    pub(crate) unsafe fn push_frees(&self, slot: usize, drained: Vec<(PAddr, usize)>) {
        for (addr, c) in drained {
            let mut head = self.class_heads[c].lock();
            // Link word lives in the block's first 8 bytes. If the epoch
            // that persists this push crashes, the head cell rolls back and
            // the stale link word is unreachable garbage.
            self.region.store(addr, *head);
            // SAFETY: forwarded caller contract (checkpointer exclusivity).
            unsafe { self.add_modified_raw(slot, addr, 8) };
            *head = addr.0;
            // Publish the link-word store to whichever thread pops this
            // block: on the asynchronous path this runs after the drain
            // released the application threads, so the class lock is the
            // only ordering between the store above and the popper's
            // payload writes.
            self.region.sync_release(self.class_lock_token(c));
        }
    }

    /// Happens-before token of a class free-list lock, keyed on the mutex
    /// address (stable for the pool's lifetime).
    fn class_lock_token(&self, c: usize) -> SyncToken {
        SyncToken::Lock {
            id: std::ptr::from_ref(&self.class_heads[c]) as u64,
        }
    }

    /// Bytes handed out so far (volatile view; diagnostics).
    pub fn heap_used(&self) -> u64 {
        *self.bump_vol.lock() - layout::heap_start().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolConfig, SYSTEM_SLOT};
    use respct_pmem::{Region, RegionConfig};
    use std::sync::Arc;

    fn pool() -> Arc<Pool> {
        Pool::create(
            Region::new(RegionConfig::fast(4 << 20)),
            PoolConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let p = pool();
        let mut seen: Vec<(u64, u64)> = Vec::new();
        for (size, align) in [
            (8u64, 8u64),
            (24, 8),
            (64, 64),
            (100, 8),
            (4096, 64),
            (40, 8),
        ] {
            // SAFETY: single-threaded test.
            let a = unsafe { p.alloc_raw(SYSTEM_SLOT, size, align) };
            assert_eq!(a.0 % align, 0, "misaligned block for ({size},{align})");
            let block = class_of(size).map_or(size, class_size);
            for &(s, e) in &seen {
                assert!(a.0 + block <= s || a.0 >= e, "overlap");
            }
            seen.push((a.0, a.0 + block));
        }
    }

    #[test]
    fn class_blocks_do_not_straddle_lines() {
        let p = pool();
        for _ in 0..100 {
            // SAFETY: single-threaded test.
            let a = unsafe { p.alloc_raw(SYSTEM_SLOT, 24, 8) }; // class 32
            let off = a.0 % 64;
            assert!(off + 32 <= 64, "class-32 block straddles a line at {a:?}");
        }
    }

    #[test]
    fn large_alloc_bumps_globally() {
        let p = pool();
        // SAFETY: single-threaded test.
        let a = unsafe { p.alloc_raw(SYSTEM_SLOT, 100_000, 64) };
        assert_eq!(a.0 % 64, 0);
        assert!(p.heap_used() >= 100_000);
    }

    #[test]
    fn free_is_deferred_until_drain() {
        let p = pool();
        // SAFETY: single-threaded test.
        let a = unsafe { p.alloc_raw(SYSTEM_SLOT, 64, 8) };
        // SAFETY: single-threaded test.
        unsafe { p.free_raw(SYSTEM_SLOT, a, 64) };
        // Not yet reusable.
        // SAFETY: single-threaded test.
        let b = unsafe { p.alloc_raw(SYSTEM_SLOT, 64, 8) };
        assert_ne!(a, b);
        // SAFETY: test stands in for the checkpointer.
        unsafe { p.drain_frees(SYSTEM_SLOT) };
        // SAFETY: single-threaded test.
        let c = unsafe { p.alloc_raw(SYSTEM_SLOT, 64, 8) };
        assert_eq!(a, c, "drained block should be recycled first");
    }

    #[test]
    fn huge_blocks_not_recycled() {
        let p = pool();
        // SAFETY: single-threaded test.
        let a = unsafe { p.alloc_raw(SYSTEM_SLOT, 8192, 64) };
        // SAFETY: single-threaded test.
        unsafe { p.free_raw(SYSTEM_SLOT, a, 8192) };
        // SAFETY: test stands in for the checkpointer.
        unsafe { p.drain_frees(SYSTEM_SLOT) };
        // SAFETY: single-threaded test.
        let b = unsafe { p.alloc_raw(SYSTEM_SLOT, 8192, 64) };
        assert_ne!(a, b);
    }

    #[test]
    fn sync_persists_cursors_at_checkpoint() {
        let p = pool();
        // SAFETY: single-threaded test.
        unsafe { p.alloc_raw(SYSTEM_SLOT, 64, 8) };
        let used = p.heap_used();
        // Before a checkpoint, the persistent bump cell is stale.
        assert_ne!(p.cell_get(p.bump_cell()), used + layout::heap_start().0);
        p.checkpoint_now();
        assert_eq!(p.cell_get(p.bump_cell()), used + layout::heap_start().0);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn oom_panics() {
        let p = pool();
        loop {
            // SAFETY: single-threaded test.
            unsafe { p.alloc_raw(SYSTEM_SLOT, 1 << 20, 64) };
        }
    }
}
