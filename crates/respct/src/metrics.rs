//! Runtime observability: the pool-side wiring of the `respct-obs` layer.
//!
//! One [`RuntimeMetrics`] lives in every [`Pool`](crate::Pool) and threads
//! the quantities the paper's evaluation reasons about into a
//! [`MetricsRegistry`]:
//!
//! * checkpoint phase latencies (wait / partition / flush / total) as
//!   histograms, not just means — the tails are where quiescence problems
//!   show up;
//! * epoch length (time between consecutive checkpoints);
//! * lines flushed per checkpoint and per shard, plus per-shard flush time
//!   (skew across flushers);
//! * RP quiescence stall time, both as a global histogram and as a
//!   per-slot total (one slow thread stalls every checkpoint);
//! * InCLL traffic: updates, first-touches (= backup writes), bytes
//!   logically stored, bytes flushed, and the derived first-touch rate and
//!   write-amplification gauges;
//! * the pmem substrate's `pwb`/`psync`/store/eviction counters, surfaced
//!   as read-on-demand gauges over [`respct_pmem::PmemStats`].
//!
//! Hot-path instrumentation (per InCLL update / tracked byte) is gated on
//! the pool's `metrics` config flag — one relaxed bool load when disabled.
//! Checkpoint-path recording always runs: it is per *checkpoint*, not per
//! operation, and the legacy [`CkptStats`](crate::CkptStats) view is
//! derived from it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use respct_obs::{Counter, Histogram, MetricsRegistry, Unit};

use crate::checkpoint::CkptReport;
use crate::layout::MAX_THREADS;
use crate::stats::CkptSnapshot;

/// All metric handles for one pool, pre-registered against a shared
/// [`MetricsRegistry`]. Recording never touches the registry.
pub struct RuntimeMetrics {
    registry: Arc<MetricsRegistry>,
    /// Hot-path gate (pool config `metrics`); checked with one relaxed load.
    enabled: AtomicBool,

    // Hot path (per update / tracked range).
    incll_updates: Arc<Counter>,
    incll_first_touch: Arc<Counter>,
    bytes_stored: Arc<Counter>,

    // Checkpoint path (per checkpoint / per shard).
    bytes_flushed: Arc<Counter>,
    ckpt_wait_ns: Arc<Histogram>,
    ckpt_partition_ns: Arc<Histogram>,
    ckpt_flush_ns: Arc<Histogram>,
    ckpt_stw_ns: Arc<Histogram>,
    ckpt_drain_ns: Arc<Histogram>,
    ckpt_total_ns: Arc<Histogram>,
    epoch_len_ns: Arc<Histogram>,
    ckpt_lines: Arc<Histogram>,
    shard_lines: Arc<Histogram>,
    shard_flush_ns: Arc<Histogram>,
    /// Instant of the previous checkpoint's completion (epoch length).
    last_ckpt: Mutex<Option<Instant>>,

    // Quiescence (recorded while parking — off the failure-free hot path).
    rp_stall_ns: Arc<Histogram>,
    rp_stall_by_slot: Arc<Vec<CachePadded<AtomicU64>>>,
    /// On-demand push-outs: first touches in epoch N+1 that had to flush a
    /// line still pending in the draining checkpoint of epoch N.
    drain_pushouts: Arc<Counter>,
}

impl RuntimeMetrics {
    /// Builds the metric set on a fresh registry.
    pub(crate) fn new(enabled: bool) -> RuntimeMetrics {
        let r = Arc::new(MetricsRegistry::new());

        let incll_updates = r.counter(
            "respct_incll_updates_total",
            "InCLL cell updates",
            Unit::None,
        );
        let incll_first_touch = r.counter(
            "respct_incll_first_touch_total",
            "InCLL updates that logged a backup (first touch in epoch)",
            Unit::None,
        );
        {
            let u = Arc::clone(&incll_updates);
            let f = Arc::clone(&incll_first_touch);
            r.gauge_fn(
                "respct_incll_first_touch_rate",
                "Fraction of InCLL updates that were first touches",
                Unit::None,
                move || {
                    let u = u.get();
                    if u == 0 {
                        0.0
                    } else {
                        f.get() as f64 / u as f64
                    }
                },
            );
        }
        let bytes_stored = r.counter(
            "respct_bytes_stored_total",
            "Bytes logically stored through the pool API",
            Unit::Bytes,
        );
        let bytes_flushed = r.counter(
            "respct_bytes_flushed_total",
            "Bytes written back by checkpoints (unique lines x 64)",
            Unit::Bytes,
        );
        {
            let stored = Arc::clone(&bytes_stored);
            let flushed = Arc::clone(&bytes_flushed);
            r.gauge_fn(
                "respct_write_amplification",
                "Bytes flushed per byte logically stored",
                Unit::None,
                move || {
                    let s = stored.get();
                    if s == 0 {
                        0.0
                    } else {
                        flushed.get() as f64 / s as f64
                    }
                },
            );
        }

        let ckpt_wait_ns = r.histogram(
            "respct_checkpoint_wait_ns",
            "Checkpoint quiescence wait",
            Unit::Nanos,
        );
        let ckpt_partition_ns = r.histogram(
            "respct_checkpoint_partition_ns",
            "Checkpoint gather/partition phase",
            Unit::Nanos,
        );
        let ckpt_flush_ns = r.histogram(
            "respct_checkpoint_flush_ns",
            "Checkpoint flush phase (wall clock across flushers)",
            Unit::Nanos,
        );
        let ckpt_stw_ns = r.histogram(
            "respct_checkpoint_stw_ns",
            "Stop-the-world window (threads held parked)",
            Unit::Nanos,
        );
        let ckpt_drain_ns = r.histogram(
            "respct_checkpoint_drain_ns",
            "Background drain after thread release (async mode)",
            Unit::Nanos,
        );
        let ckpt_total_ns = r.histogram(
            "respct_checkpoint_total_ns",
            "Whole checkpoint duration",
            Unit::Nanos,
        );
        let epoch_len_ns = r.histogram(
            "respct_epoch_length_ns",
            "Time between consecutive checkpoint completions",
            Unit::Nanos,
        );
        let ckpt_lines = r.histogram(
            "respct_checkpoint_lines",
            "Unique cache lines flushed per checkpoint",
            Unit::Lines,
        );
        let shard_lines = r.histogram(
            "respct_shard_flush_lines",
            "Unique cache lines flushed per shard per checkpoint",
            Unit::Lines,
        );
        let shard_flush_ns = r.histogram(
            "respct_shard_flush_ns",
            "Write-back time per shard per checkpoint",
            Unit::Nanos,
        );

        let drain_pushouts = r.counter(
            "respct_drain_pushouts_total",
            "On-demand line push-outs during asynchronous drains",
            Unit::None,
        );

        let rp_stall_ns = r.histogram(
            "respct_rp_stall_ns",
            "Time a thread spent parked at a restart point for a checkpoint",
            Unit::Nanos,
        );
        let rp_stall_by_slot: Arc<Vec<CachePadded<AtomicU64>>> = Arc::new(
            (0..MAX_THREADS)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        );
        {
            let per_slot = Arc::clone(&rp_stall_by_slot);
            r.gauge_vec_fn(
                "respct_rp_stall_total_ns",
                "Cumulative RP stall per thread slot (non-zero slots only)",
                Unit::Nanos,
                "slot",
                move || {
                    per_slot
                        .iter()
                        .enumerate()
                        .filter_map(|(slot, v)| {
                            let ns = v.load(Ordering::Relaxed);
                            (ns > 0).then(|| (slot.to_string(), ns as f64))
                        })
                        .collect()
                },
            );
        }

        RuntimeMetrics {
            registry: r,
            enabled: AtomicBool::new(enabled),
            incll_updates,
            incll_first_touch,
            bytes_stored,
            bytes_flushed,
            ckpt_wait_ns,
            ckpt_partition_ns,
            ckpt_flush_ns,
            ckpt_stw_ns,
            ckpt_drain_ns,
            ckpt_total_ns,
            epoch_len_ns,
            ckpt_lines,
            shard_lines,
            shard_flush_ns,
            last_ckpt: Mutex::new(None),
            rp_stall_ns,
            rp_stall_by_slot,
            drain_pushouts,
        }
    }

    /// Surfaces the pmem substrate's counters as read-on-demand gauges.
    pub(crate) fn register_pmem(&self, stats: &Arc<respct_pmem::PmemStats>) {
        type ReadFn = fn(&respct_pmem::PmemStats) -> u64;
        let entries: [(&'static str, &'static str, ReadFn); 4] = [
            (
                "respct_pmem_pwb_total",
                "Cache-line write-backs (clwb)",
                |s| s.pwb.load(Ordering::Relaxed),
            ),
            ("respct_pmem_psync_total", "Persist fences (sfence)", |s| {
                s.psync.load(Ordering::Relaxed)
            }),
            (
                "respct_pmem_stores_total",
                "Persistent stores (sim mode only)",
                |s| s.stores.load(Ordering::Relaxed),
            ),
            (
                "respct_pmem_evictions_total",
                "Simulator cache-line evictions",
                |s| s.evictions.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, read) in entries {
            let stats = Arc::clone(stats);
            self.registry
                .gauge_fn(name, help, Unit::None, move || read(&stats) as f64);
        }
    }

    /// Registers the pipelined-checkpoint metrics: a gauge over the number
    /// of epochs in flight (closed, ring slot claimed, commit not yet
    /// published) and a counter of ring commits. Returns the counter for
    /// the drain executor to bump; called once per pool, from
    /// [`DrainExec::new`](crate::checkpoint::DrainExec).
    pub(crate) fn register_pipeline(&self, inflight: &Arc<AtomicU64>) -> Arc<Counter> {
        let gauge_src = Arc::clone(inflight);
        self.registry.gauge_fn(
            "respct_epochs_in_flight",
            "Closed epochs whose drains have not yet ring-committed",
            Unit::None,
            move || gauge_src.load(Ordering::Relaxed) as f64,
        );
        self.registry.counter(
            "respct_ring_commits_total",
            "Pipelined drain commits published in ring order",
            Unit::None,
        )
    }

    /// Whether hot-path instrumentation is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The underlying registry (for export or serving).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// One InCLL update of `bytes` payload; `first_touch` when it logged a
    /// backup. Gated on [`enabled`](Self::enabled).
    #[inline]
    pub(crate) fn on_update(&self, bytes: u64, first_touch: bool) {
        if !self.enabled() {
            return;
        }
        self.incll_updates.inc();
        if first_touch {
            self.incll_first_touch.inc();
        }
        self.bytes_stored.add(bytes);
    }

    /// `add_modified` over `bytes` of plain persistent data. Gated.
    #[inline]
    pub(crate) fn on_bytes_stored(&self, bytes: u64) {
        if self.enabled() {
            self.bytes_stored.add(bytes);
        }
    }

    /// A thread parked `ns` at a restart point waiting out a checkpoint.
    #[inline]
    pub(crate) fn on_rp_stall(&self, slot: usize, ns: u64) {
        self.rp_stall_ns.record(ns);
        self.rp_stall_by_slot[slot].fetch_add(ns, Ordering::Relaxed);
    }

    /// Snapshot of the restart-point stall histogram (what threads actually
    /// experience as checkpoint-induced latency).
    pub fn rp_stall_snapshot(&self) -> respct_obs::HistSnapshot {
        self.rp_stall_ns.snapshot()
    }

    /// A first touch in the new epoch pushed out a line still pending in
    /// the draining checkpoint. Ungated: cold and rare by construction.
    #[inline]
    pub(crate) fn on_drain_pushout(&self) {
        self.drain_pushouts.inc();
    }

    /// Total on-demand push-outs across all drains.
    pub fn drain_pushouts(&self) -> u64 {
        self.drain_pushouts.get()
    }

    /// Records one finished checkpoint. Always on (per-checkpoint cost);
    /// this is also the source of truth for the legacy [`CkptSnapshot`]
    /// view.
    ///
    /// [`CkptSnapshot`]: crate::CkptSnapshot
    pub(crate) fn on_checkpoint(&self, report: &CkptReport) {
        self.ckpt_wait_ns.record(report.wait_ns);
        self.ckpt_partition_ns.record(report.partition_ns);
        self.ckpt_flush_ns.record(report.flush_ns);
        self.ckpt_stw_ns.record(report.stw_ns);
        self.ckpt_drain_ns.record(report.drain_ns);
        self.ckpt_total_ns.record(report.total_ns);
        self.ckpt_lines.record(report.lines);
        self.bytes_flushed
            .add(report.lines * respct_pmem::CACHE_LINE as u64);
        for s in &report.shards {
            self.shard_lines.record(s.lines);
            self.shard_flush_ns.record(s.flush_ns);
        }
        let now = Instant::now();
        let mut last = self.last_ckpt.lock();
        if let Some(prev) = last.replace(now) {
            self.epoch_len_ns.record((now - prev).as_nanos() as u64);
        }
    }

    /// The aggregate checkpoint counters, reconstructed from the phase
    /// histograms (exact: histogram counts and sums are exact; only the
    /// bucket boundaries are approximate).
    pub(crate) fn ckpt_snapshot(&self) -> CkptSnapshot {
        CkptSnapshot {
            count: self.ckpt_total_ns.count(),
            lines_flushed: self.ckpt_lines.sum(),
            wait_ns: self.ckpt_wait_ns.sum(),
            partition_ns: self.ckpt_partition_ns.sum(),
            flush_ns: self.ckpt_flush_ns.sum(),
            stw_ns: self.ckpt_stw_ns.sum(),
            drain_ns: self.ckpt_drain_ns.sum(),
            total_ns: self.ckpt_total_ns.sum(),
        }
    }
}

impl std::fmt::Debug for RuntimeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeMetrics")
            .field("enabled", &self.enabled())
            .field("checkpoints", &self.ckpt_total_ns.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::ShardReport;

    fn report(lines: u64) -> CkptReport {
        CkptReport {
            closed_epoch: 1,
            lines,
            wait_ns: 1000,
            partition_ns: 200,
            flush_ns: 3000,
            stw_ns: 4200,
            drain_ns: 0,
            total_ns: 5000,
            shards: vec![ShardReport {
                shard: 0,
                lines,
                sort_ns: 10,
                flush_ns: 2000,
            }],
        }
    }

    #[test]
    fn checkpoint_snapshot_matches_reports() {
        let m = RuntimeMetrics::new(true);
        m.on_checkpoint(&report(10));
        m.on_checkpoint(&report(30));
        let s = m.ckpt_snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.lines_flushed, 40);
        assert_eq!(s.wait_ns, 2000);
        assert_eq!(s.total_ns, 10_000);
    }

    #[test]
    fn disabled_gate_skips_hot_path_counters() {
        let m = RuntimeMetrics::new(false);
        m.on_update(8, true);
        m.on_bytes_stored(64);
        assert!(!m
            .registry()
            .to_json()
            .contains("\"respct_incll_updates_total\":1"));
        assert!(m
            .registry()
            .to_json()
            .contains("\"respct_incll_updates_total\":0"));
    }

    #[test]
    fn write_amplification_gauge() {
        let m = RuntimeMetrics::new(true);
        m.on_bytes_stored(64);
        m.on_checkpoint(&report(2)); // 128 bytes flushed
        let json = m.registry().to_json();
        assert!(
            json.contains("\"respct_write_amplification\":2"),
            "json: {json}"
        );
    }

    #[test]
    fn rp_stall_surfaces_per_slot() {
        let m = RuntimeMetrics::new(true);
        m.on_rp_stall(3, 500);
        m.on_rp_stall(3, 700);
        let text = m.registry().to_prometheus();
        assert!(text.contains("respct_rp_stall_total_ns{slot=\"3\"} 1200"));
        assert_eq!(m.rp_stall_ns.count(), 2);
    }
}
