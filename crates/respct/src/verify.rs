//! Pool integrity verification (an fsck for ResPCT pools).
//!
//! Walks every persistent structure the runtime maintains — header, thread
//! slots, registry chains, free lists, cell placements — and checks the
//! invariants the algorithm relies on. Intended for tests, post-recovery
//! sanity checks, and debugging of data-structure code built on the pool.

use respct_pmem::PAddr;

use crate::incll::tag_epoch;
use crate::layout::{
    self, CellLayout, MAGIC, MAX_THREADS, NUM_CLASSES, OFF_BUMP, OFF_EPOCH, OFF_FREELISTS,
    OFF_MAGIC, OFF_ROOT, OFF_SIZE, REG_CHUNK_ENTRIES, U64_CELL_SLOT,
};
use crate::pool::Pool;

/// One integrity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which check failed.
    pub kind: ViolationKind,
    /// Human-readable details.
    pub detail: String,
}

/// Category of an integrity violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Bad magic or size header.
    Header,
    /// A registered cell straddles a cache line or lies out of bounds.
    CellPlacement,
    /// A registry chain is shorter than its recorded length, or a chunk
    /// pointer is invalid.
    Registry,
    /// A free-list is cyclic or points out of bounds.
    FreeList,
    /// An allocator cursor is out of bounds or inconsistent.
    Allocator,
    /// Epoch-tag indiscipline: the persistent epoch counter disagrees with
    /// the volatile mirror, or a cell's tag decodes to an epoch the pool has
    /// not reached yet (a tag from the future can silently suppress logging
    /// when that epoch arrives, destroying the undo chain).
    Epoch,
}

/// Result of [`Pool::verify`].
#[derive(Debug, Default)]
pub struct VerifyReport {
    pub cells_checked: u64,
    pub registry_chunks: u64,
    pub free_blocks: u64,
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl Pool {
    /// Verifies the pool's persistent invariants.
    ///
    /// Must run while no application thread is mutating the pool
    /// (single-threaded test context or post-recovery).
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport::default();
        let mut violations: Vec<Violation> = Vec::new();
        let region = self.region();
        let size = region.size() as u64;
        // Collect, don't abort: report everything found.
        let mut fail = |kind, detail: String| violations.push(Violation { kind, detail });

        // Header.
        if region.load::<u64>(OFF_MAGIC) != MAGIC {
            fail(ViolationKind::Header, "bad magic".into());
        }
        if region.load::<u64>(OFF_SIZE) != size {
            fail(ViolationKind::Header, "recorded size != region size".into());
        }

        // Epoch-tag discipline. In any quiescent state the persistent epoch
        // counter matches the volatile mirror, and no cell carries a tag
        // from an epoch the pool has not reached (a "future" tag would make
        // `update_InCLL` skip logging when that epoch arrives). Tags that
        // decode far beyond the horizon are uninitialized noise (the
        // address mixing spreads garbage over the full u64 range), so only
        // the plausible window is flagged.
        let epoch = self.epoch();
        let persistent_epoch = region.load::<u64>(OFF_EPOCH);
        if persistent_epoch != epoch {
            fail(
                ViolationKind::Epoch,
                format!("persistent epoch {persistent_epoch} != volatile mirror {epoch}"),
            );
        }
        const EPOCH_HORIZON: u64 = 1 << 20;
        let bad_tag = |addr: PAddr, l: CellLayout| -> Option<u64> {
            let stored: u64 = region.load(addr.offset(l.epoch_off as u64));
            let e = tag_epoch(addr, stored);
            (e > epoch && e <= epoch + EPOCH_HORIZON).then_some(e)
        };
        let u64_layout = CellLayout::new(8, 8);
        let mut fixed: Vec<(PAddr, &str)> = vec![(OFF_ROOT, "root cell"), (OFF_BUMP, "bump cell")];
        for c in 0..NUM_CLASSES {
            fixed.push((
                PAddr(OFF_FREELISTS.0 + c as u64 * U64_CELL_SLOT),
                "free-list cell",
            ));
        }
        for slot in 0..MAX_THREADS {
            let b = layout::slot_base(slot).0;
            for f in [
                layout::SLOT_RP_ID,
                layout::SLOT_ALLOC_CUR,
                layout::SLOT_ALLOC_END,
                layout::SLOT_REG_LEN,
            ] {
                fixed.push((PAddr(b + f), "slot cell"));
            }
        }
        for (addr, what) in fixed {
            if let Some(e) = bad_tag(addr, u64_layout) {
                fail(
                    ViolationKind::Epoch,
                    format!("{what} at {addr:?}: tag epoch {e} > pool epoch {epoch}"),
                );
            }
        }

        // Allocator cursors.
        let heap = layout::heap_start().0;
        let bump = self.cell_get(self.bump_cell());
        if !(heap..=size).contains(&bump) {
            fail(
                ViolationKind::Allocator,
                format!("bump cell {bump} outside [{heap}, {size}]"),
            );
        }

        // Registries + registered cells.
        for slot in 0..MAX_THREADS {
            let len = self.reg_len_persistent(slot);
            let mut chunk: u64 =
                region.load(PAddr(layout::slot_base(slot).0 + layout::SLOT_REG_HEAD));
            let mut seen = 0u64;
            while seen < len {
                if chunk == 0 || chunk >= size {
                    fail(
                        ViolationKind::Registry,
                        format!("slot {slot}: chain ends at {seen}/{len} entries"),
                    );
                    break;
                }
                report.registry_chunks += 1;
                let in_chunk = (len - seen).min(REG_CHUNK_ENTRIES);
                for i in 0..in_chunk {
                    let entry = PAddr(chunk + layout::reg_entry_off(i));
                    let addr: u64 = region.load(entry);
                    let meta: u64 = region.load(entry.offset(8));
                    let l = CellLayout::decode_checked(meta);
                    match l {
                        Some(l) => {
                            report.cells_checked += 1;
                            if addr + l.total as u64 > size {
                                fail(
                                    ViolationKind::CellPlacement,
                                    format!("slot {slot} entry {i}: cell {addr} out of bounds"),
                                );
                            } else if !l.fits_at(PAddr(addr)) {
                                fail(
                                    ViolationKind::CellPlacement,
                                    format!("slot {slot} entry {i}: cell {addr} straddles a line"),
                                );
                            } else if let Some(e) = bad_tag(PAddr(addr), l) {
                                fail(
                                    ViolationKind::Epoch,
                                    format!(
                                        "slot {slot} entry {i}: cell {addr} tag epoch {e} > \
                                         pool epoch {epoch}"
                                    ),
                                );
                            }
                        }
                        None => fail(
                            ViolationKind::Registry,
                            format!("slot {slot} entry {i}: invalid layout meta {meta:#x}"),
                        ),
                    }
                }
                seen += in_chunk;
                if seen < len {
                    chunk = region.load(PAddr(chunk + layout::REG_CHUNK_NEXT));
                }
            }
        }

        // Free lists: bounded walk detects cycles / wild pointers.
        for c in 0..NUM_CLASSES {
            let mut cur = self.cell_get(self.freelist_cell(c));
            let mut steps = 0u64;
            let limit = size / 16 + 1;
            while cur != 0 {
                if !cur.is_multiple_of(8) || cur >= size {
                    fail(
                        ViolationKind::FreeList,
                        format!("class {c}: wild pointer {cur:#x}"),
                    );
                    break;
                }
                report.free_blocks += 1;
                steps += 1;
                if steps > limit {
                    fail(
                        ViolationKind::FreeList,
                        format!("class {c}: cycle detected"),
                    );
                    break;
                }
                cur = region.load(PAddr(cur));
            }
        }
        report.violations = violations;
        report
    }
}

impl CellLayout {
    /// [`CellLayout::decode`] that rejects invalid metadata instead of
    /// panicking.
    pub fn decode_checked(meta: u64) -> Option<CellLayout> {
        let vsize = (meta & 0xff) as usize;
        let valign = ((meta >> 8) & 0xff) as usize;
        if meta >> 16 != 0 || !(1..=24).contains(&vsize) || !valign.is_power_of_two() || valign > 8
        {
            return None;
        }
        Some(CellLayout::new(vsize, valign))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use respct_pmem::{Region, RegionConfig};
    use std::sync::Arc;

    #[test]
    fn fresh_pool_is_clean() {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(4 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        let r = pool.verify();
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn pool_with_cells_and_frees_is_clean() {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(16 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        let h = pool.register();
        let mut blocks = Vec::new();
        for i in 0..500u64 {
            h.alloc_cell(i);
            blocks.push(h.alloc(48, 8));
        }
        for b in blocks {
            h.free(b, 48);
        }
        h.checkpoint_here(); // drain frees, sync cursors
        h.checkpoint_here(); // persist the drained free list heads
        let r = pool.verify();
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.cells_checked, 500);
        assert!(r.free_blocks >= 500);
    }

    #[test]
    fn recovered_pool_is_clean() {
        let region = Region::new(RegionConfig::sim(
            8 << 20,
            respct_pmem::SimConfig::with_eviction(3, 5),
        ));
        let pool = Pool::create(Arc::clone(&region), PoolConfig::default()).unwrap();
        let h = pool.register();
        let cells: Vec<_> = (0..100u64).map(|i| h.alloc_cell(i)).collect();
        h.checkpoint_here();
        for c in &cells {
            h.update(*c, 1);
        }
        drop(h);
        drop(pool);
        let img = region.crash(respct_pmem::sim::CrashMode::PowerFailure);
        region.restore(&img);
        let (pool, _) = Pool::recover(Arc::clone(&region), PoolConfig::default()).unwrap();
        let r = pool.verify();
        assert!(r.is_clean(), "{:?}", r.violations);
    }

    #[test]
    fn corrupted_magic_detected() {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(4 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        pool.region().store(OFF_MAGIC, 0xbad_c0de_u64);
        let r = pool.verify();
        assert!(!r.is_clean());
        assert_eq!(r.violations[0].kind, ViolationKind::Header);
    }

    #[test]
    fn corrupted_registry_detected() {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(4 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        let h = pool.register();
        for i in 0..10u64 {
            h.alloc_cell(i);
        }
        h.checkpoint_here();
        // Smash the slot's registry head.
        let slot_base = layout::slot_base(h.slot()).0;
        pool.region()
            .store(PAddr(slot_base + layout::SLOT_REG_HEAD), u64::MAX);
        let r = pool.verify();
        assert!(
            r.violations
                .iter()
                .any(|v| v.kind == ViolationKind::Registry),
            "{r:?}"
        );
    }

    #[test]
    fn epoch_counter_mismatch_detected() {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(4 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        pool.region().store(OFF_EPOCH, 99u64); // persistent counter diverges
        let r = pool.verify();
        assert!(
            r.violations.iter().any(|v| v.kind == ViolationKind::Epoch),
            "{r:?}"
        );
    }

    #[test]
    fn future_epoch_tag_detected() {
        let pool = Pool::create(
            Region::new(RegionConfig::fast(4 << 20)),
            PoolConfig::default(),
        )
        .unwrap();
        let h = pool.register();
        let c = h.alloc_cell(7u64);
        h.checkpoint_here();
        // Stamp the cell with a tag from an epoch the pool hasn't reached:
        // update_InCLL would skip logging when that epoch arrives.
        let l = crate::incll::cell_layout::<u64>();
        let tag = crate::incll::epoch_tag(c.addr(), pool.epoch() + 5);
        pool.region()
            .store(c.addr().offset(l.epoch_off as u64), tag);
        let r = pool.verify();
        assert!(
            r.violations.iter().any(|v| v.kind == ViolationKind::Epoch),
            "{r:?}"
        );
    }

    #[test]
    fn decode_checked_rejects_garbage() {
        assert!(CellLayout::decode_checked(0).is_none()); // vsize 0
        assert!(CellLayout::decode_checked(0x0308).is_none()); // align 3
        assert!(CellLayout::decode_checked(0x1_0000_0808).is_none()); // high bits
        assert!(CellLayout::decode_checked(0x0808).is_some());
    }
}
